//! Workspace-wiring smoke tests.
//!
//! Each test mirrors the core path of one of the four `examples/`, so a
//! manifest regression (a dropped crate dependency, a broken re-export in
//! the `sna` facade, a renamed prelude item) is caught by `cargo test`
//! instead of by a user running the examples. Parameters are scaled down
//! where possible to keep the suite fast; the point is exercising every
//! inter-crate edge, not the physics (the physics assertions live in the
//! other integration tests).

use sna::prelude::*;

/// `examples/quickstart.rs`: Table-1 cluster through all four methods.
#[test]
fn quickstart_core_path() {
    let spec = table1_spec();
    let model = ClusterMacromodel::build(&spec).expect("build macromodel");
    let noise = simulate_macromodel(&model).expect("engine solve");
    let m = noise.dp_metrics(model.q_out);
    assert!(m.peak > 0.0, "engine must report a positive DP glitch");

    let cmp = MethodComparison::run("smoke", &spec).expect("four-way comparison");
    // The paper's headline: the macromodel tracks golden far better than
    // linear superposition does.
    assert!(cmp.macromodel.peak_err_pct.abs() < cmp.superposition.peak_err_pct.abs());
    // Display impl is part of the public surface the examples rely on.
    assert!(format!("{cmp}").contains("macromodel"));
}

/// `examples/characterize.rs`: the pre-characterization suite end to end.
#[test]
fn characterize_core_path() {
    let tech = Technology::cmos130();
    let victim = Cell::nand2(tech.clone(), 1.0);
    let mode = victim.holding_low_mode();
    let opts = CharacterizeOptions {
        grid: 5,
        ..Default::default()
    };

    let lc = characterize_load_curve(&victim, &mode, &opts).expect("load curve");
    // The restoring current the paper models must be non-trivial.
    assert!(lc.current(tech.vdd, 0.4 * tech.vdd) > 0.0);

    let r_hold = holding_resistance(&victim, &mode, &Default::default()).expect("holding R");
    assert!(r_hold > 0.0 && r_hold.is_finite());

    let nrc = characterize_nrc(&Cell::inv(tech.clone(), 1.0), true, &[100e-12, 400e-12])
        .expect("receiver NRC");
    // Wider glitches upset the receiver at lower heights.
    assert!(nrc.fail_heights[1] <= nrc.fail_heights[0]);
}

/// `examples/crosstalk_sweep.rs`: spec variation + engine vs superposition.
#[test]
fn crosstalk_sweep_core_path() {
    let mut spec = table1_spec();
    spec.bus = m4_bus(&spec.tech, 2, 250.0, 8);
    let model = ClusterMacromodel::build(&spec).expect("build variant");
    let eng = simulate_macromodel(&model)
        .expect("engine")
        .dp_metrics(model.q_out);
    let sup = simulate_superposition(&model)
        .expect("superposition")
        .dp_metrics(model.q_out);
    assert!(eng.peak > 0.0 && sup.peak > 0.0);
}

/// `examples/sna_flow.rs`: random design generation through sign-off.
#[test]
fn sna_flow_core_path() {
    let tech = Technology::cmos130();
    let design = Design::random(&tech, 3, 2005);
    assert_eq!(design.clusters.len(), 3);

    let nrc = characterize_nrc(&Cell::inv(tech.clone(), 1.0), true, &[100e-12, 400e-12])
        .expect("receiver NRC");
    let report = run_sna(&design, &nrc, &SnaOptions::default()).expect("sna flow");
    let total = report.count(Verdict::Pass)
        + report.count(Verdict::MarginWarning)
        + report.count(Verdict::Fail);
    assert_eq!(total, design.clusters.len(), "every cluster gets a verdict");
}
