//! Cross-crate integration: every substrate handing off to the next.
//!
//! geometry (sna-interconnect) → circuit (sna-spice) → moments/reduction
//! (sna-mor) → characterized cells (sna-cells) → cluster engine (sna-core),
//! checked against each other at the seams.

use sna::prelude::*;

/// The reduced interconnect model used by the engine conserves the total
/// capacitance the geometry defines (first-moment exactness end to end).
#[test]
fn geometry_to_reduction_conserves_capacitance() {
    let tech = Technology::cmos130();
    let bus = m4_bus(&tech, 2, 500.0, 25);
    let mut ckt = sna::spice::netlist::Circuit::new();
    let nets = bus.instantiate(&mut ckt, "n").expect("bus");
    let ports = [nets[0].near, nets[1].near];
    let m = port_admittance_moments(&ckt, &ports, 1).expect("moments");
    let m4 = tech.metal(4);
    let want_ground = m4.cg_per_m * 500e-6;
    let want_coupling = m4.cc_per_m * 500e-6;
    // Diagonal = ground + coupling; off-diagonal = -coupling.
    assert!(
        (m[0][(0, 0)] - (want_ground + want_coupling)).abs() / (want_ground + want_coupling) < 1e-6
    );
    assert!((m[0][(0, 1)] + want_coupling).abs() / want_coupling < 1e-6);
}

/// A characterized cell deck round-trips through the SPICE writer/parser
/// and still solves to the same operating point.
#[test]
fn golden_cluster_deck_roundtrip() {
    let spec = table1_spec();
    let (ckt, vic_dp, _, _) = build_golden_circuit(&spec).expect("golden circuit");
    let deck = sna::spice::parser::write_deck(&ckt, "table1 golden cluster");
    let parsed = sna::spice::parser::parse_deck(&deck).expect("parse back");
    // Same element census (mosfet caps regenerate deterministically).
    assert_eq!(parsed.circuit.element_count(), ckt.element_count());
    // Same DC operating point at the victim driving point.
    let opts = sna::spice::dc::NewtonOptions::default();
    let s1 = sna::spice::dc::dc_operating_point(&ckt, &opts, None).expect("dc original");
    let s2 = sna::spice::dc::dc_operating_point(&parsed.circuit, &opts, None).expect("dc reparsed");
    let dp2 = parsed
        .circuit
        .find_node(ckt.node_name(vic_dp))
        .expect("dp node survives");
    assert!((s1.voltage(vic_dp) - s2.voltage(dp2)).abs() < 1e-6);
}

/// The load curve characterized by sna-cells reproduces, at the quiescent
/// point, the holding conductance probed independently by sna-spice.
#[test]
fn load_curve_agrees_with_small_signal_probe() {
    let tech = Technology::cmos130();
    let cell = Cell::nand2(tech.clone(), 1.0);
    let mode = cell.holding_low_mode();
    let lc =
        characterize_load_curve(&cell, &mode, &CharacterizeOptions::default()).expect("load curve");
    let r_probe =
        holding_resistance(&cell, &mode, &Default::default()).expect("holding resistance");
    let g_table = lc.conductance(tech.vdd, 0.0);
    let r_table = 1.0 / g_table;
    let rel = (r_probe - r_table).abs() / r_probe;
    assert!(
        rel < 0.1,
        "probe {r_probe:.0} ohm vs 33-grid table slope {r_table:.0} ohm"
    );
}

/// Engine and golden agree on a quiet cluster (no events → no noise), the
/// degenerate end-to-end case.
#[test]
fn quiet_cluster_agrees_everywhere() {
    let mut spec = table1_spec();
    spec.victim.glitch = None;
    spec.aggressors[0].switch_time = 1.0; // outside the window
    spec.bus.segments = 10;
    spec.t_stop = 1.0e-9;
    let model = ClusterMacromodel::build(&spec).expect("build");
    let gold = simulate_golden(&spec).expect("golden");
    let eng = simulate_macromodel(&model).expect("engine");
    let sup = simulate_superposition(&model).expect("superposition");
    for (name, w) in [("golden", &gold), ("engine", &eng), ("superposition", &sup)] {
        let m = w.dp.glitch_metrics(model.q_out);
        assert!(m.peak < 0.02, "{name} invented {} V of noise", m.peak);
    }
}

/// The receiver waveform the engine reports is consistent with re-simulating
/// the reduced system: receiver ≈ DP filtered through the victim wire (no
/// amplification, bounded delay).
#[test]
fn receiver_tap_is_filtered_dp() {
    let spec = table1_spec();
    let model = ClusterMacromodel::build(&spec).expect("build");
    let res = simulate_macromodel(&model).expect("engine");
    let dp = res.dp.glitch_metrics(model.q_out);
    let rc = res.receiver.glitch_metrics(model.q_out);
    assert!(
        rc.peak <= dp.peak * 1.25 + 0.02,
        "receiver amplified the glitch"
    );
    assert!(rc.peak >= dp.peak * 0.5, "receiver lost the glitch");
    assert!(
        rc.peak_time + 1e-12 >= dp.peak_time - 50e-12,
        "receiver peak before DP peak"
    );
}
