//! Integration tests of the parallel flow subsystem (`sna-flow`): the
//! determinism contract (an N-thread run is identical to a 1-thread run)
//! and cross-cluster reuse through the shared characterization cache.

use sna::prelude::*;

fn nrc_for(tech: &Technology) -> NoiseRejectionCurve {
    characterize_nrc(
        &Cell::inv(tech.clone(), 1.0),
        true,
        &[100e-12, 300e-12, 900e-12],
    )
    .expect("nrc")
}

#[test]
fn parallel_flow_is_deterministic_across_thread_counts() {
    let tech = Technology::cmos130();
    let design = Design::random(&tech, 24, 2005);
    let nrc = nrc_for(&tech);
    let run = |threads: usize| {
        run_sna_parallel(
            &design,
            &nrc,
            &FlowOptions {
                threads,
                ..Default::default()
            },
        )
        .expect("flow run")
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.report.findings.len(), 24);
    assert_eq!(one.report.findings.len(), four.report.findings.len());
    assert_eq!(one.report.skipped, four.report.skipped);
    for (a, b) in one.report.findings.iter().zip(&four.report.findings) {
        assert_eq!(a.name, b.name, "finding order must be design order");
        assert_eq!(a.verdict, b.verdict, "{}", a.name);
        // Bit-exact, not approximately equal: scheduling must not change
        // a single ulp of any margin or metric.
        assert_eq!(a.margin.to_bits(), b.margin.to_bits(), "{}", a.name);
        assert_eq!(
            a.receiver_metrics.peak.to_bits(),
            b.receiver_metrics.peak.to_bits(),
            "{}",
            a.name
        );
        assert_eq!(
            a.receiver_metrics.width.to_bits(),
            b.receiver_metrics.width.to_bits(),
            "{}",
            a.name
        );
    }
    // The serialized reports are byte-identical too (the property the CLI
    // exposes to `diff`).
    let summary = |flow: FlowReport| RunSummary {
        clusters: 24,
        seed: 2005,
        align_worst_case: false,
        margin_band: 0.1,
        corners: vec![CornerReport {
            tech: tech.name.clone(),
            flow,
        }],
    };
    assert_eq!(to_json(&summary(one)), to_json(&summary(four)));
}

#[test]
fn backends_produce_byte_identical_reports_at_any_thread_count() {
    // The --backend contract: scalar (lane-outer) and batched (lane-inner)
    // compute backends replay the same per-lane floating-point operation
    // sequence, so the rendered report must be byte-identical across
    // backends — and that identity must survive parallel scheduling.
    let tech = Technology::cmos130();
    let design = Design::random(&tech, 8, 2005);
    let nrc = nrc_for(&tech);
    let run = |threads: usize, backend: BackendKind| {
        let flow = run_sna_parallel(
            &design,
            &nrc,
            &FlowOptions {
                threads,
                mm: MacromodelOptions {
                    backend,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .expect("flow run");
        to_json(&RunSummary {
            clusters: 8,
            seed: 2005,
            align_worst_case: false,
            margin_band: 0.1,
            corners: vec![CornerReport {
                tech: tech.name.clone(),
                flow,
            }],
        })
    };
    let reference = run(1, BackendKind::Scalar);
    for threads in [1, 3] {
        for backend in [BackendKind::Scalar, BackendKind::Batched] {
            assert_eq!(
                reference,
                run(threads, backend),
                "report diverged at threads={threads}, backend={backend:?}"
            );
        }
    }
}

#[test]
fn shared_cache_sees_cross_cluster_hits() {
    let tech = Technology::cmos130();
    let design = Design::random(&tech, 12, 42);
    let nrc = nrc_for(&tech);
    let flow = run_sna_parallel(
        &design,
        &nrc,
        &FlowOptions {
            threads: 2,
            ..Default::default()
        },
    )
    .expect("flow run");
    // Each cluster asks the library for exactly three per-victim artifacts
    // (load curve, holding resistance, propagated-noise table), each
    // exactly once — so every recorded hit on those kinds is necessarily
    // *cross-cluster* reuse. (Thevenin fits and the NRC are cached too,
    // but their request counts vary per cluster, so the exact-count
    // accounting here sticks to the per-victim kinds.)
    let stats = flow.cache;
    let cached_kinds = [
        ArtifactKind::LoadCurve,
        ArtifactKind::HoldingR,
        ArtifactKind::PropTable,
    ];
    let cached_hits: usize = cached_kinds.iter().map(|&k| stats.kind(k).hits).sum();
    let cached_misses: usize = cached_kinds.iter().map(|&k| stats.kind(k).misses).sum();
    assert_eq!(cached_hits + cached_misses, 3 * design.clusters.len());
    assert!(
        cached_hits > 0,
        "a 12-cluster design over a discrete cell menu must reuse artifacts: {stats:?}"
    );
    assert!(
        cached_misses < 3 * design.clusters.len(),
        "some characterization must be amortized: {stats:?}"
    );
    // The derived totals stay consistent with the breakdown.
    assert_eq!(stats.hits, stats.by_kind.iter().map(|k| k.hits).sum());
    assert_eq!(stats.misses, stats.by_kind.iter().map(|k| k.misses).sum());
}
