//! Integration tests for experiments T1, T2 and R1 (DESIGN.md): the
//! qualitative *shape* of the paper's Tables 1 and 2 must reproduce on the
//! canonical clusters.
//!
//! Success criteria (DESIGN.md §4): (i) linear superposition underestimates
//! the combined glitch by tens of percent, area worse than peak; (ii) the
//! VCCS macromodel stays within a few percent; (iii) the iterative-Thevenin
//! baseline lands in between; (iv) the macromodel is far faster than the
//! golden simulation.
//!
//! These use a trimmed cluster (fewer segments, shorter horizon) to stay
//! fast in CI; the full-fidelity numbers live in `sna-bench --bin table1`.

use sna::prelude::*;

fn quick(spec: &mut ClusterSpec) {
    spec.bus.segments = 10;
    spec.t_stop = 2.0e-9;
}

#[test]
fn table1_shape_reproduces() {
    let mut spec = table1_spec();
    quick(&mut spec);
    let cmp = MethodComparison::run("t1", &spec).expect("run");
    // (i) superposition underestimates badly; area error worse than peak.
    assert!(
        cmp.superposition.peak_err_pct < -15.0,
        "superposition peak error too small: {:+.1}%",
        cmp.superposition.peak_err_pct
    );
    assert!(
        cmp.superposition.area_err_pct < cmp.superposition.peak_err_pct,
        "area error ({:+.1}%) should be worse than peak ({:+.1}%)",
        cmp.superposition.area_err_pct,
        cmp.superposition.peak_err_pct
    );
    // (ii) the macromodel is within a few percent.
    assert!(
        cmp.macromodel.peak_err_pct.abs() < 6.0,
        "macromodel peak error {:+.1}%",
        cmp.macromodel.peak_err_pct
    );
    assert!(
        cmp.macromodel.area_err_pct.abs() < 6.0,
        "macromodel area error {:+.1}%",
        cmp.macromodel.area_err_pct
    );
    // (iii) iterative Thevenin in between (R1).
    assert!(
        cmp.zolotov.peak_err_pct.abs() < cmp.superposition.peak_err_pct.abs(),
        "zolotov ({:+.1}%) should beat superposition ({:+.1}%)",
        cmp.zolotov.peak_err_pct,
        cmp.superposition.peak_err_pct
    );
    assert!(
        cmp.zolotov.peak_err_pct.abs() > cmp.macromodel.peak_err_pct.abs(),
        "zolotov ({:+.1}%) should not beat the macromodel ({:+.1}%)",
        cmp.zolotov.peak_err_pct,
        cmp.macromodel.peak_err_pct
    );
    // (iv) the engine is faster than golden even on the trimmed cluster
    // (the headline ~20x is measured by `sna-bench --bin speedup` on a
    // quiet machine; integration tests run under parallel-test contention,
    // so keep this threshold conservative).
    assert!(cmp.speedup() > 1.2, "speed-up only {:.1}x", cmp.speedup());
    // All estimates are *under*estimates or near-exact — the dangerous
    // direction the paper warns about is specifically the baselines'.
    assert!(cmp.superposition.metrics.peak < cmp.golden.metrics.peak);
    assert!(cmp.zolotov.metrics.peak < cmp.golden.metrics.peak);
}

#[test]
fn table2_shape_reproduces() {
    let mut spec = table2_spec();
    quick(&mut spec);
    let cmp = MethodComparison::run("t2", &spec).expect("run");
    // Two in-phase aggressors + glitch: a large fraction of the rail.
    assert!(
        cmp.golden.metrics.peak > 0.5 * spec.tech.vdd,
        "combined glitch too small: {:.3} V",
        cmp.golden.metrics.peak
    );
    // Macromodel within a few percent on both metrics (paper: +3.1/+2.5).
    assert!(
        cmp.macromodel.peak_err_pct.abs() < 6.0,
        "macromodel peak error {:+.1}%",
        cmp.macromodel.peak_err_pct
    );
    assert!(
        cmp.macromodel.area_err_pct.abs() < 6.0,
        "macromodel area error {:+.1}%",
        cmp.macromodel.area_err_pct
    );
}

#[test]
fn two_aggressors_are_worse_than_one() {
    // Physical sanity behind Table 2 > Table 1: an extra in-phase aggressor
    // strictly increases the combined glitch.
    let mut s1 = table1_spec();
    let mut s2 = table2_spec();
    quick(&mut s1);
    quick(&mut s2);
    let m1 = ClusterMacromodel::build(&s1).expect("t1");
    let m2 = ClusterMacromodel::build(&s2).expect("t2");
    let p1 = simulate_macromodel(&m1)
        .expect("t1")
        .dp_metrics(m1.q_out)
        .peak;
    let p2 = simulate_macromodel(&m2)
        .expect("t2")
        .dp_metrics(m2.q_out)
        .peak;
    assert!(p2 > p1 + 0.05, "t1={p1:.3} t2={p2:.3}");
}
