//! Integration test of the persistent characterization cache: a warm run
//! against an `sna-libcache-v1` file must perform zero characterization
//! work (counter-verified per artifact kind) and produce a byte-identical
//! report.

use sna::core::library::ALL_ARTIFACT_KINDS;
use sna::flow::cache::{load_library_cache, save_library_cache};
use sna::flow::cli::{run, CliConfig, Format, LogLevel};
use sna::prelude::*;

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("sna_cache_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn warm_run_characterizes_nothing_and_report_is_byte_identical() {
    let path = scratch("flow.libcache");
    std::fs::remove_file(&path).ok();
    let corners = [Technology::cmos130()];
    let opts = FlowOptions {
        threads: 2,
        ..Default::default()
    };

    // Cold: fresh library, full characterization, then persist.
    let cold_lib = NoiseModelLibrary::new();
    let cold = run_corners_with(&corners, 4, 2005, &opts, &cold_lib).expect("cold run");
    assert!(cold[0].flow.cache.misses > 0, "cold run must characterize");
    assert_eq!(cold[0].flow.cache.disk_hits, 0);
    save_library_cache(&path, &cold_lib).expect("save");

    // Warm: fresh library loaded from disk. Zero misses of any kind means
    // zero characterization solves — the only way an artifact exists is
    // off disk or out of a (cold-empty) in-memory map.
    let warm_lib = NoiseModelLibrary::new();
    let load = load_library_cache(&path, &warm_lib);
    assert!(load.entries > 0, "{}", load.message);
    assert_eq!(load.stale_rejected, 0, "{}", load.message);
    let warm = run_corners_with(&corners, 4, 2005, &opts, &warm_lib).expect("warm run");
    let stats = &warm[0].flow.cache;
    assert_eq!(stats.misses, 0, "warm run characterized: {stats:?}");
    for k in ALL_ARTIFACT_KINDS {
        assert_eq!(
            stats.kind(k).misses,
            0,
            "warm run characterized {}",
            k.name()
        );
    }
    assert!(stats.disk_hits > 0, "warm hits must carry disk provenance");
    assert_eq!(stats.hits, stats.disk_hits, "every warm hit came off disk");

    // Byte-identical reports, cold vs warm, for every serializer.
    for format in [Format::Text, Format::Json, Format::Csv] {
        let render = |reports: &[CornerReport]| {
            let summary = RunSummary {
                clusters: 4,
                seed: 2005,
                align_worst_case: false,
                margin_band: 0.1,
                corners: reports.to_vec(),
            };
            match format {
                Format::Text => to_text(&summary),
                Format::Json => to_json(&summary),
                Format::Csv => to_csv(&summary),
            }
        };
        assert_eq!(render(&cold), render(&warm), "{format:?} report diverged");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_cache_file_never_fails_a_run() {
    let path = scratch("corrupt.libcache");
    std::fs::write(&path, b"SNALIBC1 but then garbage follows here").unwrap();
    let lib = NoiseModelLibrary::new();
    let load = load_library_cache(&path, &lib);
    assert_eq!(load.entries, 0);
    assert!(load.message.contains("starting cold"), "{}", load.message);
    // The run itself is unaffected.
    let corners = [Technology::cmos130()];
    let opts = FlowOptions {
        threads: 1,
        ..Default::default()
    };
    let reports = run_corners_with(&corners, 2, 7, &opts, &lib).expect("cold run");
    assert_eq!(reports[0].flow.report.total(), 2);
    std::fs::remove_file(&path).ok();
}

#[test]
fn cli_round_trip_reports_are_byte_identical() {
    let path = scratch("cli.libcache");
    std::fs::remove_file(&path).ok();
    let cfg = CliConfig {
        clusters: 3,
        threads: 2,
        format: Format::Json,
        log_level: LogLevel::Quiet,
        library_cache: Some(path.display().to_string()),
        ..Default::default()
    };
    let cold = run(&cfg).expect("cold CLI run");
    assert!(path.exists());
    let warm = run(&cfg).expect("warm CLI run");
    assert_eq!(cold, warm, "--library-cache changed the report");
    std::fs::remove_file(&path).ok();
}
