//! Integration test of the full SNA methodology (the paper's future-work
//! section, implemented in `sna-core::sna`): random design generation,
//! engine-based evaluation, worst-case alignment, NRC classification.

use sna::prelude::*;

#[test]
fn sna_flow_end_to_end() {
    let tech = Technology::cmos130();
    let design = Design::random(&tech, 6, 99);
    let nrc = characterize_nrc(
        &Cell::inv(tech.clone(), 1.0),
        true,
        &[100e-12, 300e-12, 900e-12],
    )
    .expect("nrc");
    let nominal = run_sna(&design, &nrc, &SnaOptions::default()).expect("nominal pass");
    assert_eq!(nominal.findings.len(), 6);
    // Verdicts partition the design.
    let total = nominal.count(Verdict::Pass)
        + nominal.count(Verdict::MarginWarning)
        + nominal.count(Verdict::Fail);
    assert_eq!(total, 6);
    // Margins are finite and consistent with verdicts.
    for f in &nominal.findings {
        assert!(f.margin.is_finite());
        match f.verdict {
            Verdict::Fail => assert!(f.margin < 0.0),
            Verdict::MarginWarning => assert!(f.margin >= 0.0),
            Verdict::Pass => assert!(f.margin >= 0.0),
        }
    }
}

#[test]
fn worst_case_alignment_never_improves_margin() {
    // The whole point of the alignment search: worst-case margins must be
    // less than or equal to nominal margins (up to search noise).
    let tech = Technology::cmos130();
    let design = Design::random(&tech, 3, 7);
    let nrc = characterize_nrc(
        &Cell::inv(tech.clone(), 1.0),
        true,
        &[100e-12, 300e-12, 900e-12],
    )
    .expect("nrc");
    // Strict mode: a cluster failing in either pass must abort the test,
    // not silently drop out and misalign the pairwise comparison below.
    let strict = SnaOptions {
        strict: true,
        ..Default::default()
    };
    let nominal = run_sna(&design, &nrc, &strict).expect("nominal");
    let worst = run_sna(
        &design,
        &nrc,
        &SnaOptions {
            align_worst_case: true,
            ..strict
        },
    )
    .expect("worst-case");
    assert_eq!(nominal.findings.len(), worst.findings.len());
    for (n, w) in nominal.findings.iter().zip(&worst.findings) {
        assert_eq!(n.name, w.name, "pairwise comparison must match by net");
        assert!(
            w.margin <= n.margin + 0.02,
            "{}: worst-case margin {:.3} > nominal {:.3}",
            n.name,
            w.margin,
            n.margin
        );
    }
}
