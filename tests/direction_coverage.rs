//! Integration coverage for §2's extension sentence: "clusters with
//! several aggressors with different switching directions and phase
//! alignments".
//!
//! Three polarity regimes, each validated engine-vs-golden:
//! * rising aggressor on a low-held victim (the canonical Table-1 case,
//!   covered in `table_shapes.rs`);
//! * falling aggressor on a high-held victim (everything mirrored);
//! * anti-phase aggressor pair (contributions nearly cancel — a regime
//!   where absolute noise is small and models can embarrass themselves).

use sna::prelude::*;

fn quick(spec: &mut ClusterSpec) {
    spec.bus.segments = 10;
    spec.t_stop = 2.0e-9;
}

#[test]
fn falling_aggressor_high_victim_mirrors_table1() {
    let mut spec = falling_spec();
    quick(&mut spec);
    let model = ClusterMacromodel::build(&spec).expect("build");
    assert!(!model.thevenins[0].rising);
    assert_eq!(model.q_out, spec.tech.vdd);
    let gold = simulate_golden(&spec).expect("golden");
    let eng = simulate_macromodel(&model).expect("engine");
    let sup = simulate_superposition(&model).expect("superposition");
    let gm = gold.dp_metrics(model.q_out);
    let em = eng.dp_metrics(model.q_out);
    let sm = sup.dp_metrics(model.q_out);
    // Downward glitch on the high rail.
    assert_eq!(gm.polarity, -1.0, "golden glitch should dip");
    assert_eq!(em.polarity, -1.0, "engine glitch should dip");
    // Engine within a few percent; superposition still badly optimistic.
    let e_eng = em.error_percent_vs(&gm);
    let e_sup = sm.error_percent_vs(&gm);
    assert!(
        e_eng.peak_pct.abs() < 6.0,
        "engine peak error {:+.1}%",
        e_eng.peak_pct
    );
    assert!(
        e_sup.peak_pct < -15.0,
        "superposition should underestimate: {:+.1}%",
        e_sup.peak_pct
    );
    // DC initialization held the rail: the waveform starts at ~Vdd.
    assert!((eng.dp.value_at(0.0) - spec.tech.vdd).abs() < 0.03);
}

#[test]
fn anti_phase_aggressors_mostly_cancel() {
    let mut in_phase = table2_spec();
    let mut anti_phase = mixed_phase_spec();
    quick(&mut in_phase);
    quick(&mut anti_phase);
    let m_in = ClusterMacromodel::build(&in_phase).expect("in-phase");
    let m_anti = ClusterMacromodel::build(&anti_phase).expect("anti-phase");
    let p_in = simulate_macromodel(&m_in)
        .expect("engine")
        .dp_metrics(m_in.q_out)
        .peak;
    let p_anti = simulate_macromodel(&m_anti)
        .expect("engine")
        .dp_metrics(m_anti.q_out)
        .peak;
    assert!(
        p_anti < 0.5 * p_in,
        "anti-phase pair should largely cancel: in-phase {p_in:.3} V, anti-phase {p_anti:.3} V"
    );
    // And the engine still tracks golden in the cancellation regime.
    let gold = simulate_golden(&anti_phase).expect("golden");
    let gm = gold.dp_metrics(m_anti.q_out);
    let em = simulate_macromodel(&m_anti)
        .expect("engine")
        .dp_metrics(m_anti.q_out);
    let rel = (em.peak - gm.peak).abs() / gm.peak.max(0.02);
    assert!(
        rel < 0.12,
        "cancellation regime mismatch: golden {:.3} V, engine {:.3} V",
        gm.peak,
        em.peak
    );
}

#[test]
fn opposite_direction_thevenins_have_opposite_ramps() {
    let mut spec = mixed_phase_spec();
    quick(&mut spec);
    let model = ClusterMacromodel::build(&spec).expect("build");
    match (&model.thevenins[0].wave, &model.thevenins[1].wave) {
        (
            sna::spice::devices::SourceWaveform::Ramp { v0: a0, v1: a1, .. },
            sna::spice::devices::SourceWaveform::Ramp { v0: b0, v1: b1, .. },
        ) => {
            assert!(a1 > a0, "first aggressor rises");
            assert!(b1 < b0, "second aggressor falls");
        }
        other => panic!("expected two ramps, got {other:?}"),
    }
}
