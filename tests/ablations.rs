//! Ablation studies from DESIGN.md §5, run as integration tests so the
//! design decisions stay justified as the code evolves.

use sna::prelude::*;

fn quick(spec: &mut ClusterSpec) {
    spec.bus.segments = 10;
    spec.t_stop = 2.0e-9;
}

/// §5.4 — dropping the victim driver's characterized output/Miller caps
/// from the macromodel measurably degrades accuracy against golden.
#[test]
fn driver_caps_matter() {
    let mut spec = table1_spec();
    quick(&mut spec);
    let gold = simulate_golden(&spec).expect("golden");
    let with_caps = ClusterMacromodel::build(&spec).expect("build");
    let without_caps = ClusterMacromodel::build_with(
        &spec,
        &MacromodelOptions {
            include_driver_caps: false,
            ..Default::default()
        },
    )
    .expect("build without caps");
    let gm = gold.dp_metrics(with_caps.q_out);
    let e_with = simulate_macromodel(&with_caps)
        .expect("engine")
        .dp_metrics(with_caps.q_out)
        .error_percent_vs(&gm);
    let e_without = simulate_macromodel(&without_caps)
        .expect("engine")
        .dp_metrics(without_caps.q_out)
        .error_percent_vs(&gm);
    assert!(
        e_without.peak_pct.abs() > e_with.peak_pct.abs(),
        "dropping driver caps should hurt: with={:+.2}% without={:+.2}%",
        e_with.peak_pct,
        e_without.peak_pct
    );
}

/// §5.2 — a first-order reduction is worse than the default q=3 (and the
/// default is already indistinguishable from the full ladder at the
/// waveform level, per the sna-mor unit tests).
#[test]
fn reduction_order_matters() {
    let mut spec = table1_spec();
    quick(&mut spec);
    let gold = simulate_golden(&spec).expect("golden");
    let q3 = ClusterMacromodel::build(&spec).expect("q3");
    let q1 = ClusterMacromodel::build_with(
        &spec,
        &MacromodelOptions {
            reduction_order: 1,
            ..Default::default()
        },
    )
    .expect("q1");
    assert!(q1.reduced.dim() < q3.reduced.dim());
    let gm = gold.dp_metrics(q3.q_out);
    let e3 = simulate_macromodel(&q3)
        .expect("engine q3")
        .dp_metrics(q3.q_out)
        .error_percent_vs(&gm);
    let e1 = simulate_macromodel(&q1)
        .expect("engine q1")
        .dp_metrics(q1.q_out)
        .error_percent_vs(&gm);
    assert!(
        e1.area_pct.abs() + e1.peak_pct.abs() >= e3.area_pct.abs() + e3.peak_pct.abs() - 0.5,
        "q=1 should not beat q=3: q1 ({:+.2}%, {:+.2}%) vs q3 ({:+.2}%, {:+.2}%)",
        e1.peak_pct,
        e1.area_pct,
        e3.peak_pct,
        e3.area_pct
    );
}

/// §5.1 — a very coarse Eq. (1) grid degrades the engine's accuracy.
#[test]
fn table_resolution_matters() {
    let mut spec = table1_spec();
    quick(&mut spec);
    let gold = simulate_golden(&spec).expect("golden");
    let fine = ClusterMacromodel::build(&spec).expect("33-grid");
    let mut coarse_spec = spec.clone();
    coarse_spec.char_opts.grid = 5;
    let coarse = ClusterMacromodel::build(&coarse_spec).expect("5-grid");
    let gm = gold.dp_metrics(fine.q_out);
    let e_fine = simulate_macromodel(&fine)
        .expect("engine")
        .dp_metrics(fine.q_out)
        .error_percent_vs(&gm);
    let e_coarse = simulate_macromodel(&coarse)
        .expect("engine")
        .dp_metrics(coarse.q_out)
        .error_percent_vs(&gm);
    // The 5-point table aliases the saturation knee; expect visibly worse
    // area tracking.
    assert!(
        e_coarse.area_pct.abs() > e_fine.area_pct.abs(),
        "coarse grid should hurt area: fine={:+.2}% coarse={:+.2}%",
        e_fine.area_pct,
        e_coarse.area_pct
    );
}

/// §5.3 — halving the engine's time step changes the answer by far less
/// than the model error budget (the default step is converged).
#[test]
fn timestep_is_converged() {
    let mut spec = table1_spec();
    quick(&mut spec);
    let model = ClusterMacromodel::build(&spec).expect("build");
    let coarse = simulate_macromodel(&model)
        .expect("engine")
        .dp_metrics(model.q_out);
    let mut spec_fine = spec.clone();
    spec_fine.dt = 0.5e-12;
    let model_fine = ClusterMacromodel::build(&spec_fine).expect("build fine");
    let fine = simulate_macromodel(&model_fine)
        .expect("engine")
        .dp_metrics(model_fine.q_out);
    let dpk = (coarse.peak - fine.peak).abs() / fine.peak;
    assert!(dpk < 0.005, "time step not converged: {dpk:.4}");
}
