//! Integration test for experiment F1 (DESIGN.md): the built cluster
//! macromodel must have exactly the Figure-1 topology of the paper —
//! a non-linear VCCS at `DP_Vic`, one Thevenin (saturated-ramp EMF behind a
//! resistance) per aggressor, a moment-matched coupled interconnect model
//! exposing the driving points, and capacitive receivers absorbed into it.

use sna::prelude::*;

#[test]
fn figure1_single_aggressor_topology() {
    let spec = table1_spec();
    let model = ClusterMacromodel::build(&spec).expect("build");
    // Ports: DP_Vic, one aggressor DP, the victim receiver tap.
    assert_eq!(model.port_roles.len(), 3);
    assert_eq!(model.port_roles[0], PortRole::VictimDp);
    assert_eq!(model.port_roles[1], PortRole::AggressorDp(0));
    assert_eq!(model.port_roles[2], PortRole::VictimReceiver);
    // The victim driver is the table VCCS of Eq. (1): a full 2-D grid over
    // the characterization range.
    assert_eq!(model.load_curve.table.x_axis().len(), 33);
    assert_eq!(model.load_curve.table.y_axis().len(), 33);
    let vdd = spec.tech.vdd;
    assert!(model.load_curve.table.x_axis()[0] <= -0.29 * vdd);
    assert!(*model.load_curve.table.x_axis().last().unwrap() >= 1.29 * vdd);
    // One Thevenin per aggressor, EMF is a saturated ramp.
    assert_eq!(model.thevenins.len(), 1);
    match &model.thevenins[0].wave {
        sna::spice::devices::SourceWaveform::Ramp { v0, v1, t_rise, .. } => {
            assert_eq!(*v0, 0.0);
            assert_eq!(*v1, vdd);
            assert!(*t_rise > 0.0);
        }
        other => panic!("EMF should be a saturated ramp, got {other:?}"),
    }
    assert!(model.thevenins[0].rth > 10.0);
    // Reduced interconnect: small fixed order regardless of extraction
    // detail, with the coupling retained (off-diagonal B^T G B structure is
    // not directly observable; check dimensions and passivity proxies).
    assert!(model.reduced.dim() <= 9);
    assert_eq!(model.reduced.n_ports(), 3);
    // Summary mentions all Figure-1 actors.
    let s = model.topology_summary();
    for needle in ["VCCS", "DP_Vic", "agg0", "Rth", "reduced interconnect"] {
        assert!(s.contains(needle), "summary missing {needle}: {s}");
    }
}

#[test]
fn figure1_two_aggressor_topology() {
    let spec = table2_spec();
    let model = ClusterMacromodel::build(&spec).expect("build");
    assert_eq!(model.thevenins.len(), 2);
    assert_eq!(model.port_roles.len(), 4);
    assert_eq!(model.aggressor_port(0), 1);
    assert_eq!(model.aggressor_port(1), 2);
    // In-phase aggressors: both EMFs cross 50 % at (almost) the same time.
    let dt50 = (model.thevenins[0].t50() - model.thevenins[1].t50()).abs();
    assert!(dt50 < 20e-12, "in-phase EMFs misaligned by {dt50:e}");
}

#[test]
fn retiming_does_not_rebuild_characterization() {
    let spec = table1_spec();
    let model = ClusterMacromodel::build(&spec).expect("build");
    let moved = model.with_timing(&[0.9e-9], Some(1.0e-9));
    // Same characterization artifacts (tables are compared by value).
    assert_eq!(moved.load_curve.table, model.load_curve.table);
    assert_eq!(moved.r_hold, model.r_hold);
    assert_eq!(moved.reduced, model.reduced);
    // Timing moved.
    assert!((moved.thevenins[0].t50() - model.thevenins[0].t50() - 0.5e-9).abs() < 1e-12);
}
