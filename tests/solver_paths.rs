//! Dense-vs-sparse solver equivalence on the paper's two canonical
//! transients.
//!
//! The sparse subsystem (symbolic analysis + numeric refactor) must be a
//! pure performance change: for any circuit, forcing either backend — or
//! letting the dimension-based auto selection pick — has to reproduce the
//! same waveforms to well below the paper's noise-metric resolution. Two
//! fixtures cover the two regimes:
//!
//! * the **non-linear inverter glitch** (MOSFET Newton iterations, tiny
//!   matrix, auto → dense), and
//! * the **segmented coupled-bus** victim/aggressor pair (linear but large,
//!   auto → sparse).

use sna::prelude::*;

const TOL: f64 = 1e-9;

/// Inverter receiving a triangular glitch on its (high) input while the
/// output holds low — the propagated-noise fixture of the paper's
/// characterization suite, Newton-iterated at every time step.
fn inverter_glitch_circuit() -> (Circuit, NodeId, String) {
    let tech = Technology::cmos130();
    let cell = Cell::inv(tech.clone(), 1.0);
    let mode = cell.holding_high_mode();
    let mut fx = driver_fixture(&cell, &mode).expect("inverter fixture");
    fx.ckt
        .add_capacitor("Cload", fx.out, Circuit::gnd(), 5e-15)
        .expect("load cap");
    let q_in = mode.input_levels[mode.noisy_input];
    fx.ckt
        .set_source_wave(
            &fx.noisy_source,
            SourceWaveform::TriangleGlitch {
                v_base: q_in,
                v_peak: q_in + 0.6 * tech.vdd,
                t_start: 50.0 * PS,
                t_rise: 100.0 * PS,
                t_fall: 100.0 * PS,
            },
        )
        .expect("glitch source");
    (fx.ckt, fx.out, fx.noisy_source)
}

/// 500 µm victim/aggressor pair, finely segmented so the MNA dimension is
/// far above the sparse auto threshold.
fn coupled_bus_circuit(segments: usize) -> (Circuit, NodeId) {
    let w = WireGeom::new(500.0 * UM, 0.2e6, 40e-12);
    let bus = CoupledBus::parallel_pair(w, w, 90e-12, segments);
    let mut ckt = Circuit::new();
    let nets = bus.instantiate(&mut ckt, "n").expect("bus instantiation");
    ckt.add_vsource(
        "Vagg",
        nets[1].near,
        Circuit::gnd(),
        SourceWaveform::Ramp {
            v0: 0.0,
            v1: 1.2,
            t_start: 0.1 * NS,
            t_rise: 100.0 * PS,
        },
    );
    ckt.add_resistor("Rhold", nets[0].near, Circuit::gnd(), 2e3)
        .expect("holding resistor");
    (ckt, nets[0].far)
}

/// Fixed-step transients across every backend selection agree to `TOL`.
fn assert_fixed_step_agreement(ckt: &Circuit, probe: NodeId, t_stop: f64, dt: f64) {
    let reference = {
        let mut p = TranParams::new(t_stop, dt);
        p.solver = SolverKind::Dense;
        transient(ckt, &p).expect("dense transient")
    };
    let ref_wave = reference.node_waveform(probe);
    assert!(
        ref_wave.max_value().is_finite(),
        "reference waveform must be finite"
    );
    for kind in [SolverKind::Sparse, SolverKind::Auto] {
        let mut p = TranParams::new(t_stop, dt);
        p.solver = kind;
        let res = transient(ckt, &p).expect("transient");
        let diff = ref_wave.max_abs_difference(&res.node_waveform(probe));
        assert!(diff < TOL, "{kind:?} deviates from dense by {diff:.3e}");
    }
}

/// Adaptive transients across every backend selection agree to `TOL`
/// (identical step-size sequences, so the samples are directly comparable).
fn assert_adaptive_agreement(ckt: &Circuit, probe: NodeId, t_stop: f64) {
    let reference = {
        let mut o = AdaptiveOptions::new(t_stop);
        o.solver = SolverKind::Dense;
        transient_adaptive(ckt, &o).expect("dense adaptive")
    };
    let ref_wave = reference.node_waveform(probe);
    for kind in [SolverKind::Sparse, SolverKind::Auto] {
        let mut o = AdaptiveOptions::new(t_stop);
        o.solver = kind;
        let res = transient_adaptive(ckt, &o).expect("adaptive transient");
        let diff = ref_wave.max_abs_difference(&res.node_waveform(probe));
        assert!(
            diff < TOL,
            "adaptive {kind:?} deviates from dense by {diff:.3e}"
        );
    }
}

#[test]
fn inverter_glitch_waveforms_identical_on_both_paths() {
    let (ckt, out, _) = inverter_glitch_circuit();
    assert_fixed_step_agreement(&ckt, out, 0.8 * NS, 1.0 * PS);
}

#[test]
fn inverter_glitch_adaptive_identical_on_both_paths() {
    let (ckt, out, _) = inverter_glitch_circuit();
    assert_adaptive_agreement(&ckt, out, 0.8 * NS);
}

#[test]
fn coupled_bus_waveforms_identical_on_both_paths() {
    // 60 segments → 123 unknowns: above SPARSE_AUTO_THRESHOLD, so the Auto
    // run exercises the sparse backend while Dense stays the reference.
    let (ckt, far) = coupled_bus_circuit(60);
    let mna_dim = 2 * (60 + 1) + 1;
    assert!(
        SolverKind::Auto.is_sparse_for(mna_dim),
        "fixture must be large enough for auto → sparse"
    );
    assert_fixed_step_agreement(&ckt, far, 0.6 * NS, 2.0 * PS);
}

#[test]
fn coupled_bus_adaptive_identical_on_both_paths() {
    let (ckt, far) = coupled_bus_circuit(60);
    assert_adaptive_agreement(&ckt, far, 0.6 * NS);
}

#[test]
fn dc_operating_point_identical_on_both_paths() {
    let (ckt, _, _) = inverter_glitch_circuit();
    let mut solutions = Vec::new();
    for kind in [SolverKind::Dense, SolverKind::Sparse, SolverKind::Auto] {
        let opts = NewtonOptions {
            solver: kind,
            ..Default::default()
        };
        let sol = dc_operating_point(&ckt, &opts, None).expect("dc operating point");
        solutions.push(sol.unknowns().to_vec());
    }
    for sol in &solutions[1..] {
        for (a, b) in solutions[0].iter().zip(sol) {
            assert!((a - b).abs() < TOL, "DC mismatch: {a} vs {b}");
        }
    }
}

#[test]
fn workspace_reuse_matches_fresh_runs() {
    // The characterization sweeps rebuild only the source waveform between
    // transients; the shared workspace must not leak state across runs.
    let (mut ckt, out, noisy) = inverter_glitch_circuit();
    let params = TranParams::new(0.5 * NS, 1.0 * PS);
    let mut ws = TranWorkspace::new(&ckt, SolverKind::Auto).expect("workspace");
    let first = transient_with(&ckt, &params, &mut ws).expect("first run");
    // Different glitch, same topology.
    ckt.set_source_wave(
        &noisy,
        SourceWaveform::TriangleGlitch {
            v_base: 1.2,
            v_peak: 0.4,
            t_start: 60.0 * PS,
            t_rise: 80.0 * PS,
            t_fall: 120.0 * PS,
        },
    )
    .expect("swap glitch");
    let reused = transient_with(&ckt, &params, &mut ws).expect("reused run");
    let fresh = transient(&ckt, &params).expect("fresh run");
    let diff = reused
        .node_waveform(out)
        .max_abs_difference(&fresh.node_waveform(out));
    assert!(diff < TOL, "workspace reuse deviates by {diff:.3e}");
    // And the first run's result must differ (the source really changed).
    let changed = first
        .node_waveform(out)
        .max_abs_difference(&reused.node_waveform(out));
    assert!(changed > 1e-6, "glitch swap should change the waveform");
}

#[test]
fn workspace_rejects_element_value_change() {
    // The workspace's matrices are assembled at construction; a changed
    // element value must be rejected, not silently simulated stale.
    let build = |rhold: f64| {
        // Same topology (node/element counts unchanged), different value.
        let (mut ckt, far) = coupled_bus_circuit(10);
        ckt.add_resistor("Rextra", far, Circuit::gnd(), rhold)
            .expect("extra resistor");
        ckt
    };
    let ckt = build(1e4);
    let params = TranParams::new(0.2 * NS, 2.0 * PS);
    let mut ws = TranWorkspace::new(&ckt, SolverKind::Auto).expect("workspace");
    transient_with(&ckt, &params, &mut ws).expect("first run");
    let altered = build(2e4);
    assert_eq!(altered.node_count(), ckt.node_count());
    let err = transient_with(&altered, &params, &mut ws).expect_err("value change must be refused");
    assert!(
        err.to_string().contains("element values changed"),
        "unexpected error: {err}"
    );
}
