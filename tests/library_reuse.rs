//! Integration test of the characterization library: a design-level flow
//! must reuse per-cell artifacts across clusters and agree with the
//! uncached path.

use std::time::Instant;

use sna::prelude::*;

#[test]
fn library_reuses_artifacts_across_clusters() {
    // Two clusters sharing the same victim cell + drive state.
    let mut a = table1_spec();
    let mut b = table1_spec();
    a.bus.segments = 8;
    b.bus.segments = 8;
    a.t_stop = 1.5e-9;
    b.t_stop = 1.5e-9;
    b.bus = m4_bus(&b.tech, 2, 700.0, 8); // different geometry, same cells
    let lib = NoiseModelLibrary::new();
    let opts = MacromodelOptions::default();
    // Thevenin fits are keyed on the aggressor's exact (unshifted) drive
    // state and load, so the two geometries here never share them; the
    // accounting below tracks only the three per-victim kinds, whose reuse
    // is what this test pins down.
    let cached_misses = |st: &LibraryStats| {
        [
            ArtifactKind::LoadCurve,
            ArtifactKind::HoldingR,
            ArtifactKind::PropTable,
        ]
        .iter()
        .map(|&k| st.kind(k).misses)
        .sum::<usize>()
    };
    let _ma = ClusterMacromodel::build_with_library(&a, &opts, &lib).expect("a");
    let misses_after_first = cached_misses(&lib.stats());
    let _mb = ClusterMacromodel::build_with_library(&b, &opts, &lib).expect("b");
    assert!(
        lib.stats().hits >= 2,
        "second cluster should hit the cache: {:?}",
        lib.stats()
    );
    // The load curve and holding resistance are shared; only the prop
    // table may re-characterize if the load bucket changed.
    assert!(
        cached_misses(&lib.stats()) <= misses_after_first + 1,
        "unexpected re-characterization: {:?}",
        lib.stats()
    );
}

#[test]
fn library_path_matches_direct_path() {
    let mut spec = table1_spec();
    spec.bus.segments = 8;
    spec.t_stop = 1.5e-9;
    let direct = ClusterMacromodel::build(&spec).expect("direct");
    let lib = NoiseModelLibrary::new();
    let cached = ClusterMacromodel::build_with_library(&spec, &MacromodelOptions::default(), &lib)
        .expect("cached");
    // Load curve identical (exact reuse).
    assert_eq!(direct.load_curve.table, cached.load_curve.table);
    assert_eq!(direct.r_hold, cached.r_hold);
    // Engine results agree to numerical noise (the prop table may be
    // characterized at a bucketed load, which only affects the
    // superposition baseline).
    let d = simulate_macromodel(&direct).expect("direct engine");
    let c = simulate_macromodel(&cached).expect("cached engine");
    let dm = d.dp_metrics(direct.q_out);
    let cm = c.dp_metrics(cached.q_out);
    assert!((dm.peak - cm.peak).abs() < 1e-9);
    // Superposition with the bucketed table stays within a few percent of
    // the exact-load table.
    let ds = simulate_superposition(&direct)
        .expect("direct sup")
        .dp_metrics(direct.q_out);
    let cs = simulate_superposition(&cached)
        .expect("cached sup")
        .dp_metrics(cached.q_out);
    assert!(
        (ds.peak - cs.peak).abs() / ds.peak < 0.06,
        "bucketing moved superposition too far: {} vs {}",
        ds.peak,
        cs.peak
    );
}

#[test]
fn library_speeds_up_repeated_builds() {
    let mut spec = table1_spec();
    spec.bus.segments = 8;
    spec.t_stop = 1.5e-9;
    let lib = NoiseModelLibrary::new();
    let opts = MacromodelOptions::default();
    let t0 = Instant::now();
    let _ = ClusterMacromodel::build_with_library(&spec, &opts, &lib).expect("cold");
    let cold = t0.elapsed();
    let t0 = Instant::now();
    let _ = ClusterMacromodel::build_with_library(&spec, &opts, &lib).expect("warm");
    let warm = t0.elapsed();
    assert!(
        warm < cold / 2,
        "cache should at least halve the build: cold {cold:?}, warm {warm:?}"
    );
}
