//! # sna — static noise analysis with non-linear cell macromodels
//!
//! A full-system reproduction of **Forzan & Pandini, "Modeling the
//! Non-Linear Behavior of Library Cells for an Accurate Static Noise
//! Analysis", DATE 2005** — the victim-driver VCCS macromodel
//! `I_DC = f(V_in, V_out)` (Eq. 1), the noise-cluster macromodel of
//! Figure 1, a dedicated non-linear noise engine, and everything the paper
//! depends on, built from scratch:
//!
//! * [`spice`] — SPICE-class circuit simulator (MNA, Newton DC, trapezoidal
//!   transient, level-1 MOSFETs, deck parser) standing in for ELDO™;
//! * [`cells`] — technology decks (0.13 µm / 90 nm), transistor-level
//!   library cells, and the pre-characterization suite (load curves,
//!   holding resistance, Dartu–Pileggi Thevenin drivers, propagated-noise
//!   tables);
//! * [`interconnect`] — geometry-driven coupled distributed-RC ladders;
//! * [`mor`] — moment matching, coupled-Π, and PRIMA-style reduction (the
//!   "coupled-S" driving-point model);
//! * [`core`] — the paper's contribution plus the linear-superposition and
//!   iterative-Thevenin baselines, NRC sign-off, worst-case alignment, and
//!   a complete SNA flow;
//! * [`flow`] — the parallel full-chip subsystem: an order-preserving
//!   worker pool, a shared (sharded, lock-striped) characterization cache,
//!   multi-corner sweeps, and the `sna` CLI with JSON/CSV reports.
//!
//! ## Quickstart
//!
//! ```no_run
//! use sna::prelude::*;
//!
//! # fn main() -> sna::spice::Result<()> {
//! // The paper's Table-1 cluster, end to end, all four methods.
//! let spec = table1_spec();
//! let comparison = MethodComparison::run("quickstart", &spec)?;
//! println!("{comparison}");
//! assert!(comparison.macromodel.peak_err_pct.abs()
//!         < comparison.superposition.peak_err_pct.abs());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` / `EXPERIMENTS.md`
//! for the paper-reproduction methodology.

#![warn(missing_docs)]

pub use sna_cells as cells;
pub use sna_core as core;
pub use sna_flow as flow;
pub use sna_interconnect as interconnect;
pub use sna_mor as mor;
pub use sna_spice as spice;

/// Everything, for examples and quick experiments.
pub mod prelude {
    pub use sna_cells::prelude::*;
    pub use sna_core::prelude::*;
    pub use sna_flow::prelude::*;
    pub use sna_interconnect::prelude::*;
    pub use sna_mor::prelude::*;
    pub use sna_spice::prelude::*;
}
