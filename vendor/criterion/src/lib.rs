//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! The build environment has no registry access, so this crate reimplements
//! the macro/type surface the `sna-bench` targets use — [`Criterion`],
//! [`BenchmarkId`], benchmark groups, [`criterion_group!`] /
//! [`criterion_main!`] — as a plain wall-clock harness: each benchmark runs a
//! short warm-up, then `sample_size` timed batches, and prints
//! median/min/max per iteration. No statistics beyond that, no HTML reports.
//! Swap in the real crates.io `criterion` for full analysis.

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which the workspace benches already use).
pub use std::hint::black_box;

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Anything usable as a benchmark name: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkName {
    /// Render the printable benchmark name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.label
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Per-sample mean iteration times, filled by [`Bencher::iter`].
    samples: Vec<Duration>,
}

impl Bencher {
    /// Run `routine` repeatedly: warm-up to pick an iteration count per
    /// sample, then `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~20 ms elapse to estimate per-iter cost.
        let warmup = Instant::now();
        let mut iters: u64 = 0;
        while warmup.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            iters += 1;
        }
        let per_iter = warmup.elapsed() / iters.max(1) as u32;
        // Aim for ~5 ms per sample, at least one iteration.
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (Duration::from_millis(5).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000)
                as u32
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt_dur(min),
        fmt_dur(median),
        fmt_dur(max)
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<N: IntoBenchmarkName, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let name = name.into_name();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&name, &mut b.samples);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named benchmark group, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<N: IntoBenchmarkName, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_name());
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&name, &mut b.samples);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<N, I, F>(&mut self, id: N, input: &I, mut f: F) -> &mut Self
    where
        N: IntoBenchmarkName,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (prints nothing extra in this shim).
    pub fn finish(self) {}
}

/// Mirror of `criterion::criterion_group!`: bundles target functions into a
/// single runner function, with an optional `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of `criterion::criterion_main!`: emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
