//! Offline stand-in for `proptest` (API subset, no shrinking).
//!
//! The build environment has no registry access, so this crate implements
//! the surface the workspace's property tests use: the [`proptest!`] macro
//! (with an optional `#![proptest_config(...)]` header), range / tuple /
//! `collection::vec` strategies, [`prop_assert!`] / [`prop_assert_eq!`], and
//! [`ProptestConfig::with_cases`]. Cases are generated from a deterministic
//! per-test seed, so failures reproduce across runs; there is no shrinking —
//! a failing case panics with the generated values left to inspection via
//! the assertion message. Swap in the real crates.io `proptest` for
//! shrinking and persistence.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest's default; cheap for the workspace's small cases.
        ProptestConfig { cases: 256 }
    }
}

/// Value generator, mirroring `proptest::strategy::Strategy` (generation
/// only — no value tree, no shrinking).
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

range_strategy!(f64, i32, i64, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// `Vec` strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use std::ops::Range;

    /// Element count for [`vec`]: exact or uniformly drawn from a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with `size` elements (exact count or range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rand::Rng::gen_range(rng, self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test RNG: the seed is a stable hash of the test name,
/// so a failing case reproduces on every run.
pub fn deterministic_rng(test_name: &str) -> StdRng {
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(seed)
}

/// Assertion mirror of `proptest::prop_assert!` (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assertion mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Property-test block mirror of `proptest::proptest!`: each contained
/// `#[test] fn name(arg in strategy, ...) { ... }` becomes a plain test
/// running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; ) => {};
    (
        config = $cfg:expr;
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::deterministic_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
}

/// Glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in -1.0f64..1.0, (n, c) in (0usize..8, 1e-16f64..1e-11)) {
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!(n < 8);
            prop_assert!((1e-16..1e-11).contains(&c));
        }

        #[test]
        fn vecs_exact_and_ranged(
            rows in collection::vec(collection::vec(-1.0f64..1.0, 6), 6),
            sized in collection::vec(1.0f64..2.0, 1..8),
        ) {
            prop_assert_eq!(rows.len(), 6);
            prop_assert!(rows.iter().all(|r| r.len() == 6));
            prop_assert!((1..8).contains(&sized.len()));
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::deterministic_rng("t");
        let mut b = crate::deterministic_rng("t");
        let s = crate::collection::vec(0.0f64..1.0, 4);
        assert_eq!(
            crate::Strategy::generate(&s, &mut a),
            crate::Strategy::generate(&s, &mut b)
        );
    }
}
