//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this crate implements the
//! small surface the workspace uses — [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen_range`] over half-open and inclusive ranges, and
//! [`Rng::gen_bool`] — on top of a deterministic SplitMix64 generator.
//! Seeded streams are reproducible across runs and platforms, which is all
//! the synthetic-design generator in `sna-core` requires.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Identical seeds give identical
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring the used subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive, integer or
    /// float). Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Map 64 random bits onto `[0, 1)` with 53-bit resolution.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i32, i64, u32, u64, usize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    ///
    /// Not cryptographically secure; statistically fine for synthetic-design
    /// generation and reproducible across platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(1..=3);
            assert!((1..=3).contains(&x));
            let f = rng.gen_range(150.0..900.0);
            assert!((150.0..900.0).contains(&f));
            let i: i32 = rng.gen_range(0..3);
            assert!((0..3).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
