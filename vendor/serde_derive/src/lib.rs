//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no registry access, so this crate accepts
//! `#[derive(Serialize, Deserialize)]` (including `#[serde(...)]` helper
//! attributes) and expands to nothing. Swap in the real `serde` +
//! `serde_derive` from crates.io to get actual serialization.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
