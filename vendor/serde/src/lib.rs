//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides the
//! `Serialize` / `Deserialize` names (trait + derive-macro namespaces) that
//! the workspace sources import, with no actual serialization behavior.
//! Replace the `[patch]`-free path dependency with the real crates.io `serde`
//! to restore full functionality — no source changes needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. No methods; the no-op derive
/// does not implement it, and nothing in the workspace bounds on it.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
