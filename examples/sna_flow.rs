//! Full static-noise-analysis flow over a synthetic design.
//!
//! The paper's stated future work — "a complete methodology for static
//! noise analysis based on our macromodel" — run end to end: generate a
//! randomized design (clusters of victims + aggressors with varied
//! geometry), characterize the receiver's Noise Rejection Curve, evaluate
//! every cluster with the non-linear engine (optionally at its worst-case
//! alignment), and print the sign-off report.
//!
//! ```sh
//! cargo run --release --example sna_flow
//! ```

use sna::prelude::*;

fn main() -> sna::spice::Result<()> {
    let tech = Technology::cmos130();
    let n_clusters = 12;
    let design = Design::random(&tech, n_clusters, 2005);
    println!(
        "design: {} clusters in {} (seed 2005)\n",
        design.clusters.len(),
        tech.name
    );

    // Receiver NRC (shared by all victims here: all receivers are INV x1).
    let nrc = characterize_nrc(
        &Cell::inv(tech.clone(), 1.0),
        true,
        &[100e-12, 200e-12, 400e-12, 800e-12, 1600e-12],
    )?;
    println!("receiver NRC (INV x1, upward glitch on low input):");
    for (w, h) in nrc.widths.iter().zip(&nrc.fail_heights) {
        println!("  width {:>5.0} ps -> fails above {:.3} V", w * 1e12, h);
    }
    println!();

    // Nominal-timing pass.
    let report = run_sna(&design, &nrc, &SnaOptions::default())?;
    println!(
        "nominal timing: {} pass, {} marginal, {} fail",
        report.count(Verdict::Pass),
        report.count(Verdict::MarginWarning),
        report.count(Verdict::Fail)
    );

    // Worst-case alignment pass (the expensive sign-off question: can these
    // events EVER line up badly?). Affordable only with the fast engine —
    // and run here through the parallel flow driver, which shares one
    // characterization cache across workers and merges findings in design
    // order (identical output at any thread count).
    let flow = run_sna_parallel(
        &design,
        &nrc,
        &FlowOptions {
            sna: SnaOptions {
                align_worst_case: true,
                ..Default::default()
            },
            ..Default::default()
        },
    )?;
    let worst = flow.report;
    println!(
        "worst-case aligned ({} threads, cache {} hits / {} misses): \
         {} pass, {} marginal, {} fail\n",
        flow.threads,
        flow.cache.hits,
        flow.cache.misses,
        worst.count(Verdict::Pass),
        worst.count(Verdict::MarginWarning),
        worst.count(Verdict::Fail)
    );

    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}  verdict",
        "net", "peak (V)", "width(ps)", "margin(V)", "wc-margin"
    );
    // Join the two passes by net name, not index: either pass may have
    // downgraded a cluster to `skipped`, which would shift a positional zip.
    for f in &report.findings {
        match worst.findings.iter().find(|fw| fw.name == f.name) {
            Some(fw) => println!(
                "{:<8} {:>10.3} {:>10.0} {:>10.3} {:>10.3}  {:?}",
                f.name,
                f.receiver_metrics.peak,
                f.receiver_metrics.width * 1e12,
                f.margin,
                fw.margin,
                fw.verdict
            ),
            None => println!(
                "{:<8} {:>10.3} {:>10.0} {:>10.3} {:>10}  (skipped in worst-case pass)",
                f.name,
                f.receiver_metrics.peak,
                f.receiver_metrics.width * 1e12,
                f.margin,
                "-",
            ),
        }
    }
    println!("\nworst three nets (by worst-case margin):");
    for f in worst.worst_first().iter().take(3) {
        println!("  {}: margin {:+.3} V ({:?})", f.name, f.margin, f.verdict);
    }
    Ok(())
}
