//! Quickstart: the paper's Table-1 noise cluster, end to end.
//!
//! Builds the 0.13 µm cluster (two 500 µm parallel M4 wires, INV aggressor,
//! NAND2 victim holding low, one propagating input glitch), runs all four
//! analyses — golden transistor-level, linear superposition, iterative
//! Thevenin, and the paper's non-linear VCCS macromodel — and prints the
//! Table-1-style comparison plus the Figure-1 macromodel topology.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sna::prelude::*;

fn main() -> sna::spice::Result<()> {
    // 1. Describe the cluster physically (or build your own ClusterSpec).
    let spec = table1_spec();
    println!(
        "cluster: {} victim ({}), {} aggressor(s), {:.0} um parallel wires\n",
        spec.victim.cell.cell_type.tag(),
        spec.tech.name,
        spec.aggressors.len(),
        spec.bus.wires[0].length * 1e6,
    );

    // 2. Pre-characterize and reduce: this is the paper's Figure-1 model.
    let model = ClusterMacromodel::build(&spec)?;
    println!("macromodel topology:\n  {}\n", model.topology_summary());

    // 3. The dedicated engine solves the macromodel in milliseconds.
    let noise = simulate_macromodel(&model)?;
    let m = noise.dp_metrics(model.q_out);
    println!(
        "engine result at DP_Vic: peak {:.3} V, width {:.0} ps, area {:.1} V*ps\n",
        m.peak,
        m.width * 1e12,
        m.area * 1e12
    );

    // 4. Full four-way comparison against golden transistor-level sim.
    let cmp = MethodComparison::run("table-1 cluster", &spec)?;
    println!("{cmp}");

    // 5. Sign-off: is the receiver upset? (NRC check.)
    let nrc = characterize_nrc(
        &spec.victim.receiver,
        true,
        &[100e-12, 200e-12, 400e-12, 800e-12],
    )?;
    let rm = noise.receiver.glitch_metrics(model.q_out);
    println!(
        "receiver glitch: peak {:.3} V, width {:.0} ps -> NRC margin {:+.3} V ({})",
        rm.peak,
        rm.width * 1e12,
        nrc.margin(rm.width, rm.peak),
        if nrc.classify(&rm) { "FAIL" } else { "pass" }
    );
    Ok(())
}
