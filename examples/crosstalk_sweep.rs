//! Crosstalk design-space exploration with the macromodel engine.
//!
//! Sweeps coupling length, aggressor drive strength, and aggressor count on
//! the paper's 0.13 µm victim, comparing the non-linear engine against the
//! linear-superposition estimate at every point — the kind of what-if loop
//! (spacing/shielding/driver-sizing decisions) that is only affordable
//! because the macromodel is ~20× faster than transistor-level simulation.
//!
//! ```sh
//! cargo run --release --example crosstalk_sweep
//! ```

use sna::prelude::*;

fn main() -> sna::spice::Result<()> {
    let base = table1_spec();

    println!("== victim DP noise vs coupled length (one aggressor + glitch) ==");
    println!(
        "{:>10} {:>14} {:>16} {:>12}",
        "len (um)", "engine pk (V)", "superpos pk (V)", "sup err (%)"
    );
    for len_um in [125.0, 250.0, 500.0, 750.0, 1000.0] {
        let mut spec = base.clone();
        spec.bus = m4_bus(&spec.tech, 2, len_um, 16);
        let model = ClusterMacromodel::build(&spec)?;
        let eng = simulate_macromodel(&model)?.dp_metrics(model.q_out);
        let sup = simulate_superposition(&model)?.dp_metrics(model.q_out);
        println!(
            "{:>10.0} {:>14.3} {:>16.3} {:>12.1}",
            len_um,
            eng.peak,
            sup.peak,
            100.0 * (sup.peak - eng.peak) / eng.peak
        );
    }

    println!("\n== victim DP noise vs aggressor drive strength (500 um) ==");
    println!(
        "{:>10} {:>14} {:>14}",
        "strength", "engine pk (V)", "area (V*ps)"
    );
    for strength in [1.0, 2.0, 4.0, 8.0] {
        let mut spec = base.clone();
        spec.aggressors[0].cell = Cell::inv(spec.tech.clone(), strength);
        let model = ClusterMacromodel::build(&spec)?;
        let m = simulate_macromodel(&model)?.dp_metrics(model.q_out);
        println!(
            "{:>10.1} {:>14.3} {:>14.1}",
            strength,
            m.peak,
            m.area * 1e12
        );
    }

    println!("\n== victim DP noise vs aggressor count (in-phase, 500 um) ==");
    println!(
        "{:>10} {:>14} {:>14}",
        "count", "engine pk (V)", "area (V*ps)"
    );
    for n_agg in [1usize, 2, 3] {
        let mut spec = base.clone();
        spec.bus = m4_bus(&spec.tech, n_agg + 1, 500.0, 16);
        while spec.aggressors.len() < n_agg {
            let extra = spec.aggressors[0].clone();
            spec.aggressors.push(extra);
        }
        spec.aggressors.truncate(n_agg);
        let model = ClusterMacromodel::build(&spec)?;
        let m = simulate_macromodel(&model)?.dp_metrics(model.q_out);
        println!("{:>10} {:>14.3} {:>14.1}", n_agg, m.peak, m.area * 1e12);
    }

    println!(
        "\nNote how the superposition error grows with coupling length: the \
         deeper the victim is pushed into the non-linear region, the more \
         optimistic the linear estimate becomes — the paper's core warning."
    );
    Ok(())
}
