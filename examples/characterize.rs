//! Cell characterization, inspected.
//!
//! Dumps everything the noise flow pre-computes for the paper's victim
//! driver (NAND2, 0.13 µm, holding low):
//!
//! * the Eq. (1) load-curve surface `I_DC = f(V_in, V_out)` — watch the
//!   restoring current *saturate* along V_out: that is the non-linearity
//!   the whole paper is about;
//! * the holding resistance (the single number the superposition baseline
//!   keeps from all of this);
//! * a Dartu–Pileggi Thevenin fit of an aggressor driver;
//! * the propagated-noise table;
//! * the receiver's noise rejection curve.
//!
//! ```sh
//! cargo run --release --example characterize
//! ```

use sna::prelude::*;

fn main() -> sna::spice::Result<()> {
    let tech = Technology::cmos130();
    let victim = Cell::nand2(tech.clone(), 1.0);
    let mode = victim.holding_low_mode();
    println!(
        "victim: NAND2 x1 in {}, holding low (inputs at {:?} V, glitch on input {})\n",
        tech.name, mode.input_levels, mode.noisy_input
    );

    // --- Eq. (1) load curve.
    let opts = CharacterizeOptions {
        grid: 9,
        ..Default::default()
    };
    let lc = characterize_load_curve(&victim, &mode, &opts)?;
    println!("I_DC(V_in, V_out) in uA (rows: V_in; cols: V_out):");
    print!("{:>8}", "");
    for &vout in lc.table.y_axis() {
        print!("{vout:>9.2}");
    }
    println!();
    for (ix, &vin) in lc.table.x_axis().iter().enumerate() {
        print!("{vin:>8.2}");
        for iy in 0..lc.table.y_axis().len() {
            print!("{:>9.1}", lc.table.at(ix, iy) * 1e6);
        }
        println!();
    }
    println!(
        "\nsaturation check along V_out at V_in = Vdd: I(0.3) = {:.1} uA, \
         I(0.6) = {:.1} uA, I(0.9) = {:.1} uA  (linear would double, then triple)",
        lc.current(tech.vdd, 0.3) * 1e6,
        lc.current(tech.vdd, 0.6) * 1e6,
        lc.current(tech.vdd, 0.9) * 1e6
    );
    println!(
        "driver parasitics: c_out = {:.2} fF, c_miller = {:.2} fF",
        lc.c_out * 1e15,
        lc.c_miller * 1e15
    );

    // --- Holding resistance.
    let r_hold = holding_resistance(&victim, &mode, &Default::default())?;
    println!("\nholding resistance (the linear baseline's victim model): {r_hold:.0} ohm");

    // --- Thevenin aggressor fit.
    let agg = Cell::inv(tech.clone(), 2.5);
    let load = TheveninLoad::Pi {
        c_near: 25e-15,
        r: 100.0,
        c_far: 40e-15,
    };
    let th = characterize_thevenin(&agg, true, 60e-12, &load)?;
    println!(
        "\naggressor Thevenin (INV x2.5, rising, 60 ps input slew, pi load): \
         R_TH = {:.0} ohm, EMF = {:?}",
        th.rth, th.wave
    );

    // --- Propagated-noise table.
    let pt = characterize_propagated_noise(
        &victim,
        &mode,
        60e-15,
        &[0.3 * tech.vdd, 0.6 * tech.vdd, 0.9 * tech.vdd],
        &[200e-12, 500e-12, 1000e-12],
    )?;
    println!("\npropagated-noise table (output peak in mV):");
    print!("{:>12}", "h \\ w (ps)");
    for &w in pt.peak.y_axis() {
        print!("{:>9.0}", w * 1e12);
    }
    println!();
    for (ix, &h) in pt.peak.x_axis().iter().enumerate() {
        print!("{:>10.2} V", h);
        for iy in 0..pt.peak.y_axis().len() {
            print!("{:>9.1}", pt.peak.at(ix, iy) * 1e3);
        }
        println!();
    }

    // --- Receiver NRC.
    let nrc = characterize_nrc(&Cell::inv(tech, 1.0), true, &[100e-12, 300e-12, 900e-12])?;
    println!("\nreceiver NRC (INV x1):");
    for (w, h) in nrc.widths.iter().zip(&nrc.fail_heights) {
        println!("  {:>5.0} ps wide glitches fail above {:.3} V", w * 1e12, h);
    }
    Ok(())
}
