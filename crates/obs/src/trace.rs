//! Chrome-trace span export.
//!
//! Coarse-grained complete events (`"ph":"X"`) appended to a global
//! buffer and rendered as the Trace Event Format JSON that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly. Tracing is opt-in ([`set_tracing_enabled`]) and intended for
//! cluster/characterization granularity — recording an event allocates,
//! so trace spans must never sit inside solver inner loops (the
//! allocation-free paths use [`crate::phase_span`] aggregation instead).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::registry;

static TRACING: AtomicBool = AtomicBool::new(false);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn events() -> &'static Mutex<Vec<TraceEvent>> {
    static EVENTS: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Turn trace-event recording on or off process-wide. Off by default;
/// the CLI enables it for `--profile` runs. Pins the trace epoch on
/// enable so timestamps start near zero.
pub fn set_tracing_enabled(on: bool) {
    if on {
        epoch();
    }
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether trace-event recording is currently enabled.
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// One complete ("X") event in the Trace Event Format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (e.g. a cluster name).
    pub name: String,
    /// Category (e.g. `cluster`, `characterize`, `corner`).
    pub cat: &'static str,
    /// Start, µs since the trace epoch.
    pub ts_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Emitting thread's recorder index.
    pub tid: usize,
}

/// RAII guard for one trace event. See [`trace_span`].
#[must_use = "a trace span measures until dropped; binding it to _ drops immediately"]
pub struct TraceSpan {
    /// `None` when tracing is disabled at open time.
    open: Option<(String, &'static str, Instant)>,
}

/// Open a trace span named `name` in category `cat`. Records a complete
/// event on drop; inert (and allocation-free) while tracing is disabled.
pub fn trace_span(cat: &'static str, name: &str) -> TraceSpan {
    if !tracing_enabled() {
        return TraceSpan { open: None };
    }
    TraceSpan {
        open: Some((name.to_owned(), cat, Instant::now())),
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some((name, cat, t0)) = self.open.take() {
            let dur_us = t0.elapsed().as_micros() as u64;
            let ts_us = t0.duration_since(epoch()).as_micros() as u64;
            let ev = TraceEvent {
                name,
                cat,
                ts_us,
                dur_us,
                tid: registry::local_tid(),
            };
            events().lock().expect("trace buffer poisoned").push(ev);
        }
    }
}

/// Drain and return all recorded events (oldest first).
pub fn take_trace_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *events().lock().expect("trace buffer poisoned"))
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the current event buffer (without draining it) as a Trace
/// Event Format document: load the file in `chrome://tracing` or drop it
/// onto <https://ui.perfetto.dev>.
pub fn render_chrome_trace() -> String {
    let guard = events().lock().expect("trace buffer poisoned");
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, ev) in guard.iter().enumerate() {
        let comma = if i + 1 < guard.len() { "," } else { "" };
        out.push_str(&format!(
            "  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}{}\n",
            esc(&ev.name),
            esc(ev.cat),
            ev.ts_us,
            ev.dur_us,
            ev.tid,
            comma
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracing_records_nothing() {
        set_tracing_enabled(false);
        let s = trace_span("test", "noop");
        assert!(s.open.is_none());
    }

    #[test]
    fn events_render_as_trace_event_format() {
        set_tracing_enabled(true);
        {
            let _s = trace_span("test-cat", "evt \"quoted\"");
        }
        set_tracing_enabled(false);
        let doc = render_chrome_trace();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\\\"quoted\\\""));
        assert!(doc.contains("\"ph\":\"X\""));
        let evs = take_trace_events();
        assert!(evs.iter().any(|e| e.cat == "test-cat"));
        assert!(take_trace_events().is_empty(), "drained");
    }
}
