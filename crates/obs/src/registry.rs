//! Per-thread recorders and the global registry that aggregates them.
//!
//! Each thread lazily registers one [`LocalRecorder`] — a flat array of
//! `AtomicU64` cells that only the owning thread writes (relaxed stores,
//! uncontended by construction) and only snapshotters read. The global
//! [`MetricsRegistry`] keeps `Arc`s to every recorder ever registered so
//! counts survive worker-pool threads exiting; [`snapshot`] sums across
//! them with no coordination beyond relaxed loads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::metric::{Metric, ALL_METRICS, METRIC_COUNT};
use crate::span::{Phase, ALL_PHASES, PHASE_COUNT, ROOT};

/// Edge table size: parent ∈ {each phase, root sentinel} × child phase.
const EDGE_COUNT: usize = (PHASE_COUNT + 1) * PHASE_COUNT;

/// One thread's private counter/edge store. Public so the registry can
/// hand out `Arc`s; all mutation goes through the free functions.
pub struct LocalRecorder {
    counters: [AtomicU64; METRIC_COUNT],
    edge_nanos: Box<[AtomicU64; EDGE_COUNT]>,
    edge_calls: Box<[AtomicU64; EDGE_COUNT]>,
}

impl LocalRecorder {
    fn new() -> Self {
        LocalRecorder {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            edge_nanos: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            edge_calls: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }
}

/// Registry of every per-thread recorder in the process.
pub struct MetricsRegistry {
    recorders: Mutex<Vec<Arc<LocalRecorder>>>,
}

impl MetricsRegistry {
    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
        REGISTRY.get_or_init(|| MetricsRegistry {
            recorders: Mutex::new(Vec::new()),
        })
    }

    /// Register a fresh recorder, returning it and its thread index (the
    /// `tid` used in chrome-trace events).
    fn register(&self) -> (Arc<LocalRecorder>, usize) {
        let rec = Arc::new(LocalRecorder::new());
        let mut guard = self.recorders.lock().expect("metrics registry poisoned");
        guard.push(Arc::clone(&rec));
        (rec, guard.len() - 1)
    }

    /// Number of recorders registered so far (threads that ever counted).
    pub fn thread_count(&self) -> usize {
        self.recorders
            .lock()
            .expect("metrics registry poisoned")
            .len()
    }
}

struct LocalHandle {
    recorder: Arc<LocalRecorder>,
    tid: usize,
}

thread_local! {
    static LOCAL: LocalHandle = {
        let (recorder, tid) = MetricsRegistry::global().register();
        LocalHandle { recorder, tid }
    };
}

/// This thread's chrome-trace `tid` (its recorder index).
pub(crate) fn local_tid() -> usize {
    LOCAL.with(|h| h.tid)
}

/// Add `n` to `metric` on this thread's recorder. Always on: one TLS
/// access plus one relaxed, uncontended `fetch_add`.
pub fn count(metric: Metric, n: u64) {
    if n != 0 {
        LOCAL.with(|h| h.recorder.counters[metric as usize].fetch_add(n, Ordering::Relaxed));
    }
}

/// Charge `nanos` (one call) to the `parent → child` phase edge.
pub(crate) fn record_edge(parent: u8, child: u8, nanos: u64) {
    debug_assert!(parent <= ROOT && (child as usize) < PHASE_COUNT);
    let idx = parent as usize * PHASE_COUNT + child as usize;
    LOCAL.with(|h| {
        h.recorder.edge_nanos[idx].fetch_add(nanos, Ordering::Relaxed);
        h.recorder.edge_calls[idx].fetch_add(1, Ordering::Relaxed);
    });
}

/// A point-in-time copy of the counter array (per-thread or aggregated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    counts: [u64; METRIC_COUNT],
}

impl CounterSnapshot {
    /// Value of one counter.
    pub fn get(&self, metric: Metric) -> u64 {
        self.counts[metric as usize]
    }

    /// Per-counter difference `self - earlier` (saturating): the counts
    /// attributable to work done between the two snapshots.
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut out = CounterSnapshot::default();
        for i in 0..METRIC_COUNT {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        out
    }
}

/// One aggregated `parent → child` edge of the phase tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseEdge {
    /// Enclosing phase, `None` for spans opened at the top of a thread's
    /// stack.
    pub parent: Option<Phase>,
    /// The timed phase.
    pub phase: Phase,
    /// Times this edge was entered.
    pub calls: u64,
    /// Total wall time charged to this edge, summed across threads (may
    /// exceed elapsed wall clock when threads overlap).
    pub nanos: u64,
}

/// Aggregated process-wide view: counters plus the phase tree.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counters summed across all recorders.
    pub counters: CounterSnapshot,
    /// Non-empty phase edges, in (parent, child) index order —
    /// deterministic for a given set of recorded values.
    pub phases: Vec<PhaseEdge>,
    /// Number of per-thread recorders aggregated.
    pub threads: usize,
}

impl Snapshot {
    /// Total wall time (ns) charged to `phase`, summed over all parents.
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phases
            .iter()
            .filter(|e| e.phase == phase)
            .map(|e| e.nanos)
            .sum()
    }
}

/// Snapshot of this thread's recorder only. Because no other thread ever
/// writes it, deltas around a code region give exact counts for that
/// region even while other tests/threads run concurrently.
pub fn local_snapshot() -> CounterSnapshot {
    LOCAL.with(|h| {
        let mut out = CounterSnapshot::default();
        for m in ALL_METRICS {
            out.counts[m as usize] = h.recorder.counters[m as usize].load(Ordering::Relaxed);
        }
        out
    })
}

/// Aggregate counters and phase edges across every recorder in the
/// process.
pub fn snapshot() -> Snapshot {
    let recorders = MetricsRegistry::global()
        .recorders
        .lock()
        .expect("metrics registry poisoned");
    let mut counters = CounterSnapshot::default();
    let mut nanos = [0u64; EDGE_COUNT];
    let mut calls = [0u64; EDGE_COUNT];
    for rec in recorders.iter() {
        for i in 0..METRIC_COUNT {
            counters.counts[i] += rec.counters[i].load(Ordering::Relaxed);
        }
        for i in 0..EDGE_COUNT {
            nanos[i] += rec.edge_nanos[i].load(Ordering::Relaxed);
            calls[i] += rec.edge_calls[i].load(Ordering::Relaxed);
        }
    }
    let mut phases = Vec::new();
    for p in 0..=PHASE_COUNT {
        for (c, &child) in ALL_PHASES.iter().enumerate() {
            let idx = p * PHASE_COUNT + c;
            if calls[idx] != 0 || nanos[idx] != 0 {
                phases.push(PhaseEdge {
                    parent: if p == ROOT as usize {
                        None
                    } else {
                        Some(Phase::from_index(p))
                    },
                    phase: child,
                    calls: calls[idx],
                    nanos: nanos[idx],
                });
            }
        }
    }
    Snapshot {
        counters,
        phases,
        threads: recorders.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{phase_span, set_timing_enabled};

    #[test]
    fn local_deltas_are_exact_for_own_thread() {
        let before = local_snapshot();
        count(Metric::DcNewtonIterations, 3);
        count(Metric::SolverSolves, 5);
        count(Metric::SolverSolves, 0); // no-op
        let delta = local_snapshot().since(&before);
        assert_eq!(delta.get(Metric::DcNewtonIterations), 3);
        assert_eq!(delta.get(Metric::SolverSolves), 5);
        assert_eq!(delta.get(Metric::TranSteps), 0);
    }

    #[test]
    fn other_threads_do_not_leak_into_local_snapshot() {
        let before = local_snapshot();
        std::thread::spawn(|| count(Metric::TranSteps, 1_000_000))
            .join()
            .unwrap();
        let delta = local_snapshot().since(&before);
        assert_eq!(delta.get(Metric::TranSteps), 0);
    }

    #[test]
    fn nested_spans_build_parent_child_edges() {
        // Run nesting on a dedicated thread so concurrent tests toggling
        // the global timing flag cannot race this one's expectations
        // mid-span; edges land in the global snapshot either way.
        std::thread::spawn(|| {
            set_timing_enabled(true);
            {
                let _outer = phase_span(Phase::Tran);
                let _inner = phase_span(Phase::Refactor);
            }
            set_timing_enabled(false);
        })
        .join()
        .unwrap();
        let snap = snapshot();
        assert!(snap
            .phases
            .iter()
            .any(|e| e.parent == Some(Phase::Tran) && e.phase == Phase::Refactor && e.calls >= 1));
        assert!(snap.threads >= 1);
    }
}
