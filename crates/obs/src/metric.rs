//! The fixed counter vocabulary.
//!
//! Counters are indexed by a dense `usize` so a recorder is a flat array
//! of atomics — no hashing, no allocation, no locks on the hot path.

/// One monotonic counter. The set is closed by design: every layer that
/// wants a new counter adds a variant here, and every snapshot/report
/// iterates [`ALL_METRICS`] so nothing can be silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Metric {
    /// `SystemSolver` instances that chose the dense route.
    SolverDenseSelected = 0,
    /// `SystemSolver` instances that chose the sparse route.
    SolverSparseSelected,
    /// Cold dense LU factorizations (fresh pivot search).
    SolverFactorsDense,
    /// In-place dense refactorizations reusing the stored pivot sequence.
    SolverRefactorsDense,
    /// Cold sparse LU factorizations (numeric phase with pivot search).
    SolverFactorsSparse,
    /// Sparse numeric refactors replaying the stored pattern/pivots.
    SolverRefactorsSparse,
    /// Sparse refactor attempts that failed (tiny pivot) and fell back to
    /// a cold factorization.
    SolverColdFallbacks,
    /// Triangular solves against a held factorization.
    SolverSolves,
    /// DC operating points computed (one per Newton ladder entry).
    DcSolves,
    /// Newton iterations across all DC stages (plain, gmin, source).
    DcNewtonIterations,
    /// DC solves that had to enter the gmin-stepping fallback.
    DcGminFallbacks,
    /// DC solves that had to enter the source-stepping fallback.
    DcSourceStepFallbacks,
    /// Transient analyses run (fixed-step and adaptive).
    TranCalls,
    /// Accepted transient time steps (fixed-step: all steps).
    TranSteps,
    /// Newton iterations inside transient steps (0 for linear circuits).
    TranNewtonIterations,
    /// Adaptive steps accepted by the local-truncation-error test.
    TranAcceptedSteps,
    /// Adaptive steps rejected (halved and retried).
    TranRejectedSteps,
    /// Batched K-lane sweep analyses run (DC or transient).
    SweepCalls,
    /// Total lanes carried by those sweeps (sum of K).
    SweepLanes,
    /// Per-lane Newton iterations inside masked batched Newton loops.
    SweepLaneNewtonIterations,
    /// Lanes the batched Newton abandoned to the deterministic serial
    /// ladder (the correctness backstop for resistant corners).
    SweepSerialFallbacks,
    /// Lock-step transient steps taken by batched sweeps.
    SweepSteps,
    /// Queries handled by an `sna serve` session (any command).
    ServeQueries,
    /// Clusters re-analyzed by `sna serve` (fingerprint changed or cold).
    ServeReanalyzed,
    /// Cluster analyses `sna serve` satisfied from its result memo.
    ServeMemoHits,
    /// Clusters that went through a constrained FRAME alignment analysis.
    FrameClusters,
    /// Structural alignment candidates considered by FRAME enumerations.
    FrameCandidatesConsidered,
    /// Candidates pruned by switching-window / sensitivity interval
    /// analysis before simulation.
    FramePrunedWindow,
    /// Window-surviving candidates pruned by mutual-exclusion groups.
    FramePrunedMexcl,
    /// Feasible candidates actually simulated by the batched engine.
    FrameSimulated,
}

/// Number of [`Metric`] variants; recorders are `[AtomicU64; METRIC_COUNT]`.
pub const METRIC_COUNT: usize = 30;

/// Every metric, in index order. Reports iterate this so the document and
/// the enum can never drift apart.
pub const ALL_METRICS: [Metric; METRIC_COUNT] = [
    Metric::SolverDenseSelected,
    Metric::SolverSparseSelected,
    Metric::SolverFactorsDense,
    Metric::SolverRefactorsDense,
    Metric::SolverFactorsSparse,
    Metric::SolverRefactorsSparse,
    Metric::SolverColdFallbacks,
    Metric::SolverSolves,
    Metric::DcSolves,
    Metric::DcNewtonIterations,
    Metric::DcGminFallbacks,
    Metric::DcSourceStepFallbacks,
    Metric::TranCalls,
    Metric::TranSteps,
    Metric::TranNewtonIterations,
    Metric::TranAcceptedSteps,
    Metric::TranRejectedSteps,
    Metric::SweepCalls,
    Metric::SweepLanes,
    Metric::SweepLaneNewtonIterations,
    Metric::SweepSerialFallbacks,
    Metric::SweepSteps,
    Metric::ServeQueries,
    Metric::ServeReanalyzed,
    Metric::ServeMemoHits,
    Metric::FrameClusters,
    Metric::FrameCandidatesConsidered,
    Metric::FramePrunedWindow,
    Metric::FramePrunedMexcl,
    Metric::FrameSimulated,
];

impl Metric {
    /// Stable snake_case name used in `sna-metrics-v1` documents.
    pub fn name(self) -> &'static str {
        match self {
            Metric::SolverDenseSelected => "dense_selected",
            Metric::SolverSparseSelected => "sparse_selected",
            Metric::SolverFactorsDense => "factors_dense",
            Metric::SolverRefactorsDense => "refactors_dense",
            Metric::SolverFactorsSparse => "factors_sparse",
            Metric::SolverRefactorsSparse => "refactors_sparse",
            Metric::SolverColdFallbacks => "cold_fallbacks",
            Metric::SolverSolves => "solves",
            Metric::DcSolves => "solves",
            Metric::DcNewtonIterations => "newton_iterations",
            Metric::DcGminFallbacks => "gmin_fallbacks",
            Metric::DcSourceStepFallbacks => "source_step_fallbacks",
            Metric::TranCalls => "calls",
            Metric::TranSteps => "steps",
            Metric::TranNewtonIterations => "newton_iterations",
            Metric::TranAcceptedSteps => "accepted_steps",
            Metric::TranRejectedSteps => "rejected_steps",
            Metric::SweepCalls => "calls",
            Metric::SweepLanes => "lanes",
            Metric::SweepLaneNewtonIterations => "lane_newton_iterations",
            Metric::SweepSerialFallbacks => "serial_fallbacks",
            Metric::SweepSteps => "steps",
            Metric::ServeQueries => "queries",
            Metric::ServeReanalyzed => "reanalyzed",
            Metric::ServeMemoHits => "memo_hits",
            Metric::FrameClusters => "clusters",
            Metric::FrameCandidatesConsidered => "considered",
            Metric::FramePrunedWindow => "pruned_window",
            Metric::FramePrunedMexcl => "pruned_mexcl",
            Metric::FrameSimulated => "simulated",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_metrics_covers_every_index_exactly_once() {
        for (i, m) in ALL_METRICS.iter().enumerate() {
            assert_eq!(*m as usize, i, "{m:?} out of place");
        }
    }
}
