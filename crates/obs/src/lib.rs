//! # sna-obs — zero-dependency observability for the SNA engine
//!
//! The engine spans four performance-critical layers (sparse LU refactor,
//! K-lane batched sweeps, the sharded characterization cache, and the
//! order-preserving worker pool). This crate is the shared instrumentation
//! substrate they all report into:
//!
//! * [`Metric`] — a fixed vocabulary of monotonic counters (factor vs
//!   refactor, Newton iterations, fallback ladders, sweep lanes, …).
//! * [`count`] — lock-free counting: every thread owns a
//!   [`LocalRecorder`] of relaxed atomics that only it writes, so the hot
//!   path never contends. Aggregation sums across recorders at snapshot
//!   time.
//! * [`Phase`] / [`phase_span`] — monotonic span timers maintaining a
//!   per-thread phase stack; each (parent → child) edge accumulates call
//!   count and wall time, yielding a hierarchical phase tree
//!   (characterize → dc → tran → factor/refactor/solve) with no
//!   allocation on the measured path. Timing is off by default and gated
//!   behind [`set_timing_enabled`], so uninstrumented runs pay one
//!   relaxed load per span site.
//! * [`trace_span`] — coarse-grained chrome-trace events (cluster /
//!   characterization granularity, never inner solver loops), exported by
//!   [`render_chrome_trace`] for `chrome://tracing` / Perfetto.
//! * [`snapshot`] / [`local_snapshot`] — aggregate or per-thread counter
//!   snapshots; tests take deltas of their own thread's recorder so
//!   concurrently running tests cannot interfere.
//!
//! Everything here is strictly out-of-band: recording a metric never
//! changes numerical results, and the stdout noise report of a flow run is
//! byte-identical whether metrics are collected or not.

#![warn(missing_docs)]

mod metric;
mod registry;
mod span;
mod trace;

pub use metric::{Metric, ALL_METRICS, METRIC_COUNT};
pub use registry::{
    count, local_snapshot, snapshot, CounterSnapshot, LocalRecorder, MetricsRegistry, PhaseEdge,
    Snapshot,
};
pub use span::{
    phase_span, set_timing_enabled, timing_enabled, Phase, PhaseSpan, ALL_PHASES, PHASE_COUNT,
};
pub use trace::{
    render_chrome_trace, set_tracing_enabled, take_trace_events, trace_span, tracing_enabled,
    TraceEvent, TraceSpan,
};
