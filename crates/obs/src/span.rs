//! Hierarchical phase timers.
//!
//! A [`PhaseSpan`] is an RAII guard: creating it pushes a [`Phase`] onto
//! the current thread's (implicit) phase stack, dropping it pops and
//! charges the elapsed wall time to the (parent → child) edge of that
//! thread's recorder. Aggregating the edges across threads reconstructs
//! the phase tree — e.g. `tran → refactor` time is separable from
//! `dc → refactor` time even though both run through the same solver code.
//!
//! Timing is globally gated: until [`set_timing_enabled`] is called the
//! guard is a no-op costing one relaxed atomic load, so production hot
//! loops (a span site sits inside every Newton iteration via the solver)
//! pay nothing measurable when nobody is looking. The guard never
//! allocates either way, preserving the transient inner loop's
//! allocation-free contract even with timing on.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crate::registry;

/// One node kind in the phase tree. Phases identify *what code* is
/// running, not where; the tree structure comes from runtime nesting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// A whole flow run (all corners).
    Flow = 0,
    /// One process-corner realization.
    Corner,
    /// One cluster analysis (macromodel build + simulate + classify).
    Cluster,
    /// Cell characterization (macromodel build).
    Characterize,
    /// Output load-curve characterization.
    LoadCurve,
    /// Holding-resistance characterization.
    HoldingR,
    /// Propagated-noise table characterization.
    PropTable,
    /// Per-aggressor Thévenin driver characterization.
    Thevenin,
    /// Noise-rejection-curve characterization.
    Nrc,
    /// Model-order reduction (PRIMA).
    Reduce,
    /// DC operating-point Newton ladder.
    Dc,
    /// Transient analysis (fixed-step or adaptive).
    Tran,
    /// Batched K-lane sweep analysis.
    Sweep,
    /// Cold matrix factorization (dense or sparse).
    Factor,
    /// Numeric refactorization reusing a stored pivot sequence.
    Refactor,
    /// Triangular solve against a held factorization.
    Solve,
}

/// Number of [`Phase`] variants.
pub const PHASE_COUNT: usize = 16;

/// Every phase, in index order.
pub const ALL_PHASES: [Phase; PHASE_COUNT] = [
    Phase::Flow,
    Phase::Corner,
    Phase::Cluster,
    Phase::Characterize,
    Phase::LoadCurve,
    Phase::HoldingR,
    Phase::PropTable,
    Phase::Thevenin,
    Phase::Nrc,
    Phase::Reduce,
    Phase::Dc,
    Phase::Tran,
    Phase::Sweep,
    Phase::Factor,
    Phase::Refactor,
    Phase::Solve,
];

/// Sentinel parent index for spans opened at the top of a thread's stack.
pub(crate) const ROOT: u8 = PHASE_COUNT as u8;

impl Phase {
    /// Stable snake_case name used in `sna-metrics-v1` documents and the
    /// chrome-trace export.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Flow => "flow",
            Phase::Corner => "corner",
            Phase::Cluster => "cluster",
            Phase::Characterize => "characterize",
            Phase::LoadCurve => "load_curve",
            Phase::HoldingR => "holding_r",
            Phase::PropTable => "prop_table",
            Phase::Thevenin => "thevenin",
            Phase::Nrc => "nrc",
            Phase::Reduce => "reduce",
            Phase::Dc => "dc",
            Phase::Tran => "tran",
            Phase::Sweep => "sweep",
            Phase::Factor => "factor",
            Phase::Refactor => "refactor",
            Phase::Solve => "solve",
        }
    }

    pub(crate) fn from_index(i: usize) -> Phase {
        ALL_PHASES[i]
    }
}

static TIMING: AtomicBool = AtomicBool::new(false);

thread_local! {
    static CURRENT_PHASE: Cell<u8> = const { Cell::new(ROOT) };
}

/// Turn phase timing on or off process-wide. Off by default; the CLI
/// enables it for `--metrics`/`--profile` runs, tests for assertions.
pub fn set_timing_enabled(on: bool) {
    TIMING.store(on, Ordering::Relaxed);
}

/// Whether phase timing is currently enabled.
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

/// RAII guard for one timed phase. See [`phase_span`].
#[must_use = "a phase span measures until dropped; binding it to _ drops immediately"]
pub struct PhaseSpan {
    /// `None` when timing is disabled — the whole guard is then inert.
    start: Option<Instant>,
    phase: u8,
    parent: u8,
}

/// Open a timed span for `phase` on this thread. The span charges its
/// wall time to the (current phase → `phase`) edge when dropped and
/// restores the previous current phase. No-op (no clock read, no TLS
/// write) while timing is disabled.
pub fn phase_span(phase: Phase) -> PhaseSpan {
    if !timing_enabled() {
        return PhaseSpan {
            start: None,
            phase: phase as u8,
            parent: ROOT,
        };
    }
    let parent = CURRENT_PHASE.with(|c| c.replace(phase as u8));
    PhaseSpan {
        start: Some(Instant::now()),
        phase: phase as u8,
        parent,
    }
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let nanos = t0.elapsed().as_nanos() as u64;
            CURRENT_PHASE.with(|c| c.set(self.parent));
            registry::record_edge(self.parent, self.phase, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_phases_covers_every_index_exactly_once() {
        for (i, p) in ALL_PHASES.iter().enumerate() {
            assert_eq!(*p as usize, i, "{p:?} out of place");
        }
    }

    #[test]
    fn disabled_spans_do_not_touch_the_stack() {
        set_timing_enabled(false);
        let s = phase_span(Phase::Dc);
        assert!(s.start.is_none());
        assert_eq!(CURRENT_PHASE.with(|c| c.get()), ROOT);
    }
}
