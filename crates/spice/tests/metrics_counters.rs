//! Counter-accuracy tests: the `sna-obs` deltas recorded by a transient
//! analysis must match hand-checked values, not just "be nonzero".
//!
//! Every test uses [`sna_obs::local_snapshot`] deltas — the calling
//! thread's own recorder — so concurrent tests in this binary (or the rest
//! of the workspace's test run) cannot leak counts into the assertions.

use sna_obs::{local_snapshot, Metric};
use sna_spice::devices::{MosPolarity, MosfetModel, SourceWaveform};
use sna_spice::netlist::Circuit;
use sna_spice::solver::SolverKind;
use sna_spice::sweep::BatchedSweep;
use sna_spice::tran::{transient_with, TranParams, TranWorkspace};
use sna_spice::units::{NS, PS};

/// Linear RC ladder, `n_nodes` unknowns plus one source row.
fn ladder(n_nodes: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("n0");
    ckt.add_vsource(
        "Vin",
        prev,
        Circuit::gnd(),
        SourceWaveform::Ramp {
            v0: 0.0,
            v1: 1.2,
            t_start: 0.1 * NS,
            t_rise: 100.0 * PS,
        },
    );
    for i in 1..n_nodes {
        let next = ckt.node(&format!("n{i}"));
        ckt.add_resistor(&format!("R{i}"), prev, next, 50.0)
            .unwrap();
        ckt.add_capacitor(&format!("C{i}"), next, Circuit::gnd(), 2e-15)
            .unwrap();
        prev = next;
    }
    ckt
}

/// CMOS inverter hit by an input glitch — Newton iterations every step.
fn inverter() -> Circuit {
    let nmos = MosfetModel {
        polarity: MosPolarity::Nmos,
        vt0: 0.32,
        kp: 2.5e-4,
        lambda: 0.15,
        gamma: 0.4,
        phi: 0.7,
        cox: 0.012,
        cgso: 3e-10,
        cgdo: 3e-10,
        cj: 8e-10,
    };
    let pmos = MosfetModel {
        polarity: MosPolarity::Pmos,
        vt0: -0.34,
        kp: 1.0e-4,
        ..nmos
    };
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource("Vdd", vdd, Circuit::gnd(), SourceWaveform::Dc(1.2));
    ckt.add_vsource(
        "Vin",
        inp,
        Circuit::gnd(),
        SourceWaveform::TriangleGlitch {
            v_base: 1.2,
            v_peak: 0.2,
            t_start: 0.2 * NS,
            t_rise: 150.0 * PS,
            t_fall: 150.0 * PS,
        },
    );
    ckt.add_mosfet(
        "Mn",
        out,
        inp,
        Circuit::gnd(),
        Circuit::gnd(),
        nmos,
        0.42e-6,
        0.13e-6,
    )
    .unwrap();
    ckt.add_mosfet("Mp", out, inp, vdd, vdd, pmos, 0.64e-6, 0.13e-6)
        .unwrap();
    ckt.add_capacitor("Cl", out, Circuit::gnd(), 10e-15)
        .unwrap();
    ckt
}

/// Non-linear dense fixed-dt: every Newton iteration (DC init + per-step)
/// factors the Jacobian exactly once, and only the very first factor is
/// cold — so `refactors == total Newton iterations − 1` exactly.
#[test]
fn inverter_glitch_counters_match_hand_check() {
    let ckt = inverter();
    let mut ws = TranWorkspace::new(&ckt, SolverKind::Dense).unwrap();
    let mut params = TranParams::new(1.0 * NS, 1.0 * PS);
    params.solver = SolverKind::Dense;
    let before = local_snapshot();
    let res = transient_with(&ckt, &params, &mut ws).unwrap();
    let d = local_snapshot().since(&before);
    let steps = (1.0 * NS / (1.0 * PS)).round() as u64;

    assert_eq!(d.get(Metric::TranCalls), 1);
    assert_eq!(d.get(Metric::TranSteps), steps);
    assert_eq!(
        d.get(Metric::TranNewtonIterations),
        res.newton_iterations as u64,
        "counter must agree with the returned diagnostic"
    );
    // Fixed-dt: nothing is ever rejected (or "accepted" — that is the
    // adaptive controller's vocabulary).
    assert_eq!(d.get(Metric::TranAcceptedSteps), 0);
    assert_eq!(d.get(Metric::TranRejectedSteps), 0);
    // One DC operating-point solve for the initial condition, converged
    // without the continuation ladder.
    assert_eq!(d.get(Metric::DcSolves), 1);
    assert_eq!(d.get(Metric::DcGminFallbacks), 0);
    assert_eq!(d.get(Metric::DcSourceStepFallbacks), 0);
    let dc_iters = d.get(Metric::DcNewtonIterations);
    assert!(dc_iters >= 2, "non-linear DC takes several iterations");
    // The hand-check: one Jacobian factorization per Newton iteration,
    // cold only the first time ever on this workspace.
    let total_newton = dc_iters + res.newton_iterations as u64;
    assert_eq!(d.get(Metric::SolverFactorsDense), 1);
    assert_eq!(d.get(Metric::SolverRefactorsDense), total_newton - 1);
    // ... and one back-substitution per iteration, nothing hidden.
    assert_eq!(d.get(Metric::SolverSolves), total_newton);
    assert_eq!(d.get(Metric::SolverFactorsSparse), 0);
    assert_eq!(d.get(Metric::SolverColdFallbacks), 0);
}

/// Linear dense fixed-dt: one cold factor at the DC alpha, one refactor at
/// the transient alpha, one solve per step plus the DC solve — Newton
/// never iterates.
#[test]
fn linear_ladder_counters_match_hand_check() {
    let ckt = ladder(16);
    let mut ws = TranWorkspace::new(&ckt, SolverKind::Dense).unwrap();
    let mut params = TranParams::new(1.0 * NS, 2.0 * PS);
    params.solver = SolverKind::Dense;
    let before = local_snapshot();
    let res = transient_with(&ckt, &params, &mut ws).unwrap();
    let d = local_snapshot().since(&before);
    let steps = (1.0 * NS / (2.0 * PS)).round() as u64;

    assert_eq!(res.newton_iterations, 0);
    assert_eq!(d.get(Metric::TranSteps), steps);
    assert_eq!(d.get(Metric::TranNewtonIterations), 0);
    assert_eq!(d.get(Metric::DcSolves), 1);
    // Linear DC is a single direct solve.
    assert_eq!(d.get(Metric::DcNewtonIterations), 1);
    // The DC factor (α = 0) is the cold one; the transient base factor
    // (α = 1/dt) reuses the pivot structure as a refactor.
    assert_eq!(d.get(Metric::SolverFactorsDense), 1);
    assert_eq!(d.get(Metric::SolverRefactorsDense), 1);
    assert_eq!(d.get(Metric::SolverSolves), steps + 1);
}

/// Batched K-lane sweep: lane accounting is exact — the transient's
/// internal DC init is itself a sweep call, so calls/lanes double.
#[test]
fn batched_sweep_counters_match_hand_check() {
    let base = ladder(16);
    let lanes: Vec<Circuit> = (0..4)
        .map(|i| {
            let mut ckt = base.clone();
            ckt.set_source_wave(
                "Vin",
                SourceWaveform::Ramp {
                    v0: 0.0,
                    v1: 0.3 * (i + 1) as f64,
                    t_start: 0.1 * NS,
                    t_rise: 100.0 * PS,
                },
            )
            .unwrap();
            ckt
        })
        .collect();
    let mut sweep = BatchedSweep::new(&lanes, SolverKind::Dense, Default::default()).unwrap();
    let params = TranParams::new(1.0 * NS, 2.0 * PS);
    let before = local_snapshot();
    sweep.transient(&lanes, &params).unwrap();
    let d = local_snapshot().since(&before);
    let steps = (1.0 * NS / (2.0 * PS)).round() as u64;

    assert_eq!(d.get(Metric::SweepCalls), 2, "transient + its DC init");
    assert_eq!(d.get(Metric::SweepLanes), 8, "4 lanes counted by each call");
    assert_eq!(d.get(Metric::SweepSteps), steps);
    // Linear lanes: the masked Newton loop never runs and nothing falls
    // back to the serial ladder.
    assert_eq!(d.get(Metric::SweepLaneNewtonIterations), 0);
    assert_eq!(d.get(Metric::SweepSerialFallbacks), 0);
}
