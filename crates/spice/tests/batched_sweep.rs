//! K-lane batched sweeps must be a pure performance change.
//!
//! Three layers of guarantees, in decreasing strictness:
//!
//! 1. **Backend bit-identity** — the lane-outer scalar and lane-inner
//!    batched CPU backends execute the same per-lane floating-point
//!    operation sequence over the same SoA planes, so every recorded
//!    sample must match *bitwise* between `--backend scalar` and
//!    `--backend batched`.
//! 2. **Linear lanes ≤ 1e-9 vs serial** — a linear lane's batched solve
//!    shares the serial path's pattern and elimination order, so batched
//!    results track K independent serial solves far below the paper's
//!    noise-metric resolution (property-tested over random ladders).
//! 3. **Non-linear lanes ≤ 1e-6 vs serial** — Newton stops inside the
//!    same tolerance band (`vntol` = 1e-6) on both paths.

use proptest::prelude::*;
use sna_spice::backend::BackendKind;
use sna_spice::dc::{dc_operating_point, NewtonOptions};
use sna_spice::devices::{MosPolarity, MosfetModel, SourceWaveform};
use sna_spice::netlist::{Circuit, NodeId};
use sna_spice::solver::SolverKind;
use sna_spice::sweep::BatchedSweep;
use sna_spice::tran::{transient, transient_adaptive, AdaptiveOptions, Integrator, TranParams};
use sna_spice::units::{NS, PS};

/// RC ladder with `n_nodes` chain nodes; per-lane `scale` stretches every
/// element value while leaving the topology untouched.
fn ladder(n_nodes: usize, scale: f64, v1: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("n0");
    ckt.add_vsource(
        "Vin",
        prev,
        Circuit::gnd(),
        SourceWaveform::Ramp {
            v0: 0.0,
            v1,
            t_start: 0.1 * NS,
            t_rise: 100.0 * PS,
        },
    );
    for i in 1..n_nodes {
        let next = ckt.node(&format!("n{i}"));
        ckt.add_resistor(&format!("R{i}"), prev, next, 50.0 * scale)
            .unwrap();
        ckt.add_capacitor(&format!("C{i}"), next, Circuit::gnd(), 2e-15 * scale)
            .unwrap();
        prev = next;
    }
    ckt
}

/// CMOS inverter under an input glitch; `peak_frac`/`cload` vary per lane.
fn inverter(peak_frac: f64, cload: f64) -> Circuit {
    let nmos = MosfetModel {
        polarity: MosPolarity::Nmos,
        vt0: 0.32,
        kp: 2.5e-4,
        lambda: 0.15,
        gamma: 0.4,
        phi: 0.7,
        cox: 0.012,
        cgso: 3e-10,
        cgdo: 3e-10,
        cj: 8e-10,
    };
    let pmos = MosfetModel {
        polarity: MosPolarity::Pmos,
        vt0: -0.34,
        kp: 1.0e-4,
        ..nmos
    };
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource("Vdd", vdd, Circuit::gnd(), SourceWaveform::Dc(1.2));
    ckt.add_vsource(
        "Vin",
        inp,
        Circuit::gnd(),
        SourceWaveform::TriangleGlitch {
            v_base: 1.2,
            v_peak: 1.2 - peak_frac * 1.2,
            t_start: 0.1 * NS,
            t_rise: 100.0 * PS,
            t_fall: 100.0 * PS,
        },
    );
    ckt.add_mosfet(
        "Mn",
        out,
        inp,
        Circuit::gnd(),
        Circuit::gnd(),
        nmos,
        0.42e-6,
        0.13e-6,
    )
    .unwrap();
    ckt.add_mosfet("Mp", out, inp, vdd, vdd, pmos, 0.64e-6, 0.13e-6)
        .unwrap();
    ckt.add_capacitor("Cl", out, Circuit::gnd(), cload).unwrap();
    ckt
}

fn probe(ckt: &Circuit, name: &str) -> NodeId {
    ckt.find_node(name).expect("probe node")
}

/// Serial references, one per lane, on the same solver selection.
fn serial_transients(
    circuits: &[Circuit],
    kind: SolverKind,
    params: &TranParams,
) -> Vec<sna_spice::tran::TranResult> {
    circuits
        .iter()
        .map(|c| {
            let mut p = *params;
            p.solver = kind;
            transient(c, &p).expect("serial transient")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batched DC solutions match K independent serial solves to 1e-9 on
    /// random linear ladders, on both the dense and sparse states and both
    /// compute backends.
    #[test]
    fn prop_batched_dc_matches_serial(
        n_nodes in 3usize..14,
        scales in proptest::collection::vec(0.5f64..2.0, 3),
        v1 in 0.5f64..2.0,
    ) {
        let circuits: Vec<Circuit> = scales.iter().map(|&s| ladder(n_nodes, s, v1)).collect();
        for kind in [SolverKind::Dense, SolverKind::Sparse] {
            for backend in [BackendKind::Scalar, BackendKind::Batched] {
                let mut sweep = BatchedSweep::new(&circuits, kind, backend).unwrap();
                let sols = sweep
                    .dc_operating_points(&circuits, &NewtonOptions::default(), None)
                    .unwrap();
                for (ckt, sol) in circuits.iter().zip(&sols) {
                    let opts = NewtonOptions {
                        solver: kind,
                        ..Default::default()
                    };
                    let serial = dc_operating_point(ckt, &opts, None).unwrap();
                    for (a, b) in sol.unknowns().iter().zip(serial.unknowns()) {
                        prop_assert!((a - b).abs() < 1e-9, "{kind:?}/{backend:?}: {a} vs {b}");
                    }
                }
            }
        }
    }

    /// Batched fixed-step transients match K independent serial transients
    /// to 1e-9 on random linear ladders.
    #[test]
    fn prop_batched_transient_matches_serial(
        n_nodes in 3usize..10,
        scales in proptest::collection::vec(0.5f64..2.0, 3),
        trap in 0usize..2,
    ) {
        let circuits: Vec<Circuit> = scales.iter().map(|&s| ladder(n_nodes, s, 1.2)).collect();
        let mut params = TranParams::new(0.3 * NS, 3.0 * PS);
        params.method = if trap == 1usize { Integrator::Trapezoidal } else { Integrator::BackwardEuler };
        for kind in [SolverKind::Dense, SolverKind::Sparse] {
            let mut sweep = BatchedSweep::new(&circuits, kind, BackendKind::Batched).unwrap();
            let results = sweep.transient(&circuits, &params).unwrap();
            let serial = serial_transients(&circuits, kind, &params);
            for ((ckt, batched), reference) in circuits.iter().zip(&results).zip(&serial) {
                let node = probe(ckt, &format!("n{}", n_nodes - 1));
                let diff = reference
                    .node_waveform(node)
                    .max_abs_difference(&batched.node_waveform(node));
                prop_assert!(diff < 1e-9, "{kind:?}: batched deviates by {diff:.3e}");
            }
        }
    }
}

/// Non-linear lanes (per-lane glitch height and load) match serial Newton
/// transients within the Newton tolerance band, for both integrators.
#[test]
fn nonlinear_inverter_batched_matches_serial() {
    let circuits: Vec<Circuit> = [(0.55, 8e-15), (0.7, 10e-15), (0.85, 14e-15), (1.0, 20e-15)]
        .iter()
        .map(|&(p, c)| inverter(p, c))
        .collect();
    for method in [Integrator::Trapezoidal, Integrator::BackwardEuler] {
        let mut params = TranParams::new(0.5 * NS, 2.0 * PS);
        params.method = method;
        let mut sweep =
            BatchedSweep::new(&circuits, SolverKind::Dense, BackendKind::Batched).expect("sweep");
        let results = sweep
            .transient(&circuits, &params)
            .expect("batched transient");
        let serial = serial_transients(&circuits, SolverKind::Dense, &params);
        for ((ckt, batched), reference) in circuits.iter().zip(&results).zip(&serial) {
            assert!(batched.newton_iterations > 0, "must exercise Newton");
            let out = probe(ckt, "out");
            let diff = reference
                .node_waveform(out)
                .max_abs_difference(&batched.node_waveform(out));
            assert!(
                diff < 1e-6,
                "{method:?}: batched deviates from serial by {diff:.3e}"
            );
        }
    }
}

/// Non-linear batched DC (masked Newton) matches the serial operating
/// point per lane.
#[test]
fn nonlinear_inverter_dc_matches_serial() {
    let circuits: Vec<Circuit> = [(0.55, 8e-15), (0.85, 14e-15)]
        .iter()
        .map(|&(p, c)| inverter(p, c))
        .collect();
    let mut sweep =
        BatchedSweep::new(&circuits, SolverKind::Dense, BackendKind::Batched).expect("sweep");
    let sols = sweep
        .dc_operating_points(&circuits, &NewtonOptions::default(), None)
        .expect("batched dc");
    for (ckt, sol) in circuits.iter().zip(&sols) {
        let serial = dc_operating_point(ckt, &NewtonOptions::default(), None).expect("serial dc");
        for (a, b) in sol.unknowns().iter().zip(serial.unknowns()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
}

/// Adaptive lock-step control: with identical lanes the worst-lane error
/// equals every lane's error, so the batched step-size ladder reproduces
/// the serial one exactly and the sampled waveforms are comparable 1:1.
#[test]
fn adaptive_identical_lanes_match_serial_grid() {
    for (ckt, name) in [(ladder(8, 1.0, 1.2), "n7"), (inverter(0.8, 10e-15), "out")] {
        let circuits = vec![ckt.clone(), ckt.clone(), ckt.clone()];
        let mut opts = AdaptiveOptions::new(0.5 * NS);
        opts.solver = SolverKind::Dense;
        let mut sweep =
            BatchedSweep::new(&circuits, SolverKind::Dense, BackendKind::Batched).expect("sweep");
        let results = sweep
            .transient_adaptive(&circuits, &opts)
            .expect("batched adaptive");
        let reference = transient_adaptive(&ckt, &opts).expect("serial adaptive");
        assert_eq!(
            results[0].times().len(),
            reference.times().len(),
            "identical lanes must reproduce the serial step ladder"
        );
        let node = probe(&ckt, name);
        for lane in &results {
            let diff = reference
                .node_waveform(node)
                .max_abs_difference(&lane.node_waveform(node));
            assert!(diff < 1e-6, "adaptive lane deviates by {diff:.3e}");
        }
    }
}

/// The two CPU backends must agree *bitwise*: same SoA planes, same
/// per-lane operation sequence, different loop nesting only.
#[test]
fn scalar_and_batched_backends_bitwise_identical() {
    // Linear + sparse state.
    let lin: Vec<Circuit> = [0.6, 0.9, 1.3, 1.7]
        .iter()
        .map(|&s| ladder(12, s, 1.2))
        .collect();
    // Non-linear + dense state (Newton masks in play).
    let nl: Vec<Circuit> = [(0.6, 8e-15), (0.8, 12e-15), (1.0, 18e-15)]
        .iter()
        .map(|&(p, c)| inverter(p, c))
        .collect();
    let lin_nodes: Vec<String> = (0..12).map(|i| format!("n{i}")).collect();
    let nl_nodes = vec!["vdd".to_string(), "in".to_string(), "out".to_string()];
    for (circuits, kind, nodes) in [
        (lin, SolverKind::Sparse, lin_nodes),
        (nl, SolverKind::Dense, nl_nodes),
    ] {
        let params = TranParams::new(0.4 * NS, 2.0 * PS);
        let run = |backend: BackendKind| {
            let mut sweep = BatchedSweep::new(&circuits, kind, backend).expect("sweep");
            let dc = sweep
                .dc_operating_points(&circuits, &NewtonOptions::default(), None)
                .expect("dc");
            let tr = sweep.transient(&circuits, &params).expect("transient");
            (dc, tr)
        };
        let (dc_s, tr_s) = run(BackendKind::Scalar);
        let (dc_b, tr_b) = run(BackendKind::Batched);
        for (a, b) in dc_s.iter().zip(&dc_b) {
            for (x, y) in a.unknowns().iter().zip(b.unknowns()) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{kind:?}: DC differs across backends"
                );
            }
        }
        for (lane, (a, b)) in tr_s.iter().zip(&tr_b).enumerate() {
            assert_eq!(a.times(), b.times());
            for name in &nodes {
                let wa = a.waveform(name).expect("node present");
                let wb = b.waveform(name).expect("node present");
                for (x, y) in wa.values().iter().zip(wb.values()) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "lane {lane} node {name} {kind:?}: differs across backends"
                    );
                }
            }
        }
    }
}

/// Fingerprint guards: wrong lane count, changed element values, and
/// mismatched topologies are all rejected with a clear error.
#[test]
fn sweep_rejects_mismatched_lanes() {
    let a = ladder(6, 1.0, 1.2);
    let b = ladder(6, 1.5, 1.2);
    // Topology mismatch at construction.
    let short = ladder(5, 1.0, 1.2);
    let err = BatchedSweep::new(&[a.clone(), short], SolverKind::Dense, BackendKind::Batched)
        .err()
        .expect("topology mismatch must be rejected");
    assert!(err.to_string().contains("topology"), "got: {err}");
    // Lane-count mismatch on reuse.
    let mut sweep = BatchedSweep::new(
        &[a.clone(), b.clone()],
        SolverKind::Dense,
        BackendKind::Batched,
    )
    .unwrap();
    let err = sweep
        .dc_operating_points(std::slice::from_ref(&a), &NewtonOptions::default(), None)
        .unwrap_err();
    assert!(err.to_string().contains("lane count"), "got: {err}");
    // Element-value change on reuse (lanes swapped).
    let err = sweep
        .dc_operating_points(&[b, a], &NewtonOptions::default(), None)
        .unwrap_err();
    assert!(err.to_string().contains("element values"), "got: {err}");
}
