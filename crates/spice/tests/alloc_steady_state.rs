//! Debug-mode allocation counter proving the transient inner loops are
//! allocation-free.
//!
//! A counting global allocator wraps the system allocator; each scenario is
//! run at a short and a 4× longer horizon on a pre-built [`TranWorkspace`].
//! Every per-step heap allocation would multiply with the step count
//! (thousands of extra steps), so asserting the two counts differ by at
//! most a small constant proves the stepping loops only touch workspace
//! buffers. The constant slack covers once-per-run setup (result-trace
//! `with_capacity` calls, the DC solve, `HashMap` growth in the adaptive
//! factor cache) — none of which scale with steps.
//!
//! One `#[test]` only: parallel tests in the same binary would share the
//! counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sna_spice::backend::BackendKind;
use sna_spice::devices::{MosPolarity, MosfetModel, SourceWaveform};
use sna_spice::netlist::Circuit;
use sna_spice::solver::SolverKind;
use sna_spice::sweep::BatchedSweep;
use sna_spice::tran::{
    transient_adaptive_with, transient_with, AdaptiveOptions, TranParams, TranWorkspace,
};
use sna_spice::units::{NS, PS};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCS.load(Ordering::Relaxed) - before, out)
}

/// Linear RC ladder, `n_nodes` unknowns plus one source row.
fn ladder(n_nodes: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("n0");
    ckt.add_vsource(
        "Vin",
        prev,
        Circuit::gnd(),
        SourceWaveform::Ramp {
            v0: 0.0,
            v1: 1.2,
            t_start: 0.1 * NS,
            t_rise: 100.0 * PS,
        },
    );
    for i in 1..n_nodes {
        let next = ckt.node(&format!("n{i}"));
        ckt.add_resistor(&format!("R{i}"), prev, next, 50.0)
            .unwrap();
        ckt.add_capacitor(&format!("C{i}"), next, Circuit::gnd(), 2e-15)
            .unwrap();
        prev = next;
    }
    ckt
}

/// CMOS inverter hit by an input glitch — Newton iterations every step.
fn inverter() -> Circuit {
    let nmos = MosfetModel {
        polarity: MosPolarity::Nmos,
        vt0: 0.32,
        kp: 2.5e-4,
        lambda: 0.15,
        gamma: 0.4,
        phi: 0.7,
        cox: 0.012,
        cgso: 3e-10,
        cgdo: 3e-10,
        cj: 8e-10,
    };
    let pmos = MosfetModel {
        polarity: MosPolarity::Pmos,
        vt0: -0.34,
        kp: 1.0e-4,
        ..nmos
    };
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource("Vdd", vdd, Circuit::gnd(), SourceWaveform::Dc(1.2));
    ckt.add_vsource(
        "Vin",
        inp,
        Circuit::gnd(),
        SourceWaveform::TriangleGlitch {
            v_base: 1.2,
            v_peak: 0.2,
            t_start: 0.2 * NS,
            t_rise: 150.0 * PS,
            t_fall: 150.0 * PS,
        },
    );
    ckt.add_mosfet(
        "Mn",
        out,
        inp,
        Circuit::gnd(),
        Circuit::gnd(),
        nmos,
        0.42e-6,
        0.13e-6,
    )
    .unwrap();
    ckt.add_mosfet("Mp", out, inp, vdd, vdd, pmos, 0.64e-6, 0.13e-6)
        .unwrap();
    ckt.add_capacitor("Cl", out, Circuit::gnd(), 10e-15)
        .unwrap();
    ckt
}

/// Fixed-step runs at 1× and 4× the horizon must allocate within `slack`
/// of each other despite the ~3× extra steps.
fn assert_fixed_step_alloc_free(ckt: &Circuit, kind: SolverKind, dt: f64, slack: u64) {
    let mut ws = TranWorkspace::new(ckt, kind).unwrap();
    let mut short_params = TranParams::new(0.4 * NS, dt);
    short_params.solver = kind;
    let mut long_params = TranParams::new(1.6 * NS, dt);
    long_params.solver = kind;
    // Warm-up: fills any lazily-created factor state.
    transient_with(ckt, &short_params, &mut ws).unwrap();
    let (short, _) = allocs(|| transient_with(ckt, &short_params, &mut ws));
    let (long, _) = allocs(|| transient_with(ckt, &long_params, &mut ws));
    let extra_steps = (1.2 * NS / dt) as u64;
    assert!(
        long <= short + slack,
        "{kind:?}: {long} allocations at 4x horizon vs {short} at 1x \
         ({extra_steps} extra steps should be allocation-free)"
    );
}

/// Same bound for the adaptive controller (per-`h` factor cache included).
fn assert_adaptive_alloc_free(ckt: &Circuit, kind: SolverKind, slack: u64) {
    let mut ws = TranWorkspace::new(ckt, kind).unwrap();
    let mut short_opts = AdaptiveOptions::new(0.4 * NS);
    short_opts.solver = kind;
    let mut long_opts = AdaptiveOptions::new(1.6 * NS);
    long_opts.solver = kind;
    transient_adaptive_with(ckt, &short_opts, &mut ws).unwrap();
    let (short, _) = allocs(|| transient_adaptive_with(ckt, &short_opts, &mut ws));
    let (long, _) = allocs(|| transient_adaptive_with(ckt, &long_opts, &mut ws));
    assert!(
        long <= short + slack,
        "{kind:?} adaptive: {long} allocations at 4x horizon vs {short} at 1x"
    );
}

/// K-lane variants of a base circuit differing only in the noisy source's
/// waveform (the only thing [`BatchedSweep`] allows to change per lane).
fn lanes_of(base: &Circuit, source: &str, waves: &[SourceWaveform]) -> Vec<Circuit> {
    waves
        .iter()
        .map(|w| {
            let mut ckt = base.clone();
            ckt.set_source_wave(source, w.clone()).unwrap();
            ckt
        })
        .collect()
}

/// The batched stepping loops must match the serial contract: a 4× horizon
/// costs at most `slack` more allocations than 1×, across all K lanes.
fn assert_batched_alloc_free(
    lanes: &[Circuit],
    kind: SolverKind,
    backend: BackendKind,
    dt: f64,
    slack: u64,
) {
    let mut sweep = BatchedSweep::new(lanes, kind, backend).unwrap();
    let short_params = TranParams::new(0.4 * NS, dt);
    let long_params = TranParams::new(1.6 * NS, dt);
    sweep.transient(lanes, &short_params).unwrap();
    let (short, _) = allocs(|| sweep.transient(lanes, &short_params));
    let (long, _) = allocs(|| sweep.transient(lanes, &long_params));
    assert!(
        long <= short + slack,
        "{kind:?}/{backend:?} batched: {long} allocations at 4x horizon vs {short} at 1x"
    );
    let short_opts = AdaptiveOptions::new(0.4 * NS);
    let long_opts = AdaptiveOptions::new(1.6 * NS);
    sweep.transient_adaptive(lanes, &short_opts).unwrap();
    let (short, _) = allocs(|| sweep.transient_adaptive(lanes, &short_opts));
    let (long, _) = allocs(|| sweep.transient_adaptive(lanes, &long_opts));
    assert!(
        long <= short + slack,
        "{kind:?}/{backend:?} batched adaptive: {long} allocations at 4x horizon vs {short} at 1x"
    );
}

#[test]
fn stepping_loops_do_not_allocate_per_step() {
    // Run with the observability layer fully armed: counters are always on,
    // and enabling phase timing proves the span bookkeeping (two Instant
    // reads + atomic adds into a pre-registered thread-local recorder) is
    // allocation-free too. Only chrome-tracing allocates, and that never
    // runs inside the stepping loops.
    sna_obs::set_timing_enabled(true);
    // Touch the thread-local recorder once so its one-time registration
    // (an Arc + two boxed arrays) lands in setup, not in the measurement.
    let _ = sna_obs::local_snapshot();
    let lin = ladder(120); // above the sparse auto threshold
    let nl = inverter();
    for kind in [SolverKind::Dense, SolverKind::Sparse] {
        // Fixed-step: the loop body is fully hoisted, so the only horizon-
        // dependent allocations are the pre-sized recording vectors.
        assert_fixed_step_alloc_free(&lin, kind, 2.0 * PS, 32);
        assert_fixed_step_alloc_free(&nl, kind, 1.0 * PS, 32);
        // Adaptive: allow for a few new per-step-size cache entries, which
        // are bounded by the h-ladder, not by the step count.
        assert_adaptive_alloc_free(&lin, kind, 96);
        assert_adaptive_alloc_free(&nl, kind, 96);
    }
    // Batched K-lane sweeps: same steady-state contract, K=4. The recording
    // vectors are per lane, so the slack is proportionally wider; the
    // stepping loops themselves must stay allocation-free.
    let lin_lanes = lanes_of(
        &lin,
        "Vin",
        &(0..4)
            .map(|i| SourceWaveform::Ramp {
                v0: 0.0,
                v1: 0.3 * (i + 1) as f64,
                t_start: 0.1 * NS,
                t_rise: 100.0 * PS,
            })
            .collect::<Vec<_>>(),
    );
    let nl_lanes = lanes_of(
        &nl,
        "Vin",
        &(0..4)
            .map(|i| SourceWaveform::TriangleGlitch {
                v_base: 1.2,
                v_peak: 0.9 - 0.2 * i as f64,
                t_start: 0.2 * NS,
                t_rise: 150.0 * PS,
                t_fall: 150.0 * PS,
            })
            .collect::<Vec<_>>(),
    );
    for backend in [BackendKind::Scalar, BackendKind::Batched] {
        assert_batched_alloc_free(&lin_lanes, SolverKind::Sparse, backend, 2.0 * PS, 256);
        assert_batched_alloc_free(&nl_lanes, SolverKind::Dense, backend, 1.0 * PS, 256);
    }
}
