//! Golden snapshot tests for the deck front-end.
//!
//! Every `tests/decks/*.cir` has a checked-in `*.snap` next to it holding
//! the [`sna_spice::parser::dump_parsed`] dump of its parse. A parser change
//! that alters any dump fails here with a diff hint; when the change is
//! intentional, regenerate the goldens with
//!
//! ```text
//! SNAPSHOT_UPDATE=1 cargo test -p sna-spice --test parser_snapshots
//! ```
//!
//! and commit the updated `.snap` files.

use std::fs;
use std::path::{Path, PathBuf};

use sna_spice::parser::{dump_parsed, parse_deck_file};

fn decks_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/decks")
}

fn check_snapshot(deck: &str) {
    let cir = decks_dir().join(format!("{deck}.cir"));
    let snap = decks_dir().join(format!("{deck}.snap"));
    let parsed = parse_deck_file(&cir).unwrap_or_else(|e| panic!("{deck}.cir must parse: {e}"));
    let dump = dump_parsed(&parsed);
    if std::env::var_os("SNAPSHOT_UPDATE").is_some() {
        fs::write(&snap, &dump).expect("write snapshot");
        return;
    }
    let want = fs::read_to_string(&snap).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}; run with SNAPSHOT_UPDATE=1 to create it",
            snap.display()
        )
    });
    assert_eq!(
        dump, want,
        "parse dump of {deck}.cir drifted from its golden; if intentional, \
         regenerate with SNAPSHOT_UPDATE=1 and commit the .snap"
    );
}

#[test]
fn snapshot_inverter() {
    check_snapshot("inverter");
}

#[test]
fn snapshot_coupled_bus() {
    check_snapshot("coupled_bus");
}

#[test]
fn snapshot_subckt_hierarchy() {
    check_snapshot("subckt_hierarchy");
}

#[test]
fn snapshot_controlled_filter() {
    check_snapshot("controlled_filter");
}

/// The hierarchy corpus deck is the acceptance-criteria deck: two nested
/// subcircuit levels, a controlled source, a `.model` card, and a `.ic`.
#[test]
fn hierarchy_deck_flattens_as_specified() {
    let parsed = parse_deck_file(decks_dir().join("subckt_hierarchy.cir")).unwrap();
    let c = &parsed.circuit;
    // Two levels: Xa instantiates stage, which instantiates seg twice.
    assert!(c.find_element("xa.x1.Rs").is_some(), "nested seg resistor");
    assert!(
        c.find_element("xv.x2.Rs").is_some(),
        "victim-side nested seg"
    );
    assert!(c.find_element("xa.D1").is_some(), "diode in stage");
    assert!(c.find_element("Ebuf").is_some(), "controlled source at top");
    assert_eq!(parsed.ics, vec![("vic".to_string(), 0.05)]);
    assert_eq!(parsed.sna_cards.len(), 1);
    assert!(parsed.tran.is_some());
}

// ---------------------------------------------------------------------------
// Error-provenance regressions: reported lines must be original file:line,
// surviving `+` continuation merging and `.include` expansion.
// ---------------------------------------------------------------------------

struct TempDeckDir(PathBuf);

impl TempDeckDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("sna_parser_prov_{tag}_{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir tempdir");
        TempDeckDir(dir)
    }
    fn write(&self, name: &str, content: &str) -> PathBuf {
        let p = self.0.join(name);
        fs::write(&p, content).expect("write temp deck");
        p
    }
}

impl Drop for TempDeckDir {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn error_line_survives_include_expansion() {
    let dir = TempDeckDir::new("inc");
    // The bad card sits at line 3 of the INCLUDED file, after two good lines.
    dir.write("sub.cir", "R1 a 0 1k\nC1 a 0 1p\nR2 a 0 bogus\n");
    let main = dir.write("main.cir", "title\nV1 a 0 DC 1\n.include sub.cir\n.end\n");
    let err = parse_deck_file(&main).unwrap_err().to_string();
    assert!(
        err.contains("sub.cir"),
        "error must name the included file: {err}"
    );
    assert!(
        err.contains("line 3"),
        "error must use the included file's line: {err}"
    );
}

#[test]
fn error_line_survives_continuation_inside_include() {
    let dir = TempDeckDir::new("cont");
    // The card starts at line 2 of the included file and continues over two
    // physical lines; the bad token is on line 4, but provenance points at
    // the card's first physical line.
    dir.write("frag.cir", "* fragment\nR1 a\n+ 0\n+ nonsense\nC1 a 0 1p\n");
    let main = dir.write("main.cir", "title\nV1 a 0 DC 1\n.include frag.cir\n");
    let err = parse_deck_file(&main).unwrap_err().to_string();
    assert!(
        err.contains("frag.cir"),
        "error must name the included file: {err}"
    );
    assert!(
        err.contains("line 2"),
        "error must point at the card start: {err}"
    );
}

#[test]
fn include_site_named_for_unreadable_file() {
    let dir = TempDeckDir::new("missing");
    let main = dir.write("main.cir", "title\n.include nope.cir\n");
    let err = parse_deck_file(&main).unwrap_err().to_string();
    assert!(
        err.contains("main.cir"),
        "error must name the including file: {err}"
    );
    assert!(
        err.contains("line 2"),
        "error must point at the .include card: {err}"
    );
    assert!(
        err.contains("nope.cir"),
        "error must name the missing file: {err}"
    );
}

#[test]
fn include_cycle_detected_with_provenance() {
    let dir = TempDeckDir::new("cycle");
    dir.write("a.cir", "title\n.include b.cir\n");
    dir.write("b.cir", ".include a.cir\n");
    let err = parse_deck_file(dir.0.join("a.cir"))
        .unwrap_err()
        .to_string();
    assert!(err.contains("circular"), "cycle must be detected: {err}");
}
