//! Panic-safety fuzz harness for the deck front-end.
//!
//! [`parse_deck`] must never panic: every malformed input maps to
//! `Error::Parse`. This harness drives it with structured mutations of the
//! checked-in corpus decks (line splices, truncations, token injections,
//! character noise) plus raw random bytes. Run in CI with a fixed budget:
//!
//! ```text
//! cargo test -p sna-spice parser_fuzz -- --ignored
//! ```
//!
//! Override the budget with `PARSER_FUZZ_ITERS=<n>`. The PRNG seed is fixed,
//! so a CI failure reproduces locally with the same iteration count.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use sna_spice::parser::parse_deck;

/// xorshift64* — deterministic, no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Tokens that exercise every parser code path when spliced in at random.
const DICTIONARY: &[&str] = &[
    ".subckt",
    ".ends",
    ".end",
    ".model",
    ".include",
    ".tran",
    ".dc",
    ".ic",
    ".sna",
    "+",
    "*",
    "X1",
    "seg",
    "NMOS",
    "PMOS",
    "D",
    "PULSE(",
    "PWL(",
    "DC",
    "(",
    ")",
    "=",
    "{r}",
    "{",
    "}",
    "victim=",
    "aggressors=",
    "threshold=",
    "name=",
    "w=",
    "l=",
    "vto=",
    "uic",
    "v(",
    "0",
    "1k",
    "1e999",
    "-1e-999",
    "nan",
    "inf",
    "9999999999999999999",
    "1meg",
    "..",
    ",",
    ",,",
    ";",
    "$",
];

fn seed_corpus() -> Vec<String> {
    let decks = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/decks");
    let mut corpus: Vec<String> = std::fs::read_dir(&decks)
        .expect("corpus dir")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "cir").then(|| std::fs::read_to_string(&p).ok())?
        })
        .collect();
    corpus.push(
        "rc\nV1 a 0 PWL(0 0 1n 1.2)\nR1 a b 1k\nC1 b 0 1p\n.tran 1p 2n uic\n.end\n".to_string(),
    );
    corpus.push(".subckt s a\nR1 a 0 1k\n.ends\nXs n1 s\n.ic v(n1)=1\n".to_string());
    assert!(corpus.len() >= 5, "corpus decks must be present");
    corpus
}

fn mutate(rng: &mut Rng, corpus: &[String]) -> String {
    let base = &corpus[rng.below(corpus.len())];
    let mut lines: Vec<String> = base.lines().map(str::to_string).collect();
    for _ in 0..=rng.below(6) {
        match rng.below(8) {
            // Splice a line from another corpus deck.
            0 => {
                let other = &corpus[rng.below(corpus.len())];
                let donor: Vec<&str> = other.lines().collect();
                if !donor.is_empty() && !lines.is_empty() {
                    let at = rng.below(lines.len());
                    lines.insert(at, donor[rng.below(donor.len())].to_string());
                }
            }
            // Delete a line (unbalances .subckt/.ends, drops .model, ...).
            1 => {
                if !lines.is_empty() {
                    lines.remove(rng.below(lines.len()));
                }
            }
            // Duplicate a line (duplicate element / subckt names).
            2 => {
                if !lines.is_empty() {
                    let l = lines[rng.below(lines.len())].clone();
                    lines.push(l);
                }
            }
            // Truncate a line at a random char boundary.
            3 => {
                if !lines.is_empty() {
                    let at = rng.below(lines.len());
                    let n_chars = lines[at].chars().count();
                    let keep = rng.below(n_chars + 1);
                    lines[at] = lines[at].chars().take(keep).collect();
                }
            }
            // Inject dictionary tokens into a line.
            4 => {
                if !lines.is_empty() {
                    let at = rng.below(lines.len());
                    let tok = DICTIONARY[rng.below(DICTIONARY.len())];
                    let mut toks: Vec<&str> = lines[at].split_whitespace().collect();
                    toks.insert(rng.below(toks.len() + 1), tok);
                    lines[at] = toks.join(" ");
                }
            }
            // Replace a whole line with dictionary soup.
            5 => {
                let n = 1 + rng.below(8);
                let soup: Vec<&str> = (0..n)
                    .map(|_| DICTIONARY[rng.below(DICTIONARY.len())])
                    .collect();
                let line = soup.join(" ");
                if lines.is_empty() {
                    lines.push(line);
                } else {
                    let at = rng.below(lines.len());
                    lines[at] = line;
                }
            }
            // Flip a character to printable-ASCII noise.
            6 => {
                if !lines.is_empty() {
                    let at = rng.below(lines.len());
                    let mut chars: Vec<char> = lines[at].chars().collect();
                    if !chars.is_empty() {
                        let i = rng.below(chars.len());
                        chars[i] = (b' ' + (rng.next() % 95) as u8) as char;
                        lines[at] = chars.into_iter().collect();
                    }
                }
            }
            // Shuffle: swap two lines (e.g. .ends before .subckt).
            _ => {
                if lines.len() >= 2 {
                    let a = rng.below(lines.len());
                    let b = rng.below(lines.len());
                    lines.swap(a, b);
                }
            }
        }
    }
    lines.join("\n")
}

fn assert_no_panic(input: &str, tag: &str) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _ = parse_deck(input);
    }));
    assert!(
        result.is_ok(),
        "parse_deck panicked on {tag} input:\n---\n{input}\n---"
    );
}

#[test]
#[ignore = "fuzz budget is CI-sized; run explicitly with -- --ignored"]
fn parser_fuzz_never_panics() {
    let iters: usize = std::env::var("PARSER_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5000);
    let corpus = seed_corpus();
    let mut rng = Rng(0x5EED_2005_DA7E_0001);
    for i in 0..iters {
        let input = mutate(&mut rng, &corpus);
        assert_no_panic(&input, &format!("mutated (iter {i})"));
    }
}

#[test]
#[ignore = "fuzz budget is CI-sized; run explicitly with -- --ignored"]
fn parser_fuzz_random_bytes_never_panic() {
    let iters: usize = std::env::var("PARSER_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5000);
    let mut rng = Rng(0xDEAD_BEEF_2005_0002);
    for i in 0..iters {
        let len = rng.below(400);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next() & 0xFF) as u8).collect();
        let input = String::from_utf8_lossy(&bytes).into_owned();
        assert_no_panic(&input, &format!("random-bytes (iter {i})"));
    }
}

/// Quick deterministic smoke (not ignored): a handful of known nasty inputs.
#[test]
fn parser_handles_known_nasty_inputs() {
    for input in [
        "",
        "\n",
        "t\n+",
        "+ only continuation",
        "t\n.subckt",
        "t\n.subckt s a a\n.ends",
        "t\n.ends",
        "t\nX1",
        "t\nR1 a b",
        "t\nR1 a b 1e999",
        "t\nV1 a 0 PWL(0 0 0 1)",
        "t\nM1 a b c d",
        "t\n.model m NMOS (vto=)",
        "t\n.ic v(=1",
        "t\n.sna =",
        "t\n.tran",
        "t\n.include x.cir",
        "t\nR1 a 0 {undefined}",
        "t\n( ) = ( ) =",
    ] {
        assert_no_panic(input, "nasty");
    }
}
