//! Property test: arbitrary linear netlists survive a write→parse round
//! trip with identical DC solutions.

use proptest::prelude::*;
use sna_spice::dc::{dc_operating_point, NewtonOptions};
use sna_spice::devices::{DiodeModel, SourceWaveform};
use sna_spice::netlist::Circuit;
use sna_spice::parser::{parse_deck, write_deck};

/// Build a random ladder-ish RC circuit with a driving source:
/// node chain n0..n_k with resistors, random caps to ground, source at n0.
fn build_circuit(res: &[f64], caps: &[(usize, f64)], v: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("n0");
    ckt.add_vsource("Vdrv", prev, Circuit::gnd(), SourceWaveform::Dc(v));
    for (i, &r) in res.iter().enumerate() {
        let next = ckt.node(&format!("n{}", i + 1));
        ckt.add_resistor(&format!("R{i}"), prev, next, r).unwrap();
        prev = next;
    }
    // Terminate to ground so every node has a DC level.
    ckt.add_resistor("Rterm", prev, Circuit::gnd(), 1e4)
        .unwrap();
    for (k, &(node, c)) in caps.iter().enumerate() {
        let n = ckt.node(&format!("n{}", node % (res.len() + 1)));
        ckt.add_capacitor(&format!("C{k}"), n, Circuit::gnd(), c)
            .unwrap();
    }
    ckt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_write_parse_preserves_dc(
        res in proptest::collection::vec(1.0f64..1e5, 1..8),
        caps in proptest::collection::vec((0usize..8, 1e-16f64..1e-11), 0..6),
        v in -5.0f64..5.0,
    ) {
        let ckt = build_circuit(&res, &caps, v);
        let deck = write_deck(&ckt, "prop roundtrip");
        let parsed = parse_deck(&deck).expect("emitted deck must parse");
        prop_assert_eq!(parsed.circuit.element_count(), ckt.element_count());
        let opts = NewtonOptions::default();
        let s1 = dc_operating_point(&ckt, &opts, None).expect("dc original");
        let s2 = dc_operating_point(&parsed.circuit, &opts, None).expect("dc reparsed");
        for i in 0..=res.len() {
            let name = format!("n{i}");
            let a = ckt.find_node(&name).unwrap();
            let b = parsed.circuit.find_node(&name).unwrap();
            prop_assert!(
                (s1.voltage(a) - s2.voltage(b)).abs() < 1e-9,
                "node {} differs: {} vs {}", name, s1.voltage(a), s2.voltage(b)
            );
        }
    }

    /// Exact structural round trip including the controlled-source and
    /// diode element kinds: `parse_deck(write_deck(c)).circuit == c`.
    #[test]
    fn prop_write_parse_is_exact_with_controlled_sources(
        specs in proptest::collection::vec(
            (0usize..7, 0usize..97, 0usize..89, 0.001f64..1e4),
            1..14,
        ),
        n_nodes in 2usize..6,
        v in -3.0f64..3.0,
    ) {
        let mut ckt = Circuit::new();
        let nodes: Vec<_> = (0..n_nodes)
            .map(|i| ckt.node(&format!("n{i}")))
            .collect();
        // A driving source doubles as the F/H controlling branch.
        ckt.add_vsource("V0", nodes[0], Circuit::gnd(), SourceWaveform::Dc(v));
        // Anchor every node in index order so the reparsed circuit interns
        // them identically (nodes are interned in first-use order).
        for (j, &n) in nodes.iter().enumerate().skip(1) {
            ckt.add_resistor(&format!("Rb{j}"), n, Circuit::gnd(), 1e4)
                .unwrap();
        }
        for (i, &(kind, a, b, val)) in specs.iter().enumerate() {
            let p = nodes[a % n_nodes];
            let q = nodes[(a % n_nodes + 1 + b % (n_nodes - 1)) % n_nodes];
            match kind {
                0 => {
                    ckt.add_resistor(&format!("R{i}"), p, q, val).unwrap();
                }
                1 => {
                    ckt.add_capacitor(&format!("C{i}"), p, q, val * 1e-15)
                        .unwrap();
                }
                2 => {
                    ckt.add_vcvs(&format!("E{i}"), p, Circuit::gnd(), q, Circuit::gnd(), val)
                        .unwrap();
                }
                3 => {
                    ckt.add_cccs(&format!("F{i}"), p, q, "V0", val).unwrap();
                }
                4 => {
                    ckt.add_ccvs(&format!("H{i}"), p, q, "V0", val).unwrap();
                }
                5 => {
                    let model = DiodeModel {
                        is: val * 1e-16,
                        n: 1.0 + val * 1e-4,
                        cj0: val * 1e-16,
                    };
                    ckt.add_diode(&format!("D{i}"), p, q, model).unwrap();
                }
                _ => {
                    ckt.add_vsource(
                        &format!("Vs{i}"),
                        p,
                        Circuit::gnd(),
                        SourceWaveform::Pulse {
                            v0: 0.0,
                            v1: val,
                            t_delay: 1e-10,
                            t_rise: 2e-11,
                            t_fall: 2e-11,
                            t_width: 1e-9,
                        },
                    );
                }
            }
        }
        let deck = write_deck(&ckt, "ctrl roundtrip");
        let parsed = parse_deck(&deck).expect("emitted deck must parse");
        prop_assert_eq!(&parsed.circuit, &ckt, "deck:\n{}", deck);
    }

    #[test]
    fn prop_spice_numbers_roundtrip_through_display(
        mantissa in -1e3f64..1e3,
        exp in -15i32..6,
    ) {
        let v = mantissa * 10f64.powi(exp);
        let s = format!("{v:.9e}");
        let parsed = sna_spice::units::parse_spice_number(&s).expect("parse own format");
        let tol = v.abs() * 1e-8 + 1e-300;
        prop_assert!((parsed - v).abs() <= tol, "{s} -> {parsed} != {v}");
    }
}
