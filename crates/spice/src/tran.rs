//! Transient analysis.
//!
//! Fixed-step implicit integration of `C·v̇ + G·v + f(v) = b(t)`:
//! trapezoidal (default, 2nd order) or backward Euler. Each step solves a
//! Newton problem whose linear part `G + α·C` is constant, so *linear*
//! circuits (e.g. the injected-noise-only network of the superposition
//! baseline) are factored exactly once and back-substituted per step —
//! this asymmetry is part of why macromodel-based noise analysis is fast.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sna_obs::{count, phase_span, Metric, Phase};

use crate::dc::{dc_operating_point_with, NewtonOptions};
use crate::error::{Error, Result};
use crate::mna::MnaSystem;
use crate::netlist::{Circuit, Element, NodeId};
use crate::solver::{OwnedFactor, SolverKind, SystemSolver};
use crate::waveform::Waveform;

/// Upper bound on cached per-step-size factorizations in a
/// [`TranWorkspace`]; reaching it clears the cache (refactoring a handful
/// of h values is far cheaper than unbounded factor memory on a workspace
/// reused across many adaptive runs).
const LU_CACHE_MAX: usize = 64;

/// Implicit integration scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Integrator {
    /// First-order, L-stable; heavily damped.
    BackwardEuler,
    /// Second-order, A-stable; the default.
    Trapezoidal,
}

/// Transient analysis parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TranParams {
    /// Simulation end time (s); starts at 0.
    pub t_stop: f64,
    /// Fixed time step (s).
    pub dt: f64,
    /// Integration scheme.
    pub method: Integrator,
    /// Newton controls for each implicit step.
    pub newton: NewtonOptions,
    /// Use the DC operating point as the initial condition (default);
    /// when `false`, start from all-zeros (uic).
    pub dc_init: bool,
    /// Linear-solver backend for the step systems (the escape hatch over
    /// the dimension-based auto selection).
    pub solver: SolverKind,
}

impl TranParams {
    /// Conventional setup: trapezoidal with the given horizon and step.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        Self {
            t_stop,
            dt,
            method: Integrator::Trapezoidal,
            newton: NewtonOptions::default(),
            dc_init: true,
            solver: SolverKind::Auto,
        }
    }
}

/// Result of a transient analysis: every node voltage and every
/// voltage-source branch current at every time point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TranResult {
    times: Vec<f64>,
    /// `traces[n][k]` = voltage of node (n+1) at time k.
    traces: Vec<Vec<f64>>,
    /// `branch_currents[s][k]` = current of vsource s at time k.
    branch_currents: Vec<Vec<f64>>,
    node_names: Vec<String>,
    vsource_names: Vec<String>,
    /// Total Newton iterations spent over the run (diagnostic; 0 means the
    /// circuit was linear and solved by direct back-substitution).
    pub newton_iterations: usize,
}

impl TranResult {
    /// Simulated time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Voltage waveform of a node by [`NodeId`].
    pub fn node_waveform(&self, node: NodeId) -> Waveform {
        if node.is_ground() {
            return Waveform::constant(
                self.times.first().copied().unwrap_or(0.0),
                self.times.last().copied().unwrap_or(1.0),
                0.0,
            );
        }
        Waveform::from_samples(self.times.clone(), self.traces[node.index() - 1].clone())
            .expect("internal: monotone time axis")
    }

    /// Voltage waveform of a node by name.
    pub fn waveform(&self, name: &str) -> Option<Waveform> {
        let idx = self
            .node_names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))?;
        if idx == 0 {
            return Some(Waveform::constant(
                self.times.first().copied().unwrap_or(0.0),
                self.times.last().copied().unwrap_or(1.0),
                0.0,
            ));
        }
        Some(
            Waveform::from_samples(self.times.clone(), self.traces[idx - 1].clone())
                .expect("internal: monotone time axis"),
        )
    }

    /// Branch-current waveform of the named voltage source.
    pub fn vsource_current(&self, name: &str) -> Option<Waveform> {
        let k = self
            .vsource_names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))?;
        Some(
            Waveform::from_samples(self.times.clone(), self.branch_currents[k].clone())
                .expect("internal: monotone time axis"),
        )
    }

    /// Final solution snapshot (node voltages only), usable to seed another
    /// analysis.
    pub fn final_voltages(&self) -> Vec<f64> {
        self.traces
            .iter()
            .map(|tr| *tr.last().expect("non-empty trace"))
            .collect()
    }
}

/// Reusable per-topology transient state: the assembled [`MnaSystem`], the
/// (dense or sparse) [`SystemSolver`] with its symbolic analysis, the
/// per-step-size factor cache of the adaptive controller, and every scratch
/// vector the stepping loops need. Building one per call is what
/// [`transient`] does; characterization sweeps that re-simulate the same
/// topology with different source waveforms should build it once and call
/// [`transient_with`] / [`transient_adaptive_with`] so matrix assembly and
/// symbolic analysis are paid once per topology, and the inner loops run
/// allocation-free.
///
/// Only **source waveforms** may change between runs on one workspace: the
/// G/C matrices and cached factorizations are assembled at construction,
/// so any other edit — element values, device sizes, added/removed
/// elements or nodes — requires a fresh workspace (and is rejected by a
/// fingerprint check).
pub struct TranWorkspace {
    mna: MnaSystem,
    kind: SolverKind,
    solver: SystemSolver,
    /// Per-step-size factor cache for linear circuits (adaptive stepping
    /// alternates h and h/2 constantly).
    lu_cache: HashMap<u64, OwnedFactor>,
    // Step buffers, all of MNA dimension.
    b_prev: Vec<f64>,
    b_cur: Vec<f64>,
    rhs: Vec<f64>,
    scratch: Vec<f64>,
    residual: Vec<f64>,
    neg: Vec<f64>,
    dx: Vec<f64>,
    f_prev: Vec<f64>,
    solve_work: Vec<f64>,
    // Circuit fingerprint guarding workspace reuse.
    node_count: usize,
    element_count: usize,
    value_hash: u64,
    /// Per-run counters. Plain integers on the workspace — the stepping
    /// loops must stay allocation-free, so they bump fields here and the
    /// totals are flushed to `sna-obs` once per analysis call.
    stats: TranStats,
}

/// Counters accumulated by one transient run (fixed or adaptive), flushed
/// to the observability layer when the run completes.
#[derive(Debug, Default, Clone, Copy)]
struct TranStats {
    steps: u64,
    newton_iterations: u64,
    accepted: u64,
    rejected: u64,
}

impl TranStats {
    fn flush(&mut self) {
        count(Metric::TranCalls, 1);
        count(Metric::TranSteps, self.steps);
        count(Metric::TranNewtonIterations, self.newton_iterations);
        count(Metric::TranAcceptedSteps, self.accepted);
        count(Metric::TranRejectedSteps, self.rejected);
        *self = TranStats::default();
    }
}

/// FNV-1a of a string, used to fold element-name references (the F/H
/// controlling-source names) into the circuit fingerprints.
fn fnv_str(s: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in s.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Order-sensitive FNV-1a hash of every stamped element value *and* every
/// terminal wiring (source waveforms excluded — those are the one thing a
/// workspace re-run may legitimately change).
pub(crate) fn circuit_value_hash(circuit: &Circuit) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    };
    let n = |id: &NodeId| if id.is_ground() { 0 } else { id.index() as u64 };
    for el in circuit.elements() {
        match el {
            Element::Resistor { a, b, ohms, .. } => {
                mix(1 ^ ohms.to_bits());
                mix(n(a) | n(b) << 32);
            }
            Element::Capacitor { a, b, farads, .. } => {
                mix(2 ^ farads.to_bits());
                mix(n(a) | n(b) << 32);
            }
            // Waveform values excluded by design; the wiring still counts.
            Element::VSource { pos, neg, .. } => mix(3 ^ (n(pos) | n(neg) << 32)),
            Element::ISource { pos, neg, .. } => mix(4 ^ (n(pos) | n(neg) << 32)),
            Element::LinearVccs {
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                gm,
                ..
            } => {
                mix(5 ^ gm.to_bits());
                mix(n(out_p) | n(out_n) << 16 | n(ctrl_p) << 32 | n(ctrl_n) << 48);
            }
            // The table itself is assumed immutable (no mutator exposes
            // it); fingerprint its footprint and wiring only.
            Element::TableVccs {
                out_p, out_n, ctrl, ..
            } => mix(6 ^ (n(out_p) | n(out_n) << 16 | n(ctrl) << 32)),
            Element::Mosfet {
                d,
                g,
                s,
                b,
                model,
                w,
                l,
                ..
            } => {
                mix(7 ^ w.to_bits() ^ l.to_bits().rotate_left(1));
                mix(model.vt0.to_bits() ^ model.kp.to_bits().rotate_left(1));
                mix(n(d) | n(g) << 16 | n(s) << 32 | n(b) << 48);
            }
            Element::Vcvs {
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                gain,
                ..
            } => {
                mix(8 ^ gain.to_bits());
                mix(n(out_p) | n(out_n) << 16 | n(ctrl_p) << 32 | n(ctrl_n) << 48);
            }
            Element::Cccs {
                out_p,
                out_n,
                ctrl,
                gain,
                ..
            } => {
                mix(9 ^ gain.to_bits());
                mix(n(out_p) | n(out_n) << 32);
                mix(fnv_str(ctrl));
            }
            Element::Ccvs {
                out_p,
                out_n,
                ctrl,
                r,
                ..
            } => {
                mix(10 ^ r.to_bits());
                mix(n(out_p) | n(out_n) << 32);
                mix(fnv_str(ctrl));
            }
            Element::Diode {
                p: dp,
                n: dn,
                model,
                ..
            } => {
                mix(11 ^ model.is.to_bits());
                mix(model.n.to_bits() ^ model.cj0.to_bits().rotate_left(1));
                mix(n(dp) | n(dn) << 32);
            }
        }
    }
    h
}

/// Order-sensitive FNV-1a hash of the circuit *wiring only*: element kind
/// tags and terminal nodes, no values. Lanes of a batched sweep must share
/// this hash (identical topology) while their element values — and hence
/// their [`circuit_value_hash`] — may legitimately differ per lane.
pub(crate) fn circuit_topology_hash(circuit: &Circuit) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    };
    let n = |id: &NodeId| if id.is_ground() { 0 } else { id.index() as u64 };
    for el in circuit.elements() {
        match el {
            Element::Resistor { a, b, .. } => {
                mix(1);
                mix(n(a) | n(b) << 32);
            }
            Element::Capacitor { a, b, .. } => {
                mix(2);
                mix(n(a) | n(b) << 32);
            }
            Element::VSource { pos, neg, .. } => {
                mix(3);
                mix(n(pos) | n(neg) << 32);
            }
            Element::ISource { pos, neg, .. } => {
                mix(4);
                mix(n(pos) | n(neg) << 32);
            }
            Element::LinearVccs {
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                ..
            } => {
                mix(5);
                mix(n(out_p) | n(out_n) << 16 | n(ctrl_p) << 32 | n(ctrl_n) << 48);
            }
            Element::TableVccs {
                out_p, out_n, ctrl, ..
            } => {
                mix(6);
                mix(n(out_p) | n(out_n) << 16 | n(ctrl) << 32);
            }
            Element::Mosfet { d, g, s, b, .. } => {
                mix(7);
                mix(n(d) | n(g) << 16 | n(s) << 32 | n(b) << 48);
            }
            Element::Vcvs {
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                ..
            } => {
                mix(8);
                mix(n(out_p) | n(out_n) << 16 | n(ctrl_p) << 32 | n(ctrl_n) << 48);
            }
            // The controlling-source *name* is part of the topology: it
            // decides which branch column the F/H stamp lands in.
            Element::Cccs {
                out_p, out_n, ctrl, ..
            } => {
                mix(9);
                mix(n(out_p) | n(out_n) << 32);
                mix(fnv_str(ctrl));
            }
            Element::Ccvs {
                out_p, out_n, ctrl, ..
            } => {
                mix(10);
                mix(n(out_p) | n(out_n) << 32);
                mix(fnv_str(ctrl));
            }
            Element::Diode { p, n: dn, .. } => {
                mix(11);
                mix(n(p) | n(dn) << 32);
            }
        }
    }
    h
}

impl TranResult {
    /// Assemble a result from raw parts (batched-sweep internal).
    pub(crate) fn from_parts(
        times: Vec<f64>,
        traces: Vec<Vec<f64>>,
        branch_currents: Vec<Vec<f64>>,
        node_names: Vec<String>,
        vsource_names: Vec<String>,
        newton_iterations: usize,
    ) -> Self {
        Self {
            times,
            traces,
            branch_currents,
            node_names,
            vsource_names,
            newton_iterations,
        }
    }
}

impl TranWorkspace {
    /// Assemble the workspace for `circuit` with the given solver
    /// selection.
    ///
    /// # Errors
    ///
    /// Propagates circuit validation failures.
    pub fn new(circuit: &Circuit, kind: SolverKind) -> Result<Self> {
        let mna = MnaSystem::new(circuit)?;
        let solver = SystemSolver::new(&mna, circuit, kind);
        let dim = mna.dim();
        Ok(Self {
            mna,
            kind,
            solver,
            lu_cache: HashMap::new(),
            b_prev: vec![0.0; dim],
            b_cur: vec![0.0; dim],
            rhs: vec![0.0; dim],
            scratch: vec![0.0; dim],
            residual: vec![0.0; dim],
            neg: vec![0.0; dim],
            dx: vec![0.0; dim],
            f_prev: vec![0.0; dim],
            solve_work: vec![0.0; dim],
            node_count: circuit.node_count(),
            element_count: circuit.elements().len(),
            value_hash: circuit_value_hash(circuit),
            stats: TranStats::default(),
        })
    }

    /// Unknown count of the underlying MNA system.
    pub fn dim(&self) -> usize {
        self.mna.dim()
    }

    /// Whether the sparse backend was selected.
    pub fn is_sparse(&self) -> bool {
        self.solver.is_sparse()
    }

    /// Guard against reuse with a different circuit: only source waveforms
    /// may change between runs. Topology edits *and* element-value edits
    /// are rejected — the workspace's matrices and factor cache were
    /// assembled from the construction-time values, so a changed value
    /// would silently simulate the old circuit.
    fn check(&self, circuit: &Circuit, kind: SolverKind) -> Result<()> {
        if circuit.node_count() != self.node_count || circuit.elements().len() != self.element_count
        {
            return Err(Error::InvalidAnalysis(
                "transient workspace built for a different circuit topology".into(),
            ));
        }
        if circuit_value_hash(circuit) != self.value_hash {
            return Err(Error::InvalidAnalysis(
                "element values changed since the transient workspace was built; \
                 only source waveforms may change between reuses"
                    .into(),
            ));
        }
        if kind != self.kind {
            return Err(Error::InvalidAnalysis(
                "transient workspace built with a different solver selection".into(),
            ));
        }
        Ok(())
    }
}

/// Overwrite initial node voltages with `.IC` values. Ground entries are
/// ignored (the reference is fixed at 0 V by construction).
fn apply_ics(mna: &MnaSystem, x: &mut [f64], ics: &[(NodeId, f64)]) {
    for (node, v) in ics {
        if let Some(i) = mna.node_unknown(*node) {
            x[i] = *v;
        }
    }
}

/// Run a transient analysis.
///
/// # Errors
///
/// Fails on invalid parameters, DC initialization failure, Newton
/// non-convergence at some time step, or a singular system matrix.
pub fn transient(circuit: &Circuit, params: &TranParams) -> Result<TranResult> {
    let mut ws = TranWorkspace::new(circuit, params.solver)?;
    transient_with(circuit, params, &mut ws)
}

/// [`transient`] reusing a caller-owned [`TranWorkspace`] (same circuit
/// topology; source waveforms may differ between calls).
///
/// # Errors
///
/// As [`transient`], plus a workspace/topology mismatch.
pub fn transient_with(
    circuit: &Circuit,
    params: &TranParams,
    ws: &mut TranWorkspace,
) -> Result<TranResult> {
    transient_with_ics(circuit, params, ws, &[])
}

/// [`transient_with`] plus `.IC` initial-condition overrides: after the DC
/// solve (or the all-zeros `UIC` start when `dc_init` is false), each
/// listed node's starting voltage is forced to the given value before
/// stepping begins. This is the SPICE `.IC` approximation — the override
/// biases the initial state rather than adding a constraint row, so the
/// first steps relax any resulting KCL imbalance. Entries naming ground
/// are ignored.
///
/// # Errors
///
/// As [`transient_with`].
pub fn transient_with_ics(
    circuit: &Circuit,
    params: &TranParams,
    ws: &mut TranWorkspace,
    ics: &[(NodeId, f64)],
) -> Result<TranResult> {
    // `is_nan()` checks keep the rejection of NaN parameters explicit.
    if params.dt.is_nan()
        || params.dt <= 0.0
        || params.t_stop.is_nan()
        || params.t_stop <= 0.0
        || params.t_stop < params.dt
    {
        return Err(Error::InvalidAnalysis(format!(
            "bad transient window: t_stop={}, dt={}",
            params.t_stop, params.dt
        )));
    }
    ws.check(circuit, params.solver)?;
    let _t = phase_span(Phase::Tran);
    ws.stats = TranStats::default();
    let dim = ws.mna.dim();
    let n_nodes = ws.mna.n_nodes();
    let n_steps = (params.t_stop / params.dt).round() as usize;

    // Initial condition. The DC solve follows the same solver selection.
    let mut x: Vec<f64> = if params.dc_init {
        let mut newton = params.newton;
        newton.solver = params.solver;
        // Reuse the workspace's MNA system and solver: assembly and the
        // sparse symbolic analysis are not repeated per call.
        dc_operating_point_with(circuit, &newton, None, &ws.mna, &mut ws.solver)?
            .unknowns()
            .to_vec()
    } else {
        vec![0.0; dim]
    };
    apply_ics(&ws.mna, &mut x, ics);
    let mut x_next = vec![0.0; dim];

    let alpha = match params.method {
        Integrator::BackwardEuler => 1.0 / params.dt,
        Integrator::Trapezoidal => 2.0 / params.dt,
    };
    // Geff = G + alpha*C (constant over the run); linear circuits factor
    // it exactly once.
    ws.solver.set_alpha(alpha);
    let linear = !ws.mna.has_nonlinear();
    if linear {
        ws.solver.factor_base()?;
    }

    // NB: `vec![Vec::with_capacity(..); n]` would clone the template and
    // cloning an empty Vec discards its capacity — every trace would then
    // regrow by doubling, log2(n_steps) reallocations each.
    let mut times = Vec::with_capacity(n_steps + 1);
    let mut traces: Vec<Vec<f64>> = (0..n_nodes)
        .map(|_| Vec::with_capacity(n_steps + 1))
        .collect();
    let n_vsrc = ws.mna.vsources().len();
    let mut branch_currents: Vec<Vec<f64>> = (0..n_vsrc)
        .map(|_| Vec::with_capacity(n_steps + 1))
        .collect();
    let vb: Vec<usize> = ws.mna.vsource_branches().to_vec();
    let record = |x: &[f64],
                  t: f64,
                  times: &mut Vec<f64>,
                  traces: &mut Vec<Vec<f64>>,
                  branch: &mut Vec<Vec<f64>>| {
        times.push(t);
        for (n, tr) in traces.iter_mut().enumerate() {
            tr.push(x[n]);
        }
        for (s, br) in branch.iter_mut().enumerate() {
            br.push(x[vb[s]]);
        }
    };
    record(&x, 0.0, &mut times, &mut traces, &mut branch_currents);

    ws.mna.rhs_into(circuit, 0.0, 1.0, &mut ws.b_prev);
    // Nonlinear residual at the previous accepted point (for trapezoidal).
    ws.f_prev.fill(0.0);
    if matches!(params.method, Integrator::Trapezoidal) {
        ws.mna.stamp_nonlinear(circuit, &x, &mut ws.f_prev, None);
    }
    let mut total_newton = 0usize;

    for step in 1..=n_steps {
        let t1 = step as f64 * params.dt;
        ws.mna.rhs_into(circuit, t1, 1.0, &mut ws.b_cur);
        // Assemble step RHS into ws.rhs (scratch holds C·x, then G·x).
        ws.solver.c_mul_into(&x, &mut ws.scratch);
        match params.method {
            Integrator::BackwardEuler => {
                for i in 0..dim {
                    ws.rhs[i] = ws.b_cur[i] + alpha * ws.scratch[i];
                }
            }
            Integrator::Trapezoidal => {
                for i in 0..dim {
                    ws.rhs[i] = ws.b_cur[i] + ws.b_prev[i] - ws.f_prev[i] + alpha * ws.scratch[i];
                }
                ws.solver.g_mul_into(&x, &mut ws.scratch);
                for i in 0..dim {
                    ws.rhs[i] -= ws.scratch[i];
                }
            }
        }
        // Solve Geff x1 + f(x1) = rhs.
        if linear {
            ws.solver.solve_into(&ws.rhs, &mut x_next);
            std::mem::swap(&mut x, &mut x_next);
        } else {
            // Newton with warm start from previous time point.
            let mut converged = false;
            for _ in 0..params.newton.max_iter {
                ws.solver.base_mul_into(&x, &mut ws.residual);
                for (r, rhs) in ws.residual.iter_mut().zip(&ws.rhs) {
                    *r -= rhs;
                }
                ws.solver.begin_jacobian();
                ws.mna
                    .stamp_nonlinear(circuit, &x, &mut ws.residual, Some(ws.solver.jac_stamp()));
                for (n, &r) in ws.neg.iter_mut().zip(ws.residual.iter()) {
                    *n = -r;
                }
                ws.solver.factor_jacobian()?;
                ws.solver.solve_into(&ws.neg, &mut ws.dx);
                let max_dx = ws.dx.iter().fold(0.0_f64, |a, &v| a.max(v.abs()));
                let scale = if max_dx > params.newton.max_step {
                    params.newton.max_step / max_dx
                } else {
                    1.0
                };
                let mut done = true;
                for (xi, &di) in x.iter_mut().zip(ws.dx.iter()) {
                    let s = scale * di;
                    *xi += s;
                    if s.abs() > params.newton.reltol * xi.abs() + params.newton.vntol {
                        done = false;
                    }
                }
                total_newton += 1;
                if done && scale == 1.0 {
                    converged = true;
                    break;
                }
            }
            if !converged {
                let max_res = ws.residual.iter().fold(0.0_f64, |a, &v| a.max(v.abs()));
                return Err(Error::NonConvergence {
                    analysis: "tran",
                    iterations: params.newton.max_iter,
                    time: t1,
                    residual: max_res,
                });
            }
        }
        record(&x, t1, &mut times, &mut traces, &mut branch_currents);
        std::mem::swap(&mut ws.b_prev, &mut ws.b_cur);
        if matches!(params.method, Integrator::Trapezoidal) {
            ws.f_prev.fill(0.0);
            ws.mna.stamp_nonlinear(circuit, &x, &mut ws.f_prev, None);
        }
    }
    let node_names = (0..circuit.node_count())
        .map(|i| circuit.node_name(NodeId(i)).to_string())
        .collect();
    let vsource_names = ws
        .mna
        .vsources()
        .iter()
        .map(|id| circuit.element(*id).name().to_string())
        .collect();
    ws.stats.steps = n_steps as u64;
    ws.stats.newton_iterations = total_newton as u64;
    ws.stats.flush();
    Ok(TranResult {
        times,
        traces,
        branch_currents,
        node_names,
        vsource_names,
        newton_iterations: total_newton,
    })
}

/// Controls for [`transient_adaptive`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveOptions {
    /// Simulation end time (s); starts at 0.
    pub t_stop: f64,
    /// Initial step (s).
    pub dt_init: f64,
    /// Smallest step the controller may take (s).
    pub dt_min: f64,
    /// Largest step the controller may take (s).
    pub dt_max: f64,
    /// Local-truncation tolerance (V per step, max-norm over unknowns).
    pub ltol: f64,
    /// Newton controls.
    pub newton: NewtonOptions,
    /// Start from the DC operating point (default true).
    pub dc_init: bool,
    /// Linear-solver backend for the step systems (the escape hatch over
    /// the dimension-based auto selection).
    pub solver: SolverKind,
}

impl AdaptiveOptions {
    /// Conventional setup for a glitch-sized window.
    pub fn new(t_stop: f64) -> Self {
        Self {
            t_stop,
            dt_init: 1e-12,
            dt_min: 0.05e-12,
            dt_max: 50e-12,
            ltol: 0.5e-3,
            newton: NewtonOptions::default(),
            dc_init: true,
            solver: SolverKind::Auto,
        }
    }
}

/// One backward-Euler step of size `h` from `(t0, x0)` into `out`, running
/// entirely on the workspace's buffers. Linear circuits hit the per-`h`
/// factor cache; non-linear circuits Newton-iterate on the workspace
/// solver (numeric refactor per iteration, cold factor only when `h`
/// changes the step matrix).
#[allow(clippy::too_many_arguments)] // internal stepper: explicit state beats a bag struct
fn be_step(
    circuit: &Circuit,
    ws: &mut TranWorkspace,
    x0: &[f64],
    t0: f64,
    h: f64,
    newton: &NewtonOptions,
    out: &mut [f64],
    newton_count: &mut usize,
) -> Result<()> {
    let dim = ws.mna.dim();
    let t1 = t0 + h;
    ws.mna.rhs_into(circuit, t1, 1.0, &mut ws.b_cur);
    let alpha = 1.0 / h;
    ws.solver.c_mul_into(x0, &mut ws.scratch);
    for i in 0..dim {
        ws.rhs[i] = ws.b_cur[i] + alpha * ws.scratch[i];
    }
    if !ws.mna.has_nonlinear() {
        // Linear: (G + C/h) x1 = rhs with a per-h cached factorization.
        let key = h.to_bits();
        if !ws.lu_cache.contains_key(&key) {
            // The controller's h-ladder is small (doublings/halvings of
            // dt_init), but end-of-window clamping mints run-specific h
            // values; cap the cache so a long-lived reused workspace
            // cannot accumulate factors without bound.
            if ws.lu_cache.len() >= LU_CACHE_MAX {
                ws.lu_cache.clear();
            }
            ws.solver.set_alpha(alpha);
            let factor = ws.solver.factor_base_owned()?;
            ws.lu_cache.insert(key, factor);
        }
        ws.lu_cache[&key].solve_into(&ws.rhs, out, &mut ws.solve_work);
        return Ok(());
    }
    // Newton.
    ws.solver.set_alpha(alpha);
    out.copy_from_slice(x0);
    for _ in 0..newton.max_iter {
        *newton_count += 1;
        ws.solver.base_mul_into(out, &mut ws.residual);
        for (r, rhs) in ws.residual.iter_mut().zip(&ws.rhs) {
            *r -= rhs;
        }
        ws.solver.begin_jacobian();
        ws.mna
            .stamp_nonlinear(circuit, out, &mut ws.residual, Some(ws.solver.jac_stamp()));
        for (n, &r) in ws.neg.iter_mut().zip(ws.residual.iter()) {
            *n = -r;
        }
        ws.solver.factor_jacobian()?;
        ws.solver.solve_into(&ws.neg, &mut ws.dx);
        let max_dx = ws.dx.iter().fold(0.0_f64, |a, &v| a.max(v.abs()));
        let scale = if max_dx > newton.max_step {
            newton.max_step / max_dx
        } else {
            1.0
        };
        let mut done = true;
        for (oi, &di) in out.iter_mut().zip(ws.dx.iter()) {
            let s = scale * di;
            *oi += s;
            if s.abs() > newton.reltol * oi.abs() + newton.vntol {
                done = false;
            }
        }
        if done && scale == 1.0 {
            return Ok(());
        }
    }
    Err(Error::NonConvergence {
        analysis: "tran-adaptive",
        iterations: newton.max_iter,
        time: t1,
        residual: f64::NAN,
    })
}

/// Adaptive-step transient analysis: backward Euler with step-doubling
/// local-truncation-error control.
///
/// Each accepted step compares one full-size step against two half-size
/// steps; their max-norm difference estimates the local error. Steps halve
/// until the estimate is under `ltol` (or `dt_min` is hit) and re-expand by
/// 2× after comfortably accurate steps. The accepted state is the more
/// accurate two-half-step solution. Quiet stretches of a noise waveform
/// take `dt_max` strides while glitch edges are resolved at sub-picosecond
/// resolution — typically several times fewer steps than a fixed grid of
/// equivalent accuracy.
///
/// # Errors
///
/// Fails on invalid options, DC-init failure, Newton non-convergence at the
/// minimum step, or singular matrices.
pub fn transient_adaptive(circuit: &Circuit, opts: &AdaptiveOptions) -> Result<TranResult> {
    let mut ws = TranWorkspace::new(circuit, opts.solver)?;
    transient_adaptive_with(circuit, opts, &mut ws)
}

/// [`transient_adaptive`] reusing a caller-owned [`TranWorkspace`] (same
/// circuit topology; source waveforms may differ between calls). The
/// per-step-size factor cache inside the workspace persists across calls.
///
/// # Errors
///
/// As [`transient_adaptive`], plus a workspace/topology mismatch.
pub fn transient_adaptive_with(
    circuit: &Circuit,
    opts: &AdaptiveOptions,
    ws: &mut TranWorkspace,
) -> Result<TranResult> {
    transient_adaptive_with_ics(circuit, opts, ws, &[])
}

/// [`transient_adaptive_with`] plus `.IC` initial-condition overrides (see
/// [`transient_with_ics`] for the semantics).
///
/// # Errors
///
/// As [`transient_adaptive_with`].
pub fn transient_adaptive_with_ics(
    circuit: &Circuit,
    opts: &AdaptiveOptions,
    ws: &mut TranWorkspace,
    ics: &[(NodeId, f64)],
) -> Result<TranResult> {
    // `is_nan()` checks keep the rejection of NaN options explicit.
    if opts.dt_init.is_nan()
        || opts.dt_init <= 0.0
        || opts.dt_min.is_nan()
        || opts.dt_min <= 0.0
        || opts.dt_max.is_nan()
        || opts.dt_max < opts.dt_min
        || opts.t_stop.is_nan()
        || opts.t_stop <= opts.dt_min
        || opts.ltol.is_nan()
        || opts.ltol <= 0.0
    {
        return Err(Error::InvalidAnalysis(format!(
            "bad adaptive window: t_stop={}, dt_init={}, dt_min={}, dt_max={}, ltol={}",
            opts.t_stop, opts.dt_init, opts.dt_min, opts.dt_max, opts.ltol
        )));
    }
    ws.check(circuit, opts.solver)?;
    let _t = phase_span(Phase::Tran);
    ws.stats = TranStats::default();
    let dim = ws.mna.dim();
    let n_nodes = ws.mna.n_nodes();
    let mut x: Vec<f64> = if opts.dc_init {
        let mut newton = opts.newton;
        newton.solver = opts.solver;
        // Reuse the workspace's MNA system and solver (see transient_with).
        dc_operating_point_with(circuit, &newton, None, &ws.mna, &mut ws.solver)?
            .unknowns()
            .to_vec()
    } else {
        vec![0.0; dim]
    };
    apply_ics(&ws.mna, &mut x, ics);
    // Step-doubling candidates live outside the workspace so `x` can feed
    // one be_step while another fills its output.
    let mut x_full = vec![0.0; dim];
    let mut x_mid = vec![0.0; dim];
    let mut x_half = vec![0.0; dim];
    // Accepted-point count is not known upfront; reserve for the dt_init
    // pace (the controller usually grows h from there) so recording rarely
    // reallocates, and never per-step.
    let est_points = ((opts.t_stop / opts.dt_init) as usize)
        .saturating_add(2)
        .min(1 << 20);
    let with_first = |v0: f64| -> Vec<f64> {
        let mut v = Vec::with_capacity(est_points);
        v.push(v0);
        v
    };
    let mut times = with_first(0.0);
    let mut traces: Vec<Vec<f64>> = (0..n_nodes).map(|n| with_first(x[n])).collect();
    let n_vsrc = ws.mna.vsources().len();
    let vb: Vec<usize> = ws.mna.vsource_branches().to_vec();
    let mut branch_currents: Vec<Vec<f64>> = (0..n_vsrc).map(|s| with_first(x[vb[s]])).collect();
    let mut t = 0.0;
    let mut h = opts.dt_init.clamp(opts.dt_min, opts.dt_max);
    let mut total_newton = 0usize;
    while t < opts.t_stop - 1e-21 {
        h = h.min(opts.t_stop - t).max(opts.dt_min);
        be_step(
            circuit,
            ws,
            &x,
            t,
            h,
            &opts.newton,
            &mut x_full,
            &mut total_newton,
        )?;
        be_step(
            circuit,
            ws,
            &x,
            t,
            0.5 * h,
            &opts.newton,
            &mut x_mid,
            &mut total_newton,
        )?;
        be_step(
            circuit,
            ws,
            &x_mid,
            t + 0.5 * h,
            0.5 * h,
            &opts.newton,
            &mut x_half,
            &mut total_newton,
        )?;
        let err = x_full
            .iter()
            .zip(&x_half)
            .fold(0.0_f64, |a, (f, g)| a.max((f - g).abs()));
        if err > opts.ltol && h > opts.dt_min * 1.0001 {
            ws.stats.rejected += 1;
            h = (0.5 * h).max(opts.dt_min);
            continue; // reject, retry smaller
        }
        // Accept the two-half-step (more accurate) solution.
        ws.stats.accepted += 1;
        t += h;
        std::mem::swap(&mut x, &mut x_half);
        times.push(t);
        for (n, tr) in traces.iter_mut().enumerate() {
            tr.push(x[n]);
        }
        for (s, br) in branch_currents.iter_mut().enumerate() {
            br.push(x[vb[s]]);
        }
        if err < 0.25 * opts.ltol {
            h = (2.0 * h).min(opts.dt_max);
        }
    }
    let node_names = (0..circuit.node_count())
        .map(|i| circuit.node_name(NodeId(i)).to_string())
        .collect();
    let vsource_names = ws
        .mna
        .vsources()
        .iter()
        .map(|id| circuit.element(*id).name().to_string())
        .collect();
    ws.stats.steps = ws.stats.accepted;
    ws.stats.newton_iterations = total_newton as u64;
    ws.stats.flush();
    Ok(TranResult {
        times,
        traces,
        branch_currents,
        node_names,
        vsource_names,
        newton_iterations: total_newton,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::SourceWaveform;
    use crate::units::{NS, PS};

    fn rc_circuit(r: f64, c: f64, v: SourceWaveform) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("V1", inp, Circuit::gnd(), v);
        ckt.add_resistor("R1", inp, out, r).unwrap();
        ckt.add_capacitor("C1", out, Circuit::gnd(), c).unwrap();
        (ckt, out)
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        // R=1k, C=1pF, tau=1ns; step at t=0 via dc_init=false from 0 with
        // a DC source.
        let (ckt, out) = rc_circuit(1e3, 1e-12, SourceWaveform::Dc(1.0));
        let mut p = TranParams::new(5.0 * NS, 5.0 * PS);
        p.dc_init = false;
        let res = transient(&ckt, &p).unwrap();
        let w = res.node_waveform(out);
        for &t in &[0.5e-9, 1e-9, 2e-9, 4e-9] {
            let want = 1.0 - (-t / 1e-9_f64).exp();
            let got = w.value_at(t);
            assert!(
                (got - want).abs() < 5e-3,
                "t={t:.2e}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn backward_euler_also_converges_to_final_value() {
        let (ckt, out) = rc_circuit(1e3, 1e-12, SourceWaveform::Dc(1.0));
        let mut p = TranParams::new(10.0 * NS, 10.0 * PS);
        p.dc_init = false;
        p.method = Integrator::BackwardEuler;
        let res = transient(&ckt, &p).unwrap();
        let w = res.node_waveform(out);
        assert!((w.value_at(10.0 * NS) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn dc_init_starts_settled() {
        let (ckt, out) = rc_circuit(1e3, 1e-12, SourceWaveform::Dc(1.0));
        let p = TranParams::new(1.0 * NS, 10.0 * PS);
        let res = transient(&ckt, &p).unwrap();
        let w = res.node_waveform(out);
        // Already at 1V from t=0.
        assert!((w.value_at(0.0) - 1.0).abs() < 1e-6);
        assert!((w.value_at(1.0 * NS) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ramp_through_rc_delays() {
        let ramp = SourceWaveform::Ramp {
            v0: 0.0,
            v1: 1.0,
            t_start: 1.0 * NS,
            t_rise: 100.0 * PS,
        };
        let (ckt, out) = rc_circuit(1e3, 100e-15, ramp);
        let p = TranParams::new(5.0 * NS, 2.0 * PS);
        let res = transient(&ckt, &p).unwrap();
        let w = res.node_waveform(out);
        assert!(w.value_at(1.0 * NS) < 1e-3);
        // After several tau, follows the source.
        assert!((w.value_at(5.0 * NS) - 1.0).abs() < 1e-3);
        // 50% crossing later than the source's 50% point (1.05ns).
        let mut t50 = 0.0;
        for k in 1..w.len() {
            if w.values()[k] >= 0.5 && w.values()[k - 1] < 0.5 {
                t50 = w.times()[k];
                break;
            }
        }
        assert!(t50 > 1.05 * NS, "t50={t50:e}");
    }

    #[test]
    fn coupling_cap_injects_glitch() {
        // Aggressor step couples into victim held by a resistor: the victim
        // must see a positive glitch that decays back.
        let mut ckt = Circuit::new();
        let agg = ckt.node("agg");
        let vic = ckt.node("vic");
        ckt.add_vsource(
            "Vagg",
            agg,
            Circuit::gnd(),
            SourceWaveform::Ramp {
                v0: 0.0,
                v1: 1.2,
                t_start: 0.5 * NS,
                t_rise: 100.0 * PS,
            },
        );
        ckt.add_capacitor("Cc", agg, vic, 40e-15).unwrap();
        ckt.add_capacitor("Cg", vic, Circuit::gnd(), 30e-15)
            .unwrap();
        ckt.add_resistor("Rhold", vic, Circuit::gnd(), 2000.0)
            .unwrap();
        let p = TranParams::new(4.0 * NS, 2.0 * PS);
        let res = transient(&ckt, &p).unwrap();
        let w = res.node_waveform(vic);
        let m = w.glitch_metrics(0.0);
        assert!(m.peak > 0.1, "peak={}", m.peak);
        assert!(m.peak < 1.2);
        assert_eq!(m.polarity, 1.0);
        // Decays back to quiet by the end.
        assert!(w.value_at(4.0 * NS).abs() < 0.02);
    }

    #[test]
    fn vsource_current_through_resistor() {
        // Resistive load to ground so a DC current actually flows.
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        ckt.add_vsource("V1", inp, Circuit::gnd(), SourceWaveform::Dc(1.0));
        ckt.add_resistor("R1", inp, Circuit::gnd(), 1e3).unwrap();
        ckt.add_capacitor("C1", inp, Circuit::gnd(), 1e-15).unwrap();
        let p = TranParams::new(1.0 * NS, 10.0 * PS);
        let res = transient(&ckt, &p).unwrap();
        let i = res.vsource_current("V1").unwrap();
        // Steady state: 1V/1k = 1mA, SPICE sign: -1mA.
        assert!((i.value_at(1.0 * NS) + 1e-3).abs() < 1e-6);
    }

    #[test]
    fn invalid_params_rejected() {
        let (ckt, _) = rc_circuit(1e3, 1e-12, SourceWaveform::Dc(1.0));
        assert!(transient(&ckt, &TranParams::new(-1.0, 1e-12)).is_err());
        assert!(transient(&ckt, &TranParams::new(1e-9, 0.0)).is_err());
        assert!(transient(&ckt, &TranParams::new(1e-12, 1e-9)).is_err());
    }

    #[test]
    fn adaptive_matches_analytic_rc() {
        let (ckt, out) = rc_circuit(1e3, 1e-12, SourceWaveform::Dc(1.0));
        let mut opts = AdaptiveOptions::new(5.0 * NS);
        opts.dc_init = false;
        opts.ltol = 0.2e-3;
        let res = transient_adaptive(&ckt, &opts).unwrap();
        let w = res.node_waveform(out);
        for &t in &[0.5e-9, 1e-9, 2e-9, 4e-9] {
            let want = 1.0 - (-t / 1e-9_f64).exp();
            assert!(
                (w.value_at(t) - want).abs() < 5e-3,
                "t={t:e}: got {} want {want}",
                w.value_at(t)
            );
        }
    }

    #[test]
    fn adaptive_coarsens_in_quiet_regions() {
        // Ramp event at 1ns inside a 20ns window: the controller must take
        // large strides before/after the event and far fewer points than
        // the equivalent fixed 1ps grid.
        let ramp = SourceWaveform::Ramp {
            v0: 0.0,
            v1: 1.0,
            t_start: 1.0 * NS,
            t_rise: 100.0 * PS,
        };
        let (ckt, out) = rc_circuit(1e3, 100e-15, ramp);
        let opts = AdaptiveOptions::new(20.0 * NS);
        let res = transient_adaptive(&ckt, &opts).unwrap();
        let n_adaptive = res.times().len();
        assert!(
            n_adaptive < 5000,
            "adaptive took {n_adaptive} points for a 20000-point fixed grid"
        );
        // Largest accepted stride is much bigger than the initial step.
        let max_dt = res
            .times()
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(0.0_f64, f64::max);
        assert!(max_dt > 10.0 * opts.dt_init, "max stride {max_dt:e}");
        // And the waveform still tracks the fixed-step reference.
        let fixed = transient(&ckt, &TranParams::new(20.0 * NS, 2.0 * PS)).unwrap();
        let err = res
            .node_waveform(out)
            .max_abs_difference(&fixed.node_waveform(out));
        assert!(err < 5e-3, "adaptive vs fixed deviation {err}");
    }

    #[test]
    fn adaptive_handles_nonlinear_inverter_glitch() {
        use crate::devices::{MosPolarity, MosfetModel};
        let nmos = MosfetModel {
            polarity: MosPolarity::Nmos,
            vt0: 0.32,
            kp: 2.5e-4,
            lambda: 0.15,
            gamma: 0.4,
            phi: 0.7,
            cox: 0.012,
            cgso: 3e-10,
            cgdo: 3e-10,
            cj: 8e-10,
        };
        let pmos = MosfetModel {
            polarity: MosPolarity::Pmos,
            vt0: -0.34,
            kp: 1.0e-4,
            ..nmos
        };
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("Vdd", vdd, Circuit::gnd(), SourceWaveform::Dc(1.2));
        ckt.add_vsource(
            "Vin",
            inp,
            Circuit::gnd(),
            SourceWaveform::TriangleGlitch {
                v_base: 1.2,
                v_peak: 0.2,
                t_start: 0.5 * NS,
                t_rise: 150.0 * PS,
                t_fall: 150.0 * PS,
            },
        );
        ckt.add_mosfet(
            "Mn",
            out,
            inp,
            Circuit::gnd(),
            Circuit::gnd(),
            nmos,
            0.42e-6,
            0.13e-6,
        )
        .unwrap();
        ckt.add_mosfet("Mp", out, inp, vdd, vdd, pmos, 0.64e-6, 0.13e-6)
            .unwrap();
        ckt.add_capacitor("Cl", out, Circuit::gnd(), 10e-15)
            .unwrap();
        let opts = AdaptiveOptions::new(2.0 * NS);
        let res = transient_adaptive(&ckt, &opts).unwrap();
        let fixed = transient(&ckt, &TranParams::new(2.0 * NS, 1.0 * PS)).unwrap();
        let err = res
            .node_waveform(out)
            .max_abs_difference(&fixed.node_waveform(out));
        assert!(err < 0.02, "adaptive vs fixed deviation {err}");
        assert!(res.newton_iterations > 0);
    }

    #[test]
    fn adaptive_rejects_bad_options() {
        let (ckt, _) = rc_circuit(1e3, 1e-12, SourceWaveform::Dc(1.0));
        let mut o = AdaptiveOptions::new(1.0 * NS);
        o.dt_min = -1.0;
        assert!(transient_adaptive(&ckt, &o).is_err());
        let mut o = AdaptiveOptions::new(1.0 * NS);
        o.dt_max = o.dt_min / 2.0;
        assert!(transient_adaptive(&ckt, &o).is_err());
        let mut o = AdaptiveOptions::new(1.0 * NS);
        o.ltol = 0.0;
        assert!(transient_adaptive(&ckt, &o).is_err());
    }

    #[test]
    fn energy_conservation_rc_discharge() {
        // Capacitor discharging through resistor: total dissipated energy
        // equals initial stored energy (trapezoidal, fine step).
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        // Charge via a source through a big resistor, then watch: easier —
        // start from DC with source, the cap is at 1V, stays; instead use
        // uic: set an isource pulse to charge then discharge. Simplest check:
        // linear circuit trapezoidal midpoint accuracy on tau.
        ckt.add_resistor("R", a, Circuit::gnd(), 1e3).unwrap();
        ckt.add_capacitor("C", a, Circuit::gnd(), 1e-12).unwrap();
        ckt.add_isource(
            "I",
            Circuit::gnd(),
            a,
            SourceWaveform::Pulse {
                v0: 0.0,
                v1: 1e-3,
                t_delay: 0.0,
                t_rise: 10e-12,
                t_width: 5e-9,
                t_fall: 10e-12,
            },
        );
        let p = TranParams::new(10.0 * NS, 5.0 * PS);
        let res = transient(&ckt, &p).unwrap();
        let w = res.node_waveform(a);
        // During the 1mA pulse, node approaches 1V with tau=1ns.
        assert!((w.value_at(5e-9) - 1.0).abs() < 0.02);
        // Afterwards decays with tau=1ns: at 7ns ~ exp(-2).
        let got = w.value_at(7e-9);
        let want = w.value_at(5e-9) * (-2.0_f64).exp();
        assert!((got - want).abs() < 0.03, "got={got} want={want}");
    }
}
