//! SI unit constants and SPICE-style numeric suffix parsing.
//!
//! Everything in this workspace is plain SI `f64`: volts, amperes, seconds,
//! ohms, farads, meters. These constants exist so that call sites read like
//! the physical quantities they are (`500.0 * UM`, `1.0 * PS`) instead of
//! bare exponents.

/// One picosecond in seconds.
pub const PS: f64 = 1e-12;
/// One nanosecond in seconds.
pub const NS: f64 = 1e-9;
/// One microsecond in seconds.
pub const US: f64 = 1e-6;
/// One femtofarad in farads.
pub const FF: f64 = 1e-15;
/// One picofarad in farads.
pub const PF: f64 = 1e-12;
/// One millivolt in volts.
pub const MV: f64 = 1e-3;
/// One microampere in amperes.
pub const UA: f64 = 1e-6;
/// One milliampere in amperes.
pub const MA: f64 = 1e-3;
/// One kiloohm in ohms.
pub const KOHM: f64 = 1e3;
/// One micrometer in meters.
pub const UM: f64 = 1e-6;
/// One nanometer in meters.
pub const NM: f64 = 1e-9;

/// Parse a SPICE-style number with an optional engineering suffix.
///
/// Recognized suffixes (case-insensitive, longest match first):
/// `t` (1e12), `g` (1e9), `meg` (1e6), `k` (1e3), `m` (1e-3), `u` (1e-6),
/// `n` (1e-9), `p` (1e-12), `f` (1e-15), `mil` (25.4e-6). Trailing unit
/// letters after the suffix are ignored, as in SPICE (`10pF`, `5kOhm`).
///
/// # Examples
///
/// ```
/// # use sna_spice::units::parse_spice_number;
/// assert_eq!(parse_spice_number("2.5k").unwrap(), 2500.0);
/// assert_eq!(parse_spice_number("10p").unwrap(), 10e-12);
/// assert_eq!(parse_spice_number("3meg").unwrap(), 3e6);
/// assert_eq!(parse_spice_number("-1.2").unwrap(), -1.2);
/// ```
///
/// # Errors
///
/// Returns `None` when the leading characters do not form a valid float.
pub fn parse_spice_number(s: &str) -> Option<f64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    // Split the longest leading float prefix.
    let bytes = s.as_bytes();
    let mut end = 0;
    let mut seen_digit = false;
    let mut seen_dot = false;
    let mut seen_exp = false;
    while end < bytes.len() {
        let c = bytes[end] as char;
        match c {
            '0'..='9' => {
                seen_digit = true;
                end += 1;
            }
            '+' | '-' if end == 0 => end += 1,
            '.' if !seen_dot && !seen_exp => {
                seen_dot = true;
                end += 1;
            }
            'e' | 'E' if seen_digit && !seen_exp => {
                // Only treat as exponent when followed by digit or sign+digit.
                let next = bytes.get(end + 1).map(|&b| b as char);
                let next2 = bytes.get(end + 2).map(|&b| b as char);
                let is_exp = match next {
                    Some(d) if d.is_ascii_digit() => true,
                    Some('+') | Some('-') => matches!(next2, Some(d) if d.is_ascii_digit()),
                    _ => false,
                };
                if is_exp {
                    seen_exp = true;
                    end += 2; // consume 'e' and sign-or-digit
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    if !seen_digit {
        return None;
    }
    let value: f64 = s[..end].parse().ok()?;
    let suffix = s[end..].to_ascii_lowercase();
    let mult = if suffix.starts_with("meg") {
        1e6
    } else if suffix.starts_with("mil") {
        25.4e-6
    } else {
        match suffix.chars().next() {
            Some('t') => 1e12,
            Some('g') => 1e9,
            Some('k') => 1e3,
            Some('m') => 1e-3,
            Some('u') => 1e-6,
            Some('n') => 1e-9,
            Some('p') => 1e-12,
            Some('f') => 1e-15,
            _ => 1.0,
        }
    };
    Some(value * mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_numbers() {
        assert_eq!(parse_spice_number("42").unwrap(), 42.0);
        assert_eq!(parse_spice_number("-3.5").unwrap(), -3.5);
        assert_eq!(parse_spice_number("1e-9").unwrap(), 1e-9);
        assert_eq!(parse_spice_number("1E+3").unwrap(), 1e3);
    }

    #[test]
    fn suffixes() {
        assert_eq!(parse_spice_number("1k").unwrap(), 1e3);
        assert_eq!(parse_spice_number("1K").unwrap(), 1e3);
        assert_eq!(parse_spice_number("1meg").unwrap(), 1e6);
        assert_eq!(parse_spice_number("1MEG").unwrap(), 1e6);
        assert_eq!(parse_spice_number("1m").unwrap(), 1e-3);
        assert_eq!(parse_spice_number("1u").unwrap(), 1e-6);
        assert_eq!(parse_spice_number("1n").unwrap(), 1e-9);
        assert_eq!(parse_spice_number("1p").unwrap(), 1e-12);
        assert_eq!(parse_spice_number("1f").unwrap(), 1e-15);
        assert_eq!(parse_spice_number("1g").unwrap(), 1e9);
        assert_eq!(parse_spice_number("1t").unwrap(), 1e12);
    }

    #[test]
    fn unit_tails_ignored() {
        assert_eq!(parse_spice_number("10pF").unwrap(), 10e-12);
        assert_eq!(parse_spice_number("5kOhm").unwrap(), 5e3);
        assert_eq!(parse_spice_number("3.3V").unwrap(), 3.3);
        // 'V' alone is not a multiplier suffix.
        assert_eq!(parse_spice_number("2volts").unwrap(), 2.0);
    }

    #[test]
    fn exponent_vs_suffix_disambiguation() {
        // "1e3" is an exponent; "1e" would be 1.0 with junk tail.
        assert_eq!(parse_spice_number("1e3").unwrap(), 1000.0);
        assert_eq!(parse_spice_number("1e").unwrap(), 1.0);
        // "2.5e-2k" parses float 2.5e-2 then suffix k.
        assert_eq!(parse_spice_number("2.5e-2k").unwrap(), 25.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_spice_number("").is_none());
        assert!(parse_spice_number("abc").is_none());
        assert!(parse_spice_number("-").is_none());
        assert!(parse_spice_number(".k").is_none());
    }

    #[test]
    fn mil_suffix() {
        let v = parse_spice_number("2mil").unwrap();
        assert!((v - 50.8e-6).abs() < 1e-12);
    }

    #[test]
    fn constants_consistent() {
        assert!((1000.0 * PS - NS).abs() < 1e-24);
        assert!((1000.0 * NS - US).abs() < 1e-21);
        assert!((1000.0 * FF - PF).abs() < 1e-27);
        assert!((1000.0 * NM - UM).abs() < 1e-18);
    }
}
