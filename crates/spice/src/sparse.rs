//! Sparse linear algebra: CSC matrices and a KLU-style LU with a
//! symbolic/numeric split.
//!
//! MNA matrices of finely segmented interconnect are ~99 % zeros
//! (tridiagonal ladders plus a few coupling diagonals), so dense O(n³) LU
//! wastes almost all of its work. This module factors such systems the way
//! production SPICE engines do:
//!
//! 1. **Symbolic analysis** ([`Symbolic::analyze`]) — a fill-reducing
//!    reverse Cuthill–McKee ordering of the pattern of `A + Aᵀ`, computed
//!    once per circuit topology.
//! 2. **Cold factorization** ([`SparseLu::factor`]) — left-looking
//!    Gilbert–Peierls LU with threshold partial pivoting; discovers the
//!    fill pattern and the pivot sequence.
//! 3. **Refactorization** ([`SparseLu::refactor`]) — replays the stored
//!    pattern and pivot sequence on new numeric values (Newton iterations,
//!    per-`dt` conductance changes) with no graph traversal, no pivot
//!    search, and no allocation: near-linear in the factor's non-zeros.
//!
//! Solves ([`SparseLu::solve_into`]) are allocation-free given a caller
//! scratch slice.

use crate::error::{Error, Result};
use crate::linalg::{DenseMatrix, MatrixStamp};

/// Sentinel for "row not yet pivotal" during factorization.
const NONE: usize = usize::MAX;

/// Pivots smaller than this are treated as numerically singular, matching
/// the dense LU's cutoff.
const PIVOT_MIN: f64 = 1e-300;

/// Threshold partial pivoting: keep the diagonal pivot whenever it is at
/// least this fraction of the column's largest candidate. Biasing towards
/// the diagonal preserves the fill-reducing ordering (and thus sparsity);
/// MNA diagonals are strongly dominant away from voltage-source rows.
const PIVOT_TOL: f64 = 0.1;

/// Square sparse matrix in compressed-sparse-column (CSC) form with a
/// *fixed pattern*: positions are decided at construction, values are
/// mutated in place by the MNA stamp operations.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl SparseMatrix {
    /// Build a pattern (all values zero) from `(row, col)` positions.
    /// Duplicates are merged.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_pattern(n: usize, entries: &[(usize, usize)]) -> Self {
        let mut keys: Vec<(usize, usize)> = entries
            .iter()
            .map(|&(i, j)| {
                assert!(i < n && j < n, "entry ({i},{j}) outside {n}x{n}");
                (j, i) // column-major sort key
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::with_capacity(keys.len());
        for &(j, i) in &keys {
            col_ptr[j + 1] += 1;
            row_idx.push(i);
        }
        for j in 0..n {
            col_ptr[j + 1] += col_ptr[j];
        }
        let nnz = row_idx.len();
        Self {
            n,
            col_ptr,
            row_idx,
            vals: vec![0.0; nnz],
        }
    }

    /// Build from triplets, summing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let pattern: Vec<(usize, usize)> = triplets.iter().map(|&(i, j, _)| (i, j)).collect();
        let mut m = Self::from_pattern(n, &pattern);
        for &(i, j, v) in triplets {
            m.add(i, j, v);
        }
        m
    }

    /// Build from a dense matrix, keeping every non-zero entry.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn from_dense(a: &DenseMatrix) -> Self {
        assert_eq!(a.n_rows(), a.n_cols(), "sparse conversion needs square");
        let n = a.n_rows();
        let mut triplets = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let v = a[(i, j)];
                if v != 0.0 {
                    triplets.push((i, j, v));
                }
            }
        }
        Self::from_triplets(n, &triplets)
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored entry count.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Slot index of entry `(i, j)` in the value array, if present.
    #[inline]
    fn slot(&self, i: usize, j: usize) -> Option<usize> {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .binary_search(&i)
            .ok()
            .map(|off| lo + off)
    }

    /// Read entry `(i, j)` (0 if outside the pattern).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.slot(i, j).map_or(0.0, |s| self.vals[s])
    }

    /// Add `v` to entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the fixed pattern — stamping must only
    /// touch positions declared at construction.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        let s = self
            .slot(i, j)
            .unwrap_or_else(|| panic!("stamp at ({i},{j}) outside the sparse pattern"));
        self.vals[s] += v;
    }

    /// Reset all values to zero, keeping the pattern.
    pub fn clear_values(&mut self) {
        self.vals.fill(0.0);
    }

    /// The value array, pattern order (column-major, rows ascending).
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable value array, pattern order.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Allocation-free matrix-vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        self.mul_vals_into(&self.vals, x, y);
    }

    /// `y = A'·x` where `A'` shares this pattern but takes its values from
    /// `vals` — lets one pattern back several coefficient sets (G, C,
    /// G + α·C) without duplicating the index structure.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vals_into(&self, vals: &[f64], x: &[f64], y: &mut [f64]) {
        assert_eq!(vals.len(), self.row_idx.len());
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        y.fill(0.0);
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                y[self.row_idx[p]] += vals[p] * xj;
            }
        }
    }

    /// Slot index of entry `(i, j)` in the value array, if the position is
    /// inside the pattern — used by the batched sweep to address
    /// struct-of-arrays value planes that share this pattern.
    pub(crate) fn value_slot(&self, i: usize, j: usize) -> Option<usize> {
        self.slot(i, j)
    }

    /// K-lane batched matvec: for every `lane`, `y(lane) = A(lane)·x(lane)`
    /// where `A(lane)` shares this pattern and reads its values from the
    /// struct-of-arrays plane `vals` (`vals[slot * k + lane]`). `x` and `y`
    /// are SoA planes of shape `n × k` (`x[row * k + lane]`).
    ///
    /// Unlike [`SparseMatrix::mul_vals_into`] there is no `x == 0` column
    /// skip: every lane performs the identical operation sequence, which is
    /// what makes the scalar and batched compute backends bit-identical.
    ///
    /// # Panics
    ///
    /// Panics on plane-dimension mismatch.
    pub fn mul_planes_into(&self, vals: &[f64], k: usize, x: &[f64], y: &mut [f64]) {
        assert_eq!(vals.len(), self.row_idx.len() * k);
        assert_eq!(x.len(), self.n * k);
        assert_eq!(y.len(), self.n * k);
        y.fill(0.0);
        for j in 0..self.n {
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                let r = self.row_idx[p] * k;
                let xj = j * k;
                for lane in 0..k {
                    y[r + lane] += vals[p * k + lane] * x[xj + lane];
                }
            }
        }
    }

    /// Materialize as a dense matrix (tests/diagnostics).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.n, self.n);
        for j in 0..self.n {
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                d.add(self.row_idx[p], j, self.vals[p]);
            }
        }
        d
    }
}

impl MatrixStamp for SparseMatrix {
    #[inline]
    fn add(&mut self, i: usize, j: usize, v: f64) {
        SparseMatrix::add(self, i, j, v);
    }
}

/// Result of the symbolic analysis pass: a fill-reducing elimination order,
/// computed once per circuit topology and shared by every numeric
/// factorization of matrices with that pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Symbolic {
    /// `perm[k]` = original column eliminated in position `k`.
    perm: Vec<usize>,
}

impl Symbolic {
    /// Analyze the pattern of `a`: reverse Cuthill–McKee on `A + Aᵀ`.
    /// RCM drives banded-plus-coupling MNA structures (segmented wires with
    /// inter-wire coupling caps) to a narrow band, so LU fill stays
    /// near-linear in the input non-zeros.
    pub fn analyze(a: &SparseMatrix) -> Self {
        let n = a.n;
        // Symmetrized adjacency, diagonal excluded.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for j in 0..n {
            for p in a.col_ptr[j]..a.col_ptr[j + 1] {
                let i = a.row_idx[p];
                if i != j {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        let degree: Vec<usize> = adj.iter().map(Vec::len).collect();
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        // BFS from `start`, neighbors by increasing degree; returns the
        // range of `order` this component occupies.
        let bfs = |start: usize, visited: &mut Vec<bool>, order: &mut Vec<usize>| -> usize {
            let begin = order.len();
            visited[start] = true;
            order.push(start);
            let mut head = begin;
            let mut frontier: Vec<usize> = Vec::new();
            while head < order.len() {
                let u = order[head];
                head += 1;
                frontier.clear();
                for &v in &adj[u] {
                    if !visited[v] {
                        visited[v] = true;
                        frontier.push(v);
                    }
                }
                frontier.sort_unstable_by_key(|&v| degree[v]);
                order.extend_from_slice(&frontier);
            }
            begin
        };
        for seed in 0..n {
            if visited[seed] {
                continue;
            }
            // Pseudo-peripheral start: BFS once, restart from the node
            // discovered last (an eccentric, low-degree endpoint).
            let begin = bfs(seed, &mut visited, &mut order);
            let far = *order.last().expect("bfs visited at least the seed");
            if far != seed {
                for &u in &order[begin..] {
                    visited[u] = false;
                }
                order.truncate(begin);
                bfs(far, &mut visited, &mut order);
            }
        }
        order.reverse();
        Self { perm: order }
    }

    /// The natural (identity) ordering — baseline for tests and benches.
    pub fn natural(n: usize) -> Self {
        Self {
            perm: (0..n).collect(),
        }
    }

    /// The elimination order: `perm()[k]` is the original column
    /// eliminated at position `k`.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }
}

/// Sparse LU factors `P·A·Q = L·U` with stored pattern and pivot sequence,
/// supporting repeated [`SparseLu::refactor`]/[`SparseLu::solve_into`]
/// cycles without allocation.
///
/// # Examples
///
/// ```
/// use sna_spice::sparse::{SparseLu, SparseMatrix, Symbolic};
///
/// let a = SparseMatrix::from_triplets(
///     2,
///     &[(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)],
/// );
/// let sym = Symbolic::analyze(&a);
/// let lu = SparseLu::factor(&a, &sym).unwrap();
/// let mut x = [0.0; 2];
/// let mut work = [0.0; 2];
/// lu.solve_into(&[3.0, 4.0], &mut x, &mut work);
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Column order (from the symbolic pass).
    q: Vec<usize>,
    /// `p[k]` = original row pivotal at position `k`.
    p: Vec<usize>,
    /// `pinv[original row]` = pivotal position.
    pinv: Vec<usize>,
    /// Strict lower factor, CSC by pivotal column; unit diagonal implicit.
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    /// Strict upper factor, CSC by pivotal column, rows ascending.
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    /// Dense accumulator reused by [`SparseLu::refactor`].
    work: Vec<f64>,
}

impl SparseLu {
    /// Cold factorization: Gilbert–Peierls left-looking LU with threshold
    /// partial pivoting, discovering the fill pattern and pivot sequence.
    ///
    /// # Errors
    ///
    /// [`Error::SingularMatrix`] on a structurally or numerically singular
    /// column.
    pub fn factor(a: &SparseMatrix, sym: &Symbolic) -> Result<Self> {
        let n = a.n;
        assert_eq!(sym.perm.len(), n, "symbolic analysis dimension mismatch");
        let q = sym.perm.clone();
        let mut pinv = vec![NONE; n];
        let mut p = vec![0usize; n];
        // Factors under construction; L rows are ORIGINAL indices until the
        // final remap, U rows are pivotal.
        let mut l_colptr = Vec::with_capacity(n + 1);
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<f64> = Vec::new();
        let mut u_colptr = Vec::with_capacity(n + 1);
        let mut u_rows: Vec<usize> = Vec::new();
        let mut u_vals: Vec<f64> = Vec::new();
        let mut u_diag = Vec::with_capacity(n);
        l_colptr.push(0);
        u_colptr.push(0);
        // Scratch: dense accumulator, DFS visit stamps, traversal stacks.
        let mut x = vec![0.0; n];
        let mut mark = vec![NONE; n];
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for k in 0..n {
            let col = q[k];
            // Reach of A(:,col) through the DAG of finished L columns,
            // collected in postorder (reverse = topological).
            topo.clear();
            for ap in a.col_ptr[col]..a.col_ptr[col + 1] {
                let root = a.row_idx[ap];
                if mark[root] == k {
                    continue;
                }
                mark[root] = k;
                stack.push((root, 0));
                while let Some(&(node, child)) = stack.last() {
                    let (lo, hi) = if pinv[node] == NONE {
                        (0, 0)
                    } else {
                        let jc = pinv[node];
                        (l_colptr[jc], l_colptr[jc + 1])
                    };
                    let mut descended = false;
                    let mut ci = child;
                    while lo + ci < hi {
                        let next = l_rows[lo + ci];
                        ci += 1;
                        if mark[next] != k {
                            mark[next] = k;
                            stack.last_mut().expect("non-empty stack").1 = ci;
                            stack.push((next, 0));
                            descended = true;
                            break;
                        }
                    }
                    if !descended {
                        stack.pop();
                        topo.push(node);
                    }
                }
            }
            // Numeric sparse triangular solve x = L \ A(:,col).
            for &i in &topo {
                x[i] = 0.0;
            }
            for ap in a.col_ptr[col]..a.col_ptr[col + 1] {
                x[a.row_idx[ap]] = a.vals[ap];
            }
            for idx in (0..topo.len()).rev() {
                let i = topo[idx];
                if pinv[i] == NONE {
                    continue;
                }
                let xi = x[i];
                if xi == 0.0 {
                    continue;
                }
                let jc = pinv[i];
                for lp in l_colptr[jc]..l_colptr[jc + 1] {
                    x[l_rows[lp]] -= l_vals[lp] * xi;
                }
            }
            // Pivot choice among not-yet-pivotal rows.
            let mut ipiv = NONE;
            let mut amax = 0.0f64;
            for &i in &topo {
                if pinv[i] == NONE {
                    let v = x[i].abs();
                    if v > amax {
                        amax = v;
                        ipiv = i;
                    }
                }
            }
            if ipiv == NONE || amax < PIVOT_MIN {
                return Err(Error::SingularMatrix { pivot: k });
            }
            if pinv[col] == NONE && x[col].abs() >= PIVOT_TOL * amax {
                ipiv = col; // keep the diagonal: preserves the ordering
            }
            let pivot = x[ipiv];
            pinv[ipiv] = k;
            p[k] = ipiv;
            u_diag.push(pivot);
            // Partition the reach into U (already pivotal) and L columns;
            // exact zeros are kept so the pattern is closed under refactor.
            for &i in &topo {
                let pi = pinv[i];
                if pi < k {
                    u_rows.push(pi);
                    u_vals.push(x[i]);
                } else if i != ipiv {
                    l_rows.push(i);
                    l_vals.push(x[i] / pivot);
                }
            }
            u_colptr.push(u_rows.len());
            l_colptr.push(l_rows.len());
            for &i in &topo {
                x[i] = 0.0;
            }
        }
        // Finalize: L rows to pivotal indices; U columns sorted ascending
        // (the order refactor's left-looking replay requires).
        for r in &mut l_rows {
            *r = pinv[*r];
        }
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for kk in 0..n {
            let lo = u_colptr[kk];
            let hi = u_colptr[kk + 1];
            scratch.clear();
            scratch.extend(
                u_rows[lo..hi]
                    .iter()
                    .copied()
                    .zip(u_vals[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(r, _)| r);
            for (off, &(r, v)) in scratch.iter().enumerate() {
                u_rows[lo + off] = r;
                u_vals[lo + off] = v;
            }
        }
        Ok(Self {
            n,
            q,
            p,
            pinv,
            l_colptr,
            l_rows,
            l_vals,
            u_colptr,
            u_rows,
            u_vals,
            u_diag,
            work: x,
        })
    }

    /// Dimension of the factored system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Non-zeros in `L + U` (fill included).
    pub fn factor_nnz(&self) -> usize {
        self.l_rows.len() + self.u_rows.len() + self.n
    }

    /// Numeric refactorization: recompute the factor values for `a`, which
    /// must have the *same pattern* as the matrix originally factored.
    /// Reuses the stored pattern and pivot sequence — no graph traversal,
    /// no pivot search, no allocation.
    ///
    /// # Errors
    ///
    /// [`Error::SingularMatrix`] if a stored pivot position becomes
    /// numerically zero; the caller should fall back to a cold
    /// [`SparseLu::factor`] (which re-pivots).
    pub fn refactor(&mut self, a: &SparseMatrix) -> Result<()> {
        assert_eq!(a.n, self.n, "refactor dimension mismatch");
        let x = &mut self.work;
        for k in 0..self.n {
            let col = self.q[k];
            // Zero this column's pattern slots (pivotal space).
            for up in self.u_colptr[k]..self.u_colptr[k + 1] {
                x[self.u_rows[up]] = 0.0;
            }
            x[k] = 0.0;
            for lp in self.l_colptr[k]..self.l_colptr[k + 1] {
                x[self.l_rows[lp]] = 0.0;
            }
            // Scatter A(:,col); the factored pattern is a superset.
            for ap in a.col_ptr[col]..a.col_ptr[col + 1] {
                x[self.pinv[a.row_idx[ap]]] = a.vals[ap];
            }
            // Left-looking replay in ascending pivotal order.
            for up in self.u_colptr[k]..self.u_colptr[k + 1] {
                let r = self.u_rows[up];
                let ur = x[r];
                self.u_vals[up] = ur;
                if ur != 0.0 {
                    for lp in self.l_colptr[r]..self.l_colptr[r + 1] {
                        x[self.l_rows[lp]] -= self.l_vals[lp] * ur;
                    }
                }
            }
            let pivot = x[k];
            if pivot.abs() < PIVOT_MIN {
                return Err(Error::SingularMatrix { pivot: k });
            }
            self.u_diag[k] = pivot;
            for lp in self.l_colptr[k]..self.l_colptr[k + 1] {
                self.l_vals[lp] = x[self.l_rows[lp]] / pivot;
            }
        }
        Ok(())
    }

    /// Allocation-free solve of `A·x = b` using the stored factors.
    /// `work` is caller-provided scratch of the system dimension.
    ///
    /// # Panics
    ///
    /// Panics if `b`, `x`, or `work` differ from the system dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64], work: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        assert_eq!(work.len(), n);
        for (k, w) in work.iter_mut().enumerate() {
            *w = b[self.p[k]];
        }
        // Forward: L has implicit unit diagonal, rows strictly below.
        for k in 0..n {
            let wk = work[k];
            if wk == 0.0 {
                continue;
            }
            for lp in self.l_colptr[k]..self.l_colptr[k + 1] {
                work[self.l_rows[lp]] -= self.l_vals[lp] * wk;
            }
        }
        // Backward: U strict upper plus diagonal.
        for k in (0..n).rev() {
            let wk = work[k] / self.u_diag[k];
            work[k] = wk;
            if wk == 0.0 {
                continue;
            }
            for up in self.u_colptr[k]..self.u_colptr[k + 1] {
                work[self.u_rows[up]] -= self.u_vals[up] * wk;
            }
        }
        for (k, &w) in work.iter().enumerate() {
            x[self.q[k]] = w;
        }
    }

    /// Convenience allocating solve (setup paths, tests).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        let mut work = vec![0.0; self.n];
        self.solve_into(b, &mut x, &mut work);
        x
    }
}

/// K-lane batched numeric refactor/solve over one stored [`SparseLu`]
/// pattern and pivot sequence, with every value plane in struct-of-arrays
/// layout (`plane[slot * k + lane]`).
///
/// The symbolic analysis, fill pattern, and pivot order come from a
/// prototype cold factorization of a single lane; every lane then replays
/// the identical elimination sequence on its own values. Per lane the
/// arithmetic mirrors [`SparseLu::refactor`]/[`SparseLu::solve_into`]
/// exactly, except the exact-zero skip guards are dropped: a skipped
/// update only ever subtracts `x * 0.0`, so dropping the guard is
/// value-preserving while keeping every lane on the same instruction
/// stream (the property the SIMD-friendly lane-inner loops rely on).
///
/// The two loop nestings — `*_outer` (lane-outermost, cache-friendly
/// scalar replay) and `*_inner` (lane-innermost, vectorizable) — perform
/// the same per-lane operation sequence and therefore produce bit-identical
/// results; the [`crate::backend::ComputeBackend`] trait picks between
/// them.
#[derive(Debug, Clone)]
pub struct BatchedSparseLu {
    proto: SparseLu,
    k: usize,
    l_vals: Vec<f64>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    work: Vec<f64>,
}

impl BatchedSparseLu {
    /// Wrap a prototype factorization, allocating `k` value lanes for its
    /// pattern. The prototype's own values become stale (lanes are filled
    /// by the next refactor); only its pattern and pivot sequence are used.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn from_proto(proto: SparseLu, k: usize) -> Self {
        assert!(k > 0, "batched factorization needs at least one lane");
        let nl = proto.l_vals.len();
        let nu = proto.u_vals.len();
        let n = proto.n;
        Self {
            k,
            l_vals: vec![0.0; nl * k],
            u_vals: vec![0.0; nu * k],
            u_diag: vec![0.0; n * k],
            work: vec![0.0; n * k],
            proto,
        }
    }

    /// The prototype factorization providing pattern and pivot sequence.
    pub fn proto(&self) -> &SparseLu {
        &self.proto
    }

    /// Lane count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Dimension of each lane's system.
    pub fn n(&self) -> usize {
        self.proto.n
    }

    fn check_refactor_dims(&self, a: &SparseMatrix, vals: &[f64]) {
        assert_eq!(a.n, self.proto.n, "batched refactor dimension mismatch");
        assert_eq!(
            vals.len(),
            a.row_idx.len() * self.k,
            "value plane shape mismatch"
        );
    }

    /// Lane-outer batched refactor: replay the stored pivot sequence on
    /// `vals` (SoA plane sharing `a`'s pattern), one full lane at a time.
    ///
    /// All lanes are processed even when one hits a collapsed pivot — the
    /// failing lane's factors go non-finite but stay contained to that
    /// lane — and the *smallest* failing lane index is reported so the
    /// outer and inner nestings fail identically.
    ///
    /// # Errors
    ///
    /// `Err(lane)` with the smallest lane whose stored pivot position
    /// became numerically zero; the caller should cold-factor that lane for
    /// a fresh pivot sequence.
    pub fn refactor_outer(
        &mut self,
        a: &SparseMatrix,
        vals: &[f64],
    ) -> std::result::Result<(), usize> {
        self.check_refactor_dims(a, vals);
        let k = self.k;
        let n = self.proto.n;
        let mut fail = usize::MAX;
        for lane in 0..k {
            for kk in 0..n {
                let col = self.proto.q[kk];
                for up in self.proto.u_colptr[kk]..self.proto.u_colptr[kk + 1] {
                    self.work[self.proto.u_rows[up] * k + lane] = 0.0;
                }
                self.work[kk * k + lane] = 0.0;
                for lp in self.proto.l_colptr[kk]..self.proto.l_colptr[kk + 1] {
                    self.work[self.proto.l_rows[lp] * k + lane] = 0.0;
                }
                for ap in a.col_ptr[col]..a.col_ptr[col + 1] {
                    self.work[self.proto.pinv[a.row_idx[ap]] * k + lane] = vals[ap * k + lane];
                }
                for up in self.proto.u_colptr[kk]..self.proto.u_colptr[kk + 1] {
                    let r = self.proto.u_rows[up];
                    let ur = self.work[r * k + lane];
                    self.u_vals[up * k + lane] = ur;
                    for lp in self.proto.l_colptr[r]..self.proto.l_colptr[r + 1] {
                        self.work[self.proto.l_rows[lp] * k + lane] -=
                            self.l_vals[lp * k + lane] * ur;
                    }
                }
                let pivot = self.work[kk * k + lane];
                if pivot.abs() < PIVOT_MIN && lane < fail {
                    fail = lane;
                }
                self.u_diag[kk * k + lane] = pivot;
                for lp in self.proto.l_colptr[kk]..self.proto.l_colptr[kk + 1] {
                    self.l_vals[lp * k + lane] =
                        self.work[self.proto.l_rows[lp] * k + lane] / pivot;
                }
            }
        }
        if fail == usize::MAX {
            Ok(())
        } else {
            Err(fail)
        }
    }

    /// Lane-inner batched refactor: identical per-lane arithmetic to
    /// [`BatchedSparseLu::refactor_outer`], with the lane loop innermost so
    /// each pattern slot's `k` values stream contiguously (SIMD-friendly).
    ///
    /// # Errors
    ///
    /// As [`BatchedSparseLu::refactor_outer`].
    pub fn refactor_inner(
        &mut self,
        a: &SparseMatrix,
        vals: &[f64],
    ) -> std::result::Result<(), usize> {
        self.check_refactor_dims(a, vals);
        let k = self.k;
        let n = self.proto.n;
        let mut fail = usize::MAX;
        for kk in 0..n {
            let col = self.proto.q[kk];
            for up in self.proto.u_colptr[kk]..self.proto.u_colptr[kk + 1] {
                let r = self.proto.u_rows[up] * k;
                for lane in 0..k {
                    self.work[r + lane] = 0.0;
                }
            }
            for lane in 0..k {
                self.work[kk * k + lane] = 0.0;
            }
            for lp in self.proto.l_colptr[kk]..self.proto.l_colptr[kk + 1] {
                let r = self.proto.l_rows[lp] * k;
                for lane in 0..k {
                    self.work[r + lane] = 0.0;
                }
            }
            for ap in a.col_ptr[col]..a.col_ptr[col + 1] {
                let dst = self.proto.pinv[a.row_idx[ap]] * k;
                for lane in 0..k {
                    self.work[dst + lane] = vals[ap * k + lane];
                }
            }
            for up in self.proto.u_colptr[kk]..self.proto.u_colptr[kk + 1] {
                let r = self.proto.u_rows[up];
                let rk = r * k;
                for lane in 0..k {
                    self.u_vals[up * k + lane] = self.work[rk + lane];
                }
                for lp in self.proto.l_colptr[r]..self.proto.l_colptr[r + 1] {
                    let lr = self.proto.l_rows[lp] * k;
                    for lane in 0..k {
                        self.work[lr + lane] -= self.l_vals[lp * k + lane] * self.work[rk + lane];
                    }
                }
            }
            for lane in 0..k {
                let pivot = self.work[kk * k + lane];
                if pivot.abs() < PIVOT_MIN && lane < fail {
                    fail = lane;
                }
                self.u_diag[kk * k + lane] = pivot;
            }
            for lp in self.proto.l_colptr[kk]..self.proto.l_colptr[kk + 1] {
                let lr = self.proto.l_rows[lp] * k;
                for lane in 0..k {
                    self.l_vals[lp * k + lane] = self.work[lr + lane] / self.u_diag[kk * k + lane];
                }
            }
        }
        if fail == usize::MAX {
            Ok(())
        } else {
            Err(fail)
        }
    }

    /// Lane-outer batched solve: for every lane, solve `A(lane)·x = b` with
    /// that lane's stored factors. `b` and `x` are SoA planes of shape
    /// `n × k` indexed by *original* row (`b[row * k + lane]`).
    ///
    /// # Panics
    ///
    /// Panics on plane-dimension mismatch.
    pub fn solve_outer(&mut self, b: &[f64], x: &mut [f64]) {
        let k = self.k;
        let n = self.proto.n;
        assert_eq!(b.len(), n * k);
        assert_eq!(x.len(), n * k);
        for lane in 0..k {
            for kk in 0..n {
                self.work[kk * k + lane] = b[self.proto.p[kk] * k + lane];
            }
            for kk in 0..n {
                let wk = self.work[kk * k + lane];
                for lp in self.proto.l_colptr[kk]..self.proto.l_colptr[kk + 1] {
                    self.work[self.proto.l_rows[lp] * k + lane] -= self.l_vals[lp * k + lane] * wk;
                }
            }
            for kk in (0..n).rev() {
                let wk = self.work[kk * k + lane] / self.u_diag[kk * k + lane];
                self.work[kk * k + lane] = wk;
                for up in self.proto.u_colptr[kk]..self.proto.u_colptr[kk + 1] {
                    self.work[self.proto.u_rows[up] * k + lane] -= self.u_vals[up * k + lane] * wk;
                }
            }
            for kk in 0..n {
                x[self.proto.q[kk] * k + lane] = self.work[kk * k + lane];
            }
        }
    }

    /// Lane-inner batched solve: identical per-lane arithmetic to
    /// [`BatchedSparseLu::solve_outer`] with the lane loop innermost.
    ///
    /// # Panics
    ///
    /// Panics on plane-dimension mismatch.
    pub fn solve_inner(&mut self, b: &[f64], x: &mut [f64]) {
        let k = self.k;
        let n = self.proto.n;
        assert_eq!(b.len(), n * k);
        assert_eq!(x.len(), n * k);
        for kk in 0..n {
            let src = self.proto.p[kk] * k;
            for lane in 0..k {
                self.work[kk * k + lane] = b[src + lane];
            }
        }
        for kk in 0..n {
            let wk = kk * k;
            for lp in self.proto.l_colptr[kk]..self.proto.l_colptr[kk + 1] {
                let lr = self.proto.l_rows[lp] * k;
                for lane in 0..k {
                    self.work[lr + lane] -= self.l_vals[lp * k + lane] * self.work[wk + lane];
                }
            }
        }
        for kk in (0..n).rev() {
            let wk = kk * k;
            for lane in 0..k {
                self.work[wk + lane] /= self.u_diag[wk + lane];
            }
            for up in self.proto.u_colptr[kk]..self.proto.u_colptr[kk + 1] {
                let ur = self.proto.u_rows[up] * k;
                for lane in 0..k {
                    self.work[ur + lane] -= self.u_vals[up * k + lane] * self.work[wk + lane];
                }
            }
        }
        for kk in 0..n {
            let dst = self.proto.q[kk] * k;
            for lane in 0..k {
                x[dst + lane] = self.work[kk * k + lane];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tridiag(n: usize, diag: f64, off: f64) -> SparseMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, diag));
            if i + 1 < n {
                t.push((i, i + 1, off));
                t.push((i + 1, i, off));
            }
        }
        SparseMatrix::from_triplets(n, &t)
    }

    #[test]
    fn pattern_and_stamping() {
        let mut m = SparseMatrix::from_pattern(3, &[(0, 0), (1, 1), (2, 2), (0, 2), (0, 2)]);
        assert_eq!(m.nnz(), 4); // duplicate merged
        m.add(0, 2, 5.0);
        m.add(0, 2, 1.0);
        assert_eq!(m.get(0, 2), 6.0);
        assert_eq!(m.get(2, 0), 0.0);
        m.clear_values();
        assert_eq!(m.get(0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside the sparse pattern")]
    fn stamp_outside_pattern_panics() {
        let mut m = SparseMatrix::from_pattern(2, &[(0, 0), (1, 1)]);
        m.add(0, 1, 1.0);
    }

    #[test]
    fn dense_roundtrip_and_matvec() {
        let d = DenseMatrix::from_rows(&[&[4.0, 0.0, 1.0], &[0.0, 3.0, 0.0], &[1.0, 0.0, 5.0]]);
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 5);
        assert_eq!(s.to_dense(), d);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        s.mul_vec_into(&x, &mut y);
        assert_eq!(y.to_vec(), d.mul_vec(&x));
    }

    #[test]
    fn solve_known_system() {
        let a = tridiag(5, 4.0, -1.0);
        let sym = Symbolic::analyze(&a);
        let lu = SparseLu::factor(&a, &sym).unwrap();
        let xs = [1.0, -2.0, 3.0, 0.5, -1.5];
        let mut b = vec![0.0; 5];
        a.mul_vec_into(&xs, &mut b);
        let x = lu.solve(&b);
        for (got, want) in x.iter().zip(xs.iter()) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Voltage-source-style incidence block: zero diagonal at (2,2).
        let a = SparseMatrix::from_triplets(
            3,
            &[
                (0, 0, 1e-3),
                (0, 2, 1.0),
                (2, 0, 1.0),
                (1, 1, 2e-3),
                (1, 0, -1e-3),
                (0, 1, -1e-3),
            ],
        );
        let sym = Symbolic::analyze(&a);
        let lu = SparseLu::factor(&a, &sym).unwrap();
        let b = [0.0, 1e-3, 2.0];
        let x = lu.solve(&b);
        let mut back = vec![0.0; 3];
        a.mul_vec_into(&x, &mut back);
        for (got, want) in back.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_detected() {
        let a =
            SparseMatrix::from_triplets(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)]);
        let sym = Symbolic::analyze(&a);
        match SparseLu::factor(&a, &sym) {
            Err(Error::SingularMatrix { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn structurally_singular_detected() {
        // Empty column 1.
        let a = SparseMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 0, 1.0)]);
        let sym = Symbolic::natural(2);
        assert!(SparseLu::factor(&a, &sym).is_err());
    }

    #[test]
    fn refactor_tracks_new_values() {
        let mut a = tridiag(20, 5.0, -1.0);
        let sym = Symbolic::analyze(&a);
        let mut lu = SparseLu::factor(&a, &sym).unwrap();
        // Change values (same pattern) the way a Newton iteration would.
        for (idx, v) in a.values_mut().iter_mut().enumerate() {
            *v += 0.01 * (idx as f64 % 3.0);
        }
        lu.refactor(&a).unwrap();
        let xs: Vec<f64> = (0..20).map(|i| (i as f64) - 10.0).collect();
        let mut b = vec![0.0; 20];
        a.mul_vec_into(&xs, &mut b);
        let x = lu.solve(&b);
        for (got, want) in x.iter().zip(xs.iter()) {
            assert!((got - want).abs() < 1e-11, "{got} vs {want}");
        }
    }

    #[test]
    fn refactor_reports_singular_for_fallback() {
        let a = tridiag(4, 2.0, -1.0);
        let sym = Symbolic::analyze(&a);
        let mut lu = SparseLu::factor(&a, &sym).unwrap();
        let mut zeroed = a.clone();
        zeroed.clear_values();
        assert!(lu.refactor(&zeroed).is_err());
        // Fallback path: recover by refactoring the good values again.
        lu.refactor(&a).unwrap();
        let x = lu.solve(&[1.0, 0.0, 0.0, 1.0]);
        let mut back = vec![0.0; 4];
        a.mul_vec_into(&x, &mut back);
        assert!((back[0] - 1.0).abs() < 1e-12);
    }

    /// SoA plane with `lane`-scaled copies of `a`'s values.
    fn scaled_plane(a: &SparseMatrix, k: usize) -> Vec<f64> {
        let mut plane = vec![0.0; a.nnz() * k];
        for (s, &v) in a.values().iter().enumerate() {
            for lane in 0..k {
                plane[s * k + lane] = v * (1.0 + 0.07 * lane as f64);
            }
        }
        plane
    }

    #[test]
    fn batched_refactor_matches_serial_per_lane() {
        let k = 4;
        let a = tridiag(20, 5.0, -1.0);
        let sym = Symbolic::analyze(&a);
        let proto = SparseLu::factor(&a, &sym).unwrap();
        let plane = scaled_plane(&a, k);
        let b_lane: Vec<f64> = (0..20).map(|i| (i as f64) - 7.5).collect();
        let mut b_plane = vec![0.0; 20 * k];
        for i in 0..20 {
            for lane in 0..k {
                b_plane[i * k + lane] = b_lane[i];
            }
        }
        let mut outer = BatchedSparseLu::from_proto(proto.clone(), k);
        let mut inner = BatchedSparseLu::from_proto(proto, k);
        outer.refactor_outer(&a, &plane).unwrap();
        inner.refactor_inner(&a, &plane).unwrap();
        let mut x_outer = vec![0.0; 20 * k];
        let mut x_inner = vec![0.0; 20 * k];
        outer.solve_outer(&b_plane, &mut x_outer);
        inner.solve_inner(&b_plane, &mut x_inner);
        // Outer and inner nestings are bit-identical.
        for (o, i) in x_outer.iter().zip(&x_inner) {
            assert_eq!(o.to_bits(), i.to_bits(), "nestings diverge: {o} vs {i}");
        }
        // And each lane matches a serial refactor of its own values.
        for lane in 0..k {
            let mut al = a.clone();
            for (s, v) in al.values_mut().iter_mut().enumerate() {
                *v = plane[s * k + lane];
            }
            let mut serial = SparseLu::factor(&a, &Symbolic::analyze(&a)).unwrap();
            serial.refactor(&al).unwrap();
            let xs = serial.solve(&b_lane);
            for (i, want) in xs.iter().enumerate() {
                let got = x_outer[i * k + lane];
                assert!(
                    (got - want).abs() < 1e-12,
                    "lane {lane} row {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn batched_refactor_reports_min_failing_lane() {
        let k = 3;
        let a = tridiag(6, 4.0, -1.0);
        let sym = Symbolic::analyze(&a);
        let proto = SparseLu::factor(&a, &sym).unwrap();
        // Lanes 1 and 2 zeroed (singular); lane 0 healthy.
        let mut plane = scaled_plane(&a, k);
        for s in 0..a.nnz() {
            plane[s * k + 1] = 0.0;
            plane[s * k + 2] = 0.0;
        }
        let mut outer = BatchedSparseLu::from_proto(proto.clone(), k);
        let mut inner = BatchedSparseLu::from_proto(proto, k);
        assert_eq!(outer.refactor_outer(&a, &plane), Err(1));
        assert_eq!(inner.refactor_inner(&a, &plane), Err(1));
    }

    #[test]
    fn plane_matvec_matches_serial() {
        let k = 3;
        let a = tridiag(9, 3.0, -0.5);
        let plane = scaled_plane(&a, k);
        let mut x_plane = vec![0.0; 9 * k];
        for i in 0..9 {
            for lane in 0..k {
                x_plane[i * k + lane] = (i as f64 * 0.3 - 1.0) * (lane as f64 + 1.0);
            }
        }
        let mut y_plane = vec![0.0; 9 * k];
        a.mul_planes_into(&plane, k, &x_plane, &mut y_plane);
        for lane in 0..k {
            let mut al = a.clone();
            for (s, v) in al.values_mut().iter_mut().enumerate() {
                *v = plane[s * k + lane];
            }
            let x_lane: Vec<f64> = (0..9).map(|i| x_plane[i * k + lane]).collect();
            let mut y_lane = vec![0.0; 9];
            al.mul_vec_into(&x_lane, &mut y_lane);
            for i in 0..9 {
                assert!((y_plane[i * k + lane] - y_lane[i]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn rcm_narrows_two_wire_coupling_band() {
        // Two chains 0-1-2-..-9 and 10-11-..-19 with rung couplings
        // (i, i+10): natural order has bandwidth 10, RCM interleaves.
        let n = 20;
        let mut t = Vec::new();
        for w in 0..2 {
            for i in 0..10 {
                let u = w * 10 + i;
                t.push((u, u, 4.0));
                if i + 1 < 10 {
                    t.push((u, u + 1, -1.0));
                    t.push((u + 1, u, -1.0));
                }
            }
        }
        for i in 0..10 {
            t.push((i, i + 10, -0.5));
            t.push((i + 10, i, -0.5));
        }
        let a = SparseMatrix::from_triplets(n, &t);
        let sym = Symbolic::analyze(&a);
        let inv: Vec<usize> = {
            let mut inv = vec![0; n];
            for (k, &orig) in sym.perm().iter().enumerate() {
                inv[orig] = k;
            }
            inv
        };
        let mut band = 0usize;
        for j in 0..n {
            for p in a.col_ptr[j]..a.col_ptr[j + 1] {
                band = band.max(inv[a.row_idx[p]].abs_diff(inv[j]));
            }
        }
        assert!(band <= 4, "RCM bandwidth {band} (natural is 10)");
        // And the factor stays sparse: fill bounded by bandwidth.
        let lu = SparseLu::factor(&a, &sym).unwrap();
        assert!(
            lu.factor_nnz() <= a.nnz() * 3,
            "fill {} vs nnz {}",
            lu.factor_nnz(),
            a.nnz()
        );
    }

    proptest! {
        /// Sparse and dense LU agree to 1e-9 on random SPD-ish MNA-style
        /// systems (diagonally dominant, symmetric pattern).
        #[test]
        fn prop_sparse_matches_dense(
            seed in proptest::collection::vec(
                proptest::collection::vec(-1.0f64..1.0, 12), 12),
            rhs in proptest::collection::vec(-5.0f64..5.0, 12))
        {
            let n = 12;
            let mut d = DenseMatrix::zeros(n, n);
            for i in 0..n {
                let mut rowsum = 0.0;
                for j in 0..n {
                    // Sparsify: keep near-band entries only.
                    let v = if i.abs_diff(j) <= 2 { seed[i][j] } else { 0.0 };
                    d[(i, j)] = v;
                    rowsum += v.abs();
                }
                d[(i, i)] += rowsum + 1.0;
            }
            let dense_x = d.solve(&rhs).unwrap();
            let s = SparseMatrix::from_dense(&d);
            let sym = Symbolic::analyze(&s);
            let lu = SparseLu::factor(&s, &sym).unwrap();
            let sparse_x = lu.solve(&rhs);
            for (a, b) in dense_x.iter().zip(&sparse_x) {
                prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }

        /// Refactor after a value perturbation matches a cold factor.
        #[test]
        fn prop_refactor_matches_cold(
            bump in proptest::collection::vec(0.0f64..0.5, 16),
            rhs in proptest::collection::vec(-2.0f64..2.0, 16))
        {
            let n = 16;
            let mut a = tridiag(n, 4.0, -1.0);
            let sym = Symbolic::analyze(&a);
            let mut lu = SparseLu::factor(&a, &sym).unwrap();
            for (i, b) in bump.iter().enumerate() {
                a.add(i, i, *b);
            }
            lu.refactor(&a).unwrap();
            let cold = SparseLu::factor(&a, &sym).unwrap();
            let xw = lu.solve(&rhs);
            let xc = cold.solve(&rhs);
            for (w, c) in xw.iter().zip(&xc) {
                prop_assert!((w - c).abs() < 1e-10);
            }
        }
    }
}
