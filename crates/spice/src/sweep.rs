//! K-lane batched sweeps: one symbolic analysis, `K` value vectors.
//!
//! Corner sweeps, characterization grids, and Monte-Carlo noise-margin
//! studies all solve *the same circuit topology* with different element
//! values or source settings. [`BatchedSweep`] exploits that structure: it
//! assembles the union sparsity pattern once, runs the fill-reducing
//! symbolic analysis once, and then carries `K` value vectors together
//! through assembly, numeric refactorization, and triangular solves in
//! struct-of-arrays layout (`plane[slot * k + lane]`), dispatched through
//! the pluggable [`crate::backend::ComputeBackend`] seam.
//!
//! The per-lane arithmetic mirrors the serial [`SystemSolver`] paths, so
//! batched results track `K` independent serial solves to well below any
//! physical tolerance, and the two CPU backends (lane-outer scalar,
//! lane-inner SIMD-friendly) are bit-identical by construction. Newton
//! loops keep a per-lane convergence mask: converged lanes stop stamping
//! and updating while the remaining lanes iterate, and DC lanes that
//! resist the plain batched Newton fall back—deterministically—to the
//! serial continuation ladder of [`dc_operating_point`].

use sna_obs::{count, phase_span, Metric, Phase};

use crate::backend::{backend_for, BackendKind, BatchedDenseLu, ComputeBackend};
use crate::dc::{dc_operating_point, vsource_names, DcSolution, NewtonOptions};
use crate::error::{Error, Result};
use crate::linalg::{MatrixStamp, PatternCollector};
use crate::mna::MnaSystem;
use crate::netlist::{Circuit, NodeId};
use crate::solver::SolverKind;
use crate::sparse::{BatchedSparseLu, SparseLu, SparseMatrix, Symbolic};
use crate::tran::{
    circuit_topology_hash, circuit_value_hash, AdaptiveOptions, Integrator, TranParams, TranResult,
};

/// Per-backend numeric state of a sweep: dense planes or one shared sparse
/// pattern with SoA value planes.
//
// One State lives per sweep and is never moved after construction, so the
// dense/sparse size asymmetry costs nothing; boxing would only add an
// indirection on the hot solve path.
#[allow(clippy::large_enum_variant)]
enum State {
    Dense {
        /// `n × n × k` SoA planes.
        g: Vec<f64>,
        c: Vec<f64>,
        base: Vec<f64>,
        /// Factor-in-place LU; its data plane doubles as the Jacobian.
        lu: BatchedDenseLu,
    },
    Sparse {
        /// Union pattern: diagonal ∪ every lane's G/C ∪ non-linear stamps.
        pattern: SparseMatrix,
        /// `nnz × k` SoA value planes sharing `pattern`.
        g_vals: Vec<f64>,
        c_vals: Vec<f64>,
        base_vals: Vec<f64>,
        jac_vals: Vec<f64>,
        sym: Symbolic,
        lu: Option<BatchedSparseLu>,
        /// Single-lane extraction scratch for cold-factor fallbacks.
        scratch_mat: SparseMatrix,
    },
}

/// [`MatrixStamp`] sink writing one lane of a dense SoA plane.
struct DenseLaneStamp<'a> {
    data: &'a mut [f64],
    n: usize,
    k: usize,
    lane: usize,
}

impl MatrixStamp for DenseLaneStamp<'_> {
    #[inline]
    fn add(&mut self, i: usize, j: usize, v: f64) {
        self.data[(i * self.n + j) * self.k + self.lane] += v;
    }
}

/// [`MatrixStamp`] sink writing one lane of a sparse SoA value plane.
struct SparseLaneStamp<'a> {
    pattern: &'a SparseMatrix,
    vals: &'a mut [f64],
    k: usize,
    lane: usize,
}

impl MatrixStamp for SparseLaneStamp<'_> {
    #[inline]
    fn add(&mut self, i: usize, j: usize, v: f64) {
        let s = self
            .pattern
            .value_slot(i, j)
            .unwrap_or_else(|| panic!("stamp at ({i},{j}) outside the sweep pattern"));
        self.vals[s * self.k + self.lane] += v;
    }
}

fn gather_lane(plane: &[f64], k: usize, lane: usize, out: &mut [f64]) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = plane[i * k + lane];
    }
}

fn scatter_lane(src: &[f64], k: usize, lane: usize, plane: &mut [f64]) {
    for (i, &v) in src.iter().enumerate() {
        plane[i * k + lane] = v;
    }
}

/// `y(lane) = A(lane)·x(lane)` over dense SoA planes; per lane the
/// accumulation order matches the serial `DenseMatrix::mul_vec_into`.
fn dense_mul_planes(data: &[f64], n: usize, k: usize, x: &[f64], y: &mut [f64]) {
    y.fill(0.0);
    for i in 0..n {
        for j in 0..n {
            let a = (i * n + j) * k;
            for lane in 0..k {
                y[i * k + lane] += data[a + lane] * x[j * k + lane];
            }
        }
    }
}

fn extract_lane_values(plane: &[f64], k: usize, lane: usize, mat: &mut SparseMatrix) {
    for (s, v) in mat.values_mut().iter_mut().enumerate() {
        *v = plane[s * k + lane];
    }
}

fn state_set_alpha(state: &mut State, alpha: f64) {
    match state {
        State::Dense { g, c, base, .. } => {
            for ((b, &gv), &cv) in base.iter_mut().zip(g.iter()).zip(c.iter()) {
                *b = gv + alpha * cv;
            }
        }
        State::Sparse {
            g_vals,
            c_vals,
            base_vals,
            ..
        } => {
            for ((b, &gv), &cv) in base_vals.iter_mut().zip(g_vals.iter()).zip(c_vals.iter()) {
                *b = gv + alpha * cv;
            }
        }
    }
}

/// Reset one lane's Jacobian plane to the linear base `G + α·C`.
fn state_begin_lane(state: &mut State, k: usize, lane: usize) {
    match state {
        State::Dense { base, lu, .. } => {
            let data = lu.data_mut();
            let n2 = base.len() / k;
            for slot in 0..n2 {
                data[slot * k + lane] = base[slot * k + lane];
            }
        }
        State::Sparse {
            base_vals,
            jac_vals,
            ..
        } => {
            let nnz = base_vals.len() / k;
            for slot in 0..nnz {
                jac_vals[slot * k + lane] = base_vals[slot * k + lane];
            }
        }
    }
}

fn state_factor(state: &mut State, backend: &dyn ComputeBackend, k: usize) -> Result<()> {
    match state {
        State::Dense { lu, .. } => backend
            .dense_factor(lu)
            // For batched factorizations the reported index is the failing
            // *lane*, not a pivot position.
            .map_err(|lane| Error::SingularMatrix { pivot: lane }),
        State::Sparse {
            pattern,
            jac_vals,
            sym,
            lu,
            scratch_mat,
            ..
        } => {
            if lu.is_none() {
                extract_lane_values(jac_vals, k, 0, scratch_mat);
                let proto = SparseLu::factor(scratch_mat, sym)?;
                *lu = Some(BatchedSparseLu::from_proto(proto, k));
            }
            let batched = lu.as_mut().expect("initialized above");
            match backend.sparse_refactor(batched, pattern, jac_vals) {
                Ok(()) => Ok(()),
                Err(lane) => {
                    // The stored pivot sequence collapsed for `lane`:
                    // cold-factor that lane for fresh pivots (allocates —
                    // acceptable on this exceptional path) and replay.
                    extract_lane_values(jac_vals, k, lane, scratch_mat);
                    let proto = SparseLu::factor(scratch_mat, sym)?;
                    *lu = Some(BatchedSparseLu::from_proto(proto, k));
                    backend
                        .sparse_refactor(lu.as_mut().expect("just rebuilt"), pattern, jac_vals)
                        .map_err(|l2| Error::SingularMatrix { pivot: l2 })
                }
            }
        }
    }
}

fn state_solve(state: &mut State, backend: &dyn ComputeBackend, b: &[f64], x: &mut [f64]) {
    match state {
        State::Dense { lu, .. } => backend.dense_solve(lu, b, x),
        State::Sparse { lu, .. } => {
            backend.sparse_solve(lu.as_mut().expect("factor before solve"), b, x);
        }
    }
}

fn state_g_mul(state: &State, dim: usize, k: usize, x: &[f64], y: &mut [f64]) {
    match state {
        State::Dense { g, .. } => dense_mul_planes(g, dim, k, x, y),
        State::Sparse {
            pattern, g_vals, ..
        } => pattern.mul_planes_into(g_vals, k, x, y),
    }
}

fn state_c_mul(state: &State, dim: usize, k: usize, x: &[f64], y: &mut [f64]) {
    match state {
        State::Dense { c, .. } => dense_mul_planes(c, dim, k, x, y),
        State::Sparse {
            pattern, c_vals, ..
        } => pattern.mul_planes_into(c_vals, k, x, y),
    }
}

fn state_base_mul(state: &State, dim: usize, k: usize, x: &[f64], y: &mut [f64]) {
    match state {
        State::Dense { base, .. } => dense_mul_planes(base, dim, k, x, y),
        State::Sparse {
            pattern, base_vals, ..
        } => pattern.mul_planes_into(base_vals, k, x, y),
    }
}

/// Stamp one lane's non-linear device contributions into its residual
/// slice (and, when `with_jac`, its Jacobian plane).
#[allow(clippy::too_many_arguments)] // internal kernel: explicit state beats a bag struct
fn state_stamp_lane(
    state: &mut State,
    mna: &MnaSystem,
    circuit: &Circuit,
    x_lane: &[f64],
    residual_lane: &mut [f64],
    k: usize,
    lane: usize,
    with_jac: bool,
) {
    match state {
        State::Dense { lu, .. } => {
            if with_jac {
                let n = lu.n();
                let mut stamp = DenseLaneStamp {
                    data: lu.data_mut(),
                    n,
                    k,
                    lane,
                };
                mna.stamp_nonlinear(circuit, x_lane, residual_lane, Some(&mut stamp));
            } else {
                mna.stamp_nonlinear(circuit, x_lane, residual_lane, None);
            }
        }
        State::Sparse {
            pattern, jac_vals, ..
        } => {
            if with_jac {
                let mut stamp = SparseLaneStamp {
                    pattern,
                    vals: jac_vals,
                    k,
                    lane,
                };
                mna.stamp_nonlinear(circuit, x_lane, residual_lane, Some(&mut stamp));
            } else {
                mna.stamp_nonlinear(circuit, x_lane, residual_lane, None);
            }
        }
    }
}

/// A K-lane batched sweep over one circuit topology.
///
/// Built once from `K` circuits that share wiring (they may differ in
/// element values and source waveforms), then driven through
/// [`BatchedSweep::dc_operating_points`], [`BatchedSweep::transient`], or
/// [`BatchedSweep::transient_adaptive`] — each call re-validated against
/// the construction-time fingerprint exactly like
/// [`crate::tran::TranWorkspace`] reuse: only source waveforms may change
/// between calls.
pub struct BatchedSweep {
    k: usize,
    kind: SolverKind,
    backend_kind: BackendKind,
    backend: &'static dyn ComputeBackend,
    mna: MnaSystem,
    dim: usize,
    n_nodes: usize,
    alpha: f64,
    /// Base-factor memo for the linear adaptive stepper: `Some(α)` when the
    /// current factors are the base at that α with no non-linear stamps.
    factored_base_alpha: Option<f64>,
    state: State,
    // Construction-time fingerprints guarding reuse.
    node_count: usize,
    element_count: usize,
    topo_hash: u64,
    value_hashes: Vec<u64>,
    // SoA step planes, all `dim × k`.
    b_prev: Vec<f64>,
    b_cur: Vec<f64>,
    rhs: Vec<f64>,
    scratch: Vec<f64>,
    residual: Vec<f64>,
    neg: Vec<f64>,
    dx: Vec<f64>,
    f_prev: Vec<f64>,
    x: Vec<f64>,
    x_next: Vec<f64>,
    // Per-lane gather/scatter buffers of `dim`.
    lane_v: Vec<f64>,
    lane_r: Vec<f64>,
    /// Per-lane Newton convergence mask.
    active: Vec<bool>,
}

impl BatchedSweep {
    /// Assemble a sweep over `circuits` (one lane each). All lanes must
    /// share the circuit topology — node count, element count, element
    /// kinds and terminal wiring — while element values and source
    /// waveforms may differ per lane.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidAnalysis`] on an empty lane set or mismatched lane
    /// topologies; propagates circuit validation failures.
    pub fn new(circuits: &[Circuit], kind: SolverKind, backend: BackendKind) -> Result<Self> {
        let first = circuits.first().ok_or_else(|| {
            Error::InvalidAnalysis("batched sweep needs at least one lane".into())
        })?;
        let k = circuits.len();
        let topo_hash = circuit_topology_hash(first);
        for (lane, c) in circuits.iter().enumerate() {
            if c.node_count() != first.node_count()
                || c.elements().len() != first.elements().len()
                || circuit_topology_hash(c) != topo_hash
            {
                return Err(Error::InvalidAnalysis(format!(
                    "batched sweep lane {lane} differs in circuit topology from lane 0"
                )));
            }
        }
        let mna = MnaSystem::new(first)?;
        let dim = mna.dim();
        let n_nodes = mna.n_nodes();
        let value_hashes: Vec<u64> = circuits.iter().map(circuit_value_hash).collect();
        let lane_mnas: Vec<MnaSystem> = circuits
            .iter()
            .map(MnaSystem::new)
            .collect::<Result<Vec<_>>>()?;
        let state = if kind.is_sparse_for(dim) {
            let mut entries: Vec<(usize, usize)> = Vec::new();
            for i in 0..dim {
                entries.push((i, i));
            }
            for m in &lane_mnas {
                let g = m.g_matrix();
                let c = m.c_matrix();
                for i in 0..dim {
                    for j in 0..dim {
                        if g[(i, j)] != 0.0 || c[(i, j)] != 0.0 {
                            entries.push((i, j));
                        }
                    }
                }
            }
            let mut collector = PatternCollector::new();
            let zeros = vec![0.0; dim];
            let mut scratch = vec![0.0; dim];
            mna.stamp_nonlinear(first, &zeros, &mut scratch, Some(&mut collector));
            entries.extend_from_slice(collector.entries());
            let pattern = SparseMatrix::from_pattern(dim, &entries);
            let nnz = pattern.nnz();
            let mut g_vals = vec![0.0; nnz * k];
            let mut c_vals = vec![0.0; nnz * k];
            for (lane, m) in lane_mnas.iter().enumerate() {
                let g = m.g_matrix();
                let c = m.c_matrix();
                for i in 0..dim {
                    for j in 0..dim {
                        let (gv, cv) = (g[(i, j)], c[(i, j)]);
                        if gv != 0.0 || cv != 0.0 {
                            let s = pattern
                                .value_slot(i, j)
                                .expect("union pattern covers every lane entry");
                            g_vals[s * k + lane] = gv;
                            c_vals[s * k + lane] = cv;
                        }
                    }
                }
            }
            let sym = Symbolic::analyze(&pattern);
            let scratch_mat = pattern.clone();
            State::Sparse {
                base_vals: g_vals.clone(),
                jac_vals: vec![0.0; nnz * k],
                g_vals,
                c_vals,
                pattern,
                sym,
                lu: None,
                scratch_mat,
            }
        } else {
            let mut g = vec![0.0; dim * dim * k];
            let mut c = vec![0.0; dim * dim * k];
            for (lane, m) in lane_mnas.iter().enumerate() {
                let gm = m.g_matrix();
                let cm = m.c_matrix();
                for i in 0..dim {
                    for j in 0..dim {
                        g[(i * dim + j) * k + lane] = gm[(i, j)];
                        c[(i * dim + j) * k + lane] = cm[(i, j)];
                    }
                }
            }
            State::Dense {
                base: g.clone(),
                g,
                c,
                lu: BatchedDenseLu::new(dim, k),
            }
        };
        Ok(Self {
            k,
            kind,
            backend_kind: backend,
            backend: backend_for(backend),
            mna,
            dim,
            n_nodes,
            alpha: 0.0,
            factored_base_alpha: None,
            state,
            node_count: first.node_count(),
            element_count: first.elements().len(),
            topo_hash,
            value_hashes,
            b_prev: vec![0.0; dim * k],
            b_cur: vec![0.0; dim * k],
            rhs: vec![0.0; dim * k],
            scratch: vec![0.0; dim * k],
            residual: vec![0.0; dim * k],
            neg: vec![0.0; dim * k],
            dx: vec![0.0; dim * k],
            f_prev: vec![0.0; dim * k],
            x: vec![0.0; dim * k],
            x_next: vec![0.0; dim * k],
            lane_v: vec![0.0; dim],
            lane_r: vec![0.0; dim],
            active: vec![false; k],
        })
    }

    /// Lane count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Unknown count of each lane's MNA system.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the sparse backend was selected.
    pub fn is_sparse(&self) -> bool {
        matches!(self.state, State::Sparse { .. })
    }

    /// The compute backend selection.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend_kind
    }

    /// The compute backend's name (diagnostics).
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Guard against reuse with different circuits: lane count, topology,
    /// and element values must match construction; only source waveforms
    /// may change between calls (same contract as
    /// [`crate::tran::TranWorkspace`]).
    fn check(&self, circuits: &[Circuit]) -> Result<()> {
        if circuits.len() != self.k {
            return Err(Error::InvalidAnalysis(
                "batched sweep called with a different lane count".into(),
            ));
        }
        for (lane, c) in circuits.iter().enumerate() {
            if c.node_count() != self.node_count
                || c.elements().len() != self.element_count
                || circuit_topology_hash(c) != self.topo_hash
            {
                return Err(Error::InvalidAnalysis(format!(
                    "batched sweep built for a different circuit topology (lane {lane})"
                )));
            }
            if circuit_value_hash(c) != self.value_hashes[lane] {
                return Err(Error::InvalidAnalysis(format!(
                    "element values changed since the batched sweep was built (lane {lane}); \
                     only source waveforms may change between reuses"
                )));
            }
        }
        Ok(())
    }

    fn set_alpha(&mut self, alpha: f64) {
        if alpha == self.alpha {
            return;
        }
        self.alpha = alpha;
        self.factored_base_alpha = None;
        state_set_alpha(&mut self.state, alpha);
    }

    /// Factor the linear base `G + α·C` for all lanes (memoized on α for
    /// the adaptive stepper's h/h-half alternation).
    fn factor_base(&mut self) -> Result<()> {
        if self.factored_base_alpha == Some(self.alpha) {
            return Ok(());
        }
        for lane in 0..self.k {
            state_begin_lane(&mut self.state, self.k, lane);
        }
        state_factor(&mut self.state, self.backend, self.k)?;
        self.factored_base_alpha = Some(self.alpha);
        Ok(())
    }

    /// Fill `self.b_cur` from every lane's sources at time `t`.
    fn fill_b_cur(&mut self, circuits: &[Circuit], t: f64) {
        for (lane, ckt) in circuits.iter().enumerate() {
            self.mna.rhs_into(ckt, t, 1.0, &mut self.lane_v);
            scatter_lane(&self.lane_v, self.k, lane, &mut self.b_cur);
        }
    }

    /// Batched DC operating points: one per lane, solved simultaneously.
    ///
    /// Linear lane sets factor the base once and back-substitute all lanes
    /// in one batched solve. Non-linear sets run a masked plain Newton —
    /// converged lanes stop stamping and updating while the rest iterate —
    /// and any lane that resists plain Newton (or a singular batched
    /// factor) falls back to the serial continuation ladder of
    /// [`dc_operating_point`], keeping behavior deterministic and
    /// backend-independent.
    ///
    /// `warm` optionally seeds each lane with a previous solution's raw
    /// unknown vector (same semantics as [`dc_operating_point`]).
    ///
    /// # Errors
    ///
    /// [`Error::NonConvergence`] if a lane fails even the serial ladder;
    /// [`Error::SingularMatrix`] on structurally singular lanes;
    /// [`Error::InvalidAnalysis`] on fingerprint mismatches.
    pub fn dc_operating_points(
        &mut self,
        circuits: &[Circuit],
        opts: &NewtonOptions,
        warm: Option<&[Vec<f64>]>,
    ) -> Result<Vec<DcSolution>> {
        self.check(circuits)?;
        let _t = phase_span(Phase::Sweep);
        count(Metric::SweepCalls, 1);
        count(Metric::SweepLanes, self.k as u64);
        self.set_alpha(0.0);
        let (k, dim) = (self.k, self.dim);
        self.fill_b_cur(circuits, 0.0);
        let warm_ok = warm.is_some_and(|w| w.len() == k && w.iter().all(|v| v.len() == dim));
        if warm_ok {
            let w = warm.expect("checked above");
            for (lane, w_lane) in w.iter().enumerate() {
                scatter_lane(w_lane, k, lane, &mut self.x);
            }
        } else {
            self.x.fill(0.0);
        }
        let names: Vec<Vec<String>> = circuits
            .iter()
            .map(|c| vsource_names(c, &self.mna))
            .collect();
        if !self.mna.has_nonlinear() {
            self.factor_base()?;
            let Self {
                state,
                backend,
                b_cur,
                x,
                ..
            } = self;
            state_solve(state, *backend, b_cur, x);
            let mut out = Vec::with_capacity(k);
            for (lane, name) in names.into_iter().enumerate() {
                gather_lane(&self.x, k, lane, &mut self.lane_v);
                out.push(DcSolution::from_parts(
                    self.lane_v.clone(),
                    self.mna.vsource_branches().to_vec(),
                    name,
                    1,
                ));
            }
            return Ok(out);
        }
        // Masked plain Newton over all lanes.
        let mut iters = vec![0usize; k];
        self.active.fill(true);
        for _ in 0..opts.max_iter {
            if !self.active.iter().any(|&a| a) {
                break;
            }
            let Self {
                mna,
                state,
                backend,
                b_cur,
                residual,
                neg,
                x,
                lane_v,
                lane_r,
                active,
                ..
            } = self;
            for (lane, &is_active) in active.iter().enumerate() {
                if is_active {
                    state_begin_lane(state, k, lane);
                }
            }
            state_g_mul(state, dim, k, x, residual);
            for (r, &bv) in residual.iter_mut().zip(b_cur.iter()) {
                *r -= bv;
            }
            for (lane, ckt) in circuits.iter().enumerate() {
                if !active[lane] {
                    continue;
                }
                gather_lane(x, k, lane, lane_v);
                gather_lane(residual, k, lane, lane_r);
                state_stamp_lane(state, mna, ckt, lane_v, lane_r, k, lane, true);
                scatter_lane(lane_r, k, lane, residual);
                iters[lane] += 1;
            }
            for (nv, &rv) in neg.iter_mut().zip(residual.iter()) {
                *nv = -rv;
            }
            if state_factor(state, *backend, k).is_err() {
                // Conservative: every still-active lane takes the serial
                // ladder (identical across backends — the arithmetic that
                // failed is identical too).
                break;
            }
            self.factored_base_alpha = None;
            let Self {
                state,
                backend,
                neg,
                dx,
                ..
            } = self;
            state_solve(state, *backend, neg, dx);
            for lane in 0..k {
                if !self.active[lane] {
                    continue;
                }
                let mut max_res = 0.0_f64;
                let mut max_dx = 0.0_f64;
                for i in 0..dim {
                    max_res = max_res.max(self.residual[i * k + lane].abs());
                    max_dx = max_dx.max(self.dx[i * k + lane].abs());
                }
                let scale = if max_dx > opts.max_step {
                    opts.max_step / max_dx
                } else {
                    1.0
                };
                let mut converged = max_res < opts.abstol.max(1e-12);
                for i in 0..dim {
                    let step = scale * self.dx[i * k + lane];
                    self.x[i * k + lane] += step;
                    if step.abs() > opts.reltol * self.x[i * k + lane].abs() + opts.vntol {
                        converged = false;
                    }
                }
                if converged && scale == 1.0 {
                    self.active[lane] = false;
                }
            }
        }
        count(
            Metric::SweepLaneNewtonIterations,
            iters.iter().sum::<usize>() as u64,
        );
        // Serial continuation-ladder fallback for unconverged lanes.
        for lane in 0..k {
            if !self.active[lane] {
                continue;
            }
            count(Metric::SweepSerialFallbacks, 1);
            let mut lane_opts = *opts;
            lane_opts.solver = self.kind;
            let warm_lane = if warm_ok {
                warm.map(|w| w[lane].as_slice())
            } else {
                None
            };
            let sol = dc_operating_point(&circuits[lane], &lane_opts, warm_lane)?;
            scatter_lane(sol.unknowns(), k, lane, &mut self.x);
            iters[lane] += sol.iterations;
            self.active[lane] = false;
        }
        let mut out = Vec::with_capacity(k);
        for (lane, name) in names.into_iter().enumerate() {
            gather_lane(&self.x, k, lane, &mut self.lane_v);
            out.push(DcSolution::from_parts(
                self.lane_v.clone(),
                self.mna.vsource_branches().to_vec(),
                name,
                iters[lane],
            ));
        }
        Ok(out)
    }

    /// Masked Newton solve of `(G + α·C)x + f(x) = rhs` on the `x` plane
    /// (used by both transient steppers). Returns total per-lane iteration
    /// count; errors with the given analysis tag if any lane fails.
    fn newton_step_lanes(
        &mut self,
        circuits: &[Circuit],
        newton: &NewtonOptions,
        analysis: &'static str,
        t1: f64,
    ) -> Result<usize> {
        let (k, dim) = (self.k, self.dim);
        self.active.fill(true);
        self.factored_base_alpha = None;
        let mut total = 0usize;
        for _ in 0..newton.max_iter {
            if !self.active.iter().any(|&a| a) {
                count(Metric::SweepLaneNewtonIterations, total as u64);
                return Ok(total);
            }
            let Self {
                mna,
                state,
                backend,
                rhs,
                residual,
                neg,
                dx,
                x,
                lane_v,
                lane_r,
                active,
                ..
            } = self;
            state_base_mul(state, dim, k, x, residual);
            for (r, &rv) in residual.iter_mut().zip(rhs.iter()) {
                *r -= rv;
            }
            for (lane, &is_active) in active.iter().enumerate() {
                if is_active {
                    state_begin_lane(state, k, lane);
                }
            }
            for (lane, ckt) in circuits.iter().enumerate() {
                if !active[lane] {
                    continue;
                }
                gather_lane(x, k, lane, lane_v);
                gather_lane(residual, k, lane, lane_r);
                state_stamp_lane(state, mna, ckt, lane_v, lane_r, k, lane, true);
                scatter_lane(lane_r, k, lane, residual);
                total += 1;
            }
            for (nv, &rv) in neg.iter_mut().zip(residual.iter()) {
                *nv = -rv;
            }
            state_factor(state, *backend, k)?;
            state_solve(state, *backend, neg, dx);
            for lane in 0..k {
                if !self.active[lane] {
                    continue;
                }
                let mut max_dx = 0.0_f64;
                for i in 0..dim {
                    max_dx = max_dx.max(self.dx[i * k + lane].abs());
                }
                let scale = if max_dx > newton.max_step {
                    newton.max_step / max_dx
                } else {
                    1.0
                };
                let mut done = true;
                for i in 0..dim {
                    let s = scale * self.dx[i * k + lane];
                    self.x[i * k + lane] += s;
                    if s.abs() > newton.reltol * self.x[i * k + lane].abs() + newton.vntol {
                        done = false;
                    }
                }
                if done && scale == 1.0 {
                    self.active[lane] = false;
                }
            }
        }
        if self.active.iter().any(|&a| a) {
            let mut max_res = 0.0_f64;
            for (slot, &r) in self.residual.iter().enumerate() {
                if self.active[slot % k] {
                    max_res = max_res.max(r.abs());
                }
            }
            return Err(Error::NonConvergence {
                analysis,
                iterations: newton.max_iter,
                time: t1,
                residual: max_res,
            });
        }
        count(Metric::SweepLaneNewtonIterations, total as u64);
        Ok(total)
    }

    /// Batched fixed-step transient: one [`TranResult`] per lane, all lanes
    /// stepped together on the shared time grid. Mirrors
    /// [`crate::tran::transient_with`] per lane, with the per-step Newton
    /// masked per lane.
    ///
    /// # Errors
    ///
    /// As [`crate::tran::transient_with`], plus fingerprint mismatches.
    pub fn transient(
        &mut self,
        circuits: &[Circuit],
        params: &TranParams,
    ) -> Result<Vec<TranResult>> {
        self.transient_with_ics(circuits, params, &[])
    }

    /// [`Self::transient`] with explicit node initial conditions applied to
    /// every lane after DC initialization (or the zero state), mirroring
    /// [`crate::tran::transient_with_ics`]. Ground and unknown nodes are
    /// ignored.
    ///
    /// # Errors
    ///
    /// As [`Self::transient`].
    pub fn transient_with_ics(
        &mut self,
        circuits: &[Circuit],
        params: &TranParams,
        ics: &[(NodeId, f64)],
    ) -> Result<Vec<TranResult>> {
        if params.dt.is_nan()
            || params.dt <= 0.0
            || params.t_stop.is_nan()
            || params.t_stop <= 0.0
            || params.t_stop < params.dt
        {
            return Err(Error::InvalidAnalysis(format!(
                "bad transient window: t_stop={}, dt={}",
                params.t_stop, params.dt
            )));
        }
        self.check(circuits)?;
        let _t = phase_span(Phase::Sweep);
        count(Metric::SweepCalls, 1);
        count(Metric::SweepLanes, self.k as u64);
        let (k, dim, n_nodes) = (self.k, self.dim, self.n_nodes);
        let n_steps = (params.t_stop / params.dt).round() as usize;
        // Initial condition per lane.
        if params.dc_init {
            let mut newton = params.newton;
            newton.solver = self.kind;
            self.dc_operating_points(circuits, &newton, None)?;
            // `dc_operating_points` leaves its solution in the x plane.
        } else {
            self.x.fill(0.0);
        }
        for &(node, v) in ics {
            if let Some(row) = self.mna.node_unknown(node) {
                for lane in 0..k {
                    self.x[row * k + lane] = v;
                }
            }
        }
        let alpha = match params.method {
            Integrator::BackwardEuler => 1.0 / params.dt,
            Integrator::Trapezoidal => 2.0 / params.dt,
        };
        self.set_alpha(alpha);
        let linear = !self.mna.has_nonlinear();
        if linear {
            self.factor_base()?;
        }
        let mut times = Vec::with_capacity(n_steps + 1);
        let mut traces: Vec<Vec<Vec<f64>>> = (0..k)
            .map(|_| {
                (0..n_nodes)
                    .map(|_| Vec::with_capacity(n_steps + 1))
                    .collect()
            })
            .collect();
        let n_vsrc = self.mna.vsources().len();
        let vb: Vec<usize> = self.mna.vsource_branches().to_vec();
        let mut branch: Vec<Vec<Vec<f64>>> = (0..k)
            .map(|_| {
                (0..n_vsrc)
                    .map(|_| Vec::with_capacity(n_steps + 1))
                    .collect()
            })
            .collect();
        let record = |x: &[f64],
                      t: f64,
                      times: &mut Vec<f64>,
                      traces: &mut Vec<Vec<Vec<f64>>>,
                      branch: &mut Vec<Vec<Vec<f64>>>| {
            times.push(t);
            for (lane, lane_tr) in traces.iter_mut().enumerate() {
                for (n, tr) in lane_tr.iter_mut().enumerate() {
                    tr.push(x[n * k + lane]);
                }
            }
            for (lane, lane_br) in branch.iter_mut().enumerate() {
                for (s, br) in lane_br.iter_mut().enumerate() {
                    br.push(x[vb[s] * k + lane]);
                }
            }
        };
        record(&self.x, 0.0, &mut times, &mut traces, &mut branch);
        self.fill_b_cur(circuits, 0.0);
        std::mem::swap(&mut self.b_prev, &mut self.b_cur);
        self.f_prev.fill(0.0);
        if matches!(params.method, Integrator::Trapezoidal) {
            let Self {
                mna,
                state,
                f_prev,
                x,
                lane_v,
                lane_r,
                ..
            } = self;
            for (lane, ckt) in circuits.iter().enumerate() {
                gather_lane(x, k, lane, lane_v);
                lane_r.fill(0.0);
                state_stamp_lane(state, mna, ckt, lane_v, lane_r, k, lane, false);
                scatter_lane(lane_r, k, lane, f_prev);
            }
        }
        let mut total_newton = 0usize;
        for step in 1..=n_steps {
            let t1 = step as f64 * params.dt;
            self.fill_b_cur(circuits, t1);
            {
                let Self {
                    state,
                    b_prev,
                    b_cur,
                    rhs,
                    scratch,
                    f_prev,
                    x,
                    ..
                } = self;
                state_c_mul(state, dim, k, x, scratch);
                match params.method {
                    Integrator::BackwardEuler => {
                        for i in 0..dim * k {
                            rhs[i] = b_cur[i] + alpha * scratch[i];
                        }
                    }
                    Integrator::Trapezoidal => {
                        for i in 0..dim * k {
                            rhs[i] = b_cur[i] + b_prev[i] - f_prev[i] + alpha * scratch[i];
                        }
                        state_g_mul(state, dim, k, x, scratch);
                        for i in 0..dim * k {
                            rhs[i] -= scratch[i];
                        }
                    }
                }
            }
            if linear {
                let Self {
                    state,
                    backend,
                    rhs,
                    x_next,
                    ..
                } = self;
                state_solve(state, *backend, rhs, x_next);
                std::mem::swap(&mut self.x, &mut self.x_next);
            } else {
                total_newton += self.newton_step_lanes(circuits, &params.newton, "tran", t1)?;
            }
            record(&self.x, t1, &mut times, &mut traces, &mut branch);
            std::mem::swap(&mut self.b_prev, &mut self.b_cur);
            if matches!(params.method, Integrator::Trapezoidal) {
                self.f_prev.fill(0.0);
                let Self {
                    mna,
                    state,
                    f_prev,
                    x,
                    lane_v,
                    lane_r,
                    ..
                } = self;
                for (lane, ckt) in circuits.iter().enumerate() {
                    gather_lane(x, k, lane, lane_v);
                    lane_r.fill(0.0);
                    state_stamp_lane(state, mna, ckt, lane_v, lane_r, k, lane, false);
                    scatter_lane(lane_r, k, lane, f_prev);
                }
            }
        }
        count(Metric::SweepSteps, n_steps as u64);
        Ok(self.collect_results(circuits, times, traces, branch, total_newton))
    }

    /// Batched adaptive transient: backward Euler with step-doubling error
    /// control, all lanes marching in lock-step on the worst lane's local
    /// truncation estimate (so the shared factorization is reused across
    /// lanes at every trial step). Mirrors
    /// [`crate::tran::transient_adaptive_with`] with the lane dimension
    /// added.
    ///
    /// # Errors
    ///
    /// As [`crate::tran::transient_adaptive_with`], plus fingerprint
    /// mismatches.
    pub fn transient_adaptive(
        &mut self,
        circuits: &[Circuit],
        opts: &AdaptiveOptions,
    ) -> Result<Vec<TranResult>> {
        if opts.dt_init.is_nan()
            || opts.dt_init <= 0.0
            || opts.dt_min.is_nan()
            || opts.dt_min <= 0.0
            || opts.dt_max.is_nan()
            || opts.dt_max < opts.dt_min
            || opts.t_stop.is_nan()
            || opts.t_stop <= opts.dt_min
            || opts.ltol.is_nan()
            || opts.ltol <= 0.0
        {
            return Err(Error::InvalidAnalysis(format!(
                "bad adaptive window: t_stop={}, dt_init={}, dt_min={}, dt_max={}, ltol={}",
                opts.t_stop, opts.dt_init, opts.dt_min, opts.dt_max, opts.ltol
            )));
        }
        self.check(circuits)?;
        let _t = phase_span(Phase::Sweep);
        count(Metric::SweepCalls, 1);
        count(Metric::SweepLanes, self.k as u64);
        let (k, dim, n_nodes) = (self.k, self.dim, self.n_nodes);
        if opts.dc_init {
            let mut newton = opts.newton;
            newton.solver = self.kind;
            self.dc_operating_points(circuits, &newton, None)?;
        } else {
            self.x.fill(0.0);
        }
        let mut x_full = vec![0.0; dim * k];
        let mut x_mid = vec![0.0; dim * k];
        let mut x_half = vec![0.0; dim * k];
        let est_points = ((opts.t_stop / opts.dt_init) as usize)
            .saturating_add(2)
            .min(1 << 20);
        let mut times = Vec::with_capacity(est_points);
        times.push(0.0);
        let mut traces: Vec<Vec<Vec<f64>>> = (0..k)
            .map(|lane| {
                (0..n_nodes)
                    .map(|n| {
                        let mut v = Vec::with_capacity(est_points);
                        v.push(self.x[n * k + lane]);
                        v
                    })
                    .collect()
            })
            .collect();
        let n_vsrc = self.mna.vsources().len();
        let vb: Vec<usize> = self.mna.vsource_branches().to_vec();
        let mut branch: Vec<Vec<Vec<f64>>> = (0..k)
            .map(|lane| {
                (0..n_vsrc)
                    .map(|s| {
                        let mut v = Vec::with_capacity(est_points);
                        v.push(self.x[vb[s] * k + lane]);
                        v
                    })
                    .collect()
            })
            .collect();
        let mut t = 0.0;
        let mut h = opts.dt_init.clamp(opts.dt_min, opts.dt_max);
        let mut total_newton = 0usize;
        // Accepted state travels in a local plane; `self.x` stays a
        // full-size Newton scratch for `be_step_lanes`.
        let mut x0 = self.x.clone();
        while t < opts.t_stop - 1e-21 {
            h = h.min(opts.t_stop - t).max(opts.dt_min);
            self.be_step_lanes(
                circuits,
                &x0,
                t,
                h,
                &opts.newton,
                &mut x_full,
                &mut total_newton,
            )?;
            self.be_step_lanes(
                circuits,
                &x0,
                t,
                0.5 * h,
                &opts.newton,
                &mut x_mid,
                &mut total_newton,
            )?;
            self.be_step_lanes(
                circuits,
                &x_mid,
                t + 0.5 * h,
                0.5 * h,
                &opts.newton,
                &mut x_half,
                &mut total_newton,
            )?;
            let err = x_full
                .iter()
                .zip(&x_half)
                .fold(0.0_f64, |a, (f, g)| a.max((f - g).abs()));
            if err > opts.ltol && h > opts.dt_min * 1.0001 {
                h = (0.5 * h).max(opts.dt_min);
                continue;
            }
            t += h;
            std::mem::swap(&mut x0, &mut x_half);
            times.push(t);
            for (lane, lane_tr) in traces.iter_mut().enumerate() {
                for (n, tr) in lane_tr.iter_mut().enumerate() {
                    tr.push(x0[n * k + lane]);
                }
            }
            for (lane, lane_br) in branch.iter_mut().enumerate() {
                for (s, br) in lane_br.iter_mut().enumerate() {
                    br.push(x0[vb[s] * k + lane]);
                }
            }
            if err < 0.25 * opts.ltol {
                h = (2.0 * h).min(opts.dt_max);
            }
        }
        self.x.copy_from_slice(&x0);
        count(Metric::SweepSteps, (times.len() - 1) as u64);
        Ok(self.collect_results(circuits, times, traces, branch, total_newton))
    }

    /// One batched backward-Euler step of size `h` from `(t0, x0)` into
    /// `out`, every lane together.
    #[allow(clippy::too_many_arguments)] // internal stepper: explicit state beats a bag struct
    fn be_step_lanes(
        &mut self,
        circuits: &[Circuit],
        x0: &[f64],
        t0: f64,
        h: f64,
        newton: &NewtonOptions,
        out: &mut [f64],
        newton_count: &mut usize,
    ) -> Result<()> {
        let (k, dim) = (self.k, self.dim);
        let t1 = t0 + h;
        self.fill_b_cur(circuits, t1);
        let alpha = 1.0 / h;
        self.set_alpha(alpha);
        {
            let Self {
                state,
                b_cur,
                rhs,
                scratch,
                ..
            } = self;
            state_c_mul(state, dim, k, x0, scratch);
            for i in 0..dim * k {
                rhs[i] = b_cur[i] + alpha * scratch[i];
            }
        }
        if !self.mna.has_nonlinear() {
            self.factor_base()?;
            let Self {
                state,
                backend,
                rhs,
                ..
            } = self;
            state_solve(state, *backend, rhs, out);
            return Ok(());
        }
        // Newton on the x plane, warm-started from x0.
        self.x.copy_from_slice(x0);
        *newton_count += self.newton_step_lanes(circuits, newton, "tran-adaptive", t1)?;
        out.copy_from_slice(&self.x);
        Ok(())
    }

    /// Package per-lane sample storage into [`TranResult`]s.
    fn collect_results(
        &self,
        circuits: &[Circuit],
        times: Vec<f64>,
        traces: Vec<Vec<Vec<f64>>>,
        branch: Vec<Vec<Vec<f64>>>,
        total_newton: usize,
    ) -> Vec<TranResult> {
        let mut out = Vec::with_capacity(self.k);
        for ((ckt, lane_tr), lane_br) in circuits.iter().zip(traces).zip(branch) {
            let node_names = (0..ckt.node_count())
                .map(|i| ckt.node_name(NodeId(i)).to_string())
                .collect();
            let vsrc_names = self
                .mna
                .vsources()
                .iter()
                .map(|id| ckt.element(*id).name().to_string())
                .collect();
            out.push(TranResult::from_parts(
                times.clone(),
                lane_tr,
                lane_br,
                node_names,
                vsrc_names,
                total_newton,
            ));
        }
        out
    }
}
