//! # sna-spice — circuit-simulation substrate for static noise analysis
//!
//! A from-scratch SPICE-class simulator playing the role ELDO™ plays in
//! Forzan & Pandini's DATE 2005 paper *"Modeling the Non-Linear Behavior of
//! Library Cells for an Accurate Static Noise Analysis"*: the golden
//! reference against which noise macromodels are validated, and the engine
//! used to pre-characterize cells.
//!
//! ## What's inside
//!
//! * [`netlist`] — flat circuit representation over named nodes (R, C,
//!   V/I sources, linear VCCS, table-driven VCCS, level-1 MOSFETs).
//! * [`mna`] — Modified Nodal Analysis assembly (`G`, `C` matrices, RHS,
//!   non-linear stamps).
//! * [`dc`] — Newton–Raphson operating point with gmin/source stepping,
//!   sweeps, small-signal input conductance (holding resistance).
//! * [`tran`] — fixed-step trapezoidal / backward-Euler transient.
//! * [`devices`] — source waveforms, the smoothed Shichman–Hodges MOSFET,
//!   and the bilinear [`devices::Table2d`] behind the paper's Eq. (1).
//! * [`waveform`] — sampled waveforms and glitch metrics (peak/width/area).
//! * [`parser`] — SPICE-deck subset reader/writer.
//! * [`linalg`] — dense LU with partial pivoting.
//! * [`sparse`] — CSC matrices, fill-reducing ordering, and a KLU-style
//!   symbolic/numeric LU split (cold factor once, refactor per iteration).
//! * [`solver`] — dense/sparse backend selection ([`solver::SolverKind`])
//!   shared by every repeated solve in the workspace.
//! * [`backend`] — the pluggable compute seam ([`backend::ComputeBackend`])
//!   behind the K-lane batched kernels: lane-outer scalar and lane-inner
//!   SIMD-friendly CPU implementations, bit-identical by construction.
//! * [`sweep`] — [`sweep::BatchedSweep`], the K-lane batched value plane
//!   over [`solver::SystemSolver`]: one symbolic analysis and one pattern,
//!   `K` struct-of-arrays value vectors through DC Newton and both
//!   transient steppers (corner sweeps, characterization grids).
//!
//! ## Quickstart
//!
//! ```
//! use sna_spice::prelude::*;
//!
//! # fn main() -> sna_spice::Result<()> {
//! let mut ckt = Circuit::new();
//! let inp = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.add_vsource("V1", inp, Circuit::gnd(), SourceWaveform::Dc(1.0));
//! ckt.add_resistor("R1", inp, out, 1e3)?;
//! ckt.add_capacitor("C1", out, Circuit::gnd(), 1e-12)?;
//! let mut params = TranParams::new(5e-9, 1e-12);
//! params.dc_init = false;
//! let result = transient(&ckt, &params)?;
//! let v_out = result.node_waveform(out);
//! // tau = 1 ns, so after 5 tau the output has settled to within 1 %.
//! assert!((v_out.value_at(5e-9) - 1.0).abs() < 1e-2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod dc;
pub mod devices;
pub mod error;
pub mod linalg;
pub mod mna;
pub mod netlist;
pub mod parser;
pub mod solver;
pub mod sparse;
pub mod sweep;
pub mod tran;
pub mod units;
pub mod waveform;

pub use error::{Error, Result};

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::backend::{
        backend_for, BackendKind, BatchedBackend, BatchedDenseLu, ComputeBackend, ScalarBackend,
    };
    pub use crate::dc::{
        dc_input_conductance, dc_operating_point, dc_operating_point_with, dc_sweep, DcSolution,
        NewtonOptions,
    };
    pub use crate::devices::{
        linspace, DiodeModel, MosPolarity, MosfetModel, SourceWaveform, Table2d, TableEval,
    };
    pub use crate::error::{Error, Result};
    pub use crate::linalg::{DenseMatrix, MatrixStamp};
    pub use crate::netlist::{Circuit, Element, ElementId, NodeId};
    pub use crate::parser::{
        dump_parsed, parse_deck, parse_deck_file, write_deck, ParsedDeck, SnaCard,
    };
    pub use crate::solver::{SolverKind, SystemSolver, SPARSE_AUTO_THRESHOLD};
    pub use crate::sparse::{BatchedSparseLu, SparseLu, SparseMatrix, Symbolic};
    pub use crate::sweep::BatchedSweep;
    pub use crate::tran::{
        transient, transient_adaptive, transient_adaptive_with, transient_adaptive_with_ics,
        transient_with, transient_with_ics, AdaptiveOptions, Integrator, TranParams, TranResult,
        TranWorkspace,
    };
    pub use crate::units::*;
    pub use crate::waveform::{GlitchError, GlitchMetrics, Waveform};
}
