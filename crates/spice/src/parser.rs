//! SPICE-deck front-end: parser, elaborator, and writer.
//!
//! The EDA ecosystem interchange format for the circuits this crate
//! simulates is the classic SPICE netlist. The front-end covers everything
//! the noise flow produces or consumes:
//!
//! * elements `R`, `C`, `V`, `I`, `G` (linear VCCS), `E` (VCVS), `F`
//!   (CCCS), `H` (CCVS), `D` (diode), `M` (level-1 MOSFET), and `X`
//!   (subcircuit instance);
//! * `.model` cards (`NMOS`, `PMOS`, `D`);
//! * hierarchical `.subckt`/`.ends` definitions with positional ports and
//!   `name=value` parameters, flattened into the flat [`Circuit`] with
//!   dotted instance prefixes (`x1.x2.r5`);
//! * analyses and controls: `.tran` (with `UIC`), `.dc`, `.ic`, and the
//!   tool-specific `.sna` noise-analysis request card;
//! * `.include` (file-based parsing only), `+` continuations, `*`/`;`/`$`
//!   comments, and engineering-suffix numbers.
//!
//! Parse errors always carry the line number of the *first physical line*
//! of the offending logical line in its original file, so messages stay
//! accurate across continuation merging and `.include` expansion.
//!
//! [`write_deck`] emits a deck that [`parse_deck`] round-trips exactly
//! (floats are printed with Rust's shortest-round-trip formatting), so
//! golden cluster netlists can be dumped, diffed, and re-read.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::devices::{DiodeModel, MosPolarity, MosfetModel, SourceWaveform};
use crate::error::{Error, Result};
use crate::netlist::{Circuit, Element, ElementId, NodeId};
use crate::tran::TranParams;
use crate::units::parse_spice_number;

/// Maximum `.subckt` instantiation depth (guards recursive subcircuits).
const MAX_SUBCKT_DEPTH: usize = 16;
/// Maximum `.include` nesting depth (guards include cycles the
/// canonical-path check cannot see, e.g. through symlink farms).
const MAX_INCLUDE_DEPTH: usize = 16;

/// A `.sna` control card: one noise-analysis request naming the victim net
/// and (optionally) the aggressor sources to toggle, as parsed from
/// `victim=<node> [aggressors=<src>,<src>,...] [threshold=<volts>]
/// [name=<label>]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SnaCard {
    /// Optional label for reports (`name=`); defaults to the victim net.
    pub name: Option<String>,
    /// Victim net (global node name after subckt flattening).
    pub victim: String,
    /// Aggressor source element names (independent V or I sources).
    pub aggressors: Vec<String>,
    /// Noise-margin threshold in volts, if given on the card.
    pub threshold: Option<f64>,
    /// Switching windows `window=<src>:<t_min>:<t_max>` (comma-repeatable):
    /// the named aggressor source may only switch inside `[t_min, t_max]`.
    pub windows: Vec<(String, f64, f64)>,
    /// Mutual-exclusion groups `mexcl=<src>:<group>` (comma-repeatable):
    /// at most one source per group switches in any candidate.
    pub mexcl: Vec<(String, u32)>,
    /// Victim sensitivity window `sensitivity=<t_min>:<t_max>`: the
    /// interval in which the receiver samples the victim.
    pub sensitivity: Option<(f64, f64)>,
}

/// A parsed deck: the flattened circuit plus any analysis statements found.
#[derive(Debug, Clone)]
pub struct ParsedDeck {
    /// Title line (first line of the deck, SPICE convention).
    pub title: String,
    /// The flattened netlist.
    pub circuit: Circuit,
    /// `.tran` statement, if present (`UIC` clears
    /// [`TranParams::dc_init`]).
    pub tran: Option<TranParams>,
    /// `.dc` sweep statements: `(source, start, stop, step)`.
    pub dc_sweeps: Vec<(String, f64, f64, f64)>,
    /// `.ic` initial conditions as `(global node name, volts)`; node names
    /// are verified to exist at parse time.
    pub ics: Vec<(String, f64)>,
    /// `.sna` noise-analysis requests, in deck order.
    pub sna_cards: Vec<SnaCard>,
}

impl ParsedDeck {
    /// Resolve the `.ic` cards against the circuit. Entries whose node no
    /// longer exists (possible only if the circuit was edited after
    /// parsing) are silently dropped.
    pub fn resolve_ics(&self) -> Vec<(NodeId, f64)> {
        self.ics
            .iter()
            .filter_map(|(n, v)| self.circuit.find_node(n).map(|id| (id, *v)))
            .collect()
    }
}

/// Source location of a logical line: index into the file-name table plus
/// the 1-based number of its first physical line in that file.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Loc {
    file: usize,
    line: usize,
}

/// Build a parse error carrying `loc`. The file name is prefixed onto the
/// message only when it is known (file-based parsing); string parsing
/// leaves messages bare so existing callers see unchanged text.
fn err_at(files: &[String], loc: Loc, msg: impl Into<String>) -> Error {
    let m = msg.into();
    let message = match files.get(loc.file) {
        Some(f) if !f.is_empty() => format!("{f}: {m}"),
        _ => m,
    };
    Error::Parse {
        line: loc.line,
        message,
    }
}

fn num_lit(files: &[String], loc: Loc, tok: &str) -> Result<f64> {
    parse_spice_number(tok)
        .ok_or_else(|| err_at(files, loc, format!("expected a number, got '{tok}'")))
}

/// Split logical lines of one file: strip comments, join `+` continuations.
/// Each logical line keeps the location of its first physical line.
fn logical_lines_in(text: &str, file: usize, keep_title: bool) -> Vec<(Loc, String)> {
    let mut out: Vec<(Loc, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let loc = Loc { file, line: i + 1 };
        let mut text = raw.trim().to_string();
        if let Some(p) = text.find(';') {
            text.truncate(p);
        }
        if let Some(p) = text.find('$') {
            text.truncate(p);
        }
        let text = text.trim();
        // SPICE convention: the first line of the top file is the title even
        // when it looks like a `*` comment, so keep it for [`parse_lines`].
        if text.is_empty() || (text.starts_with('*') && !(keep_title && i == 0)) {
            continue;
        }
        if let Some(cont) = text.strip_prefix('+') {
            if let Some(last) = out.last_mut() {
                last.1.push(' ');
                last.1.push_str(cont.trim());
                continue;
            }
        }
        out.push((loc, text.to_string()));
    }
    out
}

/// Tokenize respecting `(`, `)`, `=` as separators that also split tokens.
fn tokenize(s: &str) -> Vec<String> {
    let mut toks = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            ' ' | '\t' | ',' => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
            }
            '(' | ')' | '=' => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
                toks.push(ch.to_string());
            }
            _ => cur.push(ch),
        }
    }
    if !cur.is_empty() {
        toks.push(cur);
    }
    toks
}

/// Split a token run into positional tokens and trailing `key=value`
/// groups. Parentheses are transparent. A key takes every following token
/// up to the next `key=` pair, so comma-separated lists
/// (`aggressors=a,b,c`, already comma-split by [`tokenize`]) arrive as
/// multi-value groups. Malformed stray `=` tokens are skipped rather than
/// rejected, so this can never panic on fuzzer garbage.
fn split_kv(toks: &[String]) -> (Vec<&str>, Vec<(String, Vec<&str>)>) {
    let mut pos: Vec<&str> = Vec::new();
    let mut kvs: Vec<(String, Vec<&str>)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = toks[i].as_str();
        if t == "(" || t == ")" {
            i += 1;
            continue;
        }
        if t == "=" {
            i += 1;
            continue;
        }
        if toks.get(i + 1).map(String::as_str) == Some("=") {
            let key = t.to_ascii_lowercase();
            let mut vals = Vec::new();
            let mut j = i + 2;
            while j < toks.len() {
                let v = toks[j].as_str();
                if v == "(" || v == ")" || v == "=" {
                    j += 1;
                    continue;
                }
                if toks.get(j + 1).map(String::as_str) == Some("=") {
                    break;
                }
                vals.push(v);
                j += 1;
            }
            kvs.push((key, vals));
            i = j;
        } else {
            pos.push(t);
            i += 1;
        }
    }
    (pos, kvs)
}

/// If `line` is an `.include`/`.inc` card, return its raw target text.
fn include_path(line: &str) -> Option<&str> {
    let head = line.split_whitespace().next()?;
    if head.eq_ignore_ascii_case(".include") || head.eq_ignore_ascii_case(".inc") {
        Some(line[head.len()..].trim())
    } else {
        None
    }
}

/// Strip one layer of matching single or double quotes.
fn unquote(s: &str) -> &str {
    let b = s.as_bytes();
    if b.len() >= 2
        && ((b[0] == b'"' && b[b.len() - 1] == b'"') || (b[0] == b'\'' && b[b.len() - 1] == b'\''))
    {
        &s[1..s.len() - 1]
    } else {
        s
    }
}

/// A `.subckt` definition collected before elaboration.
#[derive(Debug, Clone)]
struct Subckt {
    /// Original-case name (for messages); the registry key is lowercase.
    name: String,
    /// Port names, lowercased, in declaration order.
    ports: Vec<String>,
    /// Parameter defaults (lowercased name, literal value).
    defaults: Vec<(String, f64)>,
    /// Body logical lines (element and dot cards between the delimiters).
    body: Vec<(Loc, String)>,
}

/// A `.model` card: either a MOSFET or a diode model.
#[derive(Debug, Clone, Copy)]
enum ModelCard {
    Mos(MosfetModel),
    Diode(DiodeModel),
}

/// Parse one `.model` card into the global model registry.
fn parse_model(files: &[String], toks: &[String], loc: Loc) -> Result<(String, ModelCard)> {
    let name = toks
        .get(1)
        .ok_or_else(|| err_at(files, loc, ".model needs a name"))?
        .to_ascii_lowercase();
    let kind = toks
        .get(2)
        .ok_or_else(|| err_at(files, loc, ".model needs a type (NMOS, PMOS, or D)"))?
        .to_ascii_uppercase();
    let (_, kvs) = split_kv(toks.get(3..).unwrap_or(&[]));
    let mut params: HashMap<String, f64> = HashMap::new();
    for (k, vals) in kvs {
        let v = vals
            .first()
            .ok_or_else(|| err_at(files, loc, format!("missing value for {k}")))?;
        params.insert(k, num_lit(files, loc, v)?);
    }
    let get = |key: &str, default: f64| params.get(key).copied().unwrap_or(default);
    let card = match kind.as_str() {
        "NMOS" | "PMOS" => {
            let polarity = if kind == "NMOS" {
                MosPolarity::Nmos
            } else {
                MosPolarity::Pmos
            };
            let vt_default = match polarity {
                MosPolarity::Nmos => 0.3,
                MosPolarity::Pmos => -0.3,
            };
            ModelCard::Mos(MosfetModel {
                polarity,
                vt0: get("vto", vt_default),
                kp: get("kp", 2e-4),
                lambda: get("lambda", 0.1),
                gamma: get("gamma", 0.0),
                phi: get("phi", 0.7),
                cox: get("cox", 0.01),
                cgso: get("cgso", 0.0),
                cgdo: get("cgdo", 0.0),
                cj: get("cj", 0.0),
            })
        }
        "D" => ModelCard::Diode(DiodeModel {
            is: get("is", 1e-14),
            n: get("n", 1.0),
            cj0: get("cj0", get("cjo", 0.0)),
        }),
        other => {
            return Err(err_at(
                files,
                loc,
                format!("unsupported model type {other} (expected NMOS, PMOS, or D)"),
            ))
        }
    };
    Ok((name, card))
}

/// Logical lines remaining at the top level after subckt extraction, plus
/// the flat subckt registry keyed by lowercase name.
type TopAndSubckts = (Vec<(Loc, String)>, HashMap<String, Subckt>);

/// Pull `.subckt`/`.ends` blocks out of the logical-line stream. Nested
/// definitions are allowed and land in one global, flat registry (keyed by
/// lowercase name); body lines of a nested definition belong to the
/// innermost open block.
fn extract_subckts(files: &[String], lines: &[(Loc, String)]) -> Result<TopAndSubckts> {
    let mut top: Vec<(Loc, String)> = Vec::new();
    let mut registry: HashMap<String, Subckt> = HashMap::new();
    let mut stack: Vec<(Loc, Subckt)> = Vec::new();
    for (loc, text) in lines {
        let head = text.split_whitespace().next().unwrap_or("");
        if head.eq_ignore_ascii_case(".subckt") {
            let toks = tokenize(text);
            let name = toks
                .get(1)
                .ok_or_else(|| err_at(files, *loc, ".subckt needs a name"))?
                .clone();
            let (pos, kvs) = split_kv(toks.get(2..).unwrap_or(&[]));
            let ports: Vec<String> = pos.iter().map(|s| s.to_ascii_lowercase()).collect();
            for (i, p) in ports.iter().enumerate() {
                if ports[..i].contains(p) {
                    return Err(err_at(
                        files,
                        *loc,
                        format!("duplicate port '{p}' on .subckt {name}"),
                    ));
                }
            }
            let mut defaults = Vec::new();
            for (k, vals) in kvs {
                let v = vals.first().ok_or_else(|| {
                    err_at(
                        files,
                        *loc,
                        format!("missing default value for parameter '{k}'"),
                    )
                })?;
                defaults.push((k, num_lit(files, *loc, v)?));
            }
            stack.push((
                *loc,
                Subckt {
                    name,
                    ports,
                    defaults,
                    body: Vec::new(),
                },
            ));
        } else if head.eq_ignore_ascii_case(".ends") {
            let (_, def) = stack
                .pop()
                .ok_or_else(|| err_at(files, *loc, ".ends without a matching .subckt"))?;
            let toks = tokenize(text);
            if let Some(tag) = toks.get(1) {
                if !tag.eq_ignore_ascii_case(&def.name) {
                    return Err(err_at(
                        files,
                        *loc,
                        format!(".ends {tag} does not close .subckt {}", def.name),
                    ));
                }
            }
            let key = def.name.to_ascii_lowercase();
            if registry.contains_key(&key) {
                return Err(err_at(
                    files,
                    *loc,
                    format!("duplicate .subckt definition '{}'", def.name),
                ));
            }
            registry.insert(key, def);
        } else if let Some((_, open)) = stack.last_mut() {
            open.body.push((*loc, text.clone()));
        } else {
            top.push((*loc, text.clone()));
        }
    }
    if let Some((loc, def)) = stack.last() {
        return Err(err_at(
            files,
            *loc,
            format!("unclosed .subckt '{}' (missing .ends)", def.name),
        ));
    }
    Ok((top, registry))
}

/// One level of instantiation context during elaboration.
struct Scope {
    /// Dotted instance prefix (`""` at top level, `"x1.x2."` nested).
    prefix: String,
    /// Subcircuit port name (lowercase) → already-resolved global node.
    node_map: HashMap<String, NodeId>,
    /// Parameter values visible to `{name}` / bare-name number positions.
    params: HashMap<String, f64>,
}

impl Scope {
    fn top() -> Self {
        Scope {
            prefix: String::new(),
            node_map: HashMap::new(),
            params: HashMap::new(),
        }
    }
}

/// The elaborator: walks logical lines (recursively through `X`
/// instantiations) and builds the flat circuit plus analysis cards.
struct Elab<'a> {
    files: &'a [String],
    subckts: &'a HashMap<String, Subckt>,
    models: &'a HashMap<String, ModelCard>,
    circuit: Circuit,
    tran: Option<TranParams>,
    dc_sweeps: Vec<(String, f64, f64, f64)>,
    /// `.ic` entries pending node-existence verification.
    pending_ics: Vec<(String, f64, Loc)>,
    /// `.sna` cards pending victim/aggressor verification.
    pending_sna: Vec<(SnaCard, Loc)>,
    /// F/H control references to resolve once the whole deck is read:
    /// `(element, unscoped name, loc)`. The element starts out holding the
    /// scope-prefixed candidate.
    ctrl_fixups: Vec<(ElementId, String, Loc)>,
    /// Set by `.end`; stops all further processing.
    ended: bool,
}

impl<'a> Elab<'a> {
    fn err(&self, loc: Loc, msg: impl Into<String>) -> Error {
        err_at(self.files, loc, msg)
    }

    /// Resolve a token in a numeric position: `{name}` or a bare name may
    /// reference a scope parameter; anything else must be a SPICE number.
    fn num_in(&self, scope: &Scope, tok: &str, loc: Loc) -> Result<f64> {
        let t = tok
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .unwrap_or(tok)
            .trim();
        if let Some(v) = parse_spice_number(t) {
            return Ok(v);
        }
        if let Some(&v) = scope.params.get(&t.to_ascii_lowercase()) {
            return Ok(v);
        }
        Err(self.err(loc, format!("expected a number or parameter, got '{tok}'")))
    }

    /// Resolve a node token: ground, a subckt port, or a (possibly
    /// prefix-scoped) named node — interning it on first sight.
    fn node(&mut self, scope: &Scope, name: &str) -> NodeId {
        let key = name.to_ascii_lowercase();
        if key == "0" || key == "gnd" {
            return Circuit::gnd();
        }
        if let Some(&n) = scope.node_map.get(&key) {
            return n;
        }
        if scope.prefix.is_empty() {
            self.circuit.node(name)
        } else {
            self.circuit.node(&format!("{}{key}", scope.prefix))
        }
    }

    /// Global node *name* a token would resolve to, without interning it
    /// (used by `.ic`, whose nodes must already exist elsewhere).
    fn node_name_of(&self, scope: &Scope, raw: &str) -> String {
        let key = raw.to_ascii_lowercase();
        if key == "0" || key == "gnd" {
            return "0".into();
        }
        if let Some(&n) = scope.node_map.get(&key) {
            return self.circuit.node_name(n).to_string();
        }
        if scope.prefix.is_empty() {
            raw.to_string()
        } else {
            format!("{}{key}", scope.prefix)
        }
    }

    /// Parse a source specification from the tokens following the two node
    /// names. Scope parameters are usable in every numeric position.
    fn source(&self, scope: &Scope, toks: &[String], loc: Loc) -> Result<SourceWaveform> {
        if toks.is_empty() {
            return Err(self.err(loc, "missing source value"));
        }
        let kw = toks[0].to_ascii_uppercase();
        let nums = |ts: &[String]| -> Result<Vec<f64>> {
            ts.iter()
                .filter(|t| *t != "(" && *t != ")")
                .map(|t| self.num_in(scope, t, loc))
                .collect()
        };
        match kw.as_str() {
            "DC" => {
                let v = toks
                    .get(1)
                    .ok_or_else(|| self.err(loc, "DC needs a value"))?;
                Ok(SourceWaveform::Dc(self.num_in(scope, v, loc)?))
            }
            "PWL" => {
                // PWL ( t1 v1 t2 v2 ... )
                let nums = nums(&toks[1..])?;
                if nums.len() < 4 || !nums.len().is_multiple_of(2) {
                    return Err(self.err(loc, "PWL needs an even number (>= 4) of values"));
                }
                let pts: Vec<(f64, f64)> = nums.chunks(2).map(|c| (c[0], c[1])).collect();
                for w in pts.windows(2) {
                    if w[1].0 <= w[0].0 {
                        return Err(self.err(loc, "PWL times must be strictly increasing"));
                    }
                }
                Ok(SourceWaveform::Pwl(pts))
            }
            "PULSE" => {
                let nums = nums(&toks[1..])?;
                if nums.len() < 6 {
                    return Err(self.err(loc, "PULSE needs v0 v1 td tr tf pw"));
                }
                Ok(SourceWaveform::Pulse {
                    v0: nums[0],
                    v1: nums[1],
                    t_delay: nums[2],
                    t_rise: nums[3],
                    t_fall: nums[4],
                    t_width: nums[5],
                })
            }
            _ => Ok(SourceWaveform::Dc(self.num_in(scope, &toks[0], loc)?)),
        }
    }

    /// Process a run of logical lines in `scope`, recursing through `X`
    /// instantiations.
    fn run(&mut self, lines: &[(Loc, String)], scope: &Scope, depth: usize) -> Result<()> {
        for (loc, text) in lines {
            if self.ended {
                break;
            }
            let toks = tokenize(text);
            if toks.is_empty() {
                continue;
            }
            let head = toks[0].clone();
            let first = head.chars().next().unwrap_or(' ').to_ascii_uppercase();
            match first {
                '.' => self.dot_card(&head.to_ascii_lowercase(), &toks, *loc, scope, depth)?,
                'X' => self.x_card(&toks, *loc, scope, depth)?,
                _ => self.element_card(first, &head, &toks, *loc, scope)?,
            }
        }
        Ok(())
    }

    fn dot_card(
        &mut self,
        cmd: &str,
        toks: &[String],
        loc: Loc,
        scope: &Scope,
        depth: usize,
    ) -> Result<()> {
        match cmd {
            ".model" => Ok(()), // collected in the model pass
            ".end" => {
                if depth > 0 {
                    return Err(self.err(loc, ".end is not allowed inside a .subckt body"));
                }
                self.ended = true;
                Ok(())
            }
            ".ends" => Err(self.err(loc, ".ends without a matching .subckt")),
            ".include" | ".inc" => Err(self.err(
                loc,
                ".include is not supported when parsing from a string; use parse_deck_file",
            )),
            ".tran" => {
                if depth > 0 {
                    return Err(self.err(loc, ".tran is not allowed inside a .subckt body"));
                }
                let step = self.num_in(
                    scope,
                    toks.get(1)
                        .ok_or_else(|| self.err(loc, ".tran needs step"))?,
                    loc,
                )?;
                let stop = self.num_in(
                    scope,
                    toks.get(2)
                        .ok_or_else(|| self.err(loc, ".tran needs stop"))?,
                    loc,
                )?;
                let mut params = TranParams::new(stop, step);
                if toks.iter().skip(3).any(|t| t.eq_ignore_ascii_case("uic")) {
                    params.dc_init = false;
                }
                self.tran = Some(params);
                Ok(())
            }
            ".dc" => {
                if depth > 0 {
                    return Err(self.err(loc, ".dc is not allowed inside a .subckt body"));
                }
                let src = toks
                    .get(1)
                    .ok_or_else(|| self.err(loc, ".dc needs a source"))?
                    .clone();
                let a = self.num_in(
                    scope,
                    toks.get(2).ok_or_else(|| self.err(loc, ".dc start"))?,
                    loc,
                )?;
                let b = self.num_in(
                    scope,
                    toks.get(3).ok_or_else(|| self.err(loc, ".dc stop"))?,
                    loc,
                )?;
                let s = self.num_in(
                    scope,
                    toks.get(4).ok_or_else(|| self.err(loc, ".dc step"))?,
                    loc,
                )?;
                self.dc_sweeps.push((src, a, b, s));
                Ok(())
            }
            ".ic" => self.ic_card(toks, loc, scope),
            ".sna" => {
                if depth > 0 {
                    return Err(self.err(loc, ".sna is not allowed inside a .subckt body"));
                }
                self.sna_card(toks, loc, scope)
            }
            ".subckt" => Err(self.err(loc, "unterminated .subckt")),
            _ => Ok(()), // ignore unknown dot-cards (.probe, .option, ...)
        }
    }

    /// `.ic v(node)=value ...` (also accepts bare `node=value` pairs).
    fn ic_card(&mut self, toks: &[String], loc: Loc, scope: &Scope) -> Result<()> {
        if toks.len() == 1 {
            return Err(self.err(loc, ".ic needs v(node)=value entries"));
        }
        let mut i = 1;
        while i < toks.len() {
            let tok = |k: usize| toks.get(i + k).map(String::as_str);
            let (node_tok, val_tok, step) = if toks[i].eq_ignore_ascii_case("v")
                && tok(1) == Some("(")
            {
                let node = toks
                    .get(i + 2)
                    .filter(|t| !matches!(t.as_str(), "(" | ")" | "="))
                    .ok_or_else(|| self.err(loc, "malformed .ic entry: v( needs a node name"))?;
                if tok(3) != Some(")") || tok(4) != Some("=") {
                    return Err(self.err(loc, "malformed .ic entry: expected v(node)=value"));
                }
                let val = toks
                    .get(i + 5)
                    .ok_or_else(|| self.err(loc, "missing value in .ic entry"))?;
                (node.as_str(), val.as_str(), 6)
            } else if tok(1) == Some("=") {
                let val = toks
                    .get(i + 2)
                    .ok_or_else(|| self.err(loc, "missing value in .ic entry"))?;
                (toks[i].as_str(), val.as_str(), 3)
            } else {
                return Err(self.err(loc, format!("malformed .ic entry at '{}'", toks[i])));
            };
            let v = self.num_in(scope, val_tok, loc)?;
            let name = self.node_name_of(scope, node_tok);
            self.pending_ics.push((name, v, loc));
            i += step;
        }
        Ok(())
    }

    /// `.sna victim=<node> [aggressors=...] [threshold=...] [name=...]
    /// [window=<src>:<t_min>:<t_max>,...] [mexcl=<src>:<group>,...]
    /// [sensitivity=<t_min>:<t_max>]`.
    fn sna_card(&mut self, toks: &[String], loc: Loc, scope: &Scope) -> Result<()> {
        let (pos, kvs) = split_kv(toks.get(1..).unwrap_or(&[]));
        if let Some(stray) = pos.first() {
            return Err(self.err(
                loc,
                format!("unexpected token '{stray}' on .sna (expected key=value pairs)"),
            ));
        }
        let mut card = SnaCard {
            name: None,
            victim: String::new(),
            aggressors: Vec::new(),
            threshold: None,
            windows: Vec::new(),
            mexcl: Vec::new(),
            sensitivity: None,
        };
        for (k, vals) in kvs {
            let first = vals
                .first()
                .ok_or_else(|| self.err(loc, format!("missing value for .sna key '{k}'")))?;
            match k.as_str() {
                "victim" => card.victim = first.to_string(),
                "aggressors" => card.aggressors = vals.iter().map(|s| s.to_string()).collect(),
                "threshold" => card.threshold = Some(self.num_in(scope, first, loc)?),
                "name" => card.name = Some(first.to_string()),
                "window" => {
                    for v in &vals {
                        let parts: Vec<&str> = v.split(':').collect();
                        if parts.len() != 3 || parts[0].is_empty() {
                            return Err(self.err(
                                loc,
                                format!(".sna window '{v}' must be <source>:<t_min>:<t_max>"),
                            ));
                        }
                        let t_min = self.num_in(scope, parts[1], loc)?;
                        let t_max = self.num_in(scope, parts[2], loc)?;
                        if !(t_min.is_finite() && t_max.is_finite() && t_min <= t_max) {
                            return Err(self.err(
                                loc,
                                format!(".sna window '{v}' needs t_min <= t_max, both finite"),
                            ));
                        }
                        card.windows.push((parts[0].to_string(), t_min, t_max));
                    }
                }
                "mexcl" => {
                    for v in &vals {
                        let parts: Vec<&str> = v.split(':').collect();
                        let group = parts.get(1).and_then(|g| g.parse::<u32>().ok());
                        match (parts.len(), parts[0].is_empty(), group) {
                            (2, false, Some(g)) => card.mexcl.push((parts[0].to_string(), g)),
                            _ => {
                                return Err(self.err(
                                    loc,
                                    format!(".sna mexcl '{v}' must be <source>:<group>"),
                                ))
                            }
                        }
                    }
                }
                "sensitivity" => {
                    let parts: Vec<&str> = first.split(':').collect();
                    if parts.len() != 2 {
                        return Err(self.err(
                            loc,
                            format!(".sna sensitivity '{first}' must be <t_min>:<t_max>"),
                        ));
                    }
                    let t_min = self.num_in(scope, parts[0], loc)?;
                    let t_max = self.num_in(scope, parts[1], loc)?;
                    if !(t_min.is_finite() && t_max.is_finite() && t_min <= t_max) {
                        return Err(self.err(
                            loc,
                            format!(".sna sensitivity '{first}' needs t_min <= t_max, both finite"),
                        ));
                    }
                    card.sensitivity = Some((t_min, t_max));
                }
                other => {
                    return Err(self.err(loc, format!("unknown .sna key '{other}'")));
                }
            }
        }
        if card.victim.is_empty() {
            return Err(self.err(loc, ".sna needs victim=<node>"));
        }
        self.pending_sna.push((card, loc));
        Ok(())
    }

    /// `Xname n1 n2 ... subname [param=value ...]`.
    fn x_card(&mut self, toks: &[String], loc: Loc, scope: &Scope, depth: usize) -> Result<()> {
        if depth + 1 > MAX_SUBCKT_DEPTH {
            return Err(self.err(
                loc,
                format!(
                    "subcircuit nesting deeper than {MAX_SUBCKT_DEPTH} levels \
                     (recursive instantiation?)"
                ),
            ));
        }
        let (pos, kvs) = split_kv(toks.get(1..).unwrap_or(&[]));
        let (subname, args) = match pos.split_last() {
            Some((s, a)) => (*s, a),
            None => return Err(self.err(loc, "X needs: name node... subckt-name")),
        };
        let sub = self
            .subckts
            .get(&subname.to_ascii_lowercase())
            .ok_or_else(|| self.err(loc, format!("unknown subcircuit '{subname}'")))?;
        if args.len() != sub.ports.len() {
            return Err(self.err(
                loc,
                format!(
                    "subcircuit '{}' expects {} port(s), instance {} connects {}",
                    sub.name,
                    sub.ports.len(),
                    toks[0],
                    args.len()
                ),
            ));
        }
        let mut node_map = HashMap::new();
        for (port, arg) in sub.ports.iter().zip(args) {
            let nid = self.node(scope, arg);
            node_map.insert(port.clone(), nid);
        }
        let mut params: HashMap<String, f64> = sub.defaults.iter().cloned().collect();
        for (k, vals) in kvs {
            if !params.contains_key(&k) {
                return Err(self.err(
                    loc,
                    format!("subcircuit '{}' has no parameter '{k}'", sub.name),
                ));
            }
            let v = vals
                .first()
                .ok_or_else(|| self.err(loc, format!("missing value for parameter '{k}'")))?;
            let val = self.num_in(scope, v, loc)?;
            params.insert(k, val);
        }
        let child = Scope {
            prefix: format!("{}{}.", scope.prefix, toks[0].to_ascii_lowercase()),
            node_map,
            params,
        };
        self.run(&sub.body, &child, depth + 1)
    }

    /// One element card (everything except `X` and dot-cards).
    fn element_card(
        &mut self,
        first: char,
        head: &str,
        toks: &[String],
        loc: Loc,
        scope: &Scope,
    ) -> Result<()> {
        let name = format!("{}{head}", scope.prefix);
        match first {
            'R' | 'C' => {
                if toks.len() < 4 {
                    return Err(self.err(loc, format!("{first} needs: name n1 n2 value")));
                }
                let a = self.node(scope, &toks[1]);
                let b = self.node(scope, &toks[2]);
                let v = self.num_in(scope, &toks[3], loc)?;
                let res = if first == 'R' {
                    self.circuit.add_resistor(&name, a, b, v)
                } else {
                    self.circuit.add_capacitor(&name, a, b, v)
                };
                res.map_err(|e| self.err(loc, e.to_string()))?;
            }
            'V' | 'I' => {
                if toks.len() < 4 {
                    return Err(self.err(loc, "source needs: name n+ n- value"));
                }
                let p = self.node(scope, &toks[1]);
                let n = self.node(scope, &toks[2]);
                let wave = self.source(scope, &toks[3..], loc)?;
                if first == 'V' {
                    self.circuit.add_vsource(&name, p, n, wave);
                } else {
                    self.circuit.add_isource(&name, p, n, wave);
                }
            }
            'G' | 'E' => {
                if toks.len() < 6 {
                    return Err(self.err(
                        loc,
                        format!("{first} needs: name out+ out- ctrl+ ctrl- gain"),
                    ));
                }
                let op = self.node(scope, &toks[1]);
                let on = self.node(scope, &toks[2]);
                let cp = self.node(scope, &toks[3]);
                let cn = self.node(scope, &toks[4]);
                let gain = self.num_in(scope, &toks[5], loc)?;
                if first == 'G' {
                    self.circuit.add_linear_vccs(&name, op, on, cp, cn, gain);
                } else {
                    self.circuit
                        .add_vcvs(&name, op, on, cp, cn, gain)
                        .map_err(|e| self.err(loc, e.to_string()))?;
                }
            }
            'F' | 'H' => {
                if toks.len() < 5 {
                    return Err(self.err(
                        loc,
                        format!("{first} needs: name out+ out- vsource-name value"),
                    ));
                }
                let op = self.node(scope, &toks[1]);
                let on = self.node(scope, &toks[2]);
                let raw_ctrl = toks[3].clone();
                // Try the scope-local source first; `fix_ctrls` falls back
                // to the global name once the whole deck is known.
                let scoped = format!("{}{raw_ctrl}", scope.prefix);
                let gain = self.num_in(scope, &toks[4], loc)?;
                let id = if first == 'F' {
                    self.circuit.add_cccs(&name, op, on, &scoped, gain)
                } else {
                    self.circuit.add_ccvs(&name, op, on, &scoped, gain)
                }
                .map_err(|e| self.err(loc, e.to_string()))?;
                self.ctrl_fixups.push((id, raw_ctrl, loc));
            }
            'D' => {
                if toks.len() < 4 {
                    return Err(self.err(loc, "D needs: name anode cathode model"));
                }
                let p = self.node(scope, &toks[1]);
                let n = self.node(scope, &toks[2]);
                let model = match self.models.get(&toks[3].to_ascii_lowercase()) {
                    Some(ModelCard::Diode(m)) => *m,
                    Some(ModelCard::Mos(_)) => {
                        return Err(self.err(
                            loc,
                            format!("model '{}' is a MOSFET model, D needs type D", toks[3]),
                        ));
                    }
                    None => {
                        return Err(self.err(loc, format!("unknown model '{}'", toks[3])));
                    }
                };
                self.circuit
                    .add_diode(&name, p, n, model)
                    .map_err(|e| self.err(loc, e.to_string()))?;
            }
            'M' => {
                if toks.len() < 6 {
                    return Err(self.err(loc, "M needs: name d g s b model [W= L=]"));
                }
                let d = self.node(scope, &toks[1]);
                let g = self.node(scope, &toks[2]);
                let s = self.node(scope, &toks[3]);
                let b = self.node(scope, &toks[4]);
                let model = match self.models.get(&toks[5].to_ascii_lowercase()) {
                    Some(ModelCard::Mos(m)) => *m,
                    Some(ModelCard::Diode(_)) => {
                        return Err(self.err(
                            loc,
                            format!("model '{}' is a diode model, M needs NMOS or PMOS", toks[5]),
                        ));
                    }
                    None => {
                        return Err(self.err(loc, format!("unknown model '{}'", toks[5])));
                    }
                };
                let mut w = 1e-6;
                let mut l = 0.13e-6;
                let (_, kvs) = split_kv(toks.get(6..).unwrap_or(&[]));
                for (k, vals) in kvs {
                    let v = vals
                        .first()
                        .ok_or_else(|| self.err(loc, format!("missing value for {k}")))?;
                    match k.as_str() {
                        "w" => w = self.num_in(scope, v, loc)?,
                        "l" => l = self.num_in(scope, v, loc)?,
                        _ => {}
                    }
                }
                self.circuit
                    .add_mosfet(&name, d, g, s, b, model, w, l)
                    .map_err(|e| self.err(loc, e.to_string()))?;
            }
            other => {
                return Err(self.err(loc, format!("unsupported element '{other}'")));
            }
        }
        Ok(())
    }

    /// Resolve F/H controlling-source names: keep the scope-prefixed
    /// candidate if it names an independent V source, otherwise fall back
    /// to the unscoped (global) name.
    fn fix_ctrls(&mut self) -> Result<()> {
        fn is_vsrc(c: &Circuit, n: &str) -> bool {
            c.find_element(n)
                .map(|i| matches!(c.element(i), Element::VSource { .. }))
                .unwrap_or(false)
        }
        for (id, raw, loc) in std::mem::take(&mut self.ctrl_fixups) {
            let scoped = match self.circuit.element(id) {
                Element::Cccs { ctrl, .. } | Element::Ccvs { ctrl, .. } => ctrl.clone(),
                _ => continue,
            };
            if is_vsrc(&self.circuit, &scoped) {
                continue;
            }
            if is_vsrc(&self.circuit, &raw) {
                if let Element::Cccs { ctrl, .. } | Element::Ccvs { ctrl, .. } =
                    self.circuit.element_mut(id)
                {
                    *ctrl = raw;
                }
                continue;
            }
            let ename = self.circuit.element(id).name().to_string();
            return Err(self.err(
                loc,
                format!("{ename}: controlling source '{raw}' is not an independent voltage source"),
            ));
        }
        Ok(())
    }

    /// Verify deferred `.ic` / `.sna` references now that every element
    /// has been elaborated.
    fn verify_pending(&self) -> Result<()> {
        for (name, _, loc) in &self.pending_ics {
            if name != "0" && self.circuit.find_node(name).is_none() {
                return Err(self.err(*loc, format!(".ic references unknown node '{name}'")));
            }
        }
        for (card, loc) in &self.pending_sna {
            if self.circuit.find_node(&card.victim).is_none() {
                return Err(self.err(
                    *loc,
                    format!(".sna victim node '{}' does not exist", card.victim),
                ));
            }
            for a in &card.aggressors {
                let ok = self
                    .circuit
                    .find_element(a)
                    .map(|i| {
                        matches!(
                            self.circuit.element(i),
                            Element::VSource { .. } | Element::ISource { .. }
                        )
                    })
                    .unwrap_or(false);
                if !ok {
                    return Err(self.err(
                        *loc,
                        format!(".sna aggressor '{a}' is not an independent V or I source"),
                    ));
                }
            }
            // FRAME constraint keys name aggressor sources; when the card
            // lists its aggressors explicitly, a constraint on a source
            // outside that list is a silent no-op — reject it instead.
            let constrained = card
                .windows
                .iter()
                .map(|(s, _, _)| s)
                .chain(card.mexcl.iter().map(|(s, _)| s));
            for src in constrained {
                if !card.aggressors.is_empty()
                    && !card.aggressors.iter().any(|a| a.eq_ignore_ascii_case(src))
                {
                    return Err(self.err(
                        *loc,
                        format!(".sna constraint names source '{src}' which is not in aggressors="),
                    ));
                }
                let ok = self
                    .circuit
                    .find_element(src)
                    .map(|i| {
                        matches!(
                            self.circuit.element(i),
                            Element::VSource { .. } | Element::ISource { .. }
                        )
                    })
                    .unwrap_or(false);
                if !ok {
                    return Err(self.err(
                        *loc,
                        format!(
                            ".sna constraint source '{src}' is not an independent V or I source"
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Shared driver behind [`parse_deck`] and [`parse_deck_file`].
fn parse_lines(files: Vec<String>, lines: Vec<(Loc, String)>) -> Result<ParsedDeck> {
    if lines.is_empty() {
        return Err(err_at(&files, Loc { file: 0, line: 0 }, "empty deck"));
    }
    // SPICE convention: the first line is the title. The single concession
    // to title-less decks: a deck whose first line is a dot-card keeps it.
    let (start, title) = match lines.first() {
        Some((_, first)) if first.starts_with('.') => (0, String::new()),
        Some((_, first)) => (1, first.clone()),
        None => (0, String::new()),
    };
    let body = &lines[start..];
    // Model pass: collect every .model card (top level and inside subckt
    // bodies) so instances can reference models defined later in the deck.
    let mut models: HashMap<String, ModelCard> = HashMap::new();
    for (loc, text) in body {
        let toks = tokenize(text);
        if toks
            .first()
            .is_some_and(|t| t.eq_ignore_ascii_case(".model"))
        {
            let (name, card) = parse_model(&files, &toks, *loc)?;
            models.insert(name, card);
        }
    }
    let (top, subckts) = extract_subckts(&files, body)?;
    let mut el = Elab {
        files: &files,
        subckts: &subckts,
        models: &models,
        circuit: Circuit::new(),
        tran: None,
        dc_sweeps: Vec::new(),
        pending_ics: Vec::new(),
        pending_sna: Vec::new(),
        ctrl_fixups: Vec::new(),
        ended: false,
    };
    el.run(&top, &Scope::top(), 0)?;
    el.fix_ctrls()?;
    el.verify_pending()?;
    Ok(ParsedDeck {
        title,
        circuit: el.circuit,
        tran: el.tran,
        dc_sweeps: el.dc_sweeps,
        ics: el.pending_ics.into_iter().map(|(n, v, _)| (n, v)).collect(),
        sna_cards: el.pending_sna.into_iter().map(|(c, _)| c).collect(),
    })
}

/// Parse a SPICE deck from a string into a flat circuit plus analyses.
///
/// `.include` is rejected here — a string has no directory to resolve
/// against, and this entry point is the fuzzing surface, which must never
/// touch the filesystem. Use [`parse_deck_file`] for decks with includes.
///
/// # Errors
///
/// [`Error::Parse`] with the offending line number on any syntax problem;
/// element-level validation errors (negative resistance etc.) are also
/// reported with their line. Line numbers always refer to the first
/// physical line of the offending card, even after `+` continuations.
///
/// # Examples
///
/// ```
/// use sna_spice::parser::parse_deck;
///
/// let deck = "\
/// rc lowpass
/// V1 in 0 DC 1.0
/// R1 in out 1k
/// C1 out 0 1p
/// .tran 1p 5n
/// .end
/// ";
/// let parsed = parse_deck(deck).unwrap();
/// assert_eq!(parsed.circuit.element_count(), 3);
/// assert!(parsed.tran.is_some());
/// ```
pub fn parse_deck(deck: &str) -> Result<ParsedDeck> {
    let files = vec![String::new()];
    let lines = logical_lines_in(deck, 0, true);
    for (loc, text) in &lines {
        if include_path(text).is_some() {
            return Err(err_at(
                &files,
                *loc,
                ".include is not supported when parsing from a string; use parse_deck_file",
            ));
        }
    }
    parse_lines(files, lines)
}

/// Parse a SPICE deck from a file, expanding `.include` cards relative to
/// the directory of the file containing them (nesting limited to
/// [`MAX_INCLUDE_DEPTH`], cycles detected via canonical paths). Parse
/// errors name the file they occurred in and the line within that file.
///
/// # Errors
///
/// [`Error::Parse`] on unreadable files, include cycles, or any syntax
/// problem (see [`parse_deck`]).
pub fn parse_deck_file(path: impl AsRef<Path>) -> Result<ParsedDeck> {
    let mut files = Vec::new();
    let mut lines = Vec::new();
    let mut stack = Vec::new();
    load_file(path.as_ref(), &mut files, &mut lines, 0, &mut stack)?;
    parse_lines(files, lines)
}

/// Read one file into the logical-line stream, recursing into includes.
fn load_file(
    path: &Path,
    files: &mut Vec<String>,
    out: &mut Vec<(Loc, String)>,
    depth: usize,
    stack: &mut Vec<PathBuf>,
) -> Result<()> {
    let plain = |msg: String| Error::Parse {
        line: 0,
        message: msg,
    };
    if depth > MAX_INCLUDE_DEPTH {
        return Err(plain(format!(
            ".include nested deeper than {MAX_INCLUDE_DEPTH} levels at '{}'",
            path.display()
        )));
    }
    let canon = std::fs::canonicalize(path).unwrap_or_else(|_| path.to_path_buf());
    if stack.contains(&canon) {
        return Err(plain(format!("circular .include of '{}'", path.display())));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| plain(format!("cannot read deck '{}': {e}", path.display())))?;
    let fidx = files.len();
    files.push(path.display().to_string());
    stack.push(canon);
    for (loc, line) in logical_lines_in(&text, fidx, depth == 0) {
        if let Some(raw_target) = include_path(&line) {
            let target = unquote(raw_target);
            if target.is_empty() {
                return Err(err_at(files, loc, ".include needs a file path"));
            }
            let resolved = path.parent().unwrap_or(Path::new("")).join(target);
            match load_file(&resolved, files, out, depth + 1, stack) {
                // Attach the include-site location to file-level failures
                // (reads, cycles, depth) so the user sees where to look.
                Err(Error::Parse { line: 0, message }) => {
                    return Err(err_at(files, loc, message));
                }
                other => other?,
            }
        } else {
            out.push((loc, line));
        }
    }
    stack.pop();
    Ok(())
}

fn fmt_wave(w: &SourceWaveform) -> String {
    match w {
        SourceWaveform::Dc(v) => format!("DC {v:e}"),
        SourceWaveform::Pulse {
            v0,
            v1,
            t_delay,
            t_rise,
            t_width,
            t_fall,
        } => format!("PULSE({v0:e} {v1:e} {t_delay:e} {t_rise:e} {t_fall:e} {t_width:e})"),
        SourceWaveform::Ramp {
            v0,
            v1,
            t_start,
            t_rise,
        } => format!(
            "PWL({:e} {v0:e} {:e} {v1:e})",
            t_start.max(0.0),
            t_start + t_rise
        ),
        SourceWaveform::TriangleGlitch {
            v_base,
            v_peak,
            t_start,
            t_rise,
            t_fall,
        } => format!(
            "PWL({:e} {v_base:e} {:e} {v_peak:e} {:e} {v_base:e})",
            t_start.max(0.0),
            t_start + t_rise,
            t_start + t_rise + t_fall
        ),
        SourceWaveform::Pwl(points) => {
            let body: Vec<String> = points.iter().map(|(t, v)| format!("{t:e} {v:e}")).collect();
            format!("PWL({})", body.join(" "))
        }
        SourceWaveform::Sampled(wave) => {
            let body: Vec<String> = wave
                .times()
                .iter()
                .zip(wave.values())
                .map(|(t, v)| format!("{t:e} {v:e}"))
                .collect();
            format!("PWL({})", body.join(" "))
        }
    }
}

/// Emit a SPICE deck for `circuit` that [`parse_deck`] reads back to an
/// equal [`Circuit`] (floats use shortest-round-trip formatting).
///
/// MOSFET model cards are deduplicated and named `mod_n` / `mod_p`, diode
/// cards `mod_d` (with a numeric suffix when several distinct cards
/// exist). The non-standard [`Element::TableVccs`] is emitted as a comment
/// block (its table is a characterization artifact, not a SPICE
/// primitive); decks containing one will not round-trip that element — by
/// design, golden reference decks are transistor-level. `Ramp`,
/// `TriangleGlitch`, and `Sampled` waveforms are emitted as equivalent
/// `PWL` sources.
pub fn write_deck(circuit: &Circuit, title: &str) -> String {
    let mut out = String::new();
    if title.is_empty() {
        out.push_str("* untitled");
    } else {
        out.push_str(title);
    }
    out.push('\n');
    // Collect distinct models.
    let mut model_names: Vec<(MosfetModel, String)> = Vec::new();
    let mut diode_models: Vec<(DiodeModel, String)> = Vec::new();
    for e in circuit.elements() {
        match e {
            Element::Mosfet { model, .. } if !model_names.iter().any(|(m, _)| m == model) => {
                let base = match model.polarity {
                    MosPolarity::Nmos => "mod_n",
                    MosPolarity::Pmos => "mod_p",
                };
                let count = model_names
                    .iter()
                    .filter(|(m, _)| m.polarity == model.polarity)
                    .count();
                let name = if count == 0 {
                    base.to_string()
                } else {
                    format!("{base}{count}")
                };
                model_names.push((*model, name));
            }
            Element::Diode { model, .. } if !diode_models.iter().any(|(m, _)| m == model) => {
                let name = if diode_models.is_empty() {
                    "mod_d".to_string()
                } else {
                    format!("mod_d{}", diode_models.len())
                };
                diode_models.push((*model, name));
            }
            _ => {}
        }
    }
    for (m, name) in &model_names {
        let kind = match m.polarity {
            MosPolarity::Nmos => "NMOS",
            MosPolarity::Pmos => "PMOS",
        };
        out.push_str(&format!(
            ".model {name} {kind} (level=1 vto={:e} kp={:e} lambda={:e} gamma={:e} \
             phi={:e} cox={:e} cgso={:e} cgdo={:e} cj={:e})\n",
            m.vt0, m.kp, m.lambda, m.gamma, m.phi, m.cox, m.cgso, m.cgdo, m.cj
        ));
    }
    for (m, name) in &diode_models {
        out.push_str(&format!(
            ".model {name} D (is={:e} n={:e} cj0={:e})\n",
            m.is, m.n, m.cj0
        ));
    }
    let nn = |n: NodeId| circuit.node_name(n).to_string();
    // SPICE identifies element type by the first letter: prefix names that
    // do not already start with the right one.
    let tagged = |prefix: char, name: &str| -> String {
        if name
            .chars()
            .next()
            .is_some_and(|c| c.eq_ignore_ascii_case(&prefix))
        {
            name.to_string()
        } else {
            format!("{prefix}{name}")
        }
    };
    // Capacitors auto-generated by `add_mosfet` / `add_diode` are
    // re-created on parse; emit only the explicit ones.
    let mosfet_names: Vec<&str> = circuit
        .elements()
        .iter()
        .filter_map(|e| match e {
            Element::Mosfet { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    let diode_names: Vec<&str> = circuit
        .elements()
        .iter()
        .filter_map(|e| match e {
            Element::Diode { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    let is_device_cap = |name: &str| -> bool {
        for suffix in [".cgs", ".cgd", ".cgb", ".cdb", ".csb"] {
            if let Some(base) = name.strip_suffix(suffix) {
                if mosfet_names.contains(&base) {
                    return true;
                }
            }
        }
        if let Some(base) = name.strip_suffix(".cj") {
            if diode_names.contains(&base) {
                return true;
            }
        }
        false
    };
    for e in circuit.elements() {
        match e {
            Element::Resistor { name, a, b, ohms } => {
                out.push_str(&format!(
                    "{} {} {} {ohms:e}\n",
                    tagged('R', name),
                    nn(*a),
                    nn(*b)
                ));
            }
            Element::Capacitor { name, a, b, farads } => {
                if is_device_cap(name) {
                    continue;
                }
                out.push_str(&format!(
                    "{} {} {} {farads:e}\n",
                    tagged('C', name),
                    nn(*a),
                    nn(*b)
                ));
            }
            Element::VSource {
                name,
                pos,
                neg,
                wave,
            } => {
                out.push_str(&format!(
                    "{} {} {} {}\n",
                    tagged('V', name),
                    nn(*pos),
                    nn(*neg),
                    fmt_wave(wave)
                ));
            }
            Element::ISource {
                name,
                pos,
                neg,
                wave,
            } => {
                out.push_str(&format!(
                    "{} {} {} {}\n",
                    tagged('I', name),
                    nn(*pos),
                    nn(*neg),
                    fmt_wave(wave)
                ));
            }
            Element::LinearVccs {
                name,
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                gm,
            } => {
                out.push_str(&format!(
                    "{} {} {} {} {} {gm:e}\n",
                    tagged('G', name),
                    nn(*out_p),
                    nn(*out_n),
                    nn(*ctrl_p),
                    nn(*ctrl_n)
                ));
            }
            Element::Vcvs {
                name,
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                gain,
            } => {
                out.push_str(&format!(
                    "{} {} {} {} {} {gain:e}\n",
                    tagged('E', name),
                    nn(*out_p),
                    nn(*out_n),
                    nn(*ctrl_p),
                    nn(*ctrl_n)
                ));
            }
            Element::Cccs {
                name,
                out_p,
                out_n,
                ctrl,
                gain,
            } => {
                out.push_str(&format!(
                    "{} {} {} {} {gain:e}\n",
                    tagged('F', name),
                    nn(*out_p),
                    nn(*out_n),
                    tagged('V', ctrl)
                ));
            }
            Element::Ccvs {
                name,
                out_p,
                out_n,
                ctrl,
                r,
            } => {
                out.push_str(&format!(
                    "{} {} {} {} {r:e}\n",
                    tagged('H', name),
                    nn(*out_p),
                    nn(*out_n),
                    tagged('V', ctrl)
                ));
            }
            Element::Diode { name, p, n, model } => {
                let mname = &diode_models
                    .iter()
                    .find(|(m, _)| m == model)
                    .expect("diode model collected above")
                    .1;
                out.push_str(&format!(
                    "{} {} {} {mname}\n",
                    tagged('D', name),
                    nn(*p),
                    nn(*n)
                ));
            }
            Element::TableVccs {
                name,
                out_p,
                out_n,
                ctrl,
                table,
            } => {
                out.push_str(&format!(
                    "* table-vccs {name}: out=({},{}) ctrl={} grid={}x{} (non-standard, omitted)\n",
                    nn(*out_p),
                    nn(*out_n),
                    nn(*ctrl),
                    table.x_axis().len(),
                    table.y_axis().len()
                ));
            }
            Element::Mosfet {
                name,
                d,
                g,
                s,
                b,
                model,
                w,
                l,
            } => {
                let mname = &model_names
                    .iter()
                    .find(|(m, _)| m == model)
                    .expect("model collected above")
                    .1;
                out.push_str(&format!(
                    "{} {} {} {} {} {mname} W={w:e} L={l:e}\n",
                    tagged('M', name),
                    nn(*d),
                    nn(*g),
                    nn(*s),
                    nn(*b)
                ));
            }
        }
    }
    out.push_str(".end\n");
    out
}

fn dump_wave(w: &SourceWaveform) -> String {
    match w {
        SourceWaveform::Dc(v) => format!("dc({v:e})"),
        SourceWaveform::Pulse {
            v0,
            v1,
            t_delay,
            t_rise,
            t_width,
            t_fall,
        } => format!(
            "pulse(v0={v0:e} v1={v1:e} td={t_delay:e} tr={t_rise:e} tf={t_fall:e} pw={t_width:e})"
        ),
        SourceWaveform::Ramp {
            v0,
            v1,
            t_start,
            t_rise,
        } => format!("ramp(v0={v0:e} v1={v1:e} t0={t_start:e} tr={t_rise:e})"),
        SourceWaveform::TriangleGlitch {
            v_base,
            v_peak,
            t_start,
            t_rise,
            t_fall,
        } => format!(
            "glitch(base={v_base:e} peak={v_peak:e} t0={t_start:e} tr={t_rise:e} tf={t_fall:e})"
        ),
        SourceWaveform::Pwl(points) => {
            let body: Vec<String> = points.iter().map(|(t, v)| format!("{t:e}:{v:e}")).collect();
            format!("pwl({})", body.join(" "))
        }
        SourceWaveform::Sampled(wave) => format!("sampled({} pts)", wave.times().len()),
    }
}

/// Deterministic plain-text dump of a [`ParsedDeck`] — the golden-snapshot
/// format: one line per node, element, and analysis card, every float in
/// shortest-round-trip scientific notation. Byte-stable across platforms.
pub fn dump_parsed(deck: &ParsedDeck) -> String {
    let mut out = String::new();
    out.push_str(&format!("title: {}\n", deck.title));
    let c = &deck.circuit;
    out.push_str(&format!("nodes: {}\n", c.node_count()));
    for i in 0..c.node_count() {
        out.push_str(&format!("  node {i}: {}\n", c.node_name(NodeId(i))));
    }
    out.push_str(&format!("elements: {}\n", c.element_count()));
    let nn = |n: NodeId| c.node_name(n).to_string();
    for (i, e) in c.elements().iter().enumerate() {
        let line = match e {
            Element::Resistor { name, a, b, ohms } => {
                format!("resistor {name} {} {} ohms={ohms:e}", nn(*a), nn(*b))
            }
            Element::Capacitor { name, a, b, farads } => {
                format!("capacitor {name} {} {} farads={farads:e}", nn(*a), nn(*b))
            }
            Element::VSource {
                name,
                pos,
                neg,
                wave,
            } => format!(
                "vsource {name} {} {} {}",
                nn(*pos),
                nn(*neg),
                dump_wave(wave)
            ),
            Element::ISource {
                name,
                pos,
                neg,
                wave,
            } => format!(
                "isource {name} {} {} {}",
                nn(*pos),
                nn(*neg),
                dump_wave(wave)
            ),
            Element::LinearVccs {
                name,
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                gm,
            } => format!(
                "vccs {name} {} {} ctrl=({},{}) gm={gm:e}",
                nn(*out_p),
                nn(*out_n),
                nn(*ctrl_p),
                nn(*ctrl_n)
            ),
            Element::TableVccs {
                name,
                out_p,
                out_n,
                ctrl,
                table,
            } => format!(
                "table-vccs {name} {} {} ctrl={} grid={}x{}",
                nn(*out_p),
                nn(*out_n),
                nn(*ctrl),
                table.x_axis().len(),
                table.y_axis().len()
            ),
            Element::Vcvs {
                name,
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                gain,
            } => format!(
                "vcvs {name} {} {} ctrl=({},{}) gain={gain:e}",
                nn(*out_p),
                nn(*out_n),
                nn(*ctrl_p),
                nn(*ctrl_n)
            ),
            Element::Cccs {
                name,
                out_p,
                out_n,
                ctrl,
                gain,
            } => format!(
                "cccs {name} {} {} ctrl={ctrl} gain={gain:e}",
                nn(*out_p),
                nn(*out_n)
            ),
            Element::Ccvs {
                name,
                out_p,
                out_n,
                ctrl,
                r,
            } => format!(
                "ccvs {name} {} {} ctrl={ctrl} r={r:e}",
                nn(*out_p),
                nn(*out_n)
            ),
            Element::Diode { name, p, n, model } => format!(
                "diode {name} {} {} is={:e} n={:e} cj0={:e}",
                nn(*p),
                nn(*n),
                model.is,
                model.n,
                model.cj0
            ),
            Element::Mosfet {
                name,
                d,
                g,
                s,
                b,
                model,
                w,
                l,
            } => {
                let pol = match model.polarity {
                    MosPolarity::Nmos => "nmos",
                    MosPolarity::Pmos => "pmos",
                };
                format!(
                    "mosfet {name} {} {} {} {} {pol} w={w:e} l={l:e} vto={:e} kp={:e} \
                     lambda={:e} gamma={:e} phi={:e} cox={:e} cgso={:e} cgdo={:e} cj={:e}",
                    nn(*d),
                    nn(*g),
                    nn(*s),
                    nn(*b),
                    model.vt0,
                    model.kp,
                    model.lambda,
                    model.gamma,
                    model.phi,
                    model.cox,
                    model.cgso,
                    model.cgdo,
                    model.cj
                )
            }
        };
        out.push_str(&format!("  [{i}] {line}\n"));
    }
    match &deck.tran {
        Some(t) => out.push_str(&format!(
            "tran: dt={:e} stop={:e} uic={}\n",
            t.dt, t.t_stop, !t.dc_init
        )),
        None => out.push_str("tran: none\n"),
    }
    out.push_str(&format!("dc_sweeps: {}\n", deck.dc_sweeps.len()));
    for (src, a, b, s) in &deck.dc_sweeps {
        out.push_str(&format!("  dc {src} {a:e} {b:e} {s:e}\n"));
    }
    out.push_str(&format!("ics: {}\n", deck.ics.len()));
    for (node, v) in &deck.ics {
        out.push_str(&format!("  v({node}) = {v:e}\n"));
    }
    out.push_str(&format!("sna_cards: {}\n", deck.sna_cards.len()));
    for card in &deck.sna_cards {
        // FRAME constraint fields are appended only when present so that
        // dumps of window-less decks stay byte-identical.
        let mut frame = String::new();
        for (src, lo, hi) in &card.windows {
            frame.push_str(&format!(" window={src}:{lo:e}:{hi:e}"));
        }
        for (src, g) in &card.mexcl {
            frame.push_str(&format!(" mexcl={src}:{g}"));
        }
        if let Some((lo, hi)) = card.sensitivity {
            frame.push_str(&format!(" sensitivity={lo:e}:{hi:e}"));
        }
        out.push_str(&format!(
            "  victim={} aggressors=[{}] threshold={} name={}{}\n",
            card.victim,
            card.aggressors.join(","),
            card.threshold
                .map(|t| format!("{t:e}"))
                .unwrap_or_else(|| "none".into()),
            card.name.as_deref().unwrap_or("none"),
            frame
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{dc_operating_point, NewtonOptions};

    #[test]
    fn parse_rc_divider_and_solve() {
        let deck = "\
test divider
V1 in 0 DC 3.0
R1 in mid 2k
R2 mid 0 1k
.end
";
        let p = parse_deck(deck).unwrap();
        assert_eq!(p.title, "test divider");
        let sol = dc_operating_point(&p.circuit, &NewtonOptions::default(), None).unwrap();
        let mid = p.circuit.find_node("mid").unwrap();
        assert!((sol.voltage(mid) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn continuation_and_comments() {
        let deck = "\
continuation test
* full-line comment
V1 a 0
+ DC 2.0 ; inline comment
R1 a 0 1k $ another comment
.end
";
        let p = parse_deck(deck).unwrap();
        assert_eq!(p.circuit.element_count(), 2);
    }

    #[test]
    fn pwl_and_pulse_sources() {
        let deck = "\
sources
V1 a 0 PWL(0 0 1n 1.0 2n 0)
V2 b 0 PULSE(0 1.2 1n 50p 50p 200p)
R1 a 0 1k
R2 b 0 1k
.tran 1p 5n
.end
";
        let p = parse_deck(deck).unwrap();
        assert!(p.tran.is_some());
        let t = p.tran.unwrap();
        assert!((t.t_stop - 5e-9).abs() < 1e-21);
        assert!((t.dt - 1e-12).abs() < 1e-24);
        match p.circuit.element(p.circuit.find_element("V1").unwrap()) {
            Element::VSource { wave, .. } => {
                assert!((wave.eval(0.5e-9) - 0.5).abs() < 1e-9);
            }
            _ => panic!(),
        }
        match p.circuit.element(p.circuit.find_element("V2").unwrap()) {
            Element::VSource { wave, .. } => {
                // peak during the pulse width
                assert!((wave.eval(1.15e-9) - 1.2).abs() < 1e-9);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn mosfet_with_model() {
        let deck = "\
inv
.model nch NMOS (level=1 vto=0.32 kp=2.5e-4 lambda=0.15 gamma=0.4 phi=0.7)
.model pch PMOS (level=1 vto=-0.34 kp=1.0e-4)
Vdd vdd 0 DC 1.2
Vin in 0 DC 0
Mn out in 0 0 nch W=0.42u L=0.13u
Mp out in vdd vdd pch W=0.64u L=0.13u
.end
";
        let p = parse_deck(deck).unwrap();
        let sol = dc_operating_point(&p.circuit, &NewtonOptions::default(), None).unwrap();
        let out = p.circuit.find_node("out").unwrap();
        assert!((sol.voltage(out) - 1.2).abs() < 0.02);
    }

    #[test]
    fn model_defined_after_use() {
        let deck = "\
order
Vd d 0 DC 1.0
M1 d d 0 0 nch W=1u L=0.13u
.model nch NMOS (vto=0.3 kp=2e-4)
.end
";
        assert!(parse_deck(deck).is_ok());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let deck = "\
title
R1 a 0 notanumber
.end
";
        match parse_deck(deck) {
            Err(Error::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn errors_survive_continuation_merging() {
        // The bad token sits on physical line 5, but the card *starts* on
        // line 3 — the report must point at the card, not past it and not
        // at a post-merge pseudo-line.
        let deck = "\
title
R1 a b 1k
R2 a
+ 0
+ bogus
.end
";
        match parse_deck(deck) {
            Err(Error::Parse { line, message }) => {
                assert_eq!(line, 3, "wrong line in: {message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_element_rejected() {
        let deck = "title\nQ1 a b c model\n.end\n";
        assert!(parse_deck(deck).is_err());
    }

    #[test]
    fn dc_sweep_statement() {
        let deck = "\
sweep
V1 a 0 DC 0
R1 a 0 1k
.dc V1 0 1.2 0.1
.end
";
        let p = parse_deck(deck).unwrap();
        assert_eq!(p.dc_sweeps.len(), 1);
        assert_eq!(p.dc_sweeps[0].0, "V1");
    }

    #[test]
    fn roundtrip_write_parse() {
        let deck = "\
rt
.model nch NMOS (level=1 vto=0.32 kp=2.5e-4 lambda=0.15 gamma=0.4 phi=0.7 cox=0.012 cgso=3e-10 cgdo=3e-10 cj=8e-10)
Vdd vdd 0 DC 1.2
Vin in 0 PULSE(0 1.2 1n 50p 50p 200p)
Mn out in 0 0 nch W=0.42u L=0.13u
R1 out 0 10k
C1 out 0 5f
.end
";
        let p1 = parse_deck(deck).unwrap();
        let emitted = write_deck(&p1.circuit, "rt");
        let p2 = parse_deck(&emitted).unwrap();
        // Exact round-trip: same nodes, same elements, same values.
        assert_eq!(p1.circuit, p2.circuit);
    }

    #[test]
    fn subckt_flattening_basic() {
        let deck = "\
divider pair
.subckt half inp out
R1 inp out 1k
R2 out 0 1k
.ends half
V1 in 0 DC 2.0
X1 in mid half
X2 mid out2 half
.end
";
        let p = parse_deck(deck).unwrap();
        // 1 vsource + 2 instances x 2 resistors.
        assert_eq!(p.circuit.element_count(), 5);
        assert!(p.circuit.find_element("x1.R1").is_some());
        assert!(p.circuit.find_element("x2.R2").is_some());
        // Internal "out" of X1 maps to the shared "mid" net.
        let sol = dc_operating_point(&p.circuit, &NewtonOptions::default(), None).unwrap();
        let mid = p.circuit.find_node("mid").unwrap();
        // X2 loads mid with 2k to ground: V(mid) = 2 * (2k/3k) / ... solve:
        // series 1k then (1k || 2k) = 2/3 k → V(mid) = 2 * (2/3)/(1+2/3) = 0.8
        assert!(
            (sol.voltage(mid) - 0.8).abs() < 1e-9,
            "{}",
            sol.voltage(mid)
        );
    }

    #[test]
    fn subckt_nested_with_params() {
        let deck = "\
nested
.subckt leaf a b r=1k
R1 a b {r}
.ends
.subckt pair inp out r=2k
X1 inp m leaf r={r}
X2 m out leaf r={r}
.ends
V1 in 0 DC 1.0
X9 in out pair r=500
Rload out 0 1k
.end
";
        let p = parse_deck(deck).unwrap();
        // Two leaf resistors of 500 each in series, then 1k to ground.
        let e = p.circuit.find_element("x9.x1.R1").expect("nested name");
        match p.circuit.element(e) {
            Element::Resistor { ohms, .. } => assert_eq!(*ohms, 500.0),
            other => panic!("{other:?}"),
        }
        let sol = dc_operating_point(&p.circuit, &NewtonOptions::default(), None).unwrap();
        let out = p.circuit.find_node("out").unwrap();
        assert!((sol.voltage(out) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn subckt_errors() {
        // Unclosed definition.
        let deck = "t\n.subckt a p\nR1 p 0 1k\n.end\n";
        assert!(parse_deck(deck).is_err());
        // Stray .ends.
        let deck = "t\nR1 a 0 1k\n.ends\n.end\n";
        assert!(parse_deck(deck).is_err());
        // Duplicate definition.
        let deck = "t\n.subckt a p\nR1 p 0 1k\n.ends\n.subckt a p\nR1 p 0 2k\n.ends\nV1 x 0 DC 1\nX1 x a\n.end\n";
        assert!(parse_deck(deck).is_err());
        // Port-count mismatch.
        let deck = "t\n.subckt a p q\nR1 p q 1k\n.ends\nX1 x a\n.end\n";
        assert!(parse_deck(deck).is_err());
        // Unknown parameter.
        let deck = "t\n.subckt a p\nR1 p 0 1k\n.ends\nV1 x 0 DC 1\nX1 x a nope=3\n.end\n";
        assert!(parse_deck(deck).is_err());
        // Recursive instantiation trips the depth limit.
        let deck = "t\n.subckt a p\nX1 p a\n.ends\nV1 x 0 DC 1\nX1 x a\n.end\n";
        assert!(parse_deck(deck).is_err());
    }

    #[test]
    fn controlled_sources_parse_and_solve() {
        let deck = "\
ctrl
V1 in 0 DC 1.0
R1 in 0 1k
E1 e 0 in 0 2.0
Re e 0 1k
F1 0 f V1 3.0
Rf f 0 1k
H1 h 0 V1 100
Rh h 0 1k
.end
";
        let p = parse_deck(deck).unwrap();
        let sol = dc_operating_point(&p.circuit, &NewtonOptions::default(), None).unwrap();
        let n = |s: &str| p.circuit.find_node(s).unwrap();
        // E1: V(e) = 2 * V(in) = 2.
        assert!((sol.voltage(n("e")) - 2.0).abs() < 1e-9);
        // V1 sources 1 mA into R1, so its MNA branch current is -1 mA.
        // F1 injects 3 * i(V1) = -3 mA into node f across Rf = 1k.
        assert!(
            (sol.voltage(n("f")) + 3.0).abs() < 1e-9,
            "{}",
            sol.voltage(n("f"))
        );
        // H1: V(h) = 100 * i(V1) = -0.1.
        assert!((sol.voltage(n("h")) + 0.1).abs() < 1e-9);
    }

    #[test]
    fn cccs_forward_reference_and_missing_ctrl() {
        // F references a vsource defined later: must resolve.
        let deck = "t\nF1 0 f Vsrc 2.0\nRf f 0 1k\nVsrc a 0 DC 1\nRa a 0 1k\n.end\n";
        assert!(parse_deck(deck).is_ok());
        // Unknown controlling source: parse error, not a later MNA error.
        let deck = "t\nF1 0 f Vnope 2.0\nRf f 0 1k\n.end\n";
        assert!(parse_deck(deck).is_err());
    }

    #[test]
    fn diode_model_and_ic_cards() {
        let deck = "\
clamp
.model dclamp D (is=1e-15 n=1.1 cj0=2f)
V1 in 0 DC 0.8
R1 in out 1k
D1 out 0 dclamp
.ic v(out)=0.3
.tran 1p 1n UIC
.end
";
        let p = parse_deck(deck).unwrap();
        assert_eq!(p.ics, vec![("out".to_string(), 0.3)]);
        let t = p.tran.as_ref().unwrap();
        assert!(!t.dc_init, "UIC must clear dc_init");
        // Diode + its .cj cap.
        assert!(p.circuit.find_element("D1").is_some());
        assert!(p.circuit.find_element("D1.cj").is_some());
        let resolved = p.resolve_ics();
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].0, p.circuit.find_node("out").unwrap());
        // Unknown node in .ic is a parse error.
        let bad = "t\nR1 a 0 1k\n.ic v(zz)=1\n.end\n";
        assert!(parse_deck(bad).is_err());
    }

    #[test]
    fn sna_cards_parse_and_verify() {
        let deck = "\
bus
V1 vic 0 DC 0
Va1 ag1 0 DC 0
Va2 ag2 0 DC 0
R1 vic 0 1k
R2 ag1 0 1k
R3 ag2 0 1k
.sna victim=vic aggressors=Va1,Va2 threshold=0.4 name=bus0
.end
";
        let p = parse_deck(deck).unwrap();
        assert_eq!(p.sna_cards.len(), 1);
        let card = &p.sna_cards[0];
        assert_eq!(card.victim, "vic");
        assert_eq!(card.aggressors, vec!["Va1".to_string(), "Va2".to_string()]);
        assert_eq!(card.threshold, Some(0.4));
        assert_eq!(card.name.as_deref(), Some("bus0"));
        // Constraint-free cards keep empty FRAME fields.
        assert!(card.windows.is_empty());
        assert!(card.mexcl.is_empty());
        assert_eq!(card.sensitivity, None);
        // Victim must exist; aggressors must be sources.
        let bad = "t\nR1 a 0 1k\n.sna victim=zz\n.end\n";
        assert!(parse_deck(bad).is_err());
        let bad = "t\nR1 a 0 1k\n.sna victim=a aggressors=R1\n.end\n";
        assert!(parse_deck(bad).is_err());
    }

    #[test]
    fn sna_frame_constraints_parse_and_verify() {
        let deck = "\
bus
V1 vic 0 DC 0
Va1 ag1 0 DC 0
Va2 ag2 0 DC 0
R1 vic 0 1k
R2 ag1 0 1k
R3 ag2 0 1k
.sna victim=vic aggressors=Va1,Va2 threshold=0.4
+ window=Va1:1n:2n,Va2:0:2n mexcl=Va1:1,Va2:1 sensitivity=0.5n:4n
.end
";
        let p = parse_deck(deck).unwrap();
        let card = &p.sna_cards[0];
        assert_eq!(
            card.windows,
            vec![
                ("Va1".to_string(), 1e-9, 2e-9),
                ("Va2".to_string(), 0.0, 2e-9)
            ]
        );
        assert_eq!(
            card.mexcl,
            vec![("Va1".to_string(), 1), ("Va2".to_string(), 1)]
        );
        assert_eq!(card.sensitivity, Some((0.5e-9, 4e-9)));
        // The dump carries the constraints (appended, so window-less decks
        // are unchanged).
        let dump = dump_parsed(&p);
        assert!(dump.contains("window=Va1:1e-9:2e-9"), "{dump}");
        assert!(dump.contains("mexcl=Va2:1"), "{dump}");
        assert!(dump.contains("sensitivity=5e-10:4e-9"), "{dump}");

        // Malformed or inconsistent constraints are rejected with context.
        for (bad, needle) in [
            (
                ".sna victim=vic aggressors=Va1 window=Va1:3n:1n",
                "t_min <= t_max",
            ),
            (".sna victim=vic aggressors=Va1 window=Va1:1n", "window"),
            (".sna victim=vic aggressors=Va1 mexcl=Va1", "mexcl"),
            (
                ".sna victim=vic aggressors=Va1 sensitivity=1n",
                "sensitivity",
            ),
            (
                ".sna victim=vic aggressors=Va1 window=Va2:1n:3n",
                "not in aggressors=",
            ),
            (
                ".sna victim=vic window=R1:1n:3n",
                "not an independent V or I source",
            ),
        ] {
            let deck = format!(
                "t\nV1 vic 0 DC 0\nVa1 ag1 0 DC 0\nVa2 ag2 0 DC 0\n\
                 R1 vic 0 1k\nR2 ag1 0 1k\nR3 ag2 0 1k\n{bad}\n.end\n"
            );
            match parse_deck(&deck) {
                Err(e) => assert!(e.to_string().contains(needle), "{bad}: {e}"),
                Ok(_) => panic!("{bad}: expected rejection"),
            }
        }
    }

    #[test]
    fn include_rejected_in_string_mode() {
        let deck = "t\n.include other.cir\n.end\n";
        match parse_deck(deck) {
            Err(Error::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("parse_deck_file"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn dump_parsed_is_stable() {
        let deck = "\
d
V1 a 0 DC 1.5
R1 a 0 2k
.tran 1p 1n
.end
";
        let p = parse_deck(deck).unwrap();
        let dump = dump_parsed(&p);
        assert!(dump.contains("title: d"));
        assert!(dump.contains("resistor R1 a 0 ohms=2e3"));
        assert!(dump.contains("vsource V1 a 0 dc(1.5e0)"));
        assert!(dump.contains("tran: dt=1e-12 stop=1e-9 uic=false"));
        // Stable across re-parse of its own write_deck output (write_deck
        // emits only the circuit, so carry the analyses over).
        let mut p2 = parse_deck(&write_deck(&p.circuit, "d")).unwrap();
        p2.tran = p.tran;
        assert_eq!(dump_parsed(&p2), dump);
    }
}
