//! SPICE-deck subset parser and writer.
//!
//! The EDA ecosystem interchange format for the circuits this crate
//! simulates is the classic SPICE netlist. The subset covers everything the
//! noise flow produces or consumes: `R`, `C`, `V`, `I`, `G` (linear VCCS)
//! and `M` elements, `.model` cards (level-1), `.tran`/`.dc` analysis lines,
//! comments, and `+` continuations. [`write_deck`] emits a deck that this
//! parser round-trips, so golden cluster netlists can be dumped, diffed,
//! and re-read.

use std::collections::HashMap;

use crate::devices::{MosPolarity, MosfetModel, SourceWaveform};
use crate::error::{Error, Result};
use crate::netlist::{Circuit, Element};
use crate::tran::TranParams;
use crate::units::parse_spice_number;

/// A parsed deck: the circuit plus any analysis statements found.
#[derive(Debug, Clone)]
pub struct ParsedDeck {
    /// Title line (first line of the deck, SPICE convention).
    pub title: String,
    /// The netlist.
    pub circuit: Circuit,
    /// `.tran` statement, if present.
    pub tran: Option<TranParams>,
    /// `.dc` sweep statements: `(source, start, stop, step)`.
    pub dc_sweeps: Vec<(String, f64, f64, f64)>,
}

fn err(line: usize, msg: impl Into<String>) -> Error {
    Error::Parse {
        line,
        message: msg.into(),
    }
}

fn num(tok: &str, line: usize) -> Result<f64> {
    parse_spice_number(tok).ok_or_else(|| err(line, format!("expected a number, got '{tok}'")))
}

/// Split logical lines: strip comments, join `+` continuations.
/// Returns `(line_number_of_first_physical_line, joined_text)`.
fn logical_lines(deck: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    for (i, raw) in deck.lines().enumerate() {
        let lineno = i + 1;
        let mut text = raw.trim().to_string();
        if let Some(p) = text.find(';') {
            text.truncate(p);
        }
        if let Some(p) = text.find('$') {
            text.truncate(p);
        }
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        if text.starts_with('*') {
            continue;
        }
        if let Some(cont) = text.strip_prefix('+') {
            if let Some(last) = out.last_mut() {
                last.1.push(' ');
                last.1.push_str(cont.trim());
                continue;
            }
        }
        out.push((lineno, text.to_string()));
    }
    out
}

/// Tokenize respecting `(`, `)`, `=` as separators that also split tokens.
fn tokenize(s: &str) -> Vec<String> {
    let mut toks = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            ' ' | '\t' | ',' => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
            }
            '(' | ')' | '=' => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
                toks.push(ch.to_string());
            }
            _ => cur.push(ch),
        }
    }
    if !cur.is_empty() {
        toks.push(cur);
    }
    toks
}

/// Parse a source specification from tokens following the two node names.
fn parse_source(toks: &[String], line: usize) -> Result<SourceWaveform> {
    if toks.is_empty() {
        return Err(err(line, "missing source value"));
    }
    let kw = toks[0].to_ascii_uppercase();
    match kw.as_str() {
        "DC" => {
            let v = toks.get(1).ok_or_else(|| err(line, "DC needs a value"))?;
            Ok(SourceWaveform::Dc(num(v, line)?))
        }
        "PWL" => {
            // PWL ( t1 v1 t2 v2 ... )
            let nums: Vec<f64> = toks[1..]
                .iter()
                .filter(|t| *t != "(" && *t != ")")
                .map(|t| num(t, line))
                .collect::<Result<_>>()?;
            if nums.len() < 4 || !nums.len().is_multiple_of(2) {
                return Err(err(line, "PWL needs an even number (>= 4) of values"));
            }
            let pts: Vec<(f64, f64)> = nums.chunks(2).map(|c| (c[0], c[1])).collect();
            for w in pts.windows(2) {
                if w[1].0 <= w[0].0 {
                    return Err(err(line, "PWL times must be strictly increasing"));
                }
            }
            Ok(SourceWaveform::Pwl(pts))
        }
        "PULSE" => {
            let nums: Vec<f64> = toks[1..]
                .iter()
                .filter(|t| *t != "(" && *t != ")")
                .map(|t| num(t, line))
                .collect::<Result<_>>()?;
            if nums.len() < 6 {
                return Err(err(line, "PULSE needs v0 v1 td tr tf pw"));
            }
            Ok(SourceWaveform::Pulse {
                v0: nums[0],
                v1: nums[1],
                t_delay: nums[2],
                t_rise: nums[3],
                t_fall: nums[4],
                t_width: nums[5],
            })
        }
        _ => Ok(SourceWaveform::Dc(num(&toks[0], line)?)),
    }
}

/// Parse a SPICE deck into a circuit plus analyses.
///
/// # Errors
///
/// [`Error::Parse`] with the offending line number on any syntax problem;
/// element-level validation errors (negative resistance etc.) are also
/// reported with their line.
///
/// # Examples
///
/// ```
/// use sna_spice::parser::parse_deck;
///
/// let deck = "\
/// rc lowpass
/// V1 in 0 DC 1.0
/// R1 in out 1k
/// C1 out 0 1p
/// .tran 1p 5n
/// .end
/// ";
/// let parsed = parse_deck(deck).unwrap();
/// assert_eq!(parsed.circuit.element_count(), 3);
/// assert!(parsed.tran.is_some());
/// ```
pub fn parse_deck(deck: &str) -> Result<ParsedDeck> {
    let lines = logical_lines(deck);
    if lines.is_empty() {
        return Err(err(0, "empty deck"));
    }
    // SPICE convention: the first line is the title. The single concession
    // to title-less decks: a deck whose first line is a dot-card keeps it.
    let (start, title) = match lines.first() {
        Some((_, first)) if first.starts_with('.') => (0, String::new()),
        Some((_, first)) => (1, first.clone()),
        None => (0, String::new()),
    };
    let mut circuit = Circuit::new();
    let mut models: HashMap<String, MosfetModel> = HashMap::new();
    let mut tran = None;
    let mut dc_sweeps = Vec::new();
    // Two passes: collect .model cards first so M lines can reference
    // models defined later in the deck.
    for (lineno, text) in lines.iter().skip(start) {
        let toks = tokenize(text);
        if toks.is_empty() {
            continue;
        }
        if toks[0].eq_ignore_ascii_case(".model") {
            let name = toks
                .get(1)
                .ok_or_else(|| err(*lineno, ".model needs a name"))?
                .to_ascii_lowercase();
            let kind = toks
                .get(2)
                .ok_or_else(|| err(*lineno, ".model needs NMOS or PMOS"))?
                .to_ascii_uppercase();
            let polarity = match kind.as_str() {
                "NMOS" => MosPolarity::Nmos,
                "PMOS" => MosPolarity::Pmos,
                other => return Err(err(*lineno, format!("unsupported model type {other}"))),
            };
            let mut params: HashMap<String, f64> = HashMap::new();
            let mut k = 3;
            while k < toks.len() {
                let t = &toks[k];
                if t == "(" || t == ")" {
                    k += 1;
                    continue;
                }
                if toks.get(k + 1).map(|s| s.as_str()) == Some("=") {
                    let val = toks
                        .get(k + 2)
                        .ok_or_else(|| err(*lineno, format!("missing value for {t}")))?;
                    params.insert(t.to_ascii_lowercase(), num(val, *lineno)?);
                    k += 3;
                } else {
                    k += 1;
                }
            }
            let get = |key: &str, default: f64| params.get(key).copied().unwrap_or(default);
            let vt_default = match polarity {
                MosPolarity::Nmos => 0.3,
                MosPolarity::Pmos => -0.3,
            };
            let model = MosfetModel {
                polarity,
                vt0: get("vto", vt_default),
                kp: get("kp", 2e-4),
                lambda: get("lambda", 0.1),
                gamma: get("gamma", 0.0),
                phi: get("phi", 0.7),
                cox: get("cox", 0.01),
                cgso: get("cgso", 0.0),
                cgdo: get("cgdo", 0.0),
                cj: get("cj", 0.0),
            };
            models.insert(name, model);
        }
    }
    for (lineno, text) in lines.iter().skip(start) {
        let toks = tokenize(text);
        if toks.is_empty() {
            continue;
        }
        let head = toks[0].clone();
        let first = head.chars().next().unwrap().to_ascii_uppercase();
        match first {
            '.' => {
                let cmd = head.to_ascii_lowercase();
                match cmd.as_str() {
                    ".model" => {} // handled in first pass
                    ".end" | ".ends" => break,
                    ".tran" => {
                        let step = num(
                            toks.get(1)
                                .ok_or_else(|| err(*lineno, ".tran needs step"))?,
                            *lineno,
                        )?;
                        let stop = num(
                            toks.get(2)
                                .ok_or_else(|| err(*lineno, ".tran needs stop"))?,
                            *lineno,
                        )?;
                        tran = Some(TranParams::new(stop, step));
                    }
                    ".dc" => {
                        let src = toks
                            .get(1)
                            .ok_or_else(|| err(*lineno, ".dc needs a source"))?
                            .clone();
                        let a = num(
                            toks.get(2).ok_or_else(|| err(*lineno, ".dc start"))?,
                            *lineno,
                        )?;
                        let b = num(
                            toks.get(3).ok_or_else(|| err(*lineno, ".dc stop"))?,
                            *lineno,
                        )?;
                        let s = num(
                            toks.get(4).ok_or_else(|| err(*lineno, ".dc step"))?,
                            *lineno,
                        )?;
                        dc_sweeps.push((src, a, b, s));
                    }
                    _ => {} // ignore unknown dot-cards (.probe, .option, ...)
                }
            }
            'R' => {
                if toks.len() < 4 {
                    return Err(err(*lineno, "R needs: name n1 n2 value"));
                }
                let a = circuit.node(&toks[1]);
                let b = circuit.node(&toks[2]);
                let v = num(&toks[3], *lineno)?;
                circuit
                    .add_resistor(&head, a, b, v)
                    .map_err(|e| err(*lineno, e.to_string()))?;
            }
            'C' => {
                if toks.len() < 4 {
                    return Err(err(*lineno, "C needs: name n1 n2 value"));
                }
                let a = circuit.node(&toks[1]);
                let b = circuit.node(&toks[2]);
                let v = num(&toks[3], *lineno)?;
                circuit
                    .add_capacitor(&head, a, b, v)
                    .map_err(|e| err(*lineno, e.to_string()))?;
            }
            'V' | 'I' => {
                if toks.len() < 4 {
                    return Err(err(*lineno, "source needs: name n+ n- value"));
                }
                let p = circuit.node(&toks[1]);
                let n = circuit.node(&toks[2]);
                let wave = parse_source(&toks[3..], *lineno)?;
                if first == 'V' {
                    circuit.add_vsource(&head, p, n, wave);
                } else {
                    circuit.add_isource(&head, p, n, wave);
                }
            }
            'G' => {
                if toks.len() < 6 {
                    return Err(err(*lineno, "G needs: name out+ out- ctrl+ ctrl- gm"));
                }
                let op = circuit.node(&toks[1]);
                let on = circuit.node(&toks[2]);
                let cp = circuit.node(&toks[3]);
                let cn = circuit.node(&toks[4]);
                let gm = num(&toks[5], *lineno)?;
                circuit.add_linear_vccs(&head, op, on, cp, cn, gm);
            }
            'M' => {
                if toks.len() < 6 {
                    return Err(err(*lineno, "M needs: name d g s b model [W= L=]"));
                }
                let d = circuit.node(&toks[1]);
                let g = circuit.node(&toks[2]);
                let s = circuit.node(&toks[3]);
                let b = circuit.node(&toks[4]);
                let mname = toks[5].to_ascii_lowercase();
                let model = *models
                    .get(&mname)
                    .ok_or_else(|| err(*lineno, format!("unknown model '{}'", toks[5])))?;
                let mut w = 1e-6;
                let mut l = 0.13e-6;
                let mut k = 6;
                while k < toks.len() {
                    if toks.get(k + 1).map(|t| t.as_str()) == Some("=") {
                        let key = toks[k].to_ascii_lowercase();
                        let val = num(
                            toks.get(k + 2)
                                .ok_or_else(|| err(*lineno, format!("missing value for {key}")))?,
                            *lineno,
                        )?;
                        match key.as_str() {
                            "w" => w = val,
                            "l" => l = val,
                            _ => {}
                        }
                        k += 3;
                    } else {
                        k += 1;
                    }
                }
                circuit
                    .add_mosfet(&head, d, g, s, b, model, w, l)
                    .map_err(|e| err(*lineno, e.to_string()))?;
            }
            other => {
                return Err(err(*lineno, format!("unsupported element '{other}'")));
            }
        }
    }
    Ok(ParsedDeck {
        title,
        circuit,
        tran,
        dc_sweeps,
    })
}

fn fmt_wave(w: &SourceWaveform) -> String {
    match w {
        SourceWaveform::Dc(v) => format!("DC {v:.12e}"),
        SourceWaveform::Pulse {
            v0,
            v1,
            t_delay,
            t_rise,
            t_width,
            t_fall,
        } => format!(
            "PULSE({v0:.12e} {v1:.12e} {t_delay:.12e} {t_rise:.12e} {t_fall:.12e} {t_width:.12e})"
        ),
        SourceWaveform::Ramp {
            v0,
            v1,
            t_start,
            t_rise,
        } => format!(
            "PWL({:.12e} {v0:.12e} {:.12e} {v1:.12e})",
            t_start.max(0.0),
            t_start + t_rise
        ),
        SourceWaveform::TriangleGlitch {
            v_base,
            v_peak,
            t_start,
            t_rise,
            t_fall,
        } => format!(
            "PWL({:.12e} {v_base:.12e} {:.12e} {v_peak:.12e} {:.12e} {v_base:.12e})",
            t_start.max(0.0),
            t_start + t_rise,
            t_start + t_rise + t_fall
        ),
        SourceWaveform::Pwl(points) => {
            let body: Vec<String> = points
                .iter()
                .map(|(t, v)| format!("{t:.12e} {v:.12e}"))
                .collect();
            format!("PWL({})", body.join(" "))
        }
        SourceWaveform::Sampled(wave) => {
            let body: Vec<String> = wave
                .times()
                .iter()
                .zip(wave.values())
                .map(|(t, v)| format!("{t:.12e} {v:.12e}"))
                .collect();
            format!("PWL({})", body.join(" "))
        }
    }
}

/// Emit a SPICE deck for `circuit`.
///
/// MOSFET model cards are deduplicated and named `mod_n` / `mod_p` (with a
/// numeric suffix when several distinct cards of one polarity exist). The
/// non-standard [`Element::TableVccs`] is emitted as a comment block (its
/// table is a characterization artifact, not a SPICE primitive); decks
/// containing one will not round-trip that element — by design, golden
/// reference decks are transistor-level.
pub fn write_deck(circuit: &Circuit, title: &str) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    // Collect distinct models.
    let mut model_names: Vec<(MosfetModel, String)> = Vec::new();
    for e in circuit.elements() {
        if let Element::Mosfet { model, .. } = e {
            if !model_names.iter().any(|(m, _)| m == model) {
                let base = match model.polarity {
                    MosPolarity::Nmos => "mod_n",
                    MosPolarity::Pmos => "mod_p",
                };
                let count = model_names
                    .iter()
                    .filter(|(m, _)| m.polarity == model.polarity)
                    .count();
                let name = if count == 0 {
                    base.to_string()
                } else {
                    format!("{base}{count}")
                };
                model_names.push((*model, name));
            }
        }
    }
    for (m, name) in &model_names {
        let kind = match m.polarity {
            MosPolarity::Nmos => "NMOS",
            MosPolarity::Pmos => "PMOS",
        };
        out.push_str(&format!(
            ".model {name} {kind} (level=1 vto={:.12e} kp={:.12e} lambda={:.12e} gamma={:.12e} \
             phi={:.12e} cox={:.12e} cgso={:.12e} cgdo={:.12e} cj={:.12e})\n",
            m.vt0, m.kp, m.lambda, m.gamma, m.phi, m.cox, m.cgso, m.cgdo, m.cj
        ));
    }
    let nn = |n: crate::netlist::NodeId| circuit.node_name(n).to_string();
    // SPICE identifies element type by the first letter: prefix names that
    // do not already start with the right one.
    let tagged = |prefix: char, name: &str| -> String {
        if name
            .chars()
            .next()
            .is_some_and(|c| c.eq_ignore_ascii_case(&prefix))
        {
            name.to_string()
        } else {
            format!("{prefix}{name}")
        }
    };
    // Capacitors auto-generated by `add_mosfet` are re-created on parse;
    // emit only the explicit ones.
    let mosfet_names: Vec<&str> = circuit
        .elements()
        .iter()
        .filter_map(|e| match e {
            Element::Mosfet { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    let is_device_cap = |name: &str| -> bool {
        for suffix in [".cgs", ".cgd", ".cgb", ".cdb", ".csb"] {
            if let Some(base) = name.strip_suffix(suffix) {
                if mosfet_names.contains(&base) {
                    return true;
                }
            }
        }
        false
    };
    for e in circuit.elements() {
        match e {
            Element::Resistor { name, a, b, ohms } => {
                out.push_str(&format!(
                    "{} {} {} {ohms:.12e}\n",
                    tagged('R', name),
                    nn(*a),
                    nn(*b)
                ));
            }
            Element::Capacitor { name, a, b, farads } => {
                if is_device_cap(name) {
                    continue;
                }
                out.push_str(&format!(
                    "{} {} {} {farads:.12e}\n",
                    tagged('C', name),
                    nn(*a),
                    nn(*b)
                ));
            }
            Element::VSource {
                name,
                pos,
                neg,
                wave,
            } => {
                out.push_str(&format!(
                    "{} {} {} {}\n",
                    tagged('V', name),
                    nn(*pos),
                    nn(*neg),
                    fmt_wave(wave)
                ));
            }
            Element::ISource {
                name,
                pos,
                neg,
                wave,
            } => {
                out.push_str(&format!(
                    "{} {} {} {}\n",
                    tagged('I', name),
                    nn(*pos),
                    nn(*neg),
                    fmt_wave(wave)
                ));
            }
            Element::LinearVccs {
                name,
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                gm,
            } => {
                out.push_str(&format!(
                    "{} {} {} {} {} {gm:.12e}\n",
                    tagged('G', name),
                    nn(*out_p),
                    nn(*out_n),
                    nn(*ctrl_p),
                    nn(*ctrl_n)
                ));
            }
            Element::TableVccs {
                name,
                out_p,
                out_n,
                ctrl,
                table,
            } => {
                out.push_str(&format!(
                    "* table-vccs {name}: out=({},{}) ctrl={} grid={}x{} (non-standard, omitted)\n",
                    nn(*out_p),
                    nn(*out_n),
                    nn(*ctrl),
                    table.x_axis().len(),
                    table.y_axis().len()
                ));
            }
            Element::Mosfet {
                name,
                d,
                g,
                s,
                b,
                model,
                w,
                l,
            } => {
                let mname = &model_names
                    .iter()
                    .find(|(m, _)| m == model)
                    .expect("model collected above")
                    .1;
                out.push_str(&format!(
                    "{} {} {} {} {} {mname} W={w:.12e} L={l:.12e}\n",
                    tagged('M', name),
                    nn(*d),
                    nn(*g),
                    nn(*s),
                    nn(*b)
                ));
            }
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{dc_operating_point, NewtonOptions};

    #[test]
    fn parse_rc_divider_and_solve() {
        let deck = "\
test divider
V1 in 0 DC 3.0
R1 in mid 2k
R2 mid 0 1k
.end
";
        let p = parse_deck(deck).unwrap();
        assert_eq!(p.title, "test divider");
        let sol = dc_operating_point(&p.circuit, &NewtonOptions::default(), None).unwrap();
        let mid = p.circuit.find_node("mid").unwrap();
        assert!((sol.voltage(mid) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn continuation_and_comments() {
        let deck = "\
continuation test
* full-line comment
V1 a 0
+ DC 2.0 ; inline comment
R1 a 0 1k $ another comment
.end
";
        let p = parse_deck(deck).unwrap();
        assert_eq!(p.circuit.element_count(), 2);
    }

    #[test]
    fn pwl_and_pulse_sources() {
        let deck = "\
sources
V1 a 0 PWL(0 0 1n 1.0 2n 0)
V2 b 0 PULSE(0 1.2 1n 50p 50p 200p)
R1 a 0 1k
R2 b 0 1k
.tran 1p 5n
.end
";
        let p = parse_deck(deck).unwrap();
        assert!(p.tran.is_some());
        let t = p.tran.unwrap();
        assert!((t.t_stop - 5e-9).abs() < 1e-21);
        assert!((t.dt - 1e-12).abs() < 1e-24);
        match p.circuit.element(p.circuit.find_element("V1").unwrap()) {
            Element::VSource { wave, .. } => {
                assert!((wave.eval(0.5e-9) - 0.5).abs() < 1e-9);
            }
            _ => panic!(),
        }
        match p.circuit.element(p.circuit.find_element("V2").unwrap()) {
            Element::VSource { wave, .. } => {
                // peak during the pulse width
                assert!((wave.eval(1.15e-9) - 1.2).abs() < 1e-9);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn mosfet_with_model() {
        let deck = "\
inv
.model nch NMOS (level=1 vto=0.32 kp=2.5e-4 lambda=0.15 gamma=0.4 phi=0.7)
.model pch PMOS (level=1 vto=-0.34 kp=1.0e-4)
Vdd vdd 0 DC 1.2
Vin in 0 DC 0
Mn out in 0 0 nch W=0.42u L=0.13u
Mp out in vdd vdd pch W=0.64u L=0.13u
.end
";
        let p = parse_deck(deck).unwrap();
        let sol = dc_operating_point(&p.circuit, &NewtonOptions::default(), None).unwrap();
        let out = p.circuit.find_node("out").unwrap();
        assert!((sol.voltage(out) - 1.2).abs() < 0.02);
    }

    #[test]
    fn model_defined_after_use() {
        let deck = "\
order
Vd d 0 DC 1.0
M1 d d 0 0 nch W=1u L=0.13u
.model nch NMOS (vto=0.3 kp=2e-4)
.end
";
        assert!(parse_deck(deck).is_ok());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let deck = "\
title
R1 a 0 notanumber
.end
";
        match parse_deck(deck) {
            Err(Error::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_element_rejected() {
        let deck = "title\nQ1 a b c model\n.end\n";
        assert!(parse_deck(deck).is_err());
    }

    #[test]
    fn dc_sweep_statement() {
        let deck = "\
sweep
V1 a 0 DC 0
R1 a 0 1k
.dc V1 0 1.2 0.1
.end
";
        let p = parse_deck(deck).unwrap();
        assert_eq!(p.dc_sweeps.len(), 1);
        assert_eq!(p.dc_sweeps[0].0, "V1");
    }

    #[test]
    fn roundtrip_write_parse() {
        let deck = "\
rt
.model nch NMOS (level=1 vto=0.32 kp=2.5e-4 lambda=0.15 gamma=0.4 phi=0.7 cox=0.012 cgso=3e-10 cgdo=3e-10 cj=8e-10)
Vdd vdd 0 DC 1.2
Vin in 0 PULSE(0 1.2 1n 50p 50p 200p)
Mn out in 0 0 nch W=0.42u L=0.13u
R1 out 0 10k
C1 out 0 5f
.end
";
        let p1 = parse_deck(deck).unwrap();
        let emitted = write_deck(&p1.circuit, "rt");
        let p2 = parse_deck(&emitted).unwrap();
        // Same element count (mosfet caps regenerate identically).
        assert_eq!(p1.circuit.element_count(), p2.circuit.element_count());
        // Same DC solution.
        let s1 = dc_operating_point(&p1.circuit, &NewtonOptions::default(), None).unwrap();
        let s2 = dc_operating_point(&p2.circuit, &NewtonOptions::default(), None).unwrap();
        let o1 = p1.circuit.find_node("out").unwrap();
        let o2 = p2.circuit.find_node("out").unwrap();
        assert!((s1.voltage(o1) - s2.voltage(o2)).abs() < 1e-9);
    }
}
