//! Pluggable compute backends for the K-lane batched solver kernels.
//!
//! [`crate::sweep::BatchedSweep`] carries `K` value vectors through
//! assembly, numeric (re)factorization, and triangular solves in
//! struct-of-arrays layout; this module is the seam that decides *how*
//! those planes are processed. Two CPU implementations exist today:
//!
//! * [`ScalarBackend`] — lane-outermost loops, replaying the serial kernel
//!   per lane (cache-friendly, the reference implementation), and
//! * [`BatchedBackend`] — lane-innermost loops, so each matrix slot's `K`
//!   values stream contiguously and auto-vectorize.
//!
//! Both nestings execute the identical per-lane operation sequence, so
//! they produce **bit-identical** results — switching `--backend` can
//! never change a report byte. The [`ComputeBackend`] trait is
//! object-safe and sized so a GPU batched-LU (one kernel launch per
//! refactor/solve over all lanes) could slot in behind the same five
//! methods later.

use serde::{Deserialize, Serialize};

use crate::sparse::{BatchedSparseLu, SparseMatrix};

/// Which batched compute backend the sweep kernels run on. Mirrors
/// [`crate::solver::SolverKind`]: a runtime-selectable escape hatch,
/// defaulting to the reference implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// Lane-outermost scalar replay of the serial kernels (reference).
    #[default]
    Scalar,
    /// Lane-innermost SIMD-friendly loops over the same SoA planes.
    Batched,
}

/// The compute seam of the batched solver stack: numeric factorization and
/// triangular solves over K-lane struct-of-arrays value planes.
///
/// Factorization methods process **all** lanes even when one fails (the
/// failing lane's factors go non-finite but stay contained) and report the
/// smallest failing lane index, so every implementation fails
/// identically and the caller's cold-refactor fallback is deterministic.
pub trait ComputeBackend: Sync + Send {
    /// Human-readable backend name (diagnostics, bench labels).
    fn name(&self) -> &'static str;

    /// Factor every lane of `lu` in place (per-lane partial pivoting).
    ///
    /// # Errors
    ///
    /// `Err(lane)` with the smallest lane whose pivot column collapsed.
    fn dense_factor(&self, lu: &mut BatchedDenseLu) -> std::result::Result<(), usize>;

    /// Solve every lane against the SoA right-hand-side plane `b`
    /// (`b[row * k + lane]`), writing the SoA solution plane `x`.
    fn dense_solve(&self, lu: &BatchedDenseLu, b: &[f64], x: &mut [f64]);

    /// Numerically refactor every lane of `lu` from the SoA value plane
    /// `vals` sharing `a`'s pattern, replaying the stored pivot sequence.
    ///
    /// # Errors
    ///
    /// `Err(lane)` with the smallest lane whose stored pivot became
    /// numerically zero; the caller cold-factors that lane for fresh
    /// pivots and retries.
    fn sparse_refactor(
        &self,
        lu: &mut BatchedSparseLu,
        a: &SparseMatrix,
        vals: &[f64],
    ) -> std::result::Result<(), usize>;

    /// Solve every lane against the SoA plane `b`, writing `x`.
    fn sparse_solve(&self, lu: &mut BatchedSparseLu, b: &[f64], x: &mut [f64]);
}

/// Lane-outermost reference backend (serial kernel replayed per lane).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

/// Lane-innermost SIMD-friendly backend over the same SoA planes.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchedBackend;

impl ComputeBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn dense_factor(&self, lu: &mut BatchedDenseLu) -> std::result::Result<(), usize> {
        lu.factor_outer()
    }

    fn dense_solve(&self, lu: &BatchedDenseLu, b: &[f64], x: &mut [f64]) {
        lu.solve_outer(b, x);
    }

    fn sparse_refactor(
        &self,
        lu: &mut BatchedSparseLu,
        a: &SparseMatrix,
        vals: &[f64],
    ) -> std::result::Result<(), usize> {
        lu.refactor_outer(a, vals)
    }

    fn sparse_solve(&self, lu: &mut BatchedSparseLu, b: &[f64], x: &mut [f64]) {
        lu.solve_outer(b, x);
    }
}

impl ComputeBackend for BatchedBackend {
    fn name(&self) -> &'static str {
        "batched"
    }

    fn dense_factor(&self, lu: &mut BatchedDenseLu) -> std::result::Result<(), usize> {
        lu.factor_inner()
    }

    fn dense_solve(&self, lu: &BatchedDenseLu, b: &[f64], x: &mut [f64]) {
        lu.solve_inner(b, x);
    }

    fn sparse_refactor(
        &self,
        lu: &mut BatchedSparseLu,
        a: &SparseMatrix,
        vals: &[f64],
    ) -> std::result::Result<(), usize> {
        lu.refactor_inner(a, vals)
    }

    fn sparse_solve(&self, lu: &mut BatchedSparseLu, b: &[f64], x: &mut [f64]) {
        lu.solve_inner(b, x);
    }
}

/// Resolve a [`BackendKind`] to its (stateless) implementation.
pub fn backend_for(kind: BackendKind) -> &'static dyn ComputeBackend {
    match kind {
        BackendKind::Scalar => &ScalarBackend,
        BackendKind::Batched => &BatchedBackend,
    }
}

/// K-lane dense LU with per-lane partial pivoting over one SoA data plane.
///
/// Layout: `data[(i * n + j) * k + lane]`, per-lane permutation
/// `perm[lane * n + i]`. The data plane doubles as the Jacobian stamping
/// area — the sweep copies its base plane in, stamps non-linear
/// contributions per lane, then factors in place, exactly mirroring the
/// serial [`crate::linalg::LuFactors`] elimination per lane (minus the
/// `m != 0.0` skip guard, which only ever skips exact no-op updates).
#[derive(Debug, Clone)]
pub struct BatchedDenseLu {
    n: usize,
    k: usize,
    data: Vec<f64>,
    perm: Vec<usize>,
}

/// Pivots below this are numerically singular (same cutoff as the serial
/// dense LU).
const PIVOT_MIN: f64 = 1e-300;

impl BatchedDenseLu {
    /// Zeroed `n × n × k` plane with identity permutations.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k > 0, "batched factorization needs at least one lane");
        Self {
            n,
            k,
            data: vec![0.0; n * n * k],
            perm: vec![0; n * k],
        }
    }

    /// Dimension of each lane's system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Lane count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The SoA data plane (`data[(i * n + j) * k + lane]`) — valid matrix
    /// entries before a factor call, L/U factors afterwards.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable SoA data plane, for loading matrix values and stamping.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    fn reset_perm(&mut self) {
        for lane in 0..self.k {
            for i in 0..self.n {
                self.perm[lane * self.n + i] = i;
            }
        }
    }

    /// Lane-outer factorization: per-lane partial-pivoted elimination, one
    /// full lane at a time. All lanes run to completion; the smallest
    /// failing lane (if any) is reported, its factors left non-finite but
    /// contained.
    ///
    /// # Errors
    ///
    /// `Err(lane)` with the smallest numerically singular lane.
    pub fn factor_outer(&mut self) -> std::result::Result<(), usize> {
        self.reset_perm();
        let (n, k) = (self.n, self.k);
        let mut fail = usize::MAX;
        for lane in 0..k {
            for kk in 0..n {
                let mut p = kk;
                let mut best = self.data[(kk * n + kk) * k + lane].abs();
                for i in (kk + 1)..n {
                    let v = self.data[(i * n + kk) * k + lane].abs();
                    if v > best {
                        best = v;
                        p = i;
                    }
                }
                if best < PIVOT_MIN && lane < fail {
                    fail = lane;
                }
                if p != kk {
                    for j in 0..n {
                        self.data
                            .swap((kk * n + j) * k + lane, (p * n + j) * k + lane);
                    }
                    self.perm.swap(lane * n + kk, lane * n + p);
                }
                let pivot = self.data[(kk * n + kk) * k + lane];
                for i in (kk + 1)..n {
                    let m = self.data[(i * n + kk) * k + lane] / pivot;
                    self.data[(i * n + kk) * k + lane] = m;
                    for j in (kk + 1)..n {
                        self.data[(i * n + j) * k + lane] -= m * self.data[(kk * n + j) * k + lane];
                    }
                }
            }
        }
        if fail == usize::MAX {
            Ok(())
        } else {
            Err(fail)
        }
    }

    /// Lane-inner factorization: identical per-lane arithmetic to
    /// [`BatchedDenseLu::factor_outer`] with the elimination-update loops
    /// lane-innermost. Pivot search and row swaps stay per-lane (the pivot
    /// row is data-dependent), but the O(n³) update sweep streams lanes
    /// contiguously.
    ///
    /// # Errors
    ///
    /// As [`BatchedDenseLu::factor_outer`].
    pub fn factor_inner(&mut self) -> std::result::Result<(), usize> {
        self.reset_perm();
        let (n, k) = (self.n, self.k);
        let mut fail = usize::MAX;
        for kk in 0..n {
            for lane in 0..k {
                let mut p = kk;
                let mut best = self.data[(kk * n + kk) * k + lane].abs();
                for i in (kk + 1)..n {
                    let v = self.data[(i * n + kk) * k + lane].abs();
                    if v > best {
                        best = v;
                        p = i;
                    }
                }
                if best < PIVOT_MIN && lane < fail {
                    fail = lane;
                }
                if p != kk {
                    for j in 0..n {
                        self.data
                            .swap((kk * n + j) * k + lane, (p * n + j) * k + lane);
                    }
                    self.perm.swap(lane * n + kk, lane * n + p);
                }
            }
            for i in (kk + 1)..n {
                let mcol = (i * n + kk) * k;
                let pcol = (kk * n + kk) * k;
                for lane in 0..k {
                    self.data[mcol + lane] /= self.data[pcol + lane];
                }
                for j in (kk + 1)..n {
                    let dst = (i * n + j) * k;
                    let src = (kk * n + j) * k;
                    for lane in 0..k {
                        self.data[dst + lane] -= self.data[mcol + lane] * self.data[src + lane];
                    }
                }
            }
        }
        if fail == usize::MAX {
            Ok(())
        } else {
            Err(fail)
        }
    }

    /// Lane-outer solve over SoA planes (`b[row * k + lane]`), using `x`
    /// in place as the substitution workspace like the serial kernel.
    ///
    /// # Panics
    ///
    /// Panics on plane-dimension mismatch.
    pub fn solve_outer(&self, b: &[f64], x: &mut [f64]) {
        let (n, k) = (self.n, self.k);
        assert_eq!(b.len(), n * k);
        assert_eq!(x.len(), n * k);
        for lane in 0..k {
            for i in 0..n {
                x[i * k + lane] = b[self.perm[lane * n + i] * k + lane];
            }
            for i in 1..n {
                for j in 0..i {
                    x[i * k + lane] -= self.data[(i * n + j) * k + lane] * x[j * k + lane];
                }
            }
            for i in (0..n).rev() {
                for j in (i + 1)..n {
                    x[i * k + lane] -= self.data[(i * n + j) * k + lane] * x[j * k + lane];
                }
                x[i * k + lane] /= self.data[(i * n + i) * k + lane];
            }
        }
    }

    /// Lane-inner solve: identical per-lane arithmetic to
    /// [`BatchedDenseLu::solve_outer`] with the lane loop innermost.
    ///
    /// # Panics
    ///
    /// Panics on plane-dimension mismatch.
    pub fn solve_inner(&self, b: &[f64], x: &mut [f64]) {
        let (n, k) = (self.n, self.k);
        assert_eq!(b.len(), n * k);
        assert_eq!(x.len(), n * k);
        for i in 0..n {
            for lane in 0..k {
                x[i * k + lane] = b[self.perm[lane * n + i] * k + lane];
            }
        }
        for i in 1..n {
            for j in 0..i {
                let a = (i * n + j) * k;
                for lane in 0..k {
                    x[i * k + lane] -= self.data[a + lane] * x[j * k + lane];
                }
            }
        }
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                let a = (i * n + j) * k;
                for lane in 0..k {
                    x[i * k + lane] -= self.data[a + lane] * x[j * k + lane];
                }
            }
            let d = (i * n + i) * k;
            for lane in 0..k {
                x[i * k + lane] /= self.data[d + lane];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::DenseMatrix;

    fn load_lanes(lu: &mut BatchedDenseLu, mats: &[DenseMatrix]) {
        let (n, k) = (lu.n(), lu.k());
        assert_eq!(mats.len(), k);
        let data = lu.data_mut();
        for (lane, m) in mats.iter().enumerate() {
            for i in 0..n {
                for j in 0..n {
                    data[(i * n + j) * k + lane] = m[(i, j)];
                }
            }
        }
    }

    fn lane_mats(k: usize) -> Vec<DenseMatrix> {
        (0..k)
            .map(|lane| {
                let s = 1.0 + 0.11 * lane as f64;
                DenseMatrix::from_rows(&[
                    &[0.0, 1.0 * s, 0.5],
                    &[2.0 * s, -1.0, 0.0],
                    &[0.5, 0.0, 3.0 * s],
                ])
            })
            .collect()
    }

    #[test]
    fn batched_dense_matches_serial_and_nestings_bitwise() {
        let k = 4;
        let mats = lane_mats(k);
        let b_lane = [1.0, -2.0, 0.5];
        let mut b_plane = vec![0.0; 3 * k];
        for i in 0..3 {
            for lane in 0..k {
                b_plane[i * k + lane] = b_lane[i];
            }
        }
        let mut outer = BatchedDenseLu::new(3, k);
        let mut inner = BatchedDenseLu::new(3, k);
        load_lanes(&mut outer, &mats);
        load_lanes(&mut inner, &mats);
        outer.factor_outer().unwrap();
        inner.factor_inner().unwrap();
        let mut x_outer = vec![0.0; 3 * k];
        let mut x_inner = vec![0.0; 3 * k];
        outer.solve_outer(&b_plane, &mut x_outer);
        inner.solve_inner(&b_plane, &mut x_inner);
        for (o, i) in x_outer.iter().zip(&x_inner) {
            assert_eq!(o.to_bits(), i.to_bits(), "nestings diverge: {o} vs {i}");
        }
        for (lane, m) in mats.iter().enumerate() {
            let want = m.solve(&b_lane).unwrap();
            for i in 0..3 {
                let got = x_outer[i * k + lane];
                assert!(
                    (got - want[i]).abs() < 1e-12,
                    "lane {lane} row {i}: {got} vs {}",
                    want[i]
                );
            }
        }
    }

    #[test]
    fn batched_dense_reports_min_singular_lane() {
        let k = 3;
        let mut mats = lane_mats(k);
        mats[1] = DenseMatrix::zeros(3, 3);
        mats[2] = DenseMatrix::zeros(3, 3);
        let mut outer = BatchedDenseLu::new(3, k);
        let mut inner = BatchedDenseLu::new(3, k);
        load_lanes(&mut outer, &mats);
        load_lanes(&mut inner, &mats);
        assert_eq!(outer.factor_outer(), Err(1));
        assert_eq!(inner.factor_inner(), Err(1));
    }

    #[test]
    fn backend_for_resolves_names() {
        assert_eq!(backend_for(BackendKind::Scalar).name(), "scalar");
        assert_eq!(backend_for(BackendKind::Batched).name(), "batched");
        assert_eq!(BackendKind::default(), BackendKind::Scalar);
    }
}
