//! Junction diode model.
//!
//! The clamp diodes in I/O cells and the antenna diodes on long victim
//! nets are the first non-MOS nonlinearity a real deck brings in. The
//! model is the Shockley equation with a linearized extension above a
//! fixed exponent cap, so Newton iterates far from the solution can never
//! overflow to `inf`/`NaN` — the same robustness trick production
//! simulators use (SPICE3's `EXPLIM`).

use serde::{Deserialize, Serialize};

/// Thermal voltage kT/q at 300 K (V).
pub const VT_300K: f64 = 0.025851;

/// Exponent cap for the Shockley exponential; beyond `vd/ (n·Vt) > EXP_CAP`
/// the I–V curve continues linearly with matching slope (C¹ continuous).
const EXP_CAP: f64 = 40.0;

/// Junction diode model card (`.model <name> d is=... n=... cj0=...`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiodeModel {
    /// Saturation current (A); must be positive.
    pub is: f64,
    /// Emission coefficient (ideality factor); must be positive.
    pub n: f64,
    /// Zero-bias junction capacitance (F), stamped as a constant explicit
    /// capacitor across the junction; non-negative.
    pub cj0: f64,
}

impl Default for DiodeModel {
    fn default() -> Self {
        Self {
            is: 1e-14,
            n: 1.0,
            cj0: 0.0,
        }
    }
}

/// Diode current and small-signal conductance at one bias point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeEval {
    /// Anode→cathode current (A).
    pub id: f64,
    /// `d(id)/d(vd)` (S).
    pub gd: f64,
}

impl DiodeModel {
    /// Evaluate at junction voltage `vd = V(anode) − V(cathode)`.
    ///
    /// Overflow-safe: above the exponent cap the exponential is replaced by
    /// its tangent line, so `id`/`gd` stay finite for any finite `vd`.
    pub fn eval(&self, vd: f64) -> DiodeEval {
        let vt = self.n * VT_300K;
        let x = vd / vt;
        if x > EXP_CAP {
            let e = EXP_CAP.exp();
            DiodeEval {
                id: self.is * (e * (1.0 + (x - EXP_CAP)) - 1.0),
                gd: self.is * e / vt,
            }
        } else {
            let e = x.exp();
            DiodeEval {
                id: self.is * (e - 1.0),
                gd: self.is * e / vt,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_bias_matches_shockley() {
        let m = DiodeModel::default();
        let e = m.eval(0.6);
        let want = 1e-14 * ((0.6 / VT_300K).exp() - 1.0);
        assert!((e.id - want).abs() < 1e-9 * want.abs());
        assert!(e.gd > 0.0);
    }

    #[test]
    fn reverse_bias_saturates() {
        let m = DiodeModel::default();
        let e = m.eval(-5.0);
        assert!((e.id + m.is).abs() < 1e-20);
        assert!(e.gd >= 0.0);
    }

    #[test]
    fn cap_keeps_extreme_bias_finite_and_continuous() {
        let m = DiodeModel::default();
        for vd in [2.0, 10.0, 1e3, 1e6] {
            let e = m.eval(vd);
            assert!(e.id.is_finite() && e.gd.is_finite(), "vd={vd}");
        }
        // C1 continuity at the cap: value and slope match across it.
        let vcap = EXP_CAP * VT_300K;
        let below = m.eval(vcap - 1e-9);
        let above = m.eval(vcap + 1e-9);
        assert!((below.id - above.id).abs() < 1e-6 * above.id.abs());
        assert!((below.gd - above.gd).abs() < 1e-6 * above.gd.abs());
    }

    #[test]
    fn emission_coefficient_scales_slope() {
        let n2 = DiodeModel {
            n: 2.0,
            ..DiodeModel::default()
        };
        let n1 = DiodeModel::default();
        // At the same forward bias, n=2 conducts much less.
        assert!(n2.eval(0.6).id < 1e-3 * n1.eval(0.6).id);
    }
}
