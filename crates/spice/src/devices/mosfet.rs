//! Level-1 (Shichman–Hodges) MOSFET model with smoothed turn-on.
//!
//! The model is the classic square-law device with channel-length modulation
//! and body effect, with one numerical refinement: the overdrive voltage is
//! passed through a softplus with a small (10 mV) temperature-like scale, so
//! current and both derivatives are smooth across the cutoff boundary. This
//! is what lets Newton–Raphson converge reliably on stacked-transistor cells
//! without SPICE's full battery of continuation hacks, while leaving the
//! strong-inversion characteristics (the non-linearity the paper's
//! macromodel feeds on) essentially untouched.

use serde::{Deserialize, Serialize};

/// Channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Level-1 model card (per-technology, per-polarity).
///
/// Units: SI. `vt0` is signed like in SPICE (negative for PMOS).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosfetModel {
    /// Channel polarity.
    pub polarity: MosPolarity,
    /// Zero-bias threshold voltage (V); negative for PMOS.
    pub vt0: f64,
    /// Transconductance parameter µ·Cox (A/V²).
    pub kp: f64,
    /// Channel-length modulation (1/V).
    pub lambda: f64,
    /// Body-effect coefficient (√V).
    pub gamma: f64,
    /// Surface potential 2φF (V).
    pub phi: f64,
    /// Gate-oxide capacitance per area (F/m²).
    pub cox: f64,
    /// Gate-source overlap capacitance per width (F/m).
    pub cgso: f64,
    /// Gate-drain overlap capacitance per width (F/m).
    pub cgdo: f64,
    /// Drain/source junction capacitance per width (F/m).
    pub cj: f64,
}

/// Smoothing scale for the cutoff transition (V).
const SOFT_VOV: f64 = 0.010;

/// Evaluated device currents and small-signal derivatives, in the *internal*
/// NMOS-normalized, source/drain-ordered frame (see [`MosfetModel::eval`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetEval {
    /// Drain current (A), flowing drain→source internally.
    pub id: f64,
    /// ∂id/∂vgs (S).
    pub gm: f64,
    /// ∂id/∂vds (S).
    pub gds: f64,
    /// ∂id/∂vbs (S).
    pub gmb: f64,
}

impl MosfetModel {
    /// Effective threshold voltage with body effect, in NMOS-normalized
    /// voltages (`vbs <= 0` in normal operation).
    fn vt_eff(&self, vbs: f64) -> (f64, f64) {
        let vt0 = self.vt0.abs();
        if self.gamma == 0.0 {
            return (vt0, 0.0);
        }
        let arg = (self.phi - vbs).max(1e-3);
        let vt = vt0 + self.gamma * (arg.sqrt() - self.phi.sqrt());
        // dvt/dvbs = -gamma / (2 sqrt(phi - vbs))
        let dvt_dvbs = -self.gamma / (2.0 * arg.sqrt());
        (vt, dvt_dvbs)
    }

    /// Evaluate the NMOS-normalized model with `vds >= 0` assumed.
    /// Callers must handle polarity and source/drain swapping (see
    /// [`MosfetModel::eval`]).
    fn eval_normalized(&self, vgs: f64, vds: f64, vbs: f64, w_over_l: f64) -> MosfetEval {
        debug_assert!(vds >= 0.0);
        let (vt, dvt_dvbs) = self.vt_eff(vbs);
        let vov_raw = vgs - vt;
        // Softplus smoothing of the overdrive: vov = s*ln(1 + exp(raw/s)).
        let s = SOFT_VOV;
        let (vov, dvov) = if vov_raw > 40.0 * s {
            (vov_raw, 1.0)
        } else if vov_raw < -40.0 * s {
            // exp underflows; keep an explicit tiny tail for smoothness.
            (s * (vov_raw / s).exp(), (vov_raw / s).exp())
        } else {
            let e = (vov_raw / s).exp();
            (s * (1.0 + e).ln(), e / (1.0 + e))
        };
        let beta = self.kp * w_over_l;
        let clm = 1.0 + self.lambda * vds;
        let (id, gm_v, gds_v);
        if vds < vov {
            // Triode region.
            let core = (vov - 0.5 * vds) * vds;
            id = beta * core * clm;
            gm_v = beta * vds * clm; // ∂id/∂vov
            gds_v = beta * ((vov - vds) * clm + core * self.lambda);
        } else {
            // Saturation.
            let core = 0.5 * vov * vov;
            id = beta * core * clm;
            gm_v = beta * vov * clm;
            gds_v = beta * core * self.lambda;
        }
        // Chain rule through the softplus and the body effect.
        let gm = gm_v * dvov;
        let gmb = gm_v * dvov * (-dvt_dvbs);
        MosfetEval {
            id,
            gm,
            gds: gds_v.max(1e-12),
            gmb,
        }
    }

    /// Evaluate terminal current and derivatives for arbitrary terminal
    /// voltages `(vd, vg, vs, vb)` (volts, absolute).
    ///
    /// Returns the current flowing *into the drain terminal* (out of the
    /// source terminal) along with derivatives w.r.t. the four terminal
    /// voltages, handling PMOS polarity and drain/source inversion
    /// internally.
    pub fn eval_terminal(
        &self,
        vd: f64,
        vg: f64,
        vs: f64,
        vb: f64,
        w: f64,
        l: f64,
    ) -> TerminalEval {
        let w_over_l = w / l;
        // Polarity transform: PMOS evaluates as NMOS on negated voltages;
        // currents negate back, derivatives are unchanged (sign² = 1).
        let sign = match self.polarity {
            MosPolarity::Nmos => 1.0,
            MosPolarity::Pmos => -1.0,
        };
        let (ud, ug, us, ub) = (sign * vd, sign * vg, sign * vs, sign * vb);
        // Source/drain swap so the normalized model sees vds >= 0.
        let swapped = ud < us;
        let (td, ts) = if swapped { (us, ud) } else { (ud, us) };
        let vgs = ug - ts;
        let vds = td - ts;
        let vbs = ub - ts;
        let e = self.eval_normalized(vgs, vds, vbs, w_over_l);
        // Map normalized derivatives back to terminal derivatives.
        // id_terminal (into drain terminal) = sign * (swapped ? -e.id : e.id)
        let flip = if swapped { -1.0 } else { 1.0 };
        let id = sign * flip * e.id;
        // In the normalized frame: di/dug = gm, di/dtd = gds, di/dub = gmb,
        // di/dts = -(gm + gds + gmb).
        let d_dug = flip * e.gm;
        let d_dtd = flip * e.gds;
        let d_dub = flip * e.gmb;
        let d_dts = -flip * (e.gm + e.gds + e.gmb);
        // td/ts map to (ud, us) or (us, ud) depending on swap; u = sign*v so
        // d/dv = sign * d/du, and overall current picked up another `sign`,
        // so the conductances are polarity-invariant.
        let (d_dud, d_dus) = if swapped {
            (d_dts, d_dtd)
        } else {
            (d_dtd, d_dts)
        };
        TerminalEval {
            id,
            gd: d_dud,
            gg: d_dug,
            gs: d_dus,
            gb: d_dub,
        }
    }

    /// Lumped (bias-independent) device capacitances for a `w × l` instance.
    ///
    /// Returns `(cgs, cgd, cgb, cdb, csb)` in farads. The channel charge is
    /// split 50/50 between source and drain on top of the overlap terms — a
    /// deliberate constant-capacitance simplification (documented in
    /// DESIGN.md) that keeps the golden simulator's C matrix constant.
    pub fn capacitances(&self, w: f64, l: f64) -> (f64, f64, f64, f64, f64) {
        let c_channel = self.cox * w * l;
        let cgs = 0.5 * c_channel + self.cgso * w;
        let cgd = 0.5 * c_channel + self.cgdo * w;
        let cgb = 0.1 * c_channel;
        let cdb = self.cj * w;
        let csb = self.cj * w;
        (cgs, cgd, cgb, cdb, csb)
    }
}

/// Current and conductances in terminal frame; see
/// [`MosfetModel::eval_terminal`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TerminalEval {
    /// Current into the drain terminal (A).
    pub id: f64,
    /// ∂id/∂vd (S).
    pub gd: f64,
    /// ∂id/∂vg (S).
    pub gg: f64,
    /// ∂id/∂vs (S).
    pub gs: f64,
    /// ∂id/∂vb (S).
    pub gb: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> MosfetModel {
        MosfetModel {
            polarity: MosPolarity::Nmos,
            vt0: 0.32,
            kp: 2.5e-4,
            lambda: 0.15,
            gamma: 0.4,
            phi: 0.7,
            cox: 0.012,
            cgso: 3e-10,
            cgdo: 3e-10,
            cj: 8e-10,
        }
    }

    fn pmos() -> MosfetModel {
        MosfetModel {
            polarity: MosPolarity::Pmos,
            vt0: -0.34,
            ..nmos()
        }
    }

    #[test]
    fn cutoff_current_negligible() {
        let m = nmos();
        let e = m.eval_terminal(1.2, 0.0, 0.0, 0.0, 1e-6, 0.13e-6);
        assert!(e.id.abs() < 1e-9, "cutoff current {}", e.id);
    }

    #[test]
    fn saturation_square_law() {
        let m = nmos();
        // vgs=1.2, vds=1.2 -> saturation. Compare against the closed form.
        let w = 1e-6;
        let l = 0.13e-6;
        let e = m.eval_terminal(1.2, 1.2, 0.0, 0.0, w, l);
        let vov = 1.2 - 0.32;
        let want = 0.5 * m.kp * (w / l) * vov * vov * (1.0 + m.lambda * 1.2);
        assert!(
            (e.id - want).abs() / want < 0.02,
            "id={} want={}",
            e.id,
            want
        );
    }

    #[test]
    fn triode_resistance_small_vds() {
        let m = nmos();
        let w = 1e-6;
        let l = 0.13e-6;
        let vds = 1e-3;
        let e = m.eval_terminal(vds, 1.2, 0.0, 0.0, w, l);
        // g ≈ kp W/L vov at vds→0.
        let g_expect = m.kp * (w / l) * (1.2 - 0.32);
        let g_meas = e.id / vds;
        assert!((g_meas - g_expect).abs() / g_expect < 0.05);
    }

    #[test]
    fn pmos_mirror_symmetry() {
        let n = nmos();
        let p = MosfetModel {
            vt0: -0.32,
            ..pmos()
        };
        let en = n.eval_terminal(0.6, 1.2, 0.0, 0.0, 1e-6, 0.13e-6);
        // Mirrored PMOS: all voltages negated.
        let ep = p.eval_terminal(-0.6, -1.2, 0.0, 0.0, 1e-6, 0.13e-6);
        assert!((en.id + ep.id).abs() < 1e-12 * en.id.abs().max(1.0));
        assert!((en.gd - ep.gd).abs() < 1e-9);
    }

    #[test]
    fn source_drain_swap_antisymmetry() {
        let m = nmos();
        // Exchanging the roles of the two diffusions (same gate/bulk
        // potentials, channel voltage reversed) must flip the current sign.
        let e_fwd = m.eval_terminal(0.5, 1.2, 0.0, 0.0, 1e-6, 0.13e-6);
        let e_rev = m.eval_terminal(0.0, 1.2, 0.5, 0.0, 1e-6, 0.13e-6);
        assert!(
            (e_fwd.id + e_rev.id).abs() < 1e-9,
            "fwd={} rev={}",
            e_fwd.id,
            e_rev.id
        );
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let m = nmos();
        let w = 0.42e-6;
        let l = 0.13e-6;
        let base = (0.7, 0.9, 0.1, 0.0);
        let e = m.eval_terminal(base.0, base.1, base.2, base.3, w, l);
        let h = 1e-7;
        let fd = |dvd: f64, dvg: f64, dvs: f64, dvb: f64| {
            let ep = m.eval_terminal(base.0 + dvd, base.1 + dvg, base.2 + dvs, base.3 + dvb, w, l);
            let em = m.eval_terminal(base.0 - dvd, base.1 - dvg, base.2 - dvs, base.3 - dvb, w, l);
            (ep.id - em.id) / (2.0 * h)
        };
        assert!((fd(h, 0.0, 0.0, 0.0) - e.gd).abs() < 1e-3 * e.gd.abs().max(1e-6));
        assert!((fd(0.0, h, 0.0, 0.0) - e.gg).abs() < 1e-3 * e.gg.abs().max(1e-6));
        assert!((fd(0.0, 0.0, h, 0.0) - e.gs).abs() < 1e-3 * e.gs.abs().max(1e-6));
        assert!((fd(0.0, 0.0, 0.0, h) - e.gb).abs() < 1e-3 * e.gb.abs().max(1e-6));
    }

    #[test]
    fn continuity_across_cutoff() {
        let m = nmos();
        // Sweep vgs through vt; current and gm must be continuous
        // (softplus smoothing).
        let mut prev: Option<TerminalEval> = None;
        let mut vgs = 0.25;
        while vgs < 0.40 {
            let e = m.eval_terminal(0.6, vgs, 0.0, 0.0, 1e-6, 0.13e-6);
            if let Some(p) = prev {
                assert!((e.id - p.id).abs() < 5e-5, "current jump at vgs={vgs}");
                assert!((e.gg - p.gg).abs() < 5e-3, "gm jump at vgs={vgs}");
            }
            prev = Some(e);
            vgs += 0.001;
        }
    }

    #[test]
    fn kcl_current_conservation() {
        // gd + gg + gs + gb == d(id)/d(common-mode) == 0.
        let m = nmos();
        let e = m.eval_terminal(0.8, 1.0, 0.2, 0.0, 1e-6, 0.13e-6);
        let sum = e.gd + e.gg + e.gs + e.gb;
        assert!(sum.abs() < 1e-9, "conductance sum {sum}");
    }

    #[test]
    fn capacitances_positive_and_scale_with_width() {
        let m = nmos();
        let (cgs1, cgd1, cgb1, cdb1, csb1) = m.capacitances(1e-6, 0.13e-6);
        let (cgs2, cgd2, _cgb2, cdb2, _csb2) = m.capacitances(2e-6, 0.13e-6);
        for c in [cgs1, cgd1, cgb1, cdb1, csb1] {
            assert!(c > 0.0);
        }
        assert!((cgs2 / cgs1 - 2.0).abs() < 1e-9);
        assert!((cgd2 / cgd1 - 2.0).abs() < 1e-9);
        assert!((cdb2 / cdb1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn body_effect_raises_threshold() {
        let m = nmos();
        // Same vgs, source lifted above bulk -> less current.
        let e0 = m.eval_terminal(1.2, 1.0, 0.0, 0.0, 1e-6, 0.13e-6);
        let e1 = m.eval_terminal(1.7, 1.5, 0.5, 0.0, 1e-6, 0.13e-6);
        assert!(e1.id < e0.id);
    }
}
