//! Device models: independent sources, MOSFETs, diodes, and table-driven
//! VCCS.

pub mod diode;
pub mod mosfet;
pub mod sources;
pub mod table2d;

pub use diode::{DiodeEval, DiodeModel};
pub use mosfet::{MosPolarity, MosfetEval, MosfetModel, TerminalEval};
pub use sources::SourceWaveform;
pub use table2d::{linspace, Table2d, TableEval};
