//! Device models: independent sources, MOSFETs, and table-driven VCCS.

pub mod mosfet;
pub mod sources;
pub mod table2d;

pub use mosfet::{MosPolarity, MosfetEval, MosfetModel, TerminalEval};
pub use sources::SourceWaveform;
pub use table2d::{linspace, Table2d, TableEval};
