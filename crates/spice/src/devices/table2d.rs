//! Two-dimensional lookup tables with bilinear interpolation.
//!
//! This is the data structure behind the paper's Eq. (1): the victim-driver
//! macromodel `I_DC = f(V_in, V_out)`, characterized on a rectangular
//! `(V_in, V_out)` grid by DC analysis and evaluated with bilinear
//! interpolation inside the dedicated noise engine. The partial derivative
//! `∂f/∂V_out` is returned analytically so Newton iterations get an exact
//! Jacobian within each grid cell.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// Rectangular-grid bilinear lookup table `z = f(x, y)`.
///
/// # Examples
///
/// ```
/// use sna_spice::devices::Table2d;
///
/// // z = x + 2y sampled on a 2x2 grid; bilinear interpolation is exact
/// // for this function.
/// let t = Table2d::new(
///     vec![0.0, 1.0],
///     vec![0.0, 1.0],
///     vec![0.0, 2.0, 1.0, 3.0], // row-major: z(x0,y0), z(x0,y1), z(x1,y0), z(x1,y1)
/// ).unwrap();
/// let e = t.eval(0.5, 0.25);
/// assert!((e.z - 1.0).abs() < 1e-12);
/// assert!((e.dz_dx - 1.0).abs() < 1e-12);
/// assert!((e.dz_dy - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2d {
    x_axis: Vec<f64>,
    y_axis: Vec<f64>,
    /// Row-major over x: `values[ix * y_axis.len() + iy]`.
    values: Vec<f64>,
}

/// Interpolated value and analytic in-cell partial derivatives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableEval {
    /// Interpolated value.
    pub z: f64,
    /// ∂z/∂x within the active cell.
    pub dz_dx: f64,
    /// ∂z/∂y within the active cell.
    pub dz_dy: f64,
}

impl Table2d {
    /// Build a table from axes and row-major values.
    ///
    /// # Errors
    ///
    /// Fails if an axis has fewer than 2 points, is not strictly increasing,
    /// or `values.len() != x.len() * y.len()`, or any value is non-finite.
    pub fn new(x_axis: Vec<f64>, y_axis: Vec<f64>, values: Vec<f64>) -> Result<Self> {
        if x_axis.len() < 2 || y_axis.len() < 2 {
            return Err(Error::InvalidTable(
                "each table axis needs at least 2 points".into(),
            ));
        }
        for axis in [&x_axis, &y_axis] {
            for w in axis.windows(2) {
                if w[1] <= w[0] {
                    return Err(Error::InvalidTable(
                        "table axis must be strictly increasing".into(),
                    ));
                }
            }
        }
        if values.len() != x_axis.len() * y_axis.len() {
            return Err(Error::InvalidTable(format!(
                "value count {} != {} x {}",
                values.len(),
                x_axis.len(),
                y_axis.len()
            )));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(Error::InvalidTable("non-finite table value".into()));
        }
        Ok(Self {
            x_axis,
            y_axis,
            values,
        })
    }

    /// Build by sampling a closure on the given axes.
    ///
    /// # Errors
    ///
    /// Same validation as [`Table2d::new`].
    pub fn from_fn<F: FnMut(f64, f64) -> f64>(
        x_axis: Vec<f64>,
        y_axis: Vec<f64>,
        mut f: F,
    ) -> Result<Self> {
        let mut values = Vec::with_capacity(x_axis.len() * y_axis.len());
        for &x in &x_axis {
            for &y in &y_axis {
                values.push(f(x, y));
            }
        }
        Self::new(x_axis, y_axis, values)
    }

    /// X axis grid.
    pub fn x_axis(&self) -> &[f64] {
        &self.x_axis
    }

    /// Y axis grid.
    pub fn y_axis(&self) -> &[f64] {
        &self.y_axis
    }

    /// Raw row-major values (`x` major, `y` minor).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Grid value at integer indices.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn at(&self, ix: usize, iy: usize) -> f64 {
        self.values[ix * self.y_axis.len() + iy]
    }

    fn locate(axis: &[f64], q: f64) -> (usize, f64) {
        // Clamp the query into the axis span, then find the cell.
        let n = axis.len();
        if q <= axis[0] {
            return (0, 0.0);
        }
        if q >= axis[n - 1] {
            return (n - 2, 1.0);
        }
        let hi = axis.partition_point(|&a| a <= q);
        let lo = hi - 1;
        let frac = (q - axis[lo]) / (axis[hi] - axis[lo]);
        (lo, frac)
    }

    /// Bilinear interpolation with analytic partial derivatives.
    ///
    /// Queries outside the grid are clamped to the boundary; the derivative
    /// reported there is the edge cell's gradient, which keeps Newton
    /// productive even on brief excursions outside the characterized range.
    pub fn eval(&self, x: f64, y: f64) -> TableEval {
        let (ix, fx) = Self::locate(&self.x_axis, x);
        let (iy, fy) = Self::locate(&self.y_axis, y);
        let dx = self.x_axis[ix + 1] - self.x_axis[ix];
        let dy = self.y_axis[iy + 1] - self.y_axis[iy];
        let z00 = self.at(ix, iy);
        let z01 = self.at(ix, iy + 1);
        let z10 = self.at(ix + 1, iy);
        let z11 = self.at(ix + 1, iy + 1);
        let z = z00 * (1.0 - fx) * (1.0 - fy)
            + z10 * fx * (1.0 - fy)
            + z01 * (1.0 - fx) * fy
            + z11 * fx * fy;
        let dz_dx = ((z10 - z00) * (1.0 - fy) + (z11 - z01) * fy) / dx;
        let dz_dy = ((z01 - z00) * (1.0 - fx) + (z11 - z10) * fx) / dy;
        TableEval { z, dz_dx, dz_dy }
    }

    /// Interpolated value only.
    pub fn value(&self, x: f64, y: f64) -> f64 {
        self.eval(x, y).z
    }

    /// Maximum absolute value over the grid.
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0_f64, |a, &v| a.max(v.abs()))
    }
}

/// Uniformly spaced axis over `[lo, hi]` with `n` points (inclusive).
///
/// # Panics
///
/// Panics if `n < 2` or `hi <= lo`.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs n >= 2");
    assert!(hi > lo, "linspace needs hi > lo");
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + i as f64 * step).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bilinear_exact() -> Table2d {
        // z = 3 + 2x - y + 0.5xy sampled on a grid; bilinear interpolation
        // reproduces any such function exactly.
        Table2d::from_fn(linspace(-1.0, 1.0, 5), linspace(0.0, 2.0, 4), |x, y| {
            3.0 + 2.0 * x - y + 0.5 * x * y
        })
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(Table2d::new(vec![0.0], vec![0.0, 1.0], vec![0.0, 0.0]).is_err());
        assert!(Table2d::new(vec![0.0, 0.0], vec![0.0, 1.0], vec![0.0; 4]).is_err());
        assert!(Table2d::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0; 3]).is_err());
        assert!(Table2d::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![f64::NAN; 4]).is_err());
        assert!(Table2d::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0; 4]).is_ok());
    }

    #[test]
    fn exact_on_bilinear_function() {
        let t = bilinear_exact();
        for &(x, y) in &[(0.3, 0.7), (-0.9, 1.9), (0.0, 0.0), (1.0, 2.0)] {
            let e = t.eval(x, y);
            let want = 3.0 + 2.0 * x - y + 0.5 * x * y;
            assert!((e.z - want).abs() < 1e-12, "at ({x},{y})");
            assert!((e.dz_dx - (2.0 + 0.5 * y)).abs() < 1e-12);
            assert!((e.dz_dy - (-1.0 + 0.5 * x)).abs() < 1e-12);
        }
    }

    #[test]
    fn clamping_outside_grid() {
        let t = bilinear_exact();
        let inside = t.eval(1.0, 2.0);
        let outside = t.eval(5.0, 9.0);
        assert!((inside.z - outside.z).abs() < 1e-12);
        // Gradient survives clamping (edge cell gradient).
        assert!(outside.dz_dx.abs() > 0.0);
    }

    #[test]
    fn grid_points_reproduced() {
        let t = bilinear_exact();
        for (ix, &x) in t.x_axis().to_vec().iter().enumerate() {
            for (iy, &y) in t.y_axis().to_vec().iter().enumerate() {
                assert!((t.value(x, y) - t.at(ix, iy)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn linspace_endpoints() {
        let a = linspace(0.0, 1.0, 11);
        assert_eq!(a.len(), 11);
        assert_eq!(a[0], 0.0);
        assert_eq!(a[10], 1.0);
        assert!((a[5] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clone_equality() {
        let t = bilinear_exact();
        let u = t.clone();
        assert_eq!(t, u);
    }

    proptest! {
        /// Interpolated values never exceed the range of the four cell
        /// corners (bilinear convexity), for in-range queries.
        #[test]
        fn prop_within_corner_bounds(x in -1.0f64..1.0, y in 0.0f64..2.0) {
            let t = bilinear_exact();
            let e = t.eval(x, y);
            let lo = t.values().iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = t.values().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(e.z >= lo - 1e-9 && e.z <= hi + 1e-9);
        }

        /// Finite differences agree with analytic in-cell derivatives.
        #[test]
        fn prop_derivative_consistency(x in -0.95f64..0.95, y in 0.05f64..1.95) {
            let t = bilinear_exact();
            let e = t.eval(x, y);
            let h = 1e-7;
            let fdx = (t.value(x + h, y) - t.value(x - h, y)) / (2.0 * h);
            let fdy = (t.value(x, y + h) - t.value(x, y - h)) / (2.0 * h);
            // Away from cell boundaries the analytic derivative matches.
            prop_assert!((fdx - e.dz_dx).abs() < 1e-3);
            prop_assert!((fdy - e.dz_dy).abs() < 1e-3);
        }
    }
}
