//! Time-dependent independent source waveforms.
//!
//! Aggressor drivers in the noise-cluster macromodel are Thevenin
//! equivalents whose EMF is a *saturated ramp* ([`SourceWaveform::Ramp`]),
//! per Dartu–Pileggi. Noise glitches arriving at the victim-driver input are
//! injected as [`SourceWaveform::TriangleGlitch`] or arbitrary
//! [`SourceWaveform::Sampled`] waveforms.

use serde::{Deserialize, Serialize};

use crate::waveform::Waveform;

/// Value of an independent voltage/current source as a function of time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceWaveform {
    /// Constant value.
    Dc(f64),
    /// Saturated ramp: `v0` until `t_start`, linear to `v1` over `t_rise`,
    /// then `v1` forever. `t_rise` must be positive.
    Ramp {
        /// Initial level.
        v0: f64,
        /// Final level.
        v1: f64,
        /// Ramp onset time (s).
        t_start: f64,
        /// 0→100 % transition time (s).
        t_rise: f64,
    },
    /// One-shot trapezoidal pulse returning to `v0`.
    Pulse {
        /// Base level.
        v0: f64,
        /// Pulsed level.
        v1: f64,
        /// Delay before the rising edge (s).
        t_delay: f64,
        /// Rise time (s).
        t_rise: f64,
        /// Time spent at `v1` (s).
        t_width: f64,
        /// Fall time (s).
        t_fall: f64,
    },
    /// Triangular noise glitch: base, linear rise to `v_peak`, linear fall
    /// back to base. The canonical injected-noise shape used for cell
    /// characterization.
    TriangleGlitch {
        /// Quiescent level.
        v_base: f64,
        /// Glitch extreme (may be below `v_base` for a downward glitch).
        v_peak: f64,
        /// Glitch onset (s).
        t_start: f64,
        /// Base-to-peak time (s).
        t_rise: f64,
        /// Peak-to-base time (s).
        t_fall: f64,
    },
    /// Piecewise-linear `(time, value)` points; clamps outside the span.
    /// Points must be sorted by strictly increasing time.
    Pwl(Vec<(f64, f64)>),
    /// Arbitrary sampled waveform (clamped outside its span).
    Sampled(Waveform),
}

impl SourceWaveform {
    /// Source value at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            SourceWaveform::Dc(v) => *v,
            SourceWaveform::Ramp {
                v0,
                v1,
                t_start,
                t_rise,
            } => {
                if t <= *t_start {
                    *v0
                } else if t >= t_start + t_rise {
                    *v1
                } else {
                    v0 + (v1 - v0) * (t - t_start) / t_rise
                }
            }
            SourceWaveform::Pulse {
                v0,
                v1,
                t_delay,
                t_rise,
                t_width,
                t_fall,
            } => {
                let t1 = *t_delay;
                let t2 = t1 + t_rise;
                let t3 = t2 + t_width;
                let t4 = t3 + t_fall;
                if t <= t1 || t >= t4 {
                    *v0
                } else if t < t2 {
                    v0 + (v1 - v0) * (t - t1) / t_rise
                } else if t <= t3 {
                    *v1
                } else {
                    v1 + (v0 - v1) * (t - t3) / t_fall
                }
            }
            SourceWaveform::TriangleGlitch {
                v_base,
                v_peak,
                t_start,
                t_rise,
                t_fall,
            } => {
                let tp = t_start + t_rise;
                let te = tp + t_fall;
                if t <= *t_start || t >= te {
                    *v_base
                } else if t < tp {
                    v_base + (v_peak - v_base) * (t - t_start) / t_rise
                } else {
                    v_peak + (v_base - v_peak) * (t - tp) / t_fall
                }
            }
            SourceWaveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                let hi = points.partition_point(|&(pt, _)| pt <= t);
                let (t0, v0) = points[hi - 1];
                let (t1, v1) = points[hi];
                v0 + (v1 - v0) * (t - t0) / (t1 - t0)
            }
            SourceWaveform::Sampled(w) => w.value_at(t),
        }
    }

    /// Value used by DC analysis (the source at `t = 0`).
    pub fn dc_value(&self) -> f64 {
        self.eval(0.0)
    }

    /// Latest time at which this source still changes; `0` for DC.
    /// Transient analyses may use this to sanity-check their horizon.
    pub fn last_event_time(&self) -> f64 {
        match self {
            SourceWaveform::Dc(_) => 0.0,
            SourceWaveform::Ramp {
                t_start, t_rise, ..
            } => t_start + t_rise,
            SourceWaveform::Pulse {
                t_delay,
                t_rise,
                t_width,
                t_fall,
                ..
            } => t_delay + t_rise + t_width + t_fall,
            SourceWaveform::TriangleGlitch {
                t_start,
                t_rise,
                t_fall,
                ..
            } => t_start + t_rise + t_fall,
            SourceWaveform::Pwl(points) => points.last().map_or(0.0, |p| p.0),
            SourceWaveform::Sampled(w) => w.t_end(),
        }
    }

    /// Shift the waveform later in time by `delta` seconds (negative =
    /// earlier). Used by worst-case aggressor alignment search.
    pub fn shifted(&self, delta: f64) -> SourceWaveform {
        match self {
            SourceWaveform::Dc(v) => SourceWaveform::Dc(*v),
            SourceWaveform::Ramp {
                v0,
                v1,
                t_start,
                t_rise,
            } => SourceWaveform::Ramp {
                v0: *v0,
                v1: *v1,
                t_start: t_start + delta,
                t_rise: *t_rise,
            },
            SourceWaveform::Pulse {
                v0,
                v1,
                t_delay,
                t_rise,
                t_width,
                t_fall,
            } => SourceWaveform::Pulse {
                v0: *v0,
                v1: *v1,
                t_delay: t_delay + delta,
                t_rise: *t_rise,
                t_width: *t_width,
                t_fall: *t_fall,
            },
            SourceWaveform::TriangleGlitch {
                v_base,
                v_peak,
                t_start,
                t_rise,
                t_fall,
            } => SourceWaveform::TriangleGlitch {
                v_base: *v_base,
                v_peak: *v_peak,
                t_start: t_start + delta,
                t_rise: *t_rise,
                t_fall: *t_fall,
            },
            SourceWaveform::Pwl(points) => {
                SourceWaveform::Pwl(points.iter().map(|&(t, v)| (t + delta, v)).collect())
            }
            SourceWaveform::Sampled(w) => SourceWaveform::Sampled(w.shifted(delta)),
        }
    }
}

impl Default for SourceWaveform {
    fn default() -> Self {
        SourceWaveform::Dc(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_saturates() {
        let r = SourceWaveform::Ramp {
            v0: 0.0,
            v1: 1.2,
            t_start: 1e-9,
            t_rise: 100e-12,
        };
        assert_eq!(r.eval(0.0), 0.0);
        assert_eq!(r.eval(1e-9), 0.0);
        assert!((r.eval(1.05e-9) - 0.6).abs() < 1e-12);
        assert_eq!(r.eval(2e-9), 1.2);
        assert_eq!(r.dc_value(), 0.0);
        assert!((r.last_event_time() - 1.1e-9).abs() < 1e-21);
    }

    #[test]
    fn pulse_shape() {
        let p = SourceWaveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            t_delay: 1.0,
            t_rise: 1.0,
            t_width: 2.0,
            t_fall: 1.0,
        };
        assert_eq!(p.eval(0.5), 0.0);
        assert!((p.eval(1.5) - 0.5).abs() < 1e-12);
        assert_eq!(p.eval(3.0), 1.0);
        assert!((p.eval(4.5) - 0.5).abs() < 1e-12);
        assert_eq!(p.eval(6.0), 0.0);
    }

    #[test]
    fn triangle_glitch_downward() {
        let g = SourceWaveform::TriangleGlitch {
            v_base: 1.2,
            v_peak: 0.4,
            t_start: 0.0,
            t_rise: 2.0,
            t_fall: 2.0,
        };
        assert_eq!(g.eval(-1.0), 1.2);
        assert!((g.eval(1.0) - 0.8).abs() < 1e-12);
        assert!((g.eval(2.0) - 0.4).abs() < 1e-12);
        assert!((g.eval(3.0) - 0.8).abs() < 1e-12);
        assert_eq!(g.eval(5.0), 1.2);
    }

    #[test]
    fn pwl_clamps_and_interpolates() {
        let p = SourceWaveform::Pwl(vec![(1.0, 0.0), (2.0, 1.0), (4.0, -1.0)]);
        assert_eq!(p.eval(0.0), 0.0);
        assert!((p.eval(1.5) - 0.5).abs() < 1e-12);
        assert!((p.eval(3.0) - 0.0).abs() < 1e-12);
        assert_eq!(p.eval(9.0), -1.0);
    }

    #[test]
    fn shift_moves_events() {
        let g = SourceWaveform::TriangleGlitch {
            v_base: 0.0,
            v_peak: 1.0,
            t_start: 1.0,
            t_rise: 1.0,
            t_fall: 1.0,
        };
        let s = g.shifted(2.0);
        assert_eq!(s.eval(2.0), 0.0);
        assert!((s.eval(4.0) - 1.0).abs() < 1e-12);
        assert!((s.last_event_time() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_wraps_waveform() {
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 2.0]).unwrap();
        let s = SourceWaveform::Sampled(w);
        assert!((s.eval(0.5) - 1.0).abs() < 1e-12);
        assert_eq!(s.eval(5.0), 2.0);
    }
}
