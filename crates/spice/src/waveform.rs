//! Sampled voltage/current waveforms and noise-glitch metrics.
//!
//! A [`Waveform`] is a strictly-increasing time grid with one sample per
//! point and linear interpolation in between. All noise-analysis results in
//! this workspace (golden simulation, macromodel engine, baselines) are
//! exchanged as waveforms, and compared through [`GlitchMetrics`] — the
//! peak / width / area numbers the paper reports in its tables.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// A piecewise-linear sampled signal: strictly increasing times, one value
/// per time point.
///
/// # Examples
///
/// ```
/// use sna_spice::waveform::Waveform;
///
/// let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 2.0, 0.0]).unwrap();
/// assert_eq!(w.value_at(0.5), 1.0);
/// assert_eq!(w.value_at(-1.0), 0.0); // clamped to first sample
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Waveform {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Waveform {
    /// Create an empty waveform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a waveform from parallel time/value vectors.
    ///
    /// # Errors
    ///
    /// Fails if the vectors differ in length, are empty, or the time axis is
    /// not strictly increasing.
    pub fn from_samples(times: Vec<f64>, values: Vec<f64>) -> Result<Self> {
        if times.len() != values.len() {
            return Err(Error::InvalidTable(format!(
                "waveform axes differ in length: {} times vs {} values",
                times.len(),
                values.len()
            )));
        }
        if times.is_empty() {
            return Err(Error::InvalidTable("empty waveform".into()));
        }
        for w in times.windows(2) {
            if w[1] <= w[0] {
                return Err(Error::InvalidTable(format!(
                    "waveform time axis not strictly increasing at t = {}",
                    w[1]
                )));
            }
        }
        Ok(Self { times, values })
    }

    /// Build a constant waveform over `[t0, t1]`.
    pub fn constant(t0: f64, t1: f64, value: f64) -> Self {
        Self {
            times: vec![t0, t1],
            values: vec![value, value],
        }
    }

    /// Sample a closure on a uniform grid of `n` points over `[t0, t1]`
    /// (inclusive at both ends; `n >= 2`).
    pub fn sample<F: FnMut(f64) -> f64>(t0: f64, t1: f64, n: usize, mut f: F) -> Self {
        assert!(n >= 2, "need at least two samples");
        assert!(t1 > t0, "empty interval");
        let dt = (t1 - t0) / (n - 1) as f64;
        let times: Vec<f64> = (0..n).map(|i| t0 + i as f64 * dt).collect();
        let values = times.iter().map(|&t| f(t)).collect();
        Self { times, values }
    }

    /// Append a sample. Panics in debug builds if `t` does not advance time.
    pub fn push(&mut self, t: f64, v: f64) {
        debug_assert!(
            self.times.last().is_none_or(|&last| t > last),
            "waveform push must advance time"
        );
        self.times.push(t);
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the waveform has no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Time axis.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// First time point, or 0 for an empty waveform.
    pub fn t_start(&self) -> f64 {
        self.times.first().copied().unwrap_or(0.0)
    }

    /// Last time point, or 0 for an empty waveform.
    pub fn t_end(&self) -> f64 {
        self.times.last().copied().unwrap_or(0.0)
    }

    /// Linearly interpolated value at `t`, clamped to the end samples
    /// outside the time span. Returns 0 for an empty waveform.
    pub fn value_at(&self, t: f64) -> f64 {
        if self.times.is_empty() {
            return 0.0;
        }
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= *self.times.last().unwrap() {
            return *self.values.last().unwrap();
        }
        // partition_point: first index with times[i] > t.
        let hi = self.times.partition_point(|&x| x <= t);
        let lo = hi - 1;
        let (t0, t1) = (self.times[lo], self.times[hi]);
        let (v0, v1) = (self.values[lo], self.values[hi]);
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Maximum sample value. Returns 0 for an empty waveform.
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0)
    }

    /// Minimum sample value. Returns 0 for an empty waveform.
    pub fn min_value(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Resample onto a uniform grid with step `dt` spanning this waveform.
    pub fn resample(&self, dt: f64) -> Self {
        assert!(dt > 0.0);
        if self.is_empty() {
            return Self::new();
        }
        let t0 = self.t_start();
        let t1 = self.t_end();
        let n = ((t1 - t0) / dt).ceil() as usize + 1;
        Self::sample(
            t0,
            t0 + (n - 1) as f64 * dt.max(f64::MIN_POSITIVE),
            n.max(2),
            |t| self.value_at(t),
        )
    }

    /// Shift the waveform in time by `delta` (positive = later).
    pub fn shifted(&self, delta: f64) -> Self {
        Self {
            times: self.times.iter().map(|&t| t + delta).collect(),
            values: self.values.clone(),
        }
    }

    /// Multiply all values by `k`.
    pub fn scaled(&self, k: f64) -> Self {
        Self {
            times: self.times.clone(),
            values: self.values.iter().map(|&v| k * v).collect(),
        }
    }

    /// Add a constant offset to all values.
    pub fn offset(&self, dv: f64) -> Self {
        Self {
            times: self.times.clone(),
            values: self.values.iter().map(|&v| v + dv).collect(),
        }
    }

    /// Pointwise sum of two waveforms on the union of their time grids
    /// (each clamped outside its own span).
    ///
    /// This is exactly the "linear superposition" operation the paper warns
    /// about; it is provided for implementing that baseline.
    pub fn add(&self, other: &Waveform) -> Waveform {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut grid: Vec<f64> = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.times.len() || j < other.times.len() {
            let ta = self.times.get(i).copied().unwrap_or(f64::INFINITY);
            let tb = other.times.get(j).copied().unwrap_or(f64::INFINITY);
            let t = ta.min(tb);
            if ta == t {
                i += 1;
            }
            if tb == t {
                j += 1;
            }
            if grid.last().is_none_or(|&g| t > g) {
                grid.push(t);
            }
        }
        let values = grid
            .iter()
            .map(|&t| self.value_at(t) + other.value_at(t))
            .collect();
        Waveform {
            times: grid,
            values,
        }
    }

    /// Pointwise difference `self - other` on the union grid.
    pub fn sub(&self, other: &Waveform) -> Waveform {
        self.add(&other.scaled(-1.0))
    }

    /// Integral of the signed value over the full span (trapezoidal rule).
    pub fn integral(&self) -> f64 {
        let mut acc = 0.0;
        for k in 1..self.times.len() {
            let dt = self.times[k] - self.times[k - 1];
            acc += 0.5 * (self.values[k] + self.values[k - 1]) * dt;
        }
        acc
    }

    /// Time of the sample with the largest `|value - baseline|`.
    pub fn peak_time(&self, baseline: f64) -> f64 {
        let mut best_t = self.t_start();
        let mut best = -1.0;
        for (&t, &v) in self.times.iter().zip(&self.values) {
            let d = (v - baseline).abs();
            if d > best {
                best = d;
                best_t = t;
            }
        }
        best_t
    }

    /// Glitch metrics relative to a quiescent `baseline` voltage.
    pub fn glitch_metrics(&self, baseline: f64) -> GlitchMetrics {
        GlitchMetrics::from_waveform(self, baseline)
    }

    /// Maximum absolute pointwise deviation from `other`, evaluated on the
    /// union of both grids. Useful for waveform-level accuracy checks.
    pub fn max_abs_difference(&self, other: &Waveform) -> f64 {
        let diff = self.sub(other);
        diff.values.iter().fold(0.0_f64, |acc, &v| acc.max(v.abs()))
    }

    /// Serialize as two-column CSV (`time,value` header included), the
    /// interchange format plotting scripts expect.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(24 * self.len() + 16);
        out.push_str("time,value\n");
        for (t, v) in self.times.iter().zip(&self.values) {
            out.push_str(&format!("{t:.9e},{v:.9e}\n"));
        }
        out
    }

    /// Parse a waveform from [`Waveform::to_csv`]-style CSV. A leading
    /// non-numeric header line is skipped.
    ///
    /// # Errors
    ///
    /// Fails on malformed rows or a non-monotone time column.
    pub fn from_csv(csv: &str) -> Result<Self> {
        let mut times = Vec::new();
        let mut values = Vec::new();
        for (i, line) in csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut cols = line.split(',');
            let (ts, vs) = (cols.next().unwrap_or(""), cols.next().unwrap_or(""));
            match (ts.trim().parse::<f64>(), vs.trim().parse::<f64>()) {
                (Ok(t), Ok(v)) => {
                    times.push(t);
                    values.push(v);
                }
                _ if i == 0 => continue, // header
                _ => {
                    return Err(Error::InvalidTable(format!(
                        "bad CSV row {}: '{line}'",
                        i + 1
                    )))
                }
            }
        }
        Waveform::from_samples(times, values)
    }
}

/// Scalar summary of a noise glitch, as reported in the paper's tables.
///
/// All quantities are relative to the quiescent (baseline) level of the
/// victim node:
/// * `peak` — maximum deviation magnitude (volts), with `polarity` recording
///   the direction;
/// * `width` — time spent beyond 50 % of the peak deviation (seconds);
/// * `area` — ∫ |v(t) − baseline| dt (volt·seconds; the tables print V·ps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GlitchMetrics {
    /// Peak deviation from the baseline, in volts (always non-negative).
    pub peak: f64,
    /// +1.0 for an upward glitch, -1.0 for downward, 0.0 for flat.
    pub polarity: f64,
    /// Time at which the peak occurs (seconds).
    pub peak_time: f64,
    /// Width at 50 % of the peak deviation (seconds).
    pub width: f64,
    /// Area ∫|v − baseline| dt (volt·seconds).
    pub area: f64,
}

impl GlitchMetrics {
    /// Compute metrics of `w` around the quiescent level `baseline`.
    pub fn from_waveform(w: &Waveform, baseline: f64) -> Self {
        if w.is_empty() {
            return GlitchMetrics {
                peak: 0.0,
                polarity: 0.0,
                peak_time: 0.0,
                width: 0.0,
                area: 0.0,
            };
        }
        let mut peak = 0.0_f64;
        let mut peak_time = w.t_start();
        let mut polarity = 0.0;
        for (&t, &v) in w.times.iter().zip(&w.values) {
            let d = v - baseline;
            if d.abs() > peak {
                peak = d.abs();
                peak_time = t;
                polarity = if d >= 0.0 { 1.0 } else { -1.0 };
            }
        }
        // Area of |v - baseline| via trapezoid on |.| samples. The absolute
        // value is piecewise-linear between samples except where the signal
        // crosses the baseline; sampling is dense enough in practice that we
        // treat |.| as linear per segment (error is second order in dt).
        let mut area = 0.0;
        for k in 1..w.times.len() {
            let dt = w.times[k] - w.times[k - 1];
            let a = (w.values[k - 1] - baseline).abs();
            let b = (w.values[k] - baseline).abs();
            area += 0.5 * (a + b) * dt;
        }
        // Width at 50% of peak: total measure of {t : |v(t)-baseline| >= peak/2},
        // computed with linear interpolation at threshold crossings.
        let width = if peak <= 0.0 {
            0.0
        } else {
            let thr = 0.5 * peak;
            let mut total = 0.0;
            let mut above_since: Option<f64> = None;
            let dev = |idx: usize| (w.values[idx] - baseline).abs();
            for k in 0..w.times.len() {
                let d = dev(k);
                if k == 0 {
                    if d >= thr {
                        above_since = Some(w.times[0]);
                    }
                    continue;
                }
                let prev = dev(k - 1);
                let (t0, t1) = (w.times[k - 1], w.times[k]);
                if prev < thr && d >= thr {
                    // rising crossing
                    let tc = t0 + (t1 - t0) * (thr - prev) / (d - prev);
                    above_since = Some(tc);
                } else if prev >= thr && d < thr {
                    // falling crossing
                    let tc = t0 + (t1 - t0) * (prev - thr) / (prev - d);
                    if let Some(ts) = above_since.take() {
                        total += tc - ts;
                    }
                }
            }
            if let Some(ts) = above_since {
                total += w.t_end() - ts;
            }
            total
        };
        GlitchMetrics {
            peak,
            polarity,
            peak_time,
            width,
            area,
        }
    }

    /// Signed relative error of `self` with respect to a `golden` reference,
    /// per quantity, in percent — the `Error%` columns of the paper's tables.
    pub fn error_percent_vs(&self, golden: &GlitchMetrics) -> GlitchError {
        fn pct(est: f64, gold: f64) -> f64 {
            if gold.abs() < f64::EPSILON {
                0.0
            } else {
                100.0 * (est - gold) / gold
            }
        }
        GlitchError {
            peak_pct: pct(self.peak, golden.peak),
            width_pct: pct(self.width, golden.width),
            area_pct: pct(self.area, golden.area),
        }
    }
}

/// Relative error of one glitch estimate against a golden reference (%).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GlitchError {
    /// Peak error in percent (negative = underestimate).
    pub peak_pct: f64,
    /// Width error in percent.
    pub width_pct: f64,
    /// Area error in percent.
    pub area_pct: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Waveform {
        // 0 at t=0, 1V at t=1, 0 at t=2 (units abstract).
        Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0]).unwrap()
    }

    #[test]
    fn from_samples_validates() {
        assert!(Waveform::from_samples(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(Waveform::from_samples(vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(Waveform::from_samples(vec![], vec![]).is_err());
        assert!(Waveform::from_samples(vec![0.0, 1.0], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn interpolation_and_clamping() {
        let w = triangle();
        assert_eq!(w.value_at(0.25), 0.25);
        assert_eq!(w.value_at(1.5), 0.5);
        assert_eq!(w.value_at(-5.0), 0.0);
        assert_eq!(w.value_at(10.0), 0.0);
        assert_eq!(w.value_at(1.0), 1.0);
    }

    #[test]
    fn integral_of_triangle() {
        let w = triangle();
        assert!((w.integral() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn add_on_union_grid() {
        let a = triangle();
        let b = triangle().shifted(0.5);
        let s = a.add(&b);
        // At t=1.0: a=1.0, b=value at 0.5 of triangle = 0.5.
        assert!((s.value_at(1.0) - 1.5).abs() < 1e-12);
        // Union grid contains both 1.0 and 1.5.
        assert!(s.times().contains(&1.0));
        assert!(s.times().contains(&1.5));
        // Strictly increasing.
        for w in s.times().windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn add_identity_with_empty() {
        let a = triangle();
        let e = Waveform::new();
        assert_eq!(a.add(&e), a);
        assert_eq!(e.add(&a), a);
    }

    #[test]
    fn glitch_metrics_triangle() {
        let m = triangle().glitch_metrics(0.0);
        assert!((m.peak - 1.0).abs() < 1e-12);
        assert_eq!(m.polarity, 1.0);
        assert!((m.peak_time - 1.0).abs() < 1e-12);
        // Triangle crosses 0.5 at t=0.5 and t=1.5 -> width 1.0.
        assert!((m.width - 1.0).abs() < 1e-12);
        assert!((m.area - 1.0).abs() < 1e-12);
    }

    #[test]
    fn glitch_metrics_downward() {
        let w = triangle().scaled(-2.0).offset(1.0); // dips from 1.0 down to -1.0
        let m = w.glitch_metrics(1.0);
        assert!((m.peak - 2.0).abs() < 1e-12);
        assert_eq!(m.polarity, -1.0);
    }

    #[test]
    fn width_of_plateau_glitch() {
        // Flat-top glitch: up at 1, flat to 3, down at 4. Peak 1, 50% thr 0.5.
        let w = Waveform::from_samples(vec![0.0, 1.0, 3.0, 4.0], vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let m = w.glitch_metrics(0.0);
        // crossings at t=0.5 and t=3.5 -> width 3.0
        assert!((m.width - 3.0).abs() < 1e-12);
    }

    #[test]
    fn width_multi_lobe_accumulates() {
        let w =
            Waveform::from_samples(vec![0.0, 1.0, 2.0, 3.0, 4.0], vec![0.0, 1.0, 0.0, 1.0, 0.0])
                .unwrap();
        let m = w.glitch_metrics(0.0);
        // Two triangles, each contributing width 1.0 at half height.
        assert!((m.width - 2.0).abs() < 1e-12);
    }

    #[test]
    fn error_percent() {
        let gold = GlitchMetrics {
            peak: 0.4,
            polarity: 1.0,
            peak_time: 0.0,
            width: 2e-10,
            area: 1e-10,
        };
        let est = GlitchMetrics {
            peak: 0.3,
            polarity: 1.0,
            peak_time: 0.0,
            width: 1e-10,
            area: 0.5e-10,
        };
        let e = est.error_percent_vs(&gold);
        assert!((e.peak_pct + 25.0).abs() < 1e-9);
        assert!((e.width_pct + 50.0).abs() < 1e-9);
        assert!((e.area_pct + 50.0).abs() < 1e-9);
    }

    #[test]
    fn resample_preserves_shape() {
        let w = triangle();
        let r = w.resample(0.01);
        assert!((r.value_at(0.5) - 0.5).abs() < 1e-9);
        assert!(r.len() > 100);
    }

    #[test]
    fn shifted_and_scaled() {
        let w = triangle().shifted(2.0).scaled(3.0);
        assert_eq!(w.value_at(3.0), 3.0);
        assert_eq!(w.t_start(), 2.0);
    }

    #[test]
    fn sample_closure() {
        let w = Waveform::sample(0.0, 1.0, 11, |t| t * t);
        assert!((w.value_at(0.5) - 0.25).abs() < 0.01);
        assert_eq!(w.len(), 11);
    }

    #[test]
    fn peak_time_of_baseline_deviation() {
        let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![5.0, 3.0, 5.0]).unwrap();
        assert_eq!(w.peak_time(5.0), 1.0);
    }

    #[test]
    fn max_abs_difference() {
        let a = triangle();
        let b = triangle().scaled(0.5);
        assert!((a.max_abs_difference(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn csv_roundtrip() {
        let w = Waveform::from_samples(vec![0.0, 1e-12, 2.5e-12], vec![0.0, 0.6321, 1.2]).unwrap();
        let csv = w.to_csv();
        assert!(csv.starts_with("time,value\n"));
        let back = Waveform::from_csv(&csv).unwrap();
        assert_eq!(back.len(), w.len());
        assert!(w.max_abs_difference(&back) < 1e-12);
    }

    #[test]
    fn csv_rejects_garbage_rows() {
        assert!(Waveform::from_csv("time,value\n1.0,2.0\nxx,yy\n").is_err());
        // Non-monotone times rejected via from_samples.
        assert!(Waveform::from_csv("1.0,2.0\n0.5,1.0\n").is_err());
    }

    #[test]
    fn csv_header_optional() {
        let w = Waveform::from_csv("0.0,1.0\n1.0,2.0\n").unwrap();
        assert_eq!(w.len(), 2);
    }
}
