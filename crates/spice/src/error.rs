//! Error types for the simulation substrate.

use std::fmt;

/// Errors produced by circuit construction, analysis, or deck parsing.
///
/// All analyses in this crate return [`Result`]; the variants carry enough
/// context (node/element names, iteration counts, time points) to diagnose a
/// failing netlist without re-running under a debugger.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The MNA matrix became numerically singular during LU factorization.
    SingularMatrix {
        /// Row/column index (in MNA unknown ordering) where elimination failed.
        pivot: usize,
    },
    /// Newton-Raphson failed to converge.
    NonConvergence {
        /// Analysis that failed (e.g. `"dc"`, `"tran"`).
        analysis: &'static str,
        /// Iteration count reached.
        iterations: usize,
        /// Simulated time at failure (seconds); 0 for DC.
        time: f64,
        /// Worst residual magnitude at the last iteration.
        residual: f64,
    },
    /// The circuit is structurally invalid (e.g. a device references an
    /// unknown node, a voltage-source loop, no elements).
    InvalidCircuit(String),
    /// A SPICE deck failed to parse.
    Parse {
        /// 1-based line number in the deck.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// An analysis was requested with invalid parameters
    /// (e.g. non-positive time step, empty sweep).
    InvalidAnalysis(String),
    /// A lookup table was queried or built with invalid axes/data.
    InvalidTable(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SingularMatrix { pivot } => {
                write!(f, "singular MNA matrix at pivot {pivot}")
            }
            Error::NonConvergence {
                analysis,
                iterations,
                time,
                residual,
            } => write!(
                f,
                "{analysis} analysis failed to converge after {iterations} iterations \
                 (t = {time:.3e} s, residual = {residual:.3e})"
            ),
            Error::InvalidCircuit(msg) => write!(f, "invalid circuit: {msg}"),
            Error::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Error::InvalidAnalysis(msg) => write!(f, "invalid analysis request: {msg}"),
            Error::InvalidTable(msg) => write!(f, "invalid table: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_singular() {
        let e = Error::SingularMatrix { pivot: 3 };
        assert_eq!(e.to_string(), "singular MNA matrix at pivot 3");
    }

    #[test]
    fn display_nonconvergence_mentions_analysis() {
        let e = Error::NonConvergence {
            analysis: "tran",
            iterations: 60,
            time: 1e-9,
            residual: 0.5,
        };
        let s = e.to_string();
        assert!(s.contains("tran"));
        assert!(s.contains("60"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn display_parse_has_line() {
        let e = Error::Parse {
            line: 12,
            message: "unknown element".into(),
        };
        assert!(e.to_string().contains("line 12"));
    }
}
