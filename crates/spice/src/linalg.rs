//! Dense linear algebra for MNA systems.
//!
//! Circuit matrices in this workspace are small (a noise cluster with a
//! finely segmented pair of 500 µm wires is a few hundred unknowns), so a
//! cache-friendly dense LU with partial pivoting beats a sparse code up to
//! well past the sizes we ever build. The factorization is exposed
//! separately from the solve ([`LuFactors`]) because transient analysis of a
//! *linear* circuit factors once per time-step size and back-substitutes
//! thousands of times.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// The fundamental MNA "stamp" sink: anything that can accumulate
/// `(row, col) += value` contributions. Implemented by [`DenseMatrix`], by
/// the sparse matrix type, and by [`PatternCollector`] (which records the
/// touched positions instead of values — used to pre-size sparse patterns).
pub trait MatrixStamp {
    /// Add `v` to entry `(i, j)`.
    fn add(&mut self, i: usize, j: usize, v: f64);
}

/// A [`MatrixStamp`] that records *which* entries are touched, discarding
/// the values. Device models stamp a fixed set of positions regardless of
/// the operating point, so one collection pass at any state yields the
/// complete non-linear Jacobian pattern.
#[derive(Debug, Clone, Default)]
pub struct PatternCollector {
    entries: Vec<(usize, usize)>,
}

impl PatternCollector {
    /// Empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded `(row, col)` positions, in stamp order (may repeat).
    pub fn entries(&self) -> &[(usize, usize)] {
        &self.entries
    }
}

impl MatrixStamp for PatternCollector {
    fn add(&mut self, i: usize, j: usize, _v: f64) {
        self.entries.push((i, j));
    }
}

impl MatrixStamp for DenseMatrix {
    #[inline]
    fn add(&mut self, i: usize, j: usize, v: f64) {
        DenseMatrix::add(self, i, j, v);
    }
}

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Create an `n_rows × n_cols` zero matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            data: vec![0.0; n_rows * n_cols],
        }
    }

    /// Create an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a nested array literal (rows of equal length).
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            n_rows,
            n_cols,
            data,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Reset all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Add `v` to entry `(i, j)` — the fundamental MNA "stamp" operation.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.n_rows && j < self.n_cols);
        self.data[i * self.n_cols + j] += v;
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n_cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Allocation-free matrix-vector product: `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.n_cols..(i + 1) * self.n_cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yi = acc;
        }
    }

    /// Overwrite this matrix with `other`'s contents without reallocating.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn copy_from(&mut self, other: &DenseMatrix) {
        assert_eq!(self.n_rows, other.n_rows);
        assert_eq!(self.n_cols, other.n_cols);
        self.data.copy_from_slice(&other.data);
    }

    /// Matrix-matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_mat(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.n_cols, b.n_rows);
        let mut c = DenseMatrix::zeros(self.n_rows, b.n_cols);
        for i in 0..self.n_rows {
            for k in 0..self.n_cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.n_cols {
                    c[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        c
    }

    /// Scaled accumulate: `self += k·other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn axpy(&mut self, k: f64, other: &DenseMatrix) {
        assert_eq!(self.n_rows, other.n_rows);
        assert_eq!(self.n_cols, other.n_cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// LU-factorize (partial pivoting) consuming a copy of the matrix.
    ///
    /// # Errors
    ///
    /// [`Error::SingularMatrix`] if a pivot column is numerically zero.
    pub fn lu(&self) -> Result<LuFactors> {
        LuFactors::new(self.clone())
    }

    /// Solve `A·x = b` directly (factor + back-substitute).
    ///
    /// # Errors
    ///
    /// [`Error::SingularMatrix`] if the matrix is singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        Ok(self.lu()?.solve(b))
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.n_rows)
            .map(|i| {
                self.data[i * self.n_cols..(i + 1) * self.n_cols]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n_cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n_cols + j]
    }
}

/// LU factorization with partial pivoting, reusable for many right-hand
/// sides.
///
/// # Examples
///
/// ```
/// use sna_spice::linalg::DenseMatrix;
///
/// let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = a.lu().unwrap();
/// let x = lu.solve(&[3.0, 4.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: DenseMatrix,
    perm: Vec<usize>,
}

impl LuFactors {
    fn new(a: DenseMatrix) -> Result<Self> {
        assert_eq!(a.n_rows, a.n_cols, "LU requires a square matrix");
        let n = a.n_rows;
        let mut f = Self {
            lu: a,
            perm: (0..n).collect(),
        };
        f.eliminate()?;
        Ok(f)
    }

    /// Re-factor `a` (same dimensions) into the existing buffers — the
    /// allocation-free path used by Newton loops that re-assemble the
    /// Jacobian every iteration. Full partial pivoting is redone, so the
    /// result is identical to a fresh [`DenseMatrix::lu`].
    ///
    /// # Errors
    ///
    /// [`Error::SingularMatrix`] if a pivot column is numerically zero.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn refactor(&mut self, a: &DenseMatrix) -> Result<()> {
        self.lu.copy_from(a);
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i;
        }
        self.eliminate()
    }

    fn eliminate(&mut self) -> Result<()> {
        let a = &mut self.lu;
        let perm = &mut self.perm;
        let n = a.n_rows;
        for k in 0..n {
            // Partial pivot: largest |a[i][k]| for i >= k.
            let mut p = k;
            let mut best = a[(k, k)].abs();
            for i in (k + 1)..n {
                let v = a[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-300 {
                return Err(Error::SingularMatrix { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = a[(k, j)];
                    a[(k, j)] = a[(p, j)];
                    a[(p, j)] = tmp;
                }
                perm.swap(k, p);
            }
            let pivot = a[(k, k)];
            for i in (k + 1)..n {
                let m = a[(i, k)] / pivot;
                a[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let akj = a[(k, j)];
                        a[(i, j)] -= m * akj;
                    }
                }
            }
        }
        Ok(())
    }

    /// Dimension of the factored system.
    pub fn n(&self) -> usize {
        self.lu.n_rows
    }

    /// Solve `A·x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the system dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n()];
        self.solve_into(b, &mut x);
        x
    }

    /// Allocation-free solve: writes the solution of `A·x = b` into `x`
    /// (which doubles as the substitution workspace).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `x.len()` differs from the system dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n();
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        // Apply permutation.
        for (i, xi) in x.iter_mut().enumerate() {
            *xi = b[self.perm[i]];
        }
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
    }
}

/// Solve the small eigen-style quadratic used in two-pole fits:
/// roots of `x^2 + b x + c`, returned as (real parts only when real).
///
/// Returns `None` for complex roots.
pub fn real_quadratic_roots(b: f64, c: f64) -> Option<(f64, f64)> {
    let disc = b * b - 4.0 * c;
    if disc < 0.0 {
        return None;
    }
    let sq = disc.sqrt();
    // Numerically stable form.
    let q = -0.5 * (b + b.signum() * sq);
    if q == 0.0 {
        return Some((0.0, 0.0));
    }
    Some((q, c / q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_solve() {
        let a = DenseMatrix::identity(4);
        let x = a.solve(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn solve_known_3x3() {
        let a = DenseMatrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]);
        let xs = [1.5, -0.25, 3.0];
        let b = a.mul_vec(&xs);
        let x = a.solve(&b).unwrap();
        for (got, want) in x.iter().zip(xs.iter()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match a.solve(&[1.0, 2.0]) {
            Err(Error::SingularMatrix { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn factor_reuse_many_rhs() {
        let a = DenseMatrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let lu = a.lu().unwrap();
        for k in 0..10 {
            let b = [k as f64, 1.0 - k as f64];
            let x = lu.solve(&b);
            let back = a.mul_vec(&x);
            assert!((back[0] - b[0]).abs() < 1e-12);
            assert!((back[1] - b[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn mul_mat_against_identity() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = DenseMatrix::identity(2);
        assert_eq!(a.mul_mat(&i), a);
        assert_eq!(i.mul_mat(&a), a);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = DenseMatrix::zeros(2, 2);
        let b = DenseMatrix::identity(2);
        a.axpy(2.5, &b);
        assert_eq!(a[(0, 0)], 2.5);
        assert_eq!(a[(1, 1)], 2.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn norm_inf() {
        let a = DenseMatrix::from_rows(&[&[1.0, -2.0], &[3.0, 0.5]]);
        assert_eq!(a.norm_inf(), 3.5);
    }

    #[test]
    fn quadratic_roots_real() {
        // x^2 - 3x + 2 -> roots 1, 2
        let (r1, r2) = real_quadratic_roots(-3.0, 2.0).unwrap();
        let mut rs = [r1, r2];
        rs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((rs[0] - 1.0).abs() < 1e-12);
        assert!((rs[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_roots_complex_rejected() {
        assert!(real_quadratic_roots(0.0, 1.0).is_none());
    }

    proptest! {
        /// Random diagonally dominant systems solve to machine-level residual.
        #[test]
        fn prop_solve_residual(seed_rows in proptest::collection::vec(
            proptest::collection::vec(-1.0f64..1.0, 6), 6),
            rhs in proptest::collection::vec(-10.0f64..10.0, 6))
        {
            let n = 6;
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                let mut rowsum = 0.0;
                for j in 0..n {
                    a[(i, j)] = seed_rows[i][j];
                    rowsum += seed_rows[i][j].abs();
                }
                // Diagonal dominance guarantees non-singularity.
                a[(i, i)] += rowsum + 1.0;
            }
            let x = a.solve(&rhs).unwrap();
            let back = a.mul_vec(&x);
            for (got, want) in back.iter().zip(rhs.iter()) {
                prop_assert!((got - want).abs() < 1e-8);
            }
        }

        /// LU(A) applied to A's own product with a vector recovers the vector.
        #[test]
        fn prop_roundtrip(xs in proptest::collection::vec(-5.0f64..5.0, 4)) {
            let a = DenseMatrix::from_rows(&[
                &[5.0, 1.0, 0.0, 2.0],
                &[1.0, 4.0, 1.0, 0.0],
                &[0.0, 1.0, 6.0, 1.0],
                &[2.0, 0.0, 1.0, 7.0],
            ]);
            let b = a.mul_vec(&xs);
            let x = a.solve(&b).unwrap();
            for (got, want) in x.iter().zip(xs.iter()) {
                prop_assert!((got - want).abs() < 1e-9);
            }
        }
    }
}
