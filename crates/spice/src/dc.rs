//! DC operating-point analysis and sweeps.
//!
//! Newton–Raphson on the MNA system with step damping; if plain Newton
//! stalls, the solver falls back to gmin stepping and then source stepping —
//! the standard SPICE continuation ladder. DC sweeps warm-start every point
//! from the previous solution, which is what makes the 33×33 load-curve
//! characterization grids (paper Eq. 1) cheap.

use serde::{Deserialize, Serialize};
use sna_obs::{count, phase_span, Metric, Phase};

use crate::error::{Error, Result};
use crate::mna::MnaSystem;
use crate::netlist::{Circuit, Element, NodeId};
use crate::solver::{SolverKind, SystemSolver};

/// Newton iteration controls shared by DC and transient analyses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NewtonOptions {
    /// Maximum iterations before declaring non-convergence.
    pub max_iter: usize,
    /// Absolute voltage tolerance (V) on the Newton update.
    pub vntol: f64,
    /// Relative tolerance on the Newton update.
    pub reltol: f64,
    /// Absolute KCL residual tolerance (A).
    pub abstol: f64,
    /// Maximum per-iteration voltage change (V); larger updates are scaled
    /// down (damping). Critical for MOSFET circuits started far from the
    /// solution.
    pub max_step: f64,
    /// Linear-solver backend for the DC system (the escape hatch over the
    /// dimension-based auto selection).
    pub solver: SolverKind,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            max_iter: 100,
            vntol: 1e-6,
            reltol: 1e-4,
            abstol: 1e-9,
            max_step: 0.3,
            solver: SolverKind::Auto,
        }
    }
}

/// Solution of a DC operating-point analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcSolution {
    x: Vec<f64>,
    /// Unknown index of each vsource's branch current, parallel to
    /// `vsource_names`.
    vsource_branch: Vec<usize>,
    vsource_names: Vec<String>,
    /// Newton iterations spent (diagnostic).
    pub iterations: usize,
}

impl DcSolution {
    /// Assemble a solution from raw parts (batched-sweep internal).
    pub(crate) fn from_parts(
        x: Vec<f64>,
        vsource_branch: Vec<usize>,
        vsource_names: Vec<String>,
        iterations: usize,
    ) -> Self {
        Self {
            x,
            vsource_branch,
            vsource_names,
            iterations,
        }
    }

    /// Voltage of `node` (0 for ground).
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.x[node.index() - 1]
        }
    }

    /// Branch current of the named voltage source (SPICE convention:
    /// positive flows from the + terminal through the source to −).
    pub fn vsource_current(&self, name: &str) -> Option<f64> {
        self.vsource_names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))
            .map(|k| self.x[self.vsource_branch[k]])
    }

    /// Raw unknown vector (nodes then branch currents).
    pub fn unknowns(&self) -> &[f64] {
        &self.x
    }
}

/// Solve one Newton problem: `(G + extra_gmin·I)x + f(x) = b`, warm-started
/// at `x0`. Returns `(x, iterations)`. The caller-owned `solver` carries
/// the factorization state across continuation stages, so the (sparse)
/// symbolic analysis is paid once per operating-point call.
#[allow(clippy::too_many_arguments)] // internal solver: explicit state beats a bag struct
fn newton_solve(
    circuit: &Circuit,
    mna: &MnaSystem,
    solver: &mut SystemSolver,
    b: &[f64],
    x0: &[f64],
    opts: &NewtonOptions,
    extra_gmin: f64,
    analysis: &'static str,
    time: f64,
) -> Result<(Vec<f64>, usize)> {
    let dim = mna.dim();
    let n_nodes = mna.n_nodes();
    let mut x = x0.to_vec();
    // Purely linear circuits: one direct solve.
    if !mna.has_nonlinear() && extra_gmin == 0.0 {
        solver.factor_base()?;
        solver.solve_into(b, &mut x);
        count(Metric::DcNewtonIterations, 1);
        return Ok((x, 1));
    }
    let mut residual = vec![0.0; dim];
    let mut neg_res = vec![0.0; dim];
    let mut dx = vec![0.0; dim];
    for it in 0..opts.max_iter {
        // residual = G x + f(x) - b ; jac = G + df/dx (+ gmin).
        solver.begin_jacobian();
        for i in 0..n_nodes {
            solver.jac_add(i, i, extra_gmin);
        }
        solver.g_mul_into(&x, &mut residual);
        for (r, bv) in residual.iter_mut().zip(b) {
            *r -= bv;
        }
        for (i, r) in residual.iter_mut().enumerate().take(n_nodes) {
            *r += extra_gmin * x[i];
        }
        mna.stamp_nonlinear(circuit, &x, &mut residual, Some(solver.jac_stamp()));
        let max_res = residual.iter().fold(0.0_f64, |a, &v| a.max(v.abs()));
        // Newton step: J dx = -residual.
        for (n, &r) in neg_res.iter_mut().zip(residual.iter()) {
            *n = -r;
        }
        solver.factor_jacobian()?;
        solver.solve_into(&neg_res, &mut dx);
        // Damping.
        let max_dx = dx.iter().fold(0.0_f64, |a, &v| a.max(v.abs()));
        let scale = if max_dx > opts.max_step {
            opts.max_step / max_dx
        } else {
            1.0
        };
        let mut converged = max_res < opts.abstol.max(1e-12);
        for i in 0..dim {
            let step = scale * dx[i];
            x[i] += step;
            if step.abs() > opts.reltol * x[i].abs() + opts.vntol {
                converged = false;
            }
        }
        if converged && scale == 1.0 {
            count(Metric::DcNewtonIterations, (it + 1) as u64);
            return Ok((x, it + 1));
        }
    }
    count(Metric::DcNewtonIterations, opts.max_iter as u64);
    // Final residual for the error report.
    solver.g_mul_into(&x, &mut residual);
    for (r, bv) in residual.iter_mut().zip(b) {
        *r -= bv;
    }
    mna.stamp_nonlinear(circuit, &x, &mut residual, None);
    let max_res = residual.iter().fold(0.0_f64, |a, &v| a.max(v.abs()));
    Err(Error::NonConvergence {
        analysis,
        iterations: opts.max_iter,
        time,
        residual: max_res,
    })
}

pub(crate) fn vsource_names(circuit: &Circuit, mna: &MnaSystem) -> Vec<String> {
    mna.vsources()
        .iter()
        .map(|id| circuit.element(*id).name().to_string())
        .collect()
}

/// Compute the DC operating point with full continuation fallbacks.
///
/// `warm_start` (raw unknown vector from a previous [`DcSolution`]) seeds
/// Newton; sweeps should always pass the previous point.
///
/// # Errors
///
/// [`Error::NonConvergence`] if plain Newton, gmin stepping, and source
/// stepping all fail; [`Error::SingularMatrix`] on structurally singular
/// circuits.
pub fn dc_operating_point(
    circuit: &Circuit,
    opts: &NewtonOptions,
    warm_start: Option<&[f64]>,
) -> Result<DcSolution> {
    let mna = MnaSystem::new(circuit)?;
    // One solver for the whole continuation ladder: the (sparse) symbolic
    // analysis and pattern allocation happen once, every Newton iteration
    // afterwards is a numeric refactor.
    let mut solver = SystemSolver::new(&mna, circuit, opts.solver);
    dc_operating_point_with(circuit, opts, warm_start, &mna, &mut solver)
}

/// [`dc_operating_point`] on a caller-owned MNA system and solver — the
/// path for workspaces (e.g. [`crate::tran::TranWorkspace`]) that already
/// paid matrix assembly and symbolic analysis for this circuit. The
/// solver's α is reset to 0 (`G`-only) on entry; the caller re-applies its
/// own α afterwards.
///
/// # Errors
///
/// As [`dc_operating_point`].
pub fn dc_operating_point_with(
    circuit: &Circuit,
    opts: &NewtonOptions,
    warm_start: Option<&[f64]>,
    mna: &MnaSystem,
    solver: &mut SystemSolver,
) -> Result<DcSolution> {
    let _t = phase_span(Phase::Dc);
    count(Metric::DcSolves, 1);
    let dim = mna.dim();
    solver.set_alpha(0.0);
    let b = mna.rhs(circuit, 0.0, 1.0);
    let x0: Vec<f64> = match warm_start {
        Some(w) if w.len() == dim => w.to_vec(),
        _ => vec![0.0; dim],
    };
    // 1. Plain Newton.
    if let Ok((x, iterations)) = newton_solve(circuit, mna, solver, &b, &x0, opts, 0.0, "dc", 0.0) {
        return Ok(DcSolution {
            x,
            vsource_branch: mna.vsource_branches().to_vec(),
            vsource_names: vsource_names(circuit, mna),
            iterations,
        });
    }
    // 2. Gmin stepping: heavy shunt conductance, relaxed geometrically.
    count(Metric::DcGminFallbacks, 1);
    let mut x = x0.clone();
    let mut total_iters = 0;
    let mut gmin = 1e-2;
    let mut ok = true;
    while gmin > 1e-13 {
        match newton_solve(circuit, mna, solver, &b, &x, opts, gmin, "dc-gmin", 0.0) {
            Ok((xs, it)) => {
                x = xs;
                total_iters += it;
            }
            Err(_) => {
                ok = false;
                break;
            }
        }
        gmin *= 0.1;
    }
    if ok {
        if let Ok((x, it)) = newton_solve(circuit, mna, solver, &b, &x, opts, 0.0, "dc-gmin", 0.0) {
            return Ok(DcSolution {
                x,
                vsource_branch: mna.vsource_branches().to_vec(),
                vsource_names: vsource_names(circuit, mna),
                iterations: total_iters + it,
            });
        }
    }
    // 3. Source stepping.
    count(Metric::DcSourceStepFallbacks, 1);
    let mut x = vec![0.0; dim];
    let mut total_iters = 0;
    let steps = 20;
    let mut bk = vec![0.0; dim];
    for k in 1..=steps {
        let scale = k as f64 / steps as f64;
        mna.rhs_into(circuit, 0.0, scale, &mut bk);
        let (xs, it) = newton_solve(circuit, mna, solver, &bk, &x, opts, 0.0, "dc-srcstep", 0.0)?;
        x = xs;
        total_iters += it;
    }
    Ok(DcSolution {
        x,
        vsource_branch: mna.vsource_branches().to_vec(),
        vsource_names: vsource_names(circuit, mna),
        iterations: total_iters,
    })
}

/// Sweep the DC value of the named voltage source over `values`,
/// warm-starting each point. Returns one solution per value.
///
/// # Errors
///
/// Fails if the source does not exist or any point fails to converge.
pub fn dc_sweep(
    circuit: &mut Circuit,
    source: &str,
    values: &[f64],
    opts: &NewtonOptions,
) -> Result<Vec<DcSolution>> {
    if values.is_empty() {
        return Err(Error::InvalidAnalysis("empty DC sweep".into()));
    }
    let mut out = Vec::with_capacity(values.len());
    let mut warm: Option<Vec<f64>> = None;
    for &v in values {
        circuit.set_source_wave(source, crate::devices::SourceWaveform::Dc(v))?;
        let sol = dc_operating_point(circuit, opts, warm.as_deref())?;
        warm = Some(sol.unknowns().to_vec());
        out.push(sol);
    }
    Ok(out)
}

/// Small-signal conductance seen into `node` from ground, by finite
/// difference of an injected probe current around the operating point.
///
/// This is how the *holding resistance* of a victim driver is extracted for
/// the linear-superposition baseline: `R_hold = 1 / conductance`.
///
/// # Errors
///
/// Propagates DC convergence failures.
pub fn dc_input_conductance(circuit: &Circuit, node: NodeId, opts: &NewtonOptions) -> Result<f64> {
    let base = dc_operating_point(circuit, opts, None)?;
    let v0 = base.voltage(node);
    // Inject a small probe current and measure the voltage shift.
    let i_probe = 1e-6;
    let mut probed = circuit.clone();
    probed.add_isource(
        "__gprobe",
        Circuit::gnd(),
        node,
        crate::devices::SourceWaveform::Dc(i_probe),
    );
    let sol = dc_operating_point(&probed, opts, Some(base.unknowns()))?;
    let v1 = sol.voltage(node);
    let dv = v1 - v0;
    if dv.abs() < 1e-15 {
        return Err(Error::InvalidAnalysis(
            "probe produced no voltage change; node may be voltage-driven".into(),
        ));
    }
    Ok(i_probe / dv)
}

/// Measured element current in a DC solution (voltage sources only).
///
/// Convenience wrapper used by characterization: the drain current of a
/// device under test is read as the branch current of the source that
/// holds its drain.
pub fn vsource_current(circuit: &Circuit, sol: &DcSolution, name: &str) -> Result<f64> {
    let _ = circuit;
    sol.vsource_current(name)
        .ok_or_else(|| Error::InvalidCircuit(format!("no voltage source named {name}")))
}

/// Element enum re-export check helper (internal).
#[allow(dead_code)]
fn _assert_element_shape(e: &Element) -> &str {
    e.name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{MosPolarity, MosfetModel, SourceWaveform};
    use crate::netlist::Circuit;

    fn nmos() -> MosfetModel {
        MosfetModel {
            polarity: MosPolarity::Nmos,
            vt0: 0.32,
            kp: 2.5e-4,
            lambda: 0.15,
            gamma: 0.4,
            phi: 0.7,
            cox: 0.012,
            cgso: 3e-10,
            cgdo: 3e-10,
            cj: 8e-10,
        }
    }

    fn pmos() -> MosfetModel {
        MosfetModel {
            polarity: MosPolarity::Pmos,
            vt0: -0.34,
            kp: 1.0e-4,
            ..nmos()
        }
    }

    #[test]
    fn resistive_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::gnd(), SourceWaveform::Dc(3.0));
        ckt.add_resistor("R1", a, b, 2000.0).unwrap();
        ckt.add_resistor("R2", b, Circuit::gnd(), 1000.0).unwrap();
        let sol = dc_operating_point(&ckt, &NewtonOptions::default(), None).unwrap();
        assert!((sol.voltage(b) - 1.0).abs() < 1e-6);
        assert!((sol.vsource_current("V1").unwrap() + 1e-3).abs() < 1e-8);
    }

    #[test]
    fn inverter_transfer_points() {
        // CMOS inverter: input low -> output at vdd; input high -> output 0.
        let vdd = 1.2;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        let vddn = ckt.node("vdd");
        ckt.add_vsource("Vdd", vddn, Circuit::gnd(), SourceWaveform::Dc(vdd));
        ckt.add_vsource("Vin", vin, Circuit::gnd(), SourceWaveform::Dc(0.0));
        ckt.add_mosfet(
            "Mn",
            vout,
            vin,
            Circuit::gnd(),
            Circuit::gnd(),
            nmos(),
            0.42e-6,
            0.13e-6,
        )
        .unwrap();
        ckt.add_mosfet("Mp", vout, vin, vddn, vddn, pmos(), 0.64e-6, 0.13e-6)
            .unwrap();
        let sol = dc_operating_point(&ckt, &NewtonOptions::default(), None).unwrap();
        assert!(
            (sol.voltage(vout) - vdd).abs() < 0.02,
            "out={} expected ~{}",
            sol.voltage(vout),
            vdd
        );
        ckt.set_source_wave("Vin", SourceWaveform::Dc(vdd)).unwrap();
        let sol = dc_operating_point(&ckt, &NewtonOptions::default(), None).unwrap();
        assert!(sol.voltage(vout).abs() < 0.02, "out={}", sol.voltage(vout));
    }

    #[test]
    fn inverter_dc_sweep_monotone() {
        let vdd = 1.2;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        let vddn = ckt.node("vdd");
        ckt.add_vsource("Vdd", vddn, Circuit::gnd(), SourceWaveform::Dc(vdd));
        ckt.add_vsource("Vin", vin, Circuit::gnd(), SourceWaveform::Dc(0.0));
        ckt.add_mosfet(
            "Mn",
            vout,
            vin,
            Circuit::gnd(),
            Circuit::gnd(),
            nmos(),
            0.42e-6,
            0.13e-6,
        )
        .unwrap();
        ckt.add_mosfet("Mp", vout, vin, vddn, vddn, pmos(), 0.64e-6, 0.13e-6)
            .unwrap();
        let values: Vec<f64> = (0..=24).map(|i| vdd * i as f64 / 24.0).collect();
        let sols = dc_sweep(&mut ckt, "Vin", &values, &NewtonOptions::default()).unwrap();
        let outs: Vec<f64> = sols.iter().map(|s| s.voltage(vout)).collect();
        // Monotone non-increasing transfer curve.
        for w in outs.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "VTC not monotone: {outs:?}");
        }
        assert!(outs[0] > vdd - 0.05);
        assert!(outs[24] < 0.05);
    }

    #[test]
    fn nand2_output_low_when_both_high() {
        let vdd = 1.2;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let out = ckt.node("out");
        let mid = ckt.node("mid");
        let vddn = ckt.node("vdd");
        ckt.add_vsource("Vdd", vddn, Circuit::gnd(), SourceWaveform::Dc(vdd));
        ckt.add_vsource("Va", a, Circuit::gnd(), SourceWaveform::Dc(vdd));
        ckt.add_vsource("Vb", b, Circuit::gnd(), SourceWaveform::Dc(vdd));
        // NMOS stack.
        ckt.add_mosfet("Mn1", out, a, mid, Circuit::gnd(), nmos(), 0.6e-6, 0.13e-6)
            .unwrap();
        ckt.add_mosfet(
            "Mn2",
            mid,
            b,
            Circuit::gnd(),
            Circuit::gnd(),
            nmos(),
            0.6e-6,
            0.13e-6,
        )
        .unwrap();
        // Parallel PMOS.
        ckt.add_mosfet("Mp1", out, a, vddn, vddn, pmos(), 0.64e-6, 0.13e-6)
            .unwrap();
        ckt.add_mosfet("Mp2", out, b, vddn, vddn, pmos(), 0.64e-6, 0.13e-6)
            .unwrap();
        let sol = dc_operating_point(&ckt, &NewtonOptions::default(), None).unwrap();
        assert!(sol.voltage(out) < 0.03, "out={}", sol.voltage(out));
        // One input low -> output high.
        ckt.set_source_wave("Va", SourceWaveform::Dc(0.0)).unwrap();
        let sol = dc_operating_point(&ckt, &NewtonOptions::default(), None).unwrap();
        assert!(sol.voltage(out) > vdd - 0.03, "out={}", sol.voltage(out));
    }

    #[test]
    fn holding_conductance_of_grounded_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_resistor("R", a, Circuit::gnd(), 2500.0).unwrap();
        // Keep the matrix well-posed with a source somewhere.
        let b = ckt.node("b");
        ckt.add_vsource("V", b, Circuit::gnd(), SourceWaveform::Dc(1.0));
        ckt.add_resistor("Rb", b, a, 1e9).unwrap();
        let g = dc_input_conductance(&ckt, a, &NewtonOptions::default()).unwrap();
        assert!((1.0 / g - 2500.0).abs() / 2500.0 < 1e-3, "g={g}");
    }

    #[test]
    fn table_vccs_dc_solution() {
        use crate::devices::table2d::{linspace, Table2d};
        // VCCS emulating a 1 kS resistor to ground: i = 1e-3 * vout,
        // independent of vin.
        let t = Table2d::from_fn(linspace(-1.0, 1.0, 3), linspace(-2.0, 2.0, 5), |_x, y| {
            1e-3 * y
        })
        .unwrap();
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("Vin", inp, Circuit::gnd(), SourceWaveform::Dc(0.5));
        // 1 uA pushed into out; should settle at 1 mV.
        ckt.add_isource("I1", Circuit::gnd(), out, SourceWaveform::Dc(1e-6));
        ckt.add_table_vccs("Gnl", out, Circuit::gnd(), inp, t);
        let sol = dc_operating_point(&ckt, &NewtonOptions::default(), None).unwrap();
        assert!(
            (sol.voltage(out) - 1e-3).abs() < 1e-7,
            "v={}",
            sol.voltage(out)
        );
    }

    #[test]
    fn empty_sweep_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource("V", a, Circuit::gnd(), SourceWaveform::Dc(0.0));
        ckt.add_resistor("R", a, Circuit::gnd(), 1.0).unwrap();
        assert!(dc_sweep(&mut ckt, "V", &[], &NewtonOptions::default()).is_err());
    }
}
