//! Modified Nodal Analysis assembly.
//!
//! Unknown ordering: node voltages for nodes `1..node_count` (ground
//! excluded) followed by one branch current per *voltage-defined* element
//! — independent voltage sources and the E/H controlled sources — in
//! element order. The linear part is split into a conductance matrix `G`
//! (resistors, linear controlled sources, branch incidence rows) and a
//! capacitance matrix `C`, so transient integration can form `G + α·C` per
//! step size. Non-linear devices (MOSFETs, diodes, table VCCS) contribute
//! residual currents and Jacobian entries per Newton iteration via
//! [`MnaSystem::stamp_nonlinear`].

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::linalg::{DenseMatrix, MatrixStamp};
use crate::netlist::{Circuit, Element, ElementId, NodeId};

/// Minimum conductance tied from every node to ground; keeps otherwise
/// floating nodes solvable, mirroring SPICE's GMIN.
pub const GMIN: f64 = 1e-12;

/// Assembled MNA system for one circuit.
#[derive(Debug, Clone)]
pub struct MnaSystem {
    n_nodes: usize,
    dim: usize,
    g: DenseMatrix,
    c: DenseMatrix,
    /// Element ids of all branch-current elements (V/E/H), branch order.
    branches: Vec<ElementId>,
    /// Element ids of independent voltage sources, in element order.
    vsources: Vec<ElementId>,
    /// Unknown index of each vsource's branch current, parallel to
    /// `vsources` (no longer contiguous once E/H branches interleave).
    vsource_branch: Vec<usize>,
    /// Element ids of current sources.
    isources: Vec<ElementId>,
    /// Element ids of nonlinear devices.
    nonlinear: Vec<ElementId>,
}

impl MnaSystem {
    /// Assemble the linear part of `circuit`.
    ///
    /// # Errors
    ///
    /// Propagates structural validation failures.
    pub fn new(circuit: &Circuit) -> Result<Self> {
        circuit.validate()?;
        let n_nodes = circuit.node_count() - 1;
        // Pass 1: classify elements and assign branch slots. Doing this
        // before stamping lets F/H elements resolve their controlling
        // source's branch column even when it is defined later in the deck.
        let mut branches: Vec<ElementId> = Vec::new();
        let mut vsources: Vec<ElementId> = Vec::new();
        let mut vsource_branch: Vec<usize> = Vec::new();
        let mut isources: Vec<ElementId> = Vec::new();
        let mut nonlinear: Vec<ElementId> = Vec::new();
        // Lower-cased vsource name → branch unknown index, for F/H control
        // resolution.
        let mut vsrc_by_name: HashMap<String, usize> = HashMap::new();
        for (i, e) in circuit.elements().iter().enumerate() {
            let id = ElementId(i);
            if e.has_branch_current() {
                let bi = n_nodes + branches.len();
                branches.push(id);
                if let Element::VSource { name, .. } = e {
                    vsources.push(id);
                    vsource_branch.push(bi);
                    vsrc_by_name.insert(name.to_ascii_lowercase(), bi);
                }
            }
            if matches!(e, Element::ISource { .. }) {
                isources.push(id);
            }
            if e.is_nonlinear() {
                nonlinear.push(id);
            }
        }
        let resolve_ctrl = |kind: &str, name: &str, ctrl: &str| -> Result<usize> {
            vsrc_by_name
                .get(&ctrl.to_ascii_lowercase())
                .copied()
                .ok_or_else(|| {
                    Error::InvalidCircuit(format!(
                        "{kind} {name}: controlling source '{ctrl}' is not an \
                         independent voltage source in this circuit"
                    ))
                })
        };
        let dim = n_nodes + branches.len();
        if dim == 0 {
            return Err(Error::InvalidCircuit(
                "circuit has no unknowns (only ground)".into(),
            ));
        }
        let mut g = DenseMatrix::zeros(dim, dim);
        let mut c = DenseMatrix::zeros(dim, dim);
        // GMIN anchors every node.
        for i in 0..n_nodes {
            g.add(i, i, GMIN);
        }
        // Helper: unknown index of a node, None for ground.
        let ui = |n: NodeId| -> Option<usize> {
            if n.is_ground() {
                None
            } else {
                Some(n.index() - 1)
            }
        };
        // Stamp two-terminal admittance y between nodes a, b into m.
        let stamp_pair = |m: &mut DenseMatrix, a: NodeId, b: NodeId, y: f64| {
            if let Some(i) = ui(a) {
                m.add(i, i, y);
                if let Some(j) = ui(b) {
                    m.add(i, j, -y);
                    m.add(j, i, -y);
                    m.add(j, j, y);
                }
            } else if let Some(j) = ui(b) {
                m.add(j, j, y);
            }
        };
        let mut branch = 0usize;
        for e in circuit.elements() {
            match e {
                Element::Resistor { a, b, ohms, .. } => {
                    stamp_pair(&mut g, *a, *b, 1.0 / ohms);
                }
                Element::Capacitor { a, b, farads, .. } => {
                    stamp_pair(&mut c, *a, *b, *farads);
                }
                Element::VSource { pos, neg, .. } => {
                    let bi = n_nodes + branch;
                    branch += 1;
                    if let Some(i) = ui(*pos) {
                        g.add(i, bi, 1.0);
                        g.add(bi, i, 1.0);
                    }
                    if let Some(j) = ui(*neg) {
                        g.add(j, bi, -1.0);
                        g.add(bi, j, -1.0);
                    }
                }
                Element::Vcvs {
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    gain,
                    ..
                } => {
                    // Branch row: v(out_p) − v(out_n) − gain·(v(ctrl_p) −
                    // v(ctrl_n)) = 0; branch current enters the output KCL.
                    let bi = n_nodes + branch;
                    branch += 1;
                    if let Some(i) = ui(*out_p) {
                        g.add(i, bi, 1.0);
                        g.add(bi, i, 1.0);
                    }
                    if let Some(j) = ui(*out_n) {
                        g.add(j, bi, -1.0);
                        g.add(bi, j, -1.0);
                    }
                    if let Some(j) = ui(*ctrl_p) {
                        g.add(bi, j, -gain);
                    }
                    if let Some(j) = ui(*ctrl_n) {
                        g.add(bi, j, *gain);
                    }
                }
                Element::Ccvs {
                    name,
                    out_p,
                    out_n,
                    ctrl,
                    r,
                } => {
                    // Branch row: v(out_p) − v(out_n) − r·i(ctrl) = 0.
                    let bi = n_nodes + branch;
                    branch += 1;
                    let cb = resolve_ctrl("ccvs", name, ctrl)?;
                    if let Some(i) = ui(*out_p) {
                        g.add(i, bi, 1.0);
                        g.add(bi, i, 1.0);
                    }
                    if let Some(j) = ui(*out_n) {
                        g.add(j, bi, -1.0);
                        g.add(bi, j, -1.0);
                    }
                    g.add(bi, cb, -r);
                }
                Element::Cccs {
                    name,
                    out_p,
                    out_n,
                    ctrl,
                    gain,
                } => {
                    // i(out_p→out_n) = gain·i(ctrl): couples the output KCL
                    // rows to the controlling source's branch column — no
                    // unknown of its own.
                    let cb = resolve_ctrl("cccs", name, ctrl)?;
                    if let Some(i) = ui(*out_p) {
                        g.add(i, cb, *gain);
                    }
                    if let Some(j) = ui(*out_n) {
                        g.add(j, cb, -gain);
                    }
                }
                Element::ISource { .. } => {}
                Element::LinearVccs {
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    gm,
                    ..
                } => {
                    // i(out_p -> out_n) = gm * (v(ctrl_p) - v(ctrl_n))
                    for (out, sign_out) in [(*out_p, 1.0), (*out_n, -1.0)] {
                        if let Some(i) = ui(out) {
                            if let Some(j) = ui(*ctrl_p) {
                                g.add(i, j, sign_out * gm);
                            }
                            if let Some(j) = ui(*ctrl_n) {
                                g.add(i, j, -sign_out * gm);
                            }
                        }
                    }
                }
                Element::TableVccs { .. } | Element::Diode { .. } | Element::Mosfet { .. } => {}
            }
        }
        debug_assert_eq!(branch, branches.len());
        Ok(Self {
            n_nodes,
            dim,
            g,
            c,
            branches,
            vsources,
            vsource_branch,
            isources,
            nonlinear,
        })
    }

    /// Number of non-ground nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Total unknown count (nodes + branch-current unknowns).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// All branch-current elements (V/E/H) in branch order.
    pub fn branches(&self) -> &[ElementId] {
        &self.branches
    }

    /// Linear conductance matrix (with voltage-source incidence rows).
    pub fn g_matrix(&self) -> &DenseMatrix {
        &self.g
    }

    /// Capacitance matrix.
    pub fn c_matrix(&self) -> &DenseMatrix {
        &self.c
    }

    /// Independent voltage-source element ids in element order.
    pub fn vsources(&self) -> &[ElementId] {
        &self.vsources
    }

    /// Unknown index of the branch current of the `k`-th *voltage source*
    /// (index into [`MnaSystem::vsources`]). Not contiguous with `n_nodes`
    /// once E/H elements interleave their own branches.
    pub fn vsource_branch(&self, k: usize) -> usize {
        self.vsource_branch[k]
    }

    /// Unknown indices of every voltage source's branch current, parallel
    /// to [`MnaSystem::vsources`].
    pub fn vsource_branches(&self) -> &[usize] {
        &self.vsource_branch
    }

    /// Whether Newton iteration is required.
    pub fn has_nonlinear(&self) -> bool {
        !self.nonlinear.is_empty()
    }

    /// Unknown index of a node's voltage, or `None` for ground.
    pub fn node_unknown(&self, n: NodeId) -> Option<usize> {
        if n.is_ground() {
            None
        } else {
            Some(n.index() - 1)
        }
    }

    /// Unknown index of the current of the `k`-th *branch element* (index
    /// into [`MnaSystem::branches`]).
    pub fn branch_unknown(&self, k: usize) -> usize {
        self.n_nodes + k
    }

    /// Voltage of `node` in solution vector `x` (0 for ground).
    pub fn voltage(&self, x: &[f64], node: NodeId) -> f64 {
        match self.node_unknown(node) {
            Some(i) => x[i],
            None => 0.0,
        }
    }

    /// Right-hand side vector at time `t`, with all independent sources
    /// scaled by `scale` (used by source stepping; normally `1.0`).
    pub fn rhs(&self, circuit: &Circuit, t: f64, scale: f64) -> Vec<f64> {
        let mut b = vec![0.0; self.dim];
        self.rhs_into(circuit, t, scale, &mut b);
        b
    }

    /// Allocation-free [`MnaSystem::rhs`]: overwrite `out` with the
    /// right-hand side at time `t`. This is the variant the transient
    /// stepping loops call once per step.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != dim()`.
    pub fn rhs_into(&self, circuit: &Circuit, t: f64, scale: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim);
        out.fill(0.0);
        for (k, id) in self.vsources.iter().enumerate() {
            if let Element::VSource { wave, .. } = circuit.element(*id) {
                out[self.vsource_branch[k]] = scale * wave.eval(t);
            }
        }
        for id in &self.isources {
            if let Element::ISource { pos, neg, wave, .. } = circuit.element(*id) {
                let i = scale * wave.eval(t);
                // Current leaves `pos` (so it subtracts from the KCL
                // injection at pos) and enters `neg`.
                if let Some(p) = self.node_unknown(*pos) {
                    out[p] -= i;
                }
                if let Some(n) = self.node_unknown(*neg) {
                    out[n] += i;
                }
            }
        }
    }

    /// Add non-linear device currents to `residual` (KCL convention:
    /// current *leaving* a node through a device adds positively, matching
    /// `G·x` on the linear side) and, when `jac` is given, their
    /// conductances into the Jacobian — any [`MatrixStamp`] sink works:
    /// dense, sparse, or a pattern collector. The set of stamped positions
    /// is independent of `x`, which is what lets the sparse solver size
    /// its pattern from a single collection pass.
    pub fn stamp_nonlinear(
        &self,
        circuit: &Circuit,
        x: &[f64],
        residual: &mut [f64],
        mut jac: Option<&mut dyn MatrixStamp>,
    ) {
        for id in &self.nonlinear {
            match circuit.element(*id) {
                Element::Mosfet {
                    d,
                    g,
                    s,
                    b,
                    model,
                    w,
                    l,
                    ..
                } => {
                    let vd = self.voltage(x, *d);
                    let vg = self.voltage(x, *g);
                    let vs = self.voltage(x, *s);
                    let vb = self.voltage(x, *b);
                    let e = model.eval_terminal(vd, vg, vs, vb, *w, *l);
                    // Current e.id flows into drain terminal, out of source.
                    if let Some(i) = self.node_unknown(*d) {
                        residual[i] += e.id;
                    }
                    if let Some(i) = self.node_unknown(*s) {
                        residual[i] -= e.id;
                    }
                    if let Some(j) = jac.as_deref_mut() {
                        let terms = [(*d, e.gd), (*g, e.gg), (*s, e.gs), (*b, e.gb)];
                        if let Some(i) = self.node_unknown(*d) {
                            for (n, gv) in terms {
                                if let Some(jn) = self.node_unknown(n) {
                                    j.add(i, jn, gv);
                                }
                            }
                        }
                        if let Some(i) = self.node_unknown(*s) {
                            for (n, gv) in terms {
                                if let Some(jn) = self.node_unknown(n) {
                                    j.add(i, jn, -gv);
                                }
                            }
                        }
                    }
                }
                Element::TableVccs {
                    out_p,
                    out_n,
                    ctrl,
                    table,
                    ..
                } => {
                    let vin = self.voltage(x, *ctrl);
                    let vout = self.voltage(x, *out_p) - self.voltage(x, *out_n);
                    let e = table.eval(vin, vout);
                    if let Some(i) = self.node_unknown(*out_p) {
                        residual[i] += e.z;
                    }
                    if let Some(i) = self.node_unknown(*out_n) {
                        residual[i] -= e.z;
                    }
                    if let Some(j) = jac.as_deref_mut() {
                        let terms = [(*ctrl, e.dz_dx), (*out_p, e.dz_dy), (*out_n, -e.dz_dy)];
                        if let Some(i) = self.node_unknown(*out_p) {
                            for (n, gv) in terms {
                                if let Some(jn) = self.node_unknown(n) {
                                    j.add(i, jn, gv);
                                }
                            }
                        }
                        if let Some(i) = self.node_unknown(*out_n) {
                            for (n, gv) in terms {
                                if let Some(jn) = self.node_unknown(n) {
                                    j.add(i, jn, -gv);
                                }
                            }
                        }
                    }
                }
                Element::Diode { p, n, model, .. } => {
                    let vd = self.voltage(x, *p) - self.voltage(x, *n);
                    let e = model.eval(vd);
                    // Current e.id flows anode → cathode through the diode.
                    if let Some(i) = self.node_unknown(*p) {
                        residual[i] += e.id;
                    }
                    if let Some(i) = self.node_unknown(*n) {
                        residual[i] -= e.id;
                    }
                    if let Some(j) = jac.as_deref_mut() {
                        if let Some(i) = self.node_unknown(*p) {
                            j.add(i, i, e.gd);
                            if let Some(jn) = self.node_unknown(*n) {
                                j.add(i, jn, -e.gd);
                            }
                        }
                        if let Some(i) = self.node_unknown(*n) {
                            j.add(i, i, e.gd);
                            if let Some(jp) = self.node_unknown(*p) {
                                j.add(i, jp, -e.gd);
                            }
                        }
                    }
                }
                _ => unreachable!("nonlinear list holds only mosfets, diodes, and table vccs"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::SourceWaveform;

    #[test]
    fn divider_matrices() {
        // v1 --R1-- n1 --R2-- gnd, V source 2V.
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        let n2 = ckt.node("n2");
        ckt.add_vsource("V1", n1, Circuit::gnd(), SourceWaveform::Dc(2.0));
        ckt.add_resistor("R1", n1, n2, 1000.0).unwrap();
        ckt.add_resistor("R2", n2, Circuit::gnd(), 1000.0).unwrap();
        let mna = MnaSystem::new(&ckt).unwrap();
        assert_eq!(mna.n_nodes(), 2);
        assert_eq!(mna.dim(), 3);
        let g = mna.g_matrix();
        // Node n1 row: 1/R1 (+GMIN) and -1/R1 and +1 branch col.
        assert!((g[(0, 0)] - 1e-3).abs() < 1e-9);
        assert!((g[(0, 1)] + 1e-3).abs() < 1e-15);
        assert_eq!(g[(0, 2)], 1.0);
        // Solve G x = b.
        let b = mna.rhs(&ckt, 0.0, 1.0);
        assert_eq!(b[2], 2.0);
        let x = g.solve(&b).unwrap();
        assert!((mna.voltage(&x, n1) - 2.0).abs() < 1e-6);
        assert!((mna.voltage(&x, n2) - 1.0).abs() < 1e-6);
        // Branch current: 2V across 2k -> 1mA, flowing out of + through R
        // back into -; branch current (pos->through source->neg) is -1mA.
        assert!((x[2] + 1e-3).abs() < 1e-9);
    }

    #[test]
    fn isource_rhs_sign() {
        // 1A pulled from node a through the source into ground: node a
        // should settle at -R volts with a grounding resistor.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_isource("I1", a, Circuit::gnd(), SourceWaveform::Dc(1.0));
        ckt.add_resistor("R1", a, Circuit::gnd(), 10.0).unwrap();
        let mna = MnaSystem::new(&ckt).unwrap();
        let b = mna.rhs(&ckt, 0.0, 1.0);
        let x = mna.g_matrix().solve(&b).unwrap();
        assert!((mna.voltage(&x, a) + 10.0).abs() < 1e-6);
    }

    #[test]
    fn linear_vccs_stamp() {
        // VCCS driving current gm*v(c) out of node o into ground;
        // with R at o, v(o) = -gm*R*v(c).
        let mut ckt = Circuit::new();
        let cnode = ckt.node("c");
        let o = ckt.node("o");
        ckt.add_vsource("Vc", cnode, Circuit::gnd(), SourceWaveform::Dc(1.0));
        ckt.add_linear_vccs("G1", o, Circuit::gnd(), cnode, Circuit::gnd(), 1e-3);
        ckt.add_resistor("Ro", o, Circuit::gnd(), 1000.0).unwrap();
        let mna = MnaSystem::new(&ckt).unwrap();
        let b = mna.rhs(&ckt, 0.0, 1.0);
        let x = mna.g_matrix().solve(&b).unwrap();
        assert!((mna.voltage(&x, o) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn capacitors_go_to_c_matrix() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource("V", a, Circuit::gnd(), SourceWaveform::Dc(1.0));
        ckt.add_capacitor("C1", a, Circuit::gnd(), 1e-12).unwrap();
        let mna = MnaSystem::new(&ckt).unwrap();
        assert!((mna.c_matrix()[(0, 0)] - 1e-12).abs() < 1e-24);
        assert_eq!(mna.g_matrix()[(0, 0)], GMIN);
    }

    #[test]
    fn source_scaling() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource("V", a, Circuit::gnd(), SourceWaveform::Dc(2.0));
        ckt.add_resistor("R", a, Circuit::gnd(), 1.0).unwrap();
        let mna = MnaSystem::new(&ckt).unwrap();
        let b = mna.rhs(&ckt, 0.0, 0.5);
        assert_eq!(b[mna.branch_unknown(0)], 1.0);
    }
}
