//! Circuit netlist representation.
//!
//! A [`Circuit`] is a flat element list over named nodes. Node `0` is
//! ground (`"0"` / `"gnd"`). Builders return the element index so callers
//! can later retarget source waveforms (e.g. the worst-case alignment
//! search re-shifts aggressor ramps without rebuilding the cluster).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::devices::{DiodeModel, MosfetModel, SourceWaveform, Table2d};
use crate::error::{Error, Result};

/// Handle to a circuit node. `NodeId::GROUND` is the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground / reference node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index (0 = ground). Mainly useful for diagnostics.
    pub fn index(self) -> usize {
        self.0
    }

    /// Whether this is the reference node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Handle to an element within a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ElementId(pub(crate) usize);

/// A circuit element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (must be positive).
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (must be non-negative).
        farads: f64,
    },
    /// Independent voltage source; `pos` − `neg` equals the waveform value.
    VSource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// EMF as a function of time.
        wave: SourceWaveform,
    },
    /// Independent current source; the waveform value flows from `pos`
    /// through the source to `neg` (SPICE convention: positive value pulls
    /// current out of `pos` and pushes it into `neg`).
    ISource {
        /// Instance name.
        name: String,
        /// Terminal current is drawn from.
        pos: NodeId,
        /// Terminal current is pushed into.
        neg: NodeId,
        /// Current as a function of time.
        wave: SourceWaveform,
    },
    /// Linear voltage-controlled current source:
    /// `i(out_p→out_n) = gm · (V(ctrl_p) − V(ctrl_n))`.
    LinearVccs {
        /// Instance name.
        name: String,
        /// Current exits this node.
        out_p: NodeId,
        /// Current enters this node.
        out_n: NodeId,
        /// Positive controlling node.
        ctrl_p: NodeId,
        /// Negative controlling node.
        ctrl_n: NodeId,
        /// Transconductance in siemens.
        gm: f64,
    },
    /// Table-driven non-linear VCCS — the paper's victim-driver macromodel.
    ///
    /// The current `i = table(V(ctrl), V(out_p) − V(out_n))` flows from
    /// `out_p` to `out_n`. With `out_n = ground` and the table holding the
    /// characterized cell output current (positive = the cell sinking
    /// current from its output node), this is exactly the `I_DC` element of
    /// Figure 1 in the paper.
    TableVccs {
        /// Instance name.
        name: String,
        /// Node the current leaves (the victim driving point).
        out_p: NodeId,
        /// Node the current enters (usually ground).
        out_n: NodeId,
        /// Controlling input node (the victim driver's input).
        ctrl: NodeId,
        /// `I_DC = f(V_ctrl, V_out)` load-curve table.
        table: Table2d,
    },
    /// Linear voltage-controlled voltage source (SPICE `E`):
    /// `V(out_p) − V(out_n) = gain · (V(ctrl_p) − V(ctrl_n))`. Adds one
    /// branch-current unknown.
    Vcvs {
        /// Instance name.
        name: String,
        /// Positive output terminal.
        out_p: NodeId,
        /// Negative output terminal.
        out_n: NodeId,
        /// Positive controlling node.
        ctrl_p: NodeId,
        /// Negative controlling node.
        ctrl_n: NodeId,
        /// Voltage gain (dimensionless).
        gain: f64,
    },
    /// Linear current-controlled current source (SPICE `F`):
    /// `i(out_p→out_n) = gain · i(ctrl)` where `ctrl` names an independent
    /// voltage source whose branch current is the controlling quantity.
    Cccs {
        /// Instance name.
        name: String,
        /// Current exits this node.
        out_p: NodeId,
        /// Current enters this node.
        out_n: NodeId,
        /// Name of the controlling voltage source.
        ctrl: String,
        /// Current gain (dimensionless).
        gain: f64,
    },
    /// Linear current-controlled voltage source (SPICE `H`):
    /// `V(out_p) − V(out_n) = r · i(ctrl)`. Adds one branch-current
    /// unknown; `ctrl` names an independent voltage source.
    Ccvs {
        /// Instance name.
        name: String,
        /// Positive output terminal.
        out_p: NodeId,
        /// Negative output terminal.
        out_n: NodeId,
        /// Name of the controlling voltage source.
        ctrl: String,
        /// Transresistance (ohms).
        r: f64,
    },
    /// Junction diode (anode → cathode), Shockley model with a linearized
    /// overflow-safe high-bias extension.
    Diode {
        /// Instance name.
        name: String,
        /// Anode terminal.
        p: NodeId,
        /// Cathode terminal.
        n: NodeId,
        /// Model card.
        model: DiodeModel,
    },
    /// MOSFET with lumped constant capacitances (see
    /// [`MosfetModel::capacitances`]).
    Mosfet {
        /// Instance name.
        name: String,
        /// Drain terminal.
        d: NodeId,
        /// Gate terminal.
        g: NodeId,
        /// Source terminal.
        s: NodeId,
        /// Bulk terminal.
        b: NodeId,
        /// Model card.
        model: MosfetModel,
        /// Channel width (m).
        w: f64,
        /// Channel length (m).
        l: f64,
    },
}

impl Element {
    /// Instance name of this element.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::VSource { name, .. }
            | Element::ISource { name, .. }
            | Element::LinearVccs { name, .. }
            | Element::TableVccs { name, .. }
            | Element::Vcvs { name, .. }
            | Element::Cccs { name, .. }
            | Element::Ccvs { name, .. }
            | Element::Diode { name, .. }
            | Element::Mosfet { name, .. } => name,
        }
    }

    /// Whether this element contributes non-linear residuals (needs Newton).
    pub fn is_nonlinear(&self) -> bool {
        matches!(
            self,
            Element::TableVccs { .. } | Element::Mosfet { .. } | Element::Diode { .. }
        )
    }

    /// Whether this element carries its own branch-current unknown in the
    /// MNA system (voltage-defined elements).
    pub fn has_branch_current(&self) -> bool {
        matches!(
            self,
            Element::VSource { .. } | Element::Vcvs { .. } | Element::Ccvs { .. }
        )
    }
}

/// A flat netlist over named nodes.
///
/// # Examples
///
/// ```
/// use sna_spice::netlist::Circuit;
/// use sna_spice::devices::SourceWaveform;
///
/// let mut ckt = Circuit::new();
/// let inp = ckt.node("in");
/// let out = ckt.node("out");
/// ckt.add_vsource("Vin", inp, Circuit::gnd(), SourceWaveform::Dc(1.0));
/// ckt.add_resistor("R1", inp, out, 1e3).unwrap();
/// ckt.add_capacitor("C1", out, Circuit::gnd(), 1e-12).unwrap();
/// assert_eq!(ckt.node_count(), 3); // including ground
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Circuit {
    node_names: Vec<String>,
    #[serde(skip)]
    node_index: HashMap<String, usize>,
    elements: Vec<Element>,
}

impl Circuit {
    /// Create an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut c = Circuit {
            node_names: vec!["0".to_string()],
            node_index: HashMap::new(),
            elements: Vec::new(),
        };
        c.node_index.insert("0".into(), 0);
        c.node_index.insert("gnd".into(), 0);
        c
    }

    /// The ground node.
    pub fn gnd() -> NodeId {
        NodeId::GROUND
    }

    /// Get or create a node by name. `"0"` and `"gnd"` (any case) map to
    /// ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        let key = name.to_ascii_lowercase();
        if let Some(&idx) = self.node_index.get(&key) {
            return NodeId(idx);
        }
        let idx = self.node_names.len();
        self.node_names.push(name.to_string());
        self.node_index.insert(key, idx);
        NodeId(idx)
    }

    /// Look up an existing node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_index
            .get(&name.to_ascii_lowercase())
            .map(|&i| NodeId(i))
    }

    /// Name of a node.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Total node count, including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// All elements, in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Element by id.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.0]
    }

    /// Mutable element access (e.g. to retune a source waveform in place).
    pub fn element_mut(&mut self, id: ElementId) -> &mut Element {
        &mut self.elements[id.0]
    }

    /// Find an element id by instance name.
    pub fn find_element(&self, name: &str) -> Option<ElementId> {
        self.elements
            .iter()
            .position(|e| e.name().eq_ignore_ascii_case(name))
            .map(ElementId)
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Whether any element requires Newton iteration.
    pub fn is_nonlinear(&self) -> bool {
        self.elements.iter().any(Element::is_nonlinear)
    }

    fn push(&mut self, e: Element) -> ElementId {
        self.elements.push(e);
        ElementId(self.elements.len() - 1)
    }

    /// Add a resistor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite resistance.
    pub fn add_resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<ElementId> {
        if !(ohms.is_finite() && ohms > 0.0) {
            return Err(Error::InvalidCircuit(format!(
                "resistor {name}: resistance must be positive and finite, got {ohms}"
            )));
        }
        Ok(self.push(Element::Resistor {
            name: name.into(),
            a,
            b,
            ohms,
        }))
    }

    /// Add a capacitor.
    ///
    /// # Errors
    ///
    /// Rejects negative or non-finite capacitance.
    pub fn add_capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<ElementId> {
        if !(farads.is_finite() && farads >= 0.0) {
            return Err(Error::InvalidCircuit(format!(
                "capacitor {name}: capacitance must be non-negative, got {farads}"
            )));
        }
        Ok(self.push(Element::Capacitor {
            name: name.into(),
            a,
            b,
            farads,
        }))
    }

    /// Add an independent voltage source.
    pub fn add_vsource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        wave: SourceWaveform,
    ) -> ElementId {
        self.push(Element::VSource {
            name: name.into(),
            pos,
            neg,
            wave,
        })
    }

    /// Add an independent current source.
    pub fn add_isource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        wave: SourceWaveform,
    ) -> ElementId {
        self.push(Element::ISource {
            name: name.into(),
            pos,
            neg,
            wave,
        })
    }

    /// Add a linear VCCS.
    pub fn add_linear_vccs(
        &mut self,
        name: &str,
        out_p: NodeId,
        out_n: NodeId,
        ctrl_p: NodeId,
        ctrl_n: NodeId,
        gm: f64,
    ) -> ElementId {
        self.push(Element::LinearVccs {
            name: name.into(),
            out_p,
            out_n,
            ctrl_p,
            ctrl_n,
            gm,
        })
    }

    /// Add a table-driven VCCS (the victim-driver macromodel element).
    pub fn add_table_vccs(
        &mut self,
        name: &str,
        out_p: NodeId,
        out_n: NodeId,
        ctrl: NodeId,
        table: Table2d,
    ) -> ElementId {
        self.push(Element::TableVccs {
            name: name.into(),
            out_p,
            out_n,
            ctrl,
            table,
        })
    }

    /// Add a linear VCVS (SPICE `E` element).
    ///
    /// # Errors
    ///
    /// Rejects a non-finite gain.
    pub fn add_vcvs(
        &mut self,
        name: &str,
        out_p: NodeId,
        out_n: NodeId,
        ctrl_p: NodeId,
        ctrl_n: NodeId,
        gain: f64,
    ) -> Result<ElementId> {
        if !gain.is_finite() {
            return Err(Error::InvalidCircuit(format!(
                "vcvs {name}: gain must be finite, got {gain}"
            )));
        }
        Ok(self.push(Element::Vcvs {
            name: name.into(),
            out_p,
            out_n,
            ctrl_p,
            ctrl_n,
            gain,
        }))
    }

    /// Add a linear CCCS (SPICE `F` element). `ctrl` names the independent
    /// voltage source whose branch current controls the output; it is
    /// resolved when the MNA system is assembled, so forward references are
    /// fine.
    ///
    /// # Errors
    ///
    /// Rejects a non-finite gain.
    pub fn add_cccs(
        &mut self,
        name: &str,
        out_p: NodeId,
        out_n: NodeId,
        ctrl: &str,
        gain: f64,
    ) -> Result<ElementId> {
        if !gain.is_finite() {
            return Err(Error::InvalidCircuit(format!(
                "cccs {name}: gain must be finite, got {gain}"
            )));
        }
        Ok(self.push(Element::Cccs {
            name: name.into(),
            out_p,
            out_n,
            ctrl: ctrl.into(),
            gain,
        }))
    }

    /// Add a linear CCVS (SPICE `H` element). `ctrl` as in
    /// [`Circuit::add_cccs`].
    ///
    /// # Errors
    ///
    /// Rejects a non-finite transresistance.
    pub fn add_ccvs(
        &mut self,
        name: &str,
        out_p: NodeId,
        out_n: NodeId,
        ctrl: &str,
        r: f64,
    ) -> Result<ElementId> {
        if !r.is_finite() {
            return Err(Error::InvalidCircuit(format!(
                "ccvs {name}: transresistance must be finite, got {r}"
            )));
        }
        Ok(self.push(Element::Ccvs {
            name: name.into(),
            out_p,
            out_n,
            ctrl: ctrl.into(),
            r,
        }))
    }

    /// Add a junction diode *and* its constant junction capacitance.
    ///
    /// As with [`Circuit::add_mosfet`]'s device caps, the zero-bias junction
    /// capacitance is stamped as an explicit capacitor `<name>.cj` across
    /// the junction (always added, even at 0 F, so topology is independent
    /// of the model values).
    ///
    /// # Errors
    ///
    /// Rejects a non-positive saturation current or emission coefficient,
    /// or a negative junction capacitance.
    pub fn add_diode(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        model: DiodeModel,
    ) -> Result<ElementId> {
        if !(model.is.is_finite() && model.is > 0.0) {
            return Err(Error::InvalidCircuit(format!(
                "diode {name}: saturation current must be positive, got {}",
                model.is
            )));
        }
        if !(model.n.is_finite() && model.n > 0.0) {
            return Err(Error::InvalidCircuit(format!(
                "diode {name}: emission coefficient must be positive, got {}",
                model.n
            )));
        }
        if !(model.cj0.is_finite() && model.cj0 >= 0.0) {
            return Err(Error::InvalidCircuit(format!(
                "diode {name}: junction capacitance must be non-negative, got {}",
                model.cj0
            )));
        }
        let id = self.push(Element::Diode {
            name: name.into(),
            p,
            n,
            model,
        });
        self.add_capacitor(&format!("{name}.cj"), p, n, model.cj0)?;
        Ok(id)
    }

    /// Add a MOSFET *and* its lumped device capacitances.
    ///
    /// The five constant caps from [`MosfetModel::capacitances`] are stamped
    /// as explicit capacitor elements named `<name>.cgs` etc., so the golden
    /// transistor-level simulation sees realistic Miller coupling and
    /// junction loading.
    ///
    /// # Errors
    ///
    /// Rejects non-positive geometry.
    #[allow(clippy::too_many_arguments)] // mirrors the SPICE M-card: d g s b model w l
    pub fn add_mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        model: MosfetModel,
        w: f64,
        l: f64,
    ) -> Result<ElementId> {
        if !(w.is_finite() && w > 0.0 && l.is_finite() && l > 0.0) {
            return Err(Error::InvalidCircuit(format!(
                "mosfet {name}: W and L must be positive, got w={w} l={l}"
            )));
        }
        let id = self.push(Element::Mosfet {
            name: name.into(),
            d,
            g,
            s,
            b,
            model,
            w,
            l,
        });
        let (cgs, cgd, cgb, cdb, csb) = model.capacitances(w, l);
        self.add_capacitor(&format!("{name}.cgs"), g, s, cgs)?;
        self.add_capacitor(&format!("{name}.cgd"), g, d, cgd)?;
        self.add_capacitor(&format!("{name}.cgb"), g, b, cgb)?;
        self.add_capacitor(&format!("{name}.cdb"), d, b, cdb)?;
        self.add_capacitor(&format!("{name}.csb"), s, b, csb)?;
        Ok(id)
    }

    /// Replace the waveform of the named V- or I-source.
    ///
    /// # Errors
    ///
    /// Fails if the element does not exist or is not a source.
    pub fn set_source_wave(&mut self, name: &str, wave: SourceWaveform) -> Result<()> {
        let id = self
            .find_element(name)
            .ok_or_else(|| Error::InvalidCircuit(format!("no element named {name}")))?;
        match &mut self.elements[id.0] {
            Element::VSource { wave: w, .. } | Element::ISource { wave: w, .. } => {
                *w = wave;
                Ok(())
            }
            _ => Err(Error::InvalidCircuit(format!("{name} is not a source"))),
        }
    }

    /// Structural validation: every circuit must have at least one element,
    /// and every non-ground node must have a DC path that MNA can solve
    /// (approximated here as: every node referenced by at least one element;
    /// the matrix itself reports true singularities).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidCircuit`] on an empty netlist or a node left
    /// completely unconnected.
    pub fn validate(&self) -> Result<()> {
        if self.elements.is_empty() {
            return Err(Error::InvalidCircuit("no elements".into()));
        }
        let mut touched = vec![false; self.node_count()];
        touched[0] = true;
        let mark = |n: NodeId, t: &mut Vec<bool>| t[n.0] = true;
        for e in &self.elements {
            match e {
                Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => {
                    mark(*a, &mut touched);
                    mark(*b, &mut touched);
                }
                Element::VSource { pos, neg, .. } | Element::ISource { pos, neg, .. } => {
                    mark(*pos, &mut touched);
                    mark(*neg, &mut touched);
                }
                Element::LinearVccs {
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    ..
                } => {
                    mark(*out_p, &mut touched);
                    mark(*out_n, &mut touched);
                    mark(*ctrl_p, &mut touched);
                    mark(*ctrl_n, &mut touched);
                }
                Element::TableVccs {
                    out_p, out_n, ctrl, ..
                } => {
                    mark(*out_p, &mut touched);
                    mark(*out_n, &mut touched);
                    mark(*ctrl, &mut touched);
                }
                Element::Vcvs {
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    ..
                } => {
                    mark(*out_p, &mut touched);
                    mark(*out_n, &mut touched);
                    mark(*ctrl_p, &mut touched);
                    mark(*ctrl_n, &mut touched);
                }
                Element::Cccs { out_p, out_n, .. } | Element::Ccvs { out_p, out_n, .. } => {
                    mark(*out_p, &mut touched);
                    mark(*out_n, &mut touched);
                }
                Element::Diode { p, n, .. } => {
                    mark(*p, &mut touched);
                    mark(*n, &mut touched);
                }
                Element::Mosfet { d, g, s, b, .. } => {
                    mark(*d, &mut touched);
                    mark(*g, &mut touched);
                    mark(*s, &mut touched);
                    mark(*b, &mut touched);
                }
            }
        }
        if let Some(idx) = touched.iter().position(|&t| !t) {
            return Err(Error::InvalidCircuit(format!(
                "node '{}' is not connected to any element",
                self.node_names[idx]
            )));
        }
        Ok(())
    }

    /// Rebuild the name→index map (needed after deserialization, where the
    /// map is skipped).
    pub fn rebuild_index(&mut self) {
        self.node_index.clear();
        for (i, n) in self.node_names.iter().enumerate() {
            self.node_index.insert(n.to_ascii_lowercase(), i);
        }
        self.node_index.insert("gnd".into(), 0);
    }
}

/// Circuits compare by observable content: node names (in interning order)
/// and elements. The derived name→index map is a cache and is excluded —
/// this equality is what the parse/write round-trip property tests use.
impl PartialEq for Circuit {
    fn eq(&self, other: &Self) -> bool {
        self.node_names == other.node_names && self.elements == other.elements
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), NodeId::GROUND);
        assert_eq!(c.node("gnd"), NodeId::GROUND);
        assert_eq!(c.node("GND"), NodeId::GROUND);
        assert!(NodeId::GROUND.is_ground());
    }

    #[test]
    fn node_interning() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("A");
        assert_eq!(a, a2);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.find_node("a"), Some(a));
        assert_eq!(c.find_node("zz"), None);
    }

    #[test]
    fn builders_validate_values() {
        let mut c = Circuit::new();
        let a = c.node("a");
        assert!(c.add_resistor("R1", a, Circuit::gnd(), -5.0).is_err());
        assert!(c.add_resistor("R1", a, Circuit::gnd(), 0.0).is_err());
        assert!(c.add_capacitor("C1", a, Circuit::gnd(), -1e-15).is_err());
        assert!(c.add_capacitor("C1", a, Circuit::gnd(), 0.0).is_ok());
    }

    #[test]
    fn mosfet_adds_caps() {
        let mut c = Circuit::new();
        let d = c.node("d");
        let g = c.node("g");
        let model = MosfetModel {
            polarity: crate::devices::MosPolarity::Nmos,
            vt0: 0.3,
            kp: 2e-4,
            lambda: 0.1,
            gamma: 0.3,
            phi: 0.7,
            cox: 0.01,
            cgso: 3e-10,
            cgdo: 3e-10,
            cj: 8e-10,
        };
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::gnd(),
            Circuit::gnd(),
            model,
            1e-6,
            0.13e-6,
        )
        .unwrap();
        // 1 mosfet + 5 caps
        assert_eq!(c.element_count(), 6);
        assert!(c.find_element("M1.cgd").is_some());
        assert!(c.is_nonlinear());
    }

    #[test]
    fn validate_catches_empty_and_dangling() {
        let c = Circuit::new();
        assert!(c.validate().is_err());
        let mut c = Circuit::new();
        let a = c.node("a");
        let _dangling = c.node("b");
        c.add_resistor("R", a, Circuit::gnd(), 1.0).unwrap();
        assert!(c.validate().is_err());
    }

    #[test]
    fn set_source_wave() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::gnd(), SourceWaveform::Dc(1.0));
        c.add_resistor("R1", a, Circuit::gnd(), 1.0).unwrap();
        c.set_source_wave("v1", SourceWaveform::Dc(2.0)).unwrap();
        match c.element(c.find_element("V1").unwrap()) {
            Element::VSource { wave, .. } => assert_eq!(wave.eval(0.0), 2.0),
            _ => panic!(),
        }
        assert!(c.set_source_wave("R1", SourceWaveform::Dc(0.0)).is_err());
        assert!(c.set_source_wave("nope", SourceWaveform::Dc(0.0)).is_err());
    }

    #[test]
    fn find_element_case_insensitive() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("Rload", a, Circuit::gnd(), 50.0).unwrap();
        assert!(c.find_element("rload").is_some());
        assert_eq!(c.element_count(), 1);
    }
}
