//! Linear-solver selection: one front-end over the dense LU of [`crate::linalg`]
//! and the sparse symbolic/numeric LU of [`crate::sparse`].
//!
//! Every repeated solve in the workspace — Newton iterations in DC,
//! per-step systems in transient, PRIMA's shifted solves — goes through
//! [`SystemSolver`], which owns the assembled linear part (`G`, `C`, their
//! combination `G + α·C`), the Jacobian being stamped, and the factors.
//! The backend is chosen once per system by [`SolverKind`]: tiny gate-only
//! circuits keep the cache-friendly dense path, finely segmented
//! interconnect switches to sparse, and both can be forced for A/B testing.

use serde::{Deserialize, Serialize};
use sna_obs::{count, phase_span, Metric, Phase};

use crate::error::Result;
use crate::linalg::{DenseMatrix, LuFactors, MatrixStamp, PatternCollector};
use crate::mna::MnaSystem;
use crate::netlist::Circuit;
use crate::sparse::{SparseLu, SparseMatrix, Symbolic};

/// Unknown count at and above which [`SolverKind::Auto`] picks the sparse
/// backend. Below it, dense LU's contiguous inner loops win; above it, the
/// O(n³)/O(n²) dense costs take over. The crossover was measured on the
/// segmented coupled-bus sweep in `benches/solver.rs`.
pub const SPARSE_AUTO_THRESHOLD: usize = 96;

/// Which linear-solver backend an analysis should use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverKind {
    /// Pick by dimension: dense below [`SPARSE_AUTO_THRESHOLD`] unknowns,
    /// sparse at or above it.
    #[default]
    Auto,
    /// Dimension-based auto selection with a caller-chosen crossover
    /// instead of the measured [`SPARSE_AUTO_THRESHOLD`]: dense below the
    /// given unknown count, sparse at or above it (`--solver auto:N` on
    /// the CLI). Lets deployments re-tune the crossover for their own
    /// cache hierarchy without a rebuild.
    AutoThreshold(usize),
    /// Force the dense LU path.
    Dense,
    /// Force the sparse symbolic/numeric LU path.
    Sparse,
}

impl SolverKind {
    /// Whether a system of `dim` unknowns resolves to the sparse backend.
    pub fn is_sparse_for(self, dim: usize) -> bool {
        match self {
            SolverKind::Auto => dim >= SPARSE_AUTO_THRESHOLD,
            SolverKind::AutoThreshold(t) => dim >= t,
            SolverKind::Dense => false,
            SolverKind::Sparse => true,
        }
    }
}

/// A standalone factorization (dense or sparse) of one `G + α·C` matrix,
/// cached by the adaptive transient per step size.
#[derive(Debug, Clone)]
pub enum OwnedFactor {
    /// Dense LU factors.
    Dense(LuFactors),
    /// Sparse LU factors (boxed: the struct is large).
    Sparse(Box<SparseLu>),
}

impl OwnedFactor {
    /// Solve `A·x = b`; `work` is scratch of the system dimension (unused
    /// by the dense backend).
    pub fn solve_into(&self, b: &[f64], x: &mut [f64], work: &mut [f64]) {
        match self {
            OwnedFactor::Dense(lu) => lu.solve_into(b, x),
            OwnedFactor::Sparse(lu) => lu.solve_into(b, x, work),
        }
    }
}

// One Backend lives per analysis (never in arrays), so the variant size
// spread is irrelevant; boxing would only add indirection to hot paths.
#[allow(clippy::large_enum_variant)]
enum Backend {
    Dense {
        g: DenseMatrix,
        c: DenseMatrix,
        base: DenseMatrix,
        jac: DenseMatrix,
        lu: Option<LuFactors>,
    },
    Sparse {
        /// Union pattern: G ∪ C ∪ non-linear stamps ∪ full diagonal.
        jac: SparseMatrix,
        g_vals: Vec<f64>,
        c_vals: Vec<f64>,
        base_vals: Vec<f64>,
        sym: Symbolic,
        lu: Option<SparseLu>,
        work: Vec<f64>,
    },
}

/// The per-circuit linear-solver state shared by DC and transient analyses.
///
/// Holds the linear MNA part on the chosen backend, a resettable Jacobian
/// on the same pattern, and the (re)factorization. The sparse backend runs
/// symbolic analysis exactly once, refactors numerically on every
/// subsequent Newton iteration or value change, and falls back to a cold
/// factor (with fresh pivoting) if a stored pivot collapses.
pub struct SystemSolver {
    dim: usize,
    alpha: f64,
    backend: Backend,
}

impl SystemSolver {
    /// Build the solver for `mna`'s linear part, including the non-linear
    /// Jacobian pattern of `circuit` so Newton stamps always land inside
    /// the sparse pattern.
    pub fn new(mna: &MnaSystem, circuit: &Circuit, kind: SolverKind) -> Self {
        let dim = mna.dim();
        let backend = if kind.is_sparse_for(dim) {
            let g = mna.g_matrix();
            let c = mna.c_matrix();
            let mut entries: Vec<(usize, usize)> = Vec::new();
            for i in 0..dim {
                entries.push((i, i));
                for j in 0..dim {
                    if g[(i, j)] != 0.0 || c[(i, j)] != 0.0 {
                        entries.push((i, j));
                    }
                }
            }
            let mut collector = PatternCollector::new();
            let zeros = vec![0.0; dim];
            let mut scratch = vec![0.0; dim];
            mna.stamp_nonlinear(circuit, &zeros, &mut scratch, Some(&mut collector));
            entries.extend_from_slice(collector.entries());
            let jac = SparseMatrix::from_pattern(dim, &entries);
            let mut g_m = jac.clone();
            let mut c_m = jac.clone();
            for i in 0..dim {
                for j in 0..dim {
                    if g[(i, j)] != 0.0 {
                        g_m.add(i, j, g[(i, j)]);
                    }
                    if c[(i, j)] != 0.0 {
                        c_m.add(i, j, c[(i, j)]);
                    }
                }
            }
            let g_vals = g_m.values().to_vec();
            let c_vals = c_m.values().to_vec();
            let sym = Symbolic::analyze(&jac);
            Backend::Sparse {
                base_vals: g_vals.clone(),
                g_vals,
                c_vals,
                jac,
                sym,
                lu: None,
                work: vec![0.0; dim],
            }
        } else {
            Backend::Dense {
                g: mna.g_matrix().clone(),
                c: mna.c_matrix().clone(),
                base: mna.g_matrix().clone(),
                jac: DenseMatrix::zeros(dim, dim),
                lu: None,
            }
        };
        count(
            if matches!(backend, Backend::Sparse { .. }) {
                Metric::SolverSparseSelected
            } else {
                Metric::SolverDenseSelected
            },
            1,
        );
        Self {
            dim,
            alpha: 0.0,
            backend,
        }
    }

    /// Unknown count.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the sparse backend was selected.
    pub fn is_sparse(&self) -> bool {
        matches!(self.backend, Backend::Sparse { .. })
    }

    /// Set the integration coefficient: the base matrix becomes
    /// `G + α·C` (`α = 0` for DC). Changing `α` invalidates the sparse
    /// pivot sequence, so the next factorization is cold.
    pub fn set_alpha(&mut self, alpha: f64) {
        if alpha == self.alpha {
            return;
        }
        self.alpha = alpha;
        match &mut self.backend {
            Backend::Dense { g, c, base, .. } => {
                base.copy_from(g);
                base.axpy(alpha, c);
            }
            Backend::Sparse {
                g_vals,
                c_vals,
                base_vals,
                ..
            } => {
                for ((b, &gv), &cv) in base_vals.iter_mut().zip(g_vals.iter()).zip(c_vals.iter()) {
                    *b = gv + alpha * cv;
                }
                // The stored pivot sequence stays: α only rescales the
                // capacitive part of a diagonally-dominant MNA matrix, so
                // the next [`SystemSolver::factor_jacobian`] replays it as
                // a numeric refactor (the adaptive stepper flips between h
                // and h/2 every step). A pivot that does collapse under the
                // new values makes `refactor` report singular, and
                // `factor_jacobian` falls back to a cold factor with a
                // fresh pivot search.
            }
        }
    }

    /// `y = G·x` (linear conductance only).
    pub fn g_mul_into(&self, x: &[f64], y: &mut [f64]) {
        match &self.backend {
            Backend::Dense { g, .. } => g.mul_vec_into(x, y),
            Backend::Sparse { jac, g_vals, .. } => jac.mul_vals_into(g_vals, x, y),
        }
    }

    /// `y = C·x` (capacitance only).
    pub fn c_mul_into(&self, x: &[f64], y: &mut [f64]) {
        match &self.backend {
            Backend::Dense { c, .. } => c.mul_vec_into(x, y),
            Backend::Sparse { jac, c_vals, .. } => jac.mul_vals_into(c_vals, x, y),
        }
    }

    /// `y = (G + α·C)·x` with the current `α`.
    pub fn base_mul_into(&self, x: &[f64], y: &mut [f64]) {
        match &self.backend {
            Backend::Dense { base, .. } => base.mul_vec_into(x, y),
            Backend::Sparse { jac, base_vals, .. } => jac.mul_vals_into(base_vals, x, y),
        }
    }

    /// Reset the Jacobian to the linear base `G + α·C`, ready for
    /// non-linear stamps.
    pub fn begin_jacobian(&mut self) {
        match &mut self.backend {
            Backend::Dense { base, jac, .. } => jac.copy_from(base),
            Backend::Sparse { jac, base_vals, .. } => {
                jac.values_mut().copy_from_slice(base_vals);
            }
        }
    }

    /// Stamp sink for the current Jacobian (pass to
    /// [`MnaSystem::stamp_nonlinear`]).
    pub fn jac_stamp(&mut self) -> &mut dyn MatrixStamp {
        match &mut self.backend {
            Backend::Dense { jac, .. } => jac,
            Backend::Sparse { jac, .. } => jac,
        }
    }

    /// Add `v` to Jacobian entry `(i, j)` — e.g. gmin-stepping shunts on
    /// the diagonal (always inside the pattern).
    pub fn jac_add(&mut self, i: usize, j: usize, v: f64) {
        self.jac_stamp().add(i, j, v);
    }

    /// Factor the stamped Jacobian: dense refactors in place with full
    /// pivoting; sparse refactors on the stored pivot sequence and falls
    /// back to a cold factor (fresh pivot search) if a pivot collapsed.
    ///
    /// # Errors
    ///
    /// [`crate::Error::SingularMatrix`] if the system is singular even
    /// after the cold-factor fallback.
    pub fn factor_jacobian(&mut self) -> Result<()> {
        match &mut self.backend {
            Backend::Dense { jac, lu, .. } => match lu {
                Some(f) => {
                    let _t = phase_span(Phase::Refactor);
                    count(Metric::SolverRefactorsDense, 1);
                    f.refactor(jac)
                }
                None => {
                    let _t = phase_span(Phase::Factor);
                    count(Metric::SolverFactorsDense, 1);
                    *lu = Some(jac.lu()?);
                    Ok(())
                }
            },
            Backend::Sparse { jac, sym, lu, .. } => {
                if let Some(f) = lu {
                    let _t = phase_span(Phase::Refactor);
                    if f.refactor(jac).is_ok() {
                        count(Metric::SolverRefactorsSparse, 1);
                        return Ok(());
                    }
                    // A stored pivot collapsed under the new values.
                    count(Metric::SolverColdFallbacks, 1);
                }
                let _t = phase_span(Phase::Factor);
                count(Metric::SolverFactorsSparse, 1);
                *lu = Some(SparseLu::factor(jac, sym)?);
                Ok(())
            }
        }
    }

    /// Factor the linear base `G + α·C` (no non-linear stamps) — the path
    /// for linear circuits factored once and back-substituted per step.
    ///
    /// # Errors
    ///
    /// [`crate::Error::SingularMatrix`] on a singular base matrix.
    pub fn factor_base(&mut self) -> Result<()> {
        self.begin_jacobian();
        self.factor_jacobian()
    }

    /// Cold-factor the current base into a standalone [`OwnedFactor`]
    /// (cached per step size by the adaptive transient). Does not disturb
    /// the solver's own factor state.
    ///
    /// # Errors
    ///
    /// [`crate::Error::SingularMatrix`] on a singular base matrix.
    pub fn factor_base_owned(&mut self) -> Result<OwnedFactor> {
        let _t = phase_span(Phase::Factor);
        match &mut self.backend {
            Backend::Dense { base, .. } => {
                count(Metric::SolverFactorsDense, 1);
                Ok(OwnedFactor::Dense(base.lu()?))
            }
            Backend::Sparse {
                jac,
                base_vals,
                sym,
                ..
            } => {
                count(Metric::SolverFactorsSparse, 1);
                jac.values_mut().copy_from_slice(base_vals);
                Ok(OwnedFactor::Sparse(Box::new(SparseLu::factor(jac, sym)?)))
            }
        }
    }

    /// Solve with the factors from the last
    /// [`SystemSolver::factor_jacobian`]/[`SystemSolver::factor_base`].
    /// Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful factorization.
    pub fn solve_into(&mut self, b: &[f64], x: &mut [f64]) {
        let _t = phase_span(Phase::Solve);
        count(Metric::SolverSolves, 1);
        match &mut self.backend {
            Backend::Dense { lu, .. } => {
                lu.as_ref().expect("factor before solve").solve_into(b, x);
            }
            Backend::Sparse { lu, work, .. } => {
                lu.as_ref()
                    .expect("factor before solve")
                    .solve_into(b, x, work);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::SourceWaveform;

    fn ladder(n_nodes: usize) -> Circuit {
        let mut ckt = Circuit::new();
        let mut prev = ckt.node("n0");
        ckt.add_vsource("V", prev, Circuit::gnd(), SourceWaveform::Dc(1.0));
        for i in 1..n_nodes {
            let next = ckt.node(&format!("n{i}"));
            ckt.add_resistor(&format!("R{i}"), prev, next, 100.0)
                .unwrap();
            ckt.add_capacitor(&format!("C{i}"), next, Circuit::gnd(), 1e-15)
                .unwrap();
            prev = next;
        }
        ckt
    }

    #[test]
    fn auto_threshold_selects_backend() {
        assert!(!SolverKind::Auto.is_sparse_for(SPARSE_AUTO_THRESHOLD - 1));
        assert!(SolverKind::Auto.is_sparse_for(SPARSE_AUTO_THRESHOLD));
        assert!(!SolverKind::Dense.is_sparse_for(10_000));
        assert!(SolverKind::Sparse.is_sparse_for(2));
    }

    #[test]
    fn custom_auto_threshold_overrides_constant() {
        // Regression at the boundary dimension: the tunable crossover must
        // flip exactly at its own value, independent of the built-in one.
        for t in [2, SPARSE_AUTO_THRESHOLD / 2, SPARSE_AUTO_THRESHOLD * 2] {
            let kind = SolverKind::AutoThreshold(t);
            assert!(!kind.is_sparse_for(t - 1), "dim {} must stay dense", t - 1);
            assert!(kind.is_sparse_for(t), "dim {t} must go sparse");
        }
        // A tunable set to the measured constant behaves exactly like Auto.
        let tuned = SolverKind::AutoThreshold(SPARSE_AUTO_THRESHOLD);
        for dim in [SPARSE_AUTO_THRESHOLD - 1, SPARSE_AUTO_THRESHOLD] {
            assert_eq!(
                tuned.is_sparse_for(dim),
                SolverKind::Auto.is_sparse_for(dim)
            );
        }
        // And the selection is honored end-to-end by a real system.
        let ckt = ladder(40);
        let mna = MnaSystem::new(&ckt).unwrap();
        let dim = mna.dim();
        let low = SystemSolver::new(&mna, &ckt, SolverKind::AutoThreshold(dim));
        assert!(low.is_sparse());
        let high = SystemSolver::new(&mna, &ckt, SolverKind::AutoThreshold(dim + 1));
        assert!(!high.is_sparse());
    }

    #[test]
    fn dense_and_sparse_backends_agree() {
        let ckt = ladder(40);
        let mna = MnaSystem::new(&ckt).unwrap();
        let b = mna.rhs(&ckt, 0.0, 1.0);
        let mut solutions = Vec::new();
        for kind in [SolverKind::Dense, SolverKind::Sparse] {
            let mut s = SystemSolver::new(&mna, &ckt, kind);
            assert_eq!(s.is_sparse(), kind == SolverKind::Sparse);
            s.set_alpha(1e9);
            s.factor_base().unwrap();
            let mut x = vec![0.0; s.dim()];
            s.solve_into(&b, &mut x);
            // Consistency: base·x == b.
            let mut back = vec![0.0; s.dim()];
            s.base_mul_into(&x, &mut back);
            for (got, want) in back.iter().zip(&b) {
                assert!((got - want).abs() < 1e-9);
            }
            solutions.push(x);
        }
        for (d, s) in solutions[0].iter().zip(&solutions[1]) {
            assert!((d - s).abs() < 1e-9, "dense {d} vs sparse {s}");
        }
    }

    #[test]
    fn alpha_switch_refactors_correctly() {
        let ckt = ladder(30);
        let mna = MnaSystem::new(&ckt).unwrap();
        let b = mna.rhs(&ckt, 0.0, 1.0);
        let mut s = SystemSolver::new(&mna, &ckt, SolverKind::Sparse);
        let mut x1 = vec![0.0; s.dim()];
        let mut x2 = vec![0.0; s.dim()];
        for (alpha, x) in [(1e10, &mut x1), (2e10, &mut x2)] {
            s.set_alpha(alpha);
            s.factor_base().unwrap();
            s.solve_into(&b, x);
            let mut back = vec![0.0; b.len()];
            s.base_mul_into(x, &mut back);
            for (got, want) in back.iter().zip(&b) {
                assert!((got - want).abs() < 1e-9);
            }
        }
        assert!(x1.iter().zip(&x2).any(|(a, b)| (a - b).abs() > 1e-12));
    }
}
