//! Distributed coupled-RC ladder construction.
//!
//! Turns a set of parallel [`WireGeom`]s plus [`CouplingGeom`]s into
//! π-segmented RC ladders inside a [`Circuit`]: each wire becomes
//! `segments` series resistors with its ground capacitance distributed
//! π-style over the taps, and each coupling capacitance is distributed over
//! the taps of the overlapped span. With enough segments this converges to
//! the distributed line; the golden reference uses it directly, and the MOR
//! crate reduces it.

use serde::{Deserialize, Serialize};
use sna_spice::error::{Error, Result};
use sna_spice::netlist::{Circuit, NodeId};

use crate::geometry::{CouplingGeom, WireGeom};

/// Node handles of one built wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireNodes {
    /// Driver (near) end.
    pub near: NodeId,
    /// Receiver (far) end.
    pub far: NodeId,
    /// All taps from near to far, inclusive (`segments + 1` nodes).
    pub taps: Vec<NodeId>,
}

/// A bus of parallel wires with couplings, ready to instantiate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoupledBus {
    /// The wires, index order defines tap naming.
    pub wires: Vec<WireGeom>,
    /// Pairwise couplings.
    pub couplings: Vec<CouplingGeom>,
    /// π-segments per wire (≥ 1); 1 segment = lumped π.
    pub segments: usize,
}

impl CoupledBus {
    /// Construct and validate a bus description.
    ///
    /// # Errors
    ///
    /// Fails if a coupling references a missing wire, couples a wire to
    /// itself, overlap is outside `[0, 1]`, or `segments == 0`.
    pub fn new(
        wires: Vec<WireGeom>,
        couplings: Vec<CouplingGeom>,
        segments: usize,
    ) -> Result<Self> {
        if wires.is_empty() {
            return Err(Error::InvalidCircuit("bus needs at least one wire".into()));
        }
        if segments == 0 {
            return Err(Error::InvalidCircuit("bus needs >= 1 segment".into()));
        }
        for c in &couplings {
            if c.a >= wires.len() || c.b >= wires.len() {
                return Err(Error::InvalidCircuit(format!(
                    "coupling references wire {} but bus has {}",
                    c.a.max(c.b),
                    wires.len()
                )));
            }
            if c.a == c.b {
                return Err(Error::InvalidCircuit("wire cannot couple to itself".into()));
            }
            if !(0.0..=1.0).contains(&c.overlap) {
                return Err(Error::InvalidCircuit(format!(
                    "coupling overlap {} outside [0,1]",
                    c.overlap
                )));
            }
        }
        Ok(Self {
            wires,
            couplings,
            segments,
        })
    }

    /// The classic two-wire test case of the paper: victim and one
    /// aggressor running fully parallel.
    pub fn parallel_pair(
        victim: WireGeom,
        aggressor: WireGeom,
        cc_per_m: f64,
        segments: usize,
    ) -> Self {
        Self::new(
            vec![victim, aggressor],
            vec![CouplingGeom::full(0, 1, cc_per_m)],
            segments,
        )
        .expect("static topology is valid")
    }

    /// Total coupling capacitance between a wire pair (F), 0 if uncoupled.
    pub fn total_coupling(&self, a: usize, b: usize) -> f64 {
        self.couplings
            .iter()
            .filter(|c| (c.a == a && c.b == b) || (c.a == b && c.b == a))
            .map(|c| c.total_cc(&self.wires))
            .sum()
    }

    /// Instantiate the bus into `ckt`. Tap nodes are named
    /// `{prefix}.w{i}.t{k}`; `t0` is the near end.
    ///
    /// # Errors
    ///
    /// Propagates element-validation failures.
    pub fn instantiate(&self, ckt: &mut Circuit, prefix: &str) -> Result<Vec<WireNodes>> {
        let nseg = self.segments;
        let mut nodes: Vec<WireNodes> = Vec::with_capacity(self.wires.len());
        // Wires: series R, π-distributed ground caps.
        for (i, w) in self.wires.iter().enumerate() {
            let taps: Vec<NodeId> = (0..=nseg)
                .map(|k| ckt.node(&format!("{prefix}.w{i}.t{k}")))
                .collect();
            let r_seg = w.total_r() / nseg as f64;
            let cg_seg = w.total_cg() / nseg as f64;
            for k in 0..nseg {
                ckt.add_resistor(&format!("{prefix}.w{i}.r{k}"), taps[k], taps[k + 1], r_seg)?;
            }
            for (k, &tap) in taps.iter().enumerate() {
                // π distribution: half-weight at the two ends.
                let c = if k == 0 || k == nseg {
                    0.5 * cg_seg
                } else {
                    cg_seg
                };
                if c > 0.0 {
                    ckt.add_capacitor(&format!("{prefix}.w{i}.cg{k}"), tap, Circuit::gnd(), c)?;
                }
            }
            nodes.push(WireNodes {
                near: taps[0],
                far: taps[nseg],
                taps,
            });
        }
        // Couplings: distributed over the overlapped leading span, aligned
        // from the near ends (both drivers at the same end of the bus).
        for (ci, c) in self.couplings.iter().enumerate() {
            let total = c.total_cc(&self.wires);
            if total <= 0.0 {
                continue;
            }
            // Number of coupled segments: overlap fraction of the segments.
            let span = ((nseg as f64 * c.overlap).round() as usize).clamp(1, nseg);
            let cc_seg = total / span as f64;
            for k in 0..=span {
                let w = if k == 0 || k == span {
                    0.5 * cc_seg
                } else {
                    cc_seg
                };
                if w > 0.0 {
                    ckt.add_capacitor(
                        &format!("{prefix}.cc{ci}.k{k}"),
                        nodes[c.a].taps[k],
                        nodes[c.b].taps[k],
                        w,
                    )?;
                }
            }
        }
        Ok(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_spice::devices::SourceWaveform;
    use sna_spice::netlist::Element;
    use sna_spice::tran::{transient, TranParams};
    use sna_spice::units::{NS, PS, UM};

    fn m4_wire(len_um: f64) -> WireGeom {
        WireGeom::new(len_um * UM, 0.2e6, 40e-12)
    }

    #[test]
    fn validation_errors() {
        assert!(CoupledBus::new(vec![], vec![], 4).is_err());
        assert!(CoupledBus::new(vec![m4_wire(500.0)], vec![], 0).is_err());
        assert!(CoupledBus::new(
            vec![m4_wire(500.0)],
            vec![CouplingGeom::full(0, 1, 90e-12)],
            4
        )
        .is_err());
        assert!(CoupledBus::new(
            vec![m4_wire(500.0)],
            vec![CouplingGeom::full(0, 0, 90e-12)],
            4
        )
        .is_err());
    }

    #[test]
    fn element_budget_and_totals() {
        let bus = CoupledBus::parallel_pair(m4_wire(500.0), m4_wire(500.0), 90e-12, 10);
        let mut ckt = Circuit::new();
        let nodes = bus.instantiate(&mut ckt, "net").unwrap();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].taps.len(), 11);
        // Sum resistances and capacitances back.
        let mut r_total = [0.0_f64; 2];
        let mut cg_total = 0.0;
        let mut cc_total = 0.0;
        for e in ckt.elements() {
            match e {
                Element::Resistor { name, ohms, .. } => {
                    if name.contains(".w0.") {
                        r_total[0] += ohms;
                    } else {
                        r_total[1] += ohms;
                    }
                }
                Element::Capacitor {
                    name, farads, a, b, ..
                } => {
                    if name.contains(".cc") {
                        cc_total += farads;
                    } else {
                        assert!(a.is_ground() || b.is_ground());
                        cg_total += farads;
                    }
                }
                _ => panic!("unexpected element"),
            }
        }
        // 500um * 0.2 ohm/um = 100 ohm per wire.
        assert!((r_total[0] - 100.0).abs() < 1e-9);
        assert!((r_total[1] - 100.0).abs() < 1e-9);
        // 2 wires * 20 fF.
        assert!((cg_total - 40e-15).abs() < 1e-24);
        // 45 fF coupling.
        assert!((cc_total - 45e-15).abs() < 1e-24);
        assert!((bus.total_coupling(0, 1) - 45e-15).abs() < 1e-24);
    }

    #[test]
    fn partial_overlap_halves_coupling() {
        let bus = CoupledBus::new(
            vec![m4_wire(500.0), m4_wire(500.0)],
            vec![CouplingGeom {
                a: 0,
                b: 1,
                cc_per_m: 90e-12,
                overlap: 0.5,
            }],
            10,
        )
        .unwrap();
        assert!((bus.total_coupling(0, 1) - 22.5e-15).abs() < 1e-24);
    }

    #[test]
    fn crosstalk_injection_through_bus() {
        // Drive wire 1 (aggressor) with a ramp; hold wire 0 (victim) near
        // end with a resistor; the victim far end must see a glitch.
        let bus = CoupledBus::parallel_pair(m4_wire(500.0), m4_wire(500.0), 90e-12, 20);
        let mut ckt = Circuit::new();
        let nodes = bus.instantiate(&mut ckt, "net").unwrap();
        ckt.add_vsource(
            "Vagg",
            nodes[1].near,
            Circuit::gnd(),
            SourceWaveform::Ramp {
                v0: 0.0,
                v1: 1.2,
                t_start: 0.2 * NS,
                t_rise: 100.0 * PS,
            },
        );
        ckt.add_resistor("Rhold", nodes[0].near, Circuit::gnd(), 2e3)
            .unwrap();
        let res = transient(&ckt, &TranParams::new(3.0 * NS, 2.0 * PS)).unwrap();
        let w = res.node_waveform(nodes[0].far);
        let m = w.glitch_metrics(0.0);
        assert!(m.peak > 0.05, "victim glitch {}", m.peak);
        assert!(m.peak < 1.2);
        // Near end (held) sees smaller noise than the floating far end.
        let m_near = res.node_waveform(nodes[0].near).glitch_metrics(0.0);
        assert!(m_near.peak < m.peak + 1e-9);
    }

    #[test]
    fn segment_refinement_converges() {
        // Far-end victim glitch peak with 8 vs 64 segments differs by < 5%.
        let run = |segments: usize| -> f64 {
            let bus = CoupledBus::parallel_pair(m4_wire(500.0), m4_wire(500.0), 90e-12, segments);
            let mut ckt = Circuit::new();
            let nodes = bus.instantiate(&mut ckt, "net").unwrap();
            ckt.add_vsource(
                "Vagg",
                nodes[1].near,
                Circuit::gnd(),
                SourceWaveform::Ramp {
                    v0: 0.0,
                    v1: 1.2,
                    t_start: 0.2 * NS,
                    t_rise: 100.0 * PS,
                },
            );
            ckt.add_resistor("Rhold", nodes[0].near, Circuit::gnd(), 2e3)
                .unwrap();
            let res = transient(&ckt, &TranParams::new(3.0 * NS, 2.0 * PS)).unwrap();
            res.node_waveform(nodes[0].far).glitch_metrics(0.0).peak
        };
        let p8 = run(8);
        let p64 = run(64);
        assert!((p8 - p64).abs() / p64 < 0.05, "p8={p8} p64={p64}");
    }

    #[test]
    fn three_wire_bus_victim_in_middle() {
        let bus = CoupledBus::new(
            vec![m4_wire(400.0), m4_wire(400.0), m4_wire(400.0)],
            vec![
                CouplingGeom::full(0, 1, 90e-12),
                CouplingGeom::full(1, 2, 90e-12),
            ],
            8,
        )
        .unwrap();
        let mut ckt = Circuit::new();
        let nodes = bus.instantiate(&mut ckt, "bus").unwrap();
        assert_eq!(nodes.len(), 3);
        // Middle wire coupled to both neighbors, outer pair uncoupled.
        assert!(bus.total_coupling(0, 1) > 0.0);
        assert!(bus.total_coupling(1, 2) > 0.0);
        assert_eq!(bus.total_coupling(0, 2), 0.0);
    }
}
