//! # sna-interconnect — coupled-RC interconnect construction
//!
//! Deterministic layout-extraction stand-in for the paper's "wiring
//! parasitics extracted from two 500 µm parallel-running interconnects":
//! wire geometry ([`geometry::WireGeom`], [`geometry::CouplingGeom`]) plus a
//! π-segmented coupled-ladder builder ([`bus::CoupledBus`]) that
//! instantiates directly into an [`sna_spice`] circuit.
//!
//! ```
//! use sna_interconnect::prelude::*;
//! use sna_spice::netlist::Circuit;
//!
//! # fn main() -> sna_spice::Result<()> {
//! // The paper's Table-1 geometry: two 500 um parallel M4 wires.
//! let wire = WireGeom::new(500e-6, 0.2e6, 40e-12);
//! let bus = CoupledBus::parallel_pair(wire, wire, 90e-12, 20);
//! let mut ckt = Circuit::new();
//! let nets = bus.instantiate(&mut ckt, "cluster")?;
//! assert_eq!(nets.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bus;
pub mod geometry;

pub use bus::{CoupledBus, WireNodes};
pub use geometry::{CouplingGeom, WireGeom};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::bus::{CoupledBus, WireNodes};
    pub use crate::geometry::{CouplingGeom, WireGeom};
}
