//! Wire geometry and per-unit-length parasitics.
//!
//! The paper's test case extracts "two 500 µm parallel-running interconnects
//! designed on metal layer 4". This module owns the deterministic
//! geometry→parasitics step standing in for that layout extraction: a wire
//! is a length plus per-meter R/C figures (taken from a technology's metal
//! stack), and parallel runs couple through a per-meter coupling
//! capacitance scaled by their overlap fraction.

use serde::{Deserialize, Serialize};

/// Electrical geometry of one routed net segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireGeom {
    /// Routed length (m).
    pub length: f64,
    /// Series resistance per meter (Ω/m).
    pub r_per_m: f64,
    /// Ground capacitance per meter (F/m).
    pub cg_per_m: f64,
}

impl WireGeom {
    /// A wire of `length` with the given per-meter figures.
    ///
    /// # Panics
    ///
    /// Panics on non-positive length or negative parasitics.
    pub fn new(length: f64, r_per_m: f64, cg_per_m: f64) -> Self {
        assert!(length > 0.0, "wire length must be positive");
        assert!(r_per_m > 0.0, "wire resistance must be positive");
        assert!(cg_per_m >= 0.0, "ground capacitance must be non-negative");
        Self {
            length,
            r_per_m,
            cg_per_m,
        }
    }

    /// Total series resistance (Ω).
    pub fn total_r(&self) -> f64 {
        self.r_per_m * self.length
    }

    /// Total ground capacitance (F).
    pub fn total_cg(&self) -> f64 {
        self.cg_per_m * self.length
    }
}

/// A capacitive coupling between two parallel wires of a bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CouplingGeom {
    /// Index of the first wire.
    pub a: usize,
    /// Index of the second wire.
    pub b: usize,
    /// Coupling capacitance per meter of *overlap* (F/m).
    pub cc_per_m: f64,
    /// Fraction of the shorter wire's length over which the pair runs in
    /// parallel (0..=1).
    pub overlap: f64,
}

impl CouplingGeom {
    /// Full-overlap coupling between wires `a` and `b`.
    pub fn full(a: usize, b: usize, cc_per_m: f64) -> Self {
        Self {
            a,
            b,
            cc_per_m,
            overlap: 1.0,
        }
    }

    /// Total coupling capacitance given the two wire lengths (F).
    pub fn total_cc(&self, wires: &[WireGeom]) -> f64 {
        let len = wires[self.a].length.min(wires[self.b].length);
        self.cc_per_m * self.overlap * len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        // The paper's wire: 500 um of M4-like metal.
        let w = WireGeom::new(500e-6, 0.2e6, 40e-12);
        assert!((w.total_r() - 100.0).abs() < 1e-9);
        assert!((w.total_cg() - 20e-15).abs() < 1e-24);
    }

    #[test]
    fn coupling_uses_overlap_and_shorter_wire() {
        let wires = [
            WireGeom::new(500e-6, 0.2e6, 40e-12),
            WireGeom::new(300e-6, 0.2e6, 40e-12),
        ];
        let c = CouplingGeom {
            a: 0,
            b: 1,
            cc_per_m: 90e-12,
            overlap: 0.5,
        };
        assert!((c.total_cc(&wires) - 90e-12 * 0.5 * 300e-6).abs() < 1e-24);
        let f = CouplingGeom::full(0, 1, 90e-12);
        assert!((f.total_cc(&wires) - 90e-12 * 300e-6).abs() < 1e-24);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_rejected() {
        WireGeom::new(0.0, 1.0, 1.0);
    }
}
