//! # sna-mor — model order reduction for coupled RC interconnect
//!
//! The interconnect of a noise cluster "is modeled at the driving points
//! […] represented by a coupled-Σ model, which can be obtained with
//! moment-matching techniques" (Forzan & Pandini §2, citing their CICC'98
//! work). This crate provides that machinery three ways:
//!
//! * [`moments`] — block admittance moments of an N-port RC network;
//! * [`pi_model`] / [`coupled_pi`] — the classic O'Brien–Savarino Π and its
//!   coupled multiport extension (cheap, first-moment-exact);
//! * [`prima`] — block-Arnoldi congruence projection keeping every driving
//!   point *and* receiver tap as a port (the reduction the noise engine in
//!   `sna-core` integrates).
//!
//! ```
//! use sna_interconnect::prelude::*;
//! use sna_mor::prelude::*;
//! use sna_spice::netlist::Circuit;
//!
//! # fn main() -> sna_spice::Result<()> {
//! let wire = WireGeom::new(500e-6, 0.2e6, 40e-12);
//! let bus = CoupledBus::parallel_pair(wire, wire, 90e-12, 20);
//! let mut ckt = Circuit::new();
//! let nets = bus.instantiate(&mut ckt, "n")?;
//! let ports = [nets[0].near, nets[1].near];
//! let reduced = prima_reduce(&ckt, &ports, DEFAULT_Q, DEFAULT_S0)?;
//! assert!(reduced.dim() <= 6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod coupled_pi;
pub mod moments;
pub mod pi_model;
pub mod prima;

pub use coupled_pi::CoupledPiModel;
pub use moments::port_admittance_moments;
pub use pi_model::{pi_from_network, PiModel};
pub use prima::{prima_reduce, prima_reduce_with, ReducedSystem, DEFAULT_Q, DEFAULT_S0};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::coupled_pi::CoupledPiModel;
    pub use crate::moments::port_admittance_moments;
    pub use crate::pi_model::{pi_from_network, PiModel};
    pub use crate::prima::{prima_reduce, prima_reduce_with, ReducedSystem, DEFAULT_Q, DEFAULT_S0};
}
