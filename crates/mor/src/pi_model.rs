//! O'Brien–Savarino Π-model reduction of a driving-point admittance.
//!
//! Matches the first three admittance moments `y1·s + y2·s² + y3·s³` of an
//! RC net with the three-element Π (near cap `C1`, resistance `R`, far cap
//! `C2`):
//!
//! ```text
//!   C2 = y2² / y3,   R = −y3² / y2³,   C1 = y1 − C2
//! ```
//!
//! This is the per-net building block of the classic coupled-Π noise model
//! and the cheap alternative (ablation #2 in DESIGN.md) to the projection
//! reduction in [`crate::prima`].

use serde::{Deserialize, Serialize};
use sna_spice::error::{Error, Result};
use sna_spice::netlist::{Circuit, NodeId};

/// Three-element Π driving-point model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PiModel {
    /// Capacitance at the driving point (F).
    pub c_near: f64,
    /// Series resistance (Ω).
    pub r: f64,
    /// Capacitance behind the resistance (F).
    pub c_far: f64,
}

impl PiModel {
    /// Fit from the first three driving-point admittance moments.
    ///
    /// Degenerate moment sets (non-negative `y2`, non-positive `y3`, or a
    /// far capacitance exceeding the total) fall back to a single lumped
    /// capacitor `C1 = y1`, which is always passive.
    ///
    /// # Errors
    ///
    /// Fails when `y1` (the total capacitance) is not positive.
    pub fn from_moments(y1: f64, y2: f64, y3: f64) -> Result<Self> {
        if y1.is_nan() || y1 <= 0.0 {
            return Err(Error::InvalidAnalysis(format!(
                "pi fit needs positive first moment, got {y1}"
            )));
        }
        if y2 >= 0.0 || y3 <= 0.0 {
            return Ok(PiModel {
                c_near: y1,
                r: 0.0,
                c_far: 0.0,
            });
        }
        let c2 = y2 * y2 / y3;
        let r = -y3 * y3 / (y2 * y2 * y2);
        if !(c2.is_finite() && r.is_finite()) || c2 <= 0.0 || r <= 0.0 || c2 >= y1 {
            return Ok(PiModel {
                c_near: y1,
                r: 0.0,
                c_far: 0.0,
            });
        }
        Ok(PiModel {
            c_near: y1 - c2,
            r,
            c_far: c2,
        })
    }

    /// First three admittance moments of this Π (for round-trip checks).
    pub fn moments(&self) -> (f64, f64, f64) {
        let y1 = self.c_near + self.c_far;
        let y2 = -self.r * self.c_far * self.c_far;
        let y3 = self.r * self.r * self.c_far * self.c_far * self.c_far;
        (y1, y2, y3)
    }

    /// Total capacitance (low-frequency limit).
    pub fn total_cap(&self) -> f64 {
        self.c_near + self.c_far
    }

    /// Instantiate into a circuit at `port`; returns the internal far node
    /// (or `port` itself for a degenerate lumped fit).
    ///
    /// # Errors
    ///
    /// Propagates element validation failures.
    pub fn instantiate(&self, ckt: &mut Circuit, prefix: &str, port: NodeId) -> Result<NodeId> {
        if self.c_near > 0.0 {
            ckt.add_capacitor(&format!("{prefix}.c1"), port, Circuit::gnd(), self.c_near)?;
        }
        if self.r <= 0.0 || self.c_far <= 0.0 {
            return Ok(port);
        }
        let far = ckt.node(&format!("{prefix}.far"));
        ckt.add_resistor(&format!("{prefix}.r"), port, far, self.r)?;
        ckt.add_capacitor(&format!("{prefix}.c2"), far, Circuit::gnd(), self.c_far)?;
        Ok(far)
    }
}

/// Fit a Π model to the driving point of a (single-port) RC network.
///
/// # Errors
///
/// Propagates moment-computation failures.
pub fn pi_from_network(circuit: &Circuit, port: NodeId) -> Result<PiModel> {
    let m = crate::moments::port_admittance_moments(circuit, &[port], 3)?;
    PiModel::from_moments(m[0][(0, 0)], m[1][(0, 0)], m[2][(0, 0)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sna_spice::devices::SourceWaveform;
    use sna_spice::tran::{transient, TranParams};
    use sna_spice::units::{NS, PS};

    #[test]
    fn exact_on_actual_pi() {
        // A Π is reproduced exactly from its own moments.
        let truth = PiModel {
            c_near: 12e-15,
            r: 180.0,
            c_far: 25e-15,
        };
        let (y1, y2, y3) = truth.moments();
        let fit = PiModel::from_moments(y1, y2, y3).unwrap();
        assert!((fit.c_near - truth.c_near).abs() / truth.c_near < 1e-9);
        assert!((fit.r - truth.r).abs() / truth.r < 1e-9);
        assert!((fit.c_far - truth.c_far).abs() / truth.c_far < 1e-9);
    }

    #[test]
    fn degenerate_falls_back_to_lump() {
        let p = PiModel::from_moments(10e-15, 0.0, 0.0).unwrap();
        assert_eq!(p.r, 0.0);
        assert!((p.c_near - 10e-15).abs() < 1e-24);
        assert!(PiModel::from_moments(-1e-15, -1.0, 1.0).is_err());
    }

    #[test]
    fn ladder_reduces_to_plausible_pi() {
        use sna_interconnect::prelude::*;
        let w = WireGeom::new(500e-6, 0.2e6, 40e-12);
        let bus = CoupledBus::new(vec![w], vec![], 30).unwrap();
        let mut ckt = Circuit::new();
        let nets = bus.instantiate(&mut ckt, "w").unwrap();
        let pi = pi_from_network(&ckt, nets[0].near).unwrap();
        // Total cap preserved.
        assert!((pi.total_cap() - 20e-15).abs() / 20e-15 < 1e-6);
        // Both caps positive, resistance within ~x3 of the physical 100 ohm
        // (moment matching concentrates it).
        assert!(pi.c_near > 0.0 && pi.c_far > 0.0);
        assert!(pi.r > 20.0 && pi.r < 300.0, "r={}", pi.r);
    }

    #[test]
    fn pi_tracks_ladder_driving_point_waveform() {
        use sna_interconnect::prelude::*;
        // Drive both the full ladder and its Π through the same source
        // resistance; DP waveforms should agree closely.
        let w = WireGeom::new(500e-6, 0.2e6, 40e-12);
        let bus = CoupledBus::new(vec![w], vec![], 30).unwrap();
        let mut full = Circuit::new();
        let nets = bus.instantiate(&mut full, "w").unwrap();
        let dp_full = nets[0].near;
        let src = full.node("src");
        full.add_vsource(
            "V",
            src,
            Circuit::gnd(),
            SourceWaveform::Ramp {
                v0: 0.0,
                v1: 1.0,
                t_start: 0.1 * NS,
                t_rise: 100.0 * PS,
            },
        );
        full.add_resistor("Rdrv", src, dp_full, 500.0).unwrap();

        let mut net_only = Circuit::new();
        let n = bus.instantiate(&mut net_only, "w").unwrap();
        let pi = pi_from_network(&net_only, n[0].near).unwrap();
        let mut red = Circuit::new();
        let dp_red = red.node("dp");
        let src = red.node("src");
        red.add_vsource(
            "V",
            src,
            Circuit::gnd(),
            SourceWaveform::Ramp {
                v0: 0.0,
                v1: 1.0,
                t_start: 0.1 * NS,
                t_rise: 100.0 * PS,
            },
        );
        red.add_resistor("Rdrv", src, dp_red, 500.0).unwrap();
        pi.instantiate(&mut red, "pi", dp_red).unwrap();

        let p = TranParams::new(2.0 * NS, 2.0 * PS);
        let wf = transient(&full, &p).unwrap().node_waveform(dp_full);
        let wr = transient(&red, &p).unwrap().node_waveform(dp_red);
        let err = wf.max_abs_difference(&wr);
        assert!(err < 0.02, "max dp difference {err} V");
    }

    proptest! {
        /// Round trip: fit(moments(pi)) == pi for random physical Πs.
        #[test]
        fn prop_roundtrip(c1 in 1e-15f64..100e-15, r in 10.0f64..1e4, c2 in 1e-15f64..100e-15) {
            let truth = PiModel { c_near: c1, r, c_far: c2 };
            let (y1, y2, y3) = truth.moments();
            let fit = PiModel::from_moments(y1, y2, y3).unwrap();
            prop_assert!((fit.c_near - c1).abs() / c1 < 1e-6);
            prop_assert!((fit.r - r).abs() / r < 1e-6);
            prop_assert!((fit.c_far - c2).abs() / c2 < 1e-6);
        }

        /// The fit never produces negative elements from physical ladders.
        #[test]
        fn prop_physical_ladders_give_physical_pis(
            len_um in 50.0f64..2000.0,
            r_per_um in 0.05f64..1.0,
            cg_per_um in 0.01f64..0.2,
            segments in 2usize..40)
        {
            use sna_interconnect::prelude::*;
            let w = WireGeom::new(len_um * 1e-6, r_per_um * 1e6, cg_per_um * 1e-9);
            let bus = CoupledBus::new(vec![w], vec![], segments).unwrap();
            let mut ckt = Circuit::new();
            let nets = bus.instantiate(&mut ckt, "w").unwrap();
            let pi = pi_from_network(&ckt, nets[0].near).unwrap();
            prop_assert!(pi.c_near >= 0.0);
            prop_assert!(pi.c_far >= 0.0);
            prop_assert!(pi.r >= 0.0);
            let total = w.total_cg();
            prop_assert!((pi.total_cap() - total).abs() / total < 1e-3);
        }
    }
}
