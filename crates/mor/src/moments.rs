//! Block admittance moments of coupled RC networks.
//!
//! For a linear interconnect network seen from `p` ports, the short-circuit
//! admittance matrix expands as `Y(s) = M1·s + M2·s² + M3·s³ + …` (RC nets
//! with no resistive path to ground have `M0 = 0`). These moments are the
//! raw material of every reduction in this crate — the paper obtains its
//! coupled driving-point model "with moment-matching techniques following
//! the approach presented in [8]" (Forzan et al., CICC'98).
//!
//! Computation: add a 0 V source at every port, factor the MNA conductance
//! matrix once, then run the classic recursion `G·x₀ = b`, `G·x_{k+1} =
//! −C·x_k`; the port branch currents of `x_k` are the entries of `M_k`.

use sna_spice::devices::SourceWaveform;
use sna_spice::error::{Error, Result};
use sna_spice::linalg::DenseMatrix;
use sna_spice::mna::MnaSystem;
use sna_spice::netlist::{Circuit, NodeId};

/// Block moments `M1..=Mn` of the port admittance of `circuit` seen from
/// `ports`. `circuit` must be linear (R/C only); the returned vector holds
/// `n_moments` matrices of size `p × p`, starting at the `s¹` moment.
///
/// # Errors
///
/// Fails if the circuit contains non-linear elements or sources, a port is
/// ground, or the conductance matrix is singular.
pub fn port_admittance_moments(
    circuit: &Circuit,
    ports: &[NodeId],
    n_moments: usize,
) -> Result<Vec<DenseMatrix>> {
    if ports.is_empty() || n_moments == 0 {
        return Err(Error::InvalidAnalysis(
            "need at least one port and one moment".into(),
        ));
    }
    if circuit.is_nonlinear() {
        return Err(Error::InvalidAnalysis(
            "moment computation requires a linear RC network".into(),
        ));
    }
    if ports.iter().any(|p| p.is_ground()) {
        return Err(Error::InvalidAnalysis("ground cannot be a port".into()));
    }
    // Clone and clamp every port with a 0 V source to measure short-circuit
    // admittances.
    let mut ckt = circuit.clone();
    for e in ckt.elements() {
        if matches!(
            e,
            sna_spice::netlist::Element::VSource { .. }
                | sna_spice::netlist::Element::ISource { .. }
                | sna_spice::netlist::Element::Vcvs { .. }
                | sna_spice::netlist::Element::Cccs { .. }
                | sna_spice::netlist::Element::Ccvs { .. }
        ) {
            return Err(Error::InvalidAnalysis(
                "moment computation requires a source-free network".into(),
            ));
        }
    }
    for (i, &p) in ports.iter().enumerate() {
        ckt.add_vsource(
            &format!("__port{i}"),
            p,
            Circuit::gnd(),
            SourceWaveform::Dc(0.0),
        );
    }
    let mna = MnaSystem::new(&ckt)?;
    let dim = mna.dim();
    let n_nodes = mna.n_nodes();
    let lu = mna.g_matrix().lu()?;
    let p = ports.len();
    let mut moments = vec![DenseMatrix::zeros(p, p); n_moments];
    for j in 0..p {
        // Unit voltage at port j, zero at the others.
        let mut b = vec![0.0; dim];
        b[n_nodes + j] = 1.0;
        let mut x = lu.solve(&b);
        for m_k in moments.iter_mut() {
            // x_{k+1} = G^{-1} (-C x_k)
            let cx = mna.c_matrix().mul_vec(&x);
            let rhs: Vec<f64> = cx.iter().map(|v| -v).collect();
            x = lu.solve(&rhs);
            for i in 0..p {
                // Branch current convention: positive flows from the +
                // terminal through the source; admittance draws the
                // opposite sign.
                m_k[(i, j)] = -x[n_nodes + i];
            }
        }
    }
    Ok(moments)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// R in series with C to ground behind one port:
    /// Y(s) = sC/(1+sRC) = Cs - RC^2 s^2 + R^2C^3 s^3 - ...
    #[test]
    fn series_rc_moments_closed_form() {
        let r = 150.0;
        let c = 30e-15;
        let mut ckt = Circuit::new();
        let port = ckt.node("p");
        let mid = ckt.node("m");
        ckt.add_resistor("R", port, mid, r).unwrap();
        ckt.add_capacitor("C", mid, Circuit::gnd(), c).unwrap();
        let m = port_admittance_moments(&ckt, &[port], 3).unwrap();
        assert!((m[0][(0, 0)] - c).abs() / c < 1e-9, "m1={}", m[0][(0, 0)]);
        assert!(
            (m[1][(0, 0)] + r * c * c).abs() / (r * c * c) < 1e-9,
            "m2={}",
            m[1][(0, 0)]
        );
        assert!(
            (m[2][(0, 0)] - r * r * c * c * c).abs() / (r * r * c * c * c) < 1e-9,
            "m3={}",
            m[2][(0, 0)]
        );
    }

    /// Pure coupling cap between two ports: M1 = [[Cc, -Cc], [-Cc, Cc]].
    #[test]
    fn coupling_cap_block_moment() {
        let cc = 45e-15;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_capacitor("Cc", a, b, cc).unwrap();
        // Small ground caps keep the network physical.
        ckt.add_capacitor("Ca", a, Circuit::gnd(), 1e-15).unwrap();
        ckt.add_capacitor("Cb", b, Circuit::gnd(), 1e-15).unwrap();
        let m = port_admittance_moments(&ckt, &[a, b], 2).unwrap();
        assert!((m[0][(0, 0)] - (cc + 1e-15)).abs() < 1e-20);
        assert!((m[0][(0, 1)] + cc).abs() < 1e-20);
        assert!((m[0][(1, 0)] + cc).abs() < 1e-20);
        // With both ports voltage-clamped there is no RC dynamics at all:
        // M2 vanishes.
        assert!(m[1][(0, 0)].abs() < 1e-25);
    }

    /// First moment diagonal of a wire equals its total capacitance
    /// (ground + coupling), regardless of segmentation.
    #[test]
    fn ladder_first_moment_is_total_cap() {
        use sna_interconnect::prelude::*;
        let w = WireGeom::new(500e-6, 0.2e6, 40e-12);
        let bus = CoupledBus::parallel_pair(w, w, 90e-12, 25);
        let mut ckt = Circuit::new();
        let nets = bus.instantiate(&mut ckt, "n").unwrap();
        let ports = [nets[0].near, nets[1].near];
        let m = port_admittance_moments(&ckt, &ports, 1).unwrap();
        let cg = 20e-15;
        let cc = 45e-15;
        assert!(
            (m[0][(0, 0)] - (cg + cc)).abs() / (cg + cc) < 1e-6,
            "m1_00={}",
            m[0][(0, 0)]
        );
        assert!((m[0][(0, 1)] + cc).abs() / cc < 1e-6);
        // Symmetry.
        assert!((m[0][(0, 1)] - m[0][(1, 0)]).abs() < 1e-24);
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_capacitor("C", a, Circuit::gnd(), 1e-15).unwrap();
        assert!(port_admittance_moments(&ckt, &[], 2).is_err());
        assert!(port_admittance_moments(&ckt, &[a], 0).is_err());
        assert!(port_admittance_moments(&ckt, &[Circuit::gnd()], 1).is_err());
        let mut with_src = ckt.clone();
        with_src.add_vsource("V", a, Circuit::gnd(), SourceWaveform::Dc(1.0));
        assert!(port_admittance_moments(&with_src, &[a], 1).is_err());
    }
}
