//! Coupled-Π multiport reduction.
//!
//! The traditional noise-tool realization of the "coupled driving-point
//! model": each net gets an O'Brien–Savarino Π from the *diagonal* block
//! moments (computed with all other ports shorted), and the inter-net
//! coupling is realized as explicit capacitors between the near (driving
//! point) nodes sized to match the off-diagonal first moments exactly.
//! The near ground capacitance is debited by the re-allocated coupling so
//! the total first-moment block `M1` is preserved.
//!
//! Cheaper but less faithful than [`crate::prima`] at higher frequencies —
//! the comparison is DESIGN.md ablation #2 and `benches/mor.rs`.

use serde::{Deserialize, Serialize};
use sna_spice::error::{Error, Result};
use sna_spice::netlist::{Circuit, NodeId};

use crate::moments::port_admittance_moments;
use crate::pi_model::PiModel;

/// Coupled-Π macromodel of an N-port RC interconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoupledPiModel {
    /// Per-port Π models (ground-referred part).
    pub ports: Vec<PiModel>,
    /// Coupling capacitors `(i, j, farads)` between near nodes, `i < j`.
    pub coupling: Vec<(usize, usize, f64)>,
}

impl CoupledPiModel {
    /// Reduce `circuit` (linear RC) seen from `ports`.
    ///
    /// # Errors
    ///
    /// Propagates moment-computation and fitting failures.
    pub fn reduce(circuit: &Circuit, ports: &[NodeId]) -> Result<Self> {
        let m = port_admittance_moments(circuit, ports, 3)?;
        let p = ports.len();
        let mut pis = Vec::with_capacity(p);
        // Off-diagonal couplings from M1 (symmetrized).
        let mut coupling = Vec::new();
        let mut debit = vec![0.0; p];
        for i in 0..p {
            for j in (i + 1)..p {
                let cc = -0.5 * (m[0][(i, j)] + m[0][(j, i)]);
                if cc > 1e-21 {
                    coupling.push((i, j, cc));
                    debit[i] += cc;
                    debit[j] += cc;
                }
            }
        }
        for i in 0..p {
            let mut pi = PiModel::from_moments(m[0][(i, i)], m[1][(i, i)], m[2][(i, i)])?;
            // Re-allocate the explicit coupling out of the near cap.
            let take = debit[i].min(pi.c_near);
            pi.c_near -= take;
            let rest = debit[i] - take;
            pi.c_far = (pi.c_far - rest).max(0.0);
            pis.push(pi);
        }
        Ok(CoupledPiModel {
            ports: pis,
            coupling,
        })
    }

    /// Number of ports.
    pub fn n_ports(&self) -> usize {
        self.ports.len()
    }

    /// Instantiate at the given port nodes; returns the far node of each
    /// port's Π.
    ///
    /// # Errors
    ///
    /// Fails if `port_nodes.len()` mismatches, or on element validation.
    pub fn instantiate(
        &self,
        ckt: &mut Circuit,
        prefix: &str,
        port_nodes: &[NodeId],
    ) -> Result<Vec<NodeId>> {
        if port_nodes.len() != self.ports.len() {
            return Err(Error::InvalidCircuit(format!(
                "coupled pi has {} ports, got {} nodes",
                self.ports.len(),
                port_nodes.len()
            )));
        }
        let mut fars = Vec::with_capacity(self.ports.len());
        for (i, pi) in self.ports.iter().enumerate() {
            fars.push(pi.instantiate(ckt, &format!("{prefix}.p{i}"), port_nodes[i])?);
        }
        for (k, &(i, j, cc)) in self.coupling.iter().enumerate() {
            ckt.add_capacitor(&format!("{prefix}.cc{k}"), port_nodes[i], port_nodes[j], cc)?;
        }
        Ok(fars)
    }

    /// Total capacitance (ground + coupling) seen at port `i` — preserved
    /// from the full network's first moment.
    pub fn total_cap_at(&self, i: usize) -> f64 {
        let own = self.ports[i].total_cap();
        let cpl: f64 = self
            .coupling
            .iter()
            .filter(|&&(a, b, _)| a == i || b == i)
            .map(|&(_, _, c)| c)
            .sum();
        own + cpl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_interconnect::prelude::*;
    use sna_spice::devices::SourceWaveform;
    use sna_spice::tran::{transient, TranParams};
    use sna_spice::units::{NS, PS, UM};

    fn paper_bus(segments: usize) -> (Circuit, Vec<WireNodes>, CoupledBus) {
        let w = WireGeom::new(500.0 * UM, 0.2e6, 40e-12);
        let bus = CoupledBus::parallel_pair(w, w, 90e-12, segments);
        let mut ckt = Circuit::new();
        let nets = bus.instantiate(&mut ckt, "n").unwrap();
        (ckt, nets, bus)
    }

    #[test]
    fn first_moment_preserved() {
        let (ckt, nets, bus) = paper_bus(25);
        let ports = [nets[0].near, nets[1].near];
        let cp = CoupledPiModel::reduce(&ckt, &ports).unwrap();
        assert_eq!(cp.n_ports(), 2);
        // Total cap at each port = ground 20fF + coupling 45fF.
        let want = 20e-15 + bus.total_coupling(0, 1);
        for i in 0..2 {
            let got = cp.total_cap_at(i);
            assert!((got - want).abs() / want < 1e-6, "port {i}: {got}");
        }
        // Coupling cap close to the physical total (resistive shielding
        // pushes some of it away from the DP, but M1 matching is exact).
        assert_eq!(cp.coupling.len(), 1);
        assert!((cp.coupling[0].2 - 45e-15).abs() / 45e-15 < 1e-6);
    }

    #[test]
    fn crosstalk_waveform_tracks_full_ladder() {
        // Aggressor ramp behind a driver resistance, victim held by a
        // resistor: compare victim DP waveforms, full vs coupled-pi.
        let build_drive = |ckt: &mut Circuit, agg_dp: NodeId, vic_dp: NodeId| {
            let src = ckt.node("src");
            ckt.add_vsource(
                "Vagg",
                src,
                Circuit::gnd(),
                SourceWaveform::Ramp {
                    v0: 0.0,
                    v1: 1.2,
                    t_start: 0.2 * NS,
                    t_rise: 100.0 * PS,
                },
            );
            ckt.add_resistor("Rdrv", src, agg_dp, 300.0).unwrap();
            ckt.add_resistor("Rhold", vic_dp, Circuit::gnd(), 2e3)
                .unwrap();
        };
        let (mut full, nets, _) = paper_bus(25);
        build_drive(&mut full, nets[1].near, nets[0].near);
        let p = TranParams::new(3.0 * NS, 2.0 * PS);
        let w_full = transient(&full, &p).unwrap().node_waveform(nets[0].near);

        let (net_only, nets2, _) = paper_bus(25);
        let ports = [nets2[0].near, nets2[1].near];
        let cp = CoupledPiModel::reduce(&net_only, &ports).unwrap();
        let mut red = Circuit::new();
        let vic = red.node("vic");
        let agg = red.node("agg");
        cp.instantiate(&mut red, "pi", &[vic, agg]).unwrap();
        build_drive(&mut red, agg, vic);
        let w_red = transient(&red, &p).unwrap().node_waveform(vic);

        let m_full = w_full.glitch_metrics(0.0);
        let m_red = w_red.glitch_metrics(0.0);
        let err = (m_red.peak - m_full.peak).abs() / m_full.peak;
        assert!(
            err < 0.15,
            "peak mismatch {err:.3}: full={} red={}",
            m_full.peak,
            m_red.peak
        );
    }

    #[test]
    fn port_count_mismatch_rejected() {
        let (ckt, nets, _) = paper_bus(10);
        let cp = CoupledPiModel::reduce(&ckt, &[nets[0].near, nets[1].near]).unwrap();
        let mut red = Circuit::new();
        let a = red.node("a");
        assert!(cp.instantiate(&mut red, "pi", &[a]).is_err());
    }
}
