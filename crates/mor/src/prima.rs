//! PRIMA-style passive projection reduction.
//!
//! The workhorse reduction behind the cluster macromodel: a block-Arnoldi
//! Krylov basis of the shifted system `(G + s₀C)⁻¹C` projected by
//! congruence onto the port incidence. This is the modern formulation of
//! the moment-matched multiport macromodel the paper's reference [8]
//! ("coupled-S model") constructs — it matches block moments at `s₀` while
//! preserving the RC network's passivity structure, and keeps *all* ports
//! (victim driving point, aggressor driving points, receiver taps) visible
//! to the non-linear noise engine.

use serde::{Deserialize, Serialize};
use sna_spice::error::{Error, Result};
use sna_spice::linalg::{DenseMatrix, LuFactors};
use sna_spice::mna::MnaSystem;
use sna_spice::netlist::{Circuit, NodeId};
use sna_spice::solver::SolverKind;
use sna_spice::sparse::{SparseLu, SparseMatrix, Symbolic};

/// Factorization of the shifted system `(G + s₀·C)`, on whichever backend
/// [`SolverKind`] resolves to: the block-Arnoldi recursion solves against
/// it `q × p` times plus once per deflation retry, so segmented-bus
/// reductions (hundreds of unknowns, tridiagonal-plus-coupling pattern)
/// gain the full sparse-factor advantage.
enum ShiftedFactor {
    Dense(LuFactors),
    Sparse {
        lu: Box<SparseLu>,
        x: Vec<f64>,
        work: Vec<f64>,
    },
}

impl ShiftedFactor {
    fn build(shifted: &DenseMatrix, kind: SolverKind) -> Result<Self> {
        let n = shifted.n_rows();
        if kind.is_sparse_for(n) {
            let sp = SparseMatrix::from_dense(shifted);
            let sym = Symbolic::analyze(&sp);
            Ok(ShiftedFactor::Sparse {
                lu: Box::new(SparseLu::factor(&sp, &sym)?),
                x: vec![0.0; n],
                work: vec![0.0; n],
            })
        } else {
            Ok(ShiftedFactor::Dense(shifted.lu()?))
        }
    }

    fn solve(&mut self, b: &[f64]) -> Vec<f64> {
        match self {
            ShiftedFactor::Dense(lu) => lu.solve(b),
            ShiftedFactor::Sparse { lu, x, work } => {
                lu.solve_into(b, x, work);
                x.clone()
            }
        }
    }
}

/// Reduced multiport RC system `Ĉ·ẋ + Ĝ·x = B̂·u`, `y = B̂ᵀ·x`, where `u`
/// are port current injections and `y` the port voltages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReducedSystem {
    /// Reduced conductance matrix (m × m).
    pub g: DenseMatrix,
    /// Reduced capacitance matrix (m × m).
    pub c: DenseMatrix,
    /// Reduced port incidence (m × p).
    pub b: DenseMatrix,
}

impl ReducedSystem {
    /// Reduced state dimension.
    pub fn dim(&self) -> usize {
        self.g.n_rows()
    }

    /// Number of ports.
    pub fn n_ports(&self) -> usize {
        self.b.n_cols()
    }

    /// Port voltages `B̂ᵀ·x` for a state vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn port_voltages(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim());
        let mut y = vec![0.0; self.n_ports()];
        for (p, yp) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (i, &xi) in x.iter().enumerate() {
                acc += self.b[(i, p)] * xi;
            }
            *yp = acc;
        }
        y
    }

    /// Simulate the *linear* reduced system with trapezoidal integration.
    /// `inject(t)` returns the port current injections (A, into the port);
    /// returns the port-voltage series sampled at each step, starting at
    /// `t = 0` with zero initial state.
    ///
    /// The non-linear noise engine in `sna-core` extends this loop with a
    /// Newton iteration; this linear version backs the superposition
    /// baseline and the MOR accuracy tests.
    ///
    /// # Errors
    ///
    /// Fails on a singular step matrix or non-positive step/horizon.
    pub fn simulate_linear<F: FnMut(f64) -> Vec<f64>>(
        &self,
        mut inject: F,
        dt: f64,
        t_stop: f64,
    ) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
        if !(dt > 0.0 && t_stop > dt) {
            return Err(Error::InvalidAnalysis(format!(
                "bad reduced-transient window: dt={dt}, t_stop={t_stop}"
            )));
        }
        let m = self.dim();
        let n_steps = (t_stop / dt).round() as usize;
        let alpha = 2.0 / dt;
        // LHS = G + alpha C ; RHS uses (alpha C - G).
        let mut lhs = DenseMatrix::zeros(m, m);
        lhs.axpy(1.0, &self.g);
        lhs.axpy(alpha, &self.c);
        let lu = lhs.lu()?;
        let mut rhs_mat = DenseMatrix::zeros(m, m);
        rhs_mat.axpy(-1.0, &self.g);
        rhs_mat.axpy(alpha, &self.c);
        let mut x = vec![0.0; m];
        let mut u_prev = inject(0.0);
        let mut times = Vec::with_capacity(n_steps + 1);
        let mut ys = Vec::with_capacity(n_steps + 1);
        times.push(0.0);
        ys.push(self.port_voltages(&x));
        for k in 1..=n_steps {
            let t = k as f64 * dt;
            let u = inject(t);
            let mut rhs = rhs_mat.mul_vec(&x);
            for (i, ri) in rhs.iter_mut().enumerate().take(m) {
                let mut acc = 0.0;
                for (p, (up, upr)) in u.iter().zip(&u_prev).enumerate() {
                    acc += self.b[(i, p)] * (up + upr);
                }
                *ri += acc;
            }
            x = lu.solve(&rhs);
            times.push(t);
            ys.push(self.port_voltages(&x));
            u_prev = u;
        }
        Ok((times, ys))
    }
}

/// Reduce `circuit` (linear RC only) seen from `ports` with `q` block
/// moments expanded around `s0` (rad/s). Reduced dimension is at most
/// `q × ports.len()`.
///
/// # Errors
///
/// Fails on non-linear circuits, sources in the network, ground ports, or
/// singular shifted systems.
pub fn prima_reduce(
    circuit: &Circuit,
    ports: &[NodeId],
    q: usize,
    s0: f64,
) -> Result<ReducedSystem> {
    prima_reduce_with(circuit, ports, q, s0, SolverKind::Auto)
}

/// [`prima_reduce`] with an explicit linear-solver selection for the
/// shifted-system factorization (dense, sparse, or dimension-based auto).
///
/// # Errors
///
/// As [`prima_reduce`].
pub fn prima_reduce_with(
    circuit: &Circuit,
    ports: &[NodeId],
    q: usize,
    s0: f64,
    solver: SolverKind,
) -> Result<ReducedSystem> {
    if ports.is_empty() || q == 0 {
        return Err(Error::InvalidAnalysis(
            "prima needs at least one port and one moment block".into(),
        ));
    }
    if circuit.is_nonlinear() {
        return Err(Error::InvalidAnalysis(
            "prima requires a linear RC network".into(),
        ));
    }
    if s0.is_nan() || s0 <= 0.0 {
        return Err(Error::InvalidAnalysis(
            "prima expansion point must be > 0".into(),
        ));
    }
    let mna = MnaSystem::new(circuit)?;
    if !mna.vsources().is_empty() {
        return Err(Error::InvalidAnalysis(
            "prima requires a source-free network".into(),
        ));
    }
    let n = mna.dim();
    let p = ports.len();
    // Port incidence matrix B (n × p).
    let mut b = DenseMatrix::zeros(n, p);
    for (j, &port) in ports.iter().enumerate() {
        let row = mna
            .node_unknown(port)
            .ok_or_else(|| Error::InvalidAnalysis("ground cannot be a port".into()))?;
        b[(row, j)] = 1.0;
    }
    // Shifted system A = (G + s0 C)^{-1}.
    let mut shifted = DenseMatrix::zeros(n, n);
    shifted.axpy(1.0, mna.g_matrix());
    shifted.axpy(s0, mna.c_matrix());
    let mut lu = ShiftedFactor::build(&shifted, solver)?;
    // Block Arnoldi with modified Gram-Schmidt.
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(q * p);
    let mut block: Vec<Vec<f64>> = (0..p)
        .map(|j| {
            let col: Vec<f64> = (0..n).map(|i| b[(i, j)]).collect();
            lu.solve(&col)
        })
        .collect();
    for _ in 0..q {
        let mut next_block = Vec::with_capacity(p);
        for mut v in block.drain(..) {
            // Deflation must be judged relative to the incoming vector's
            // scale: Krylov vectors shrink by ~|C|/|G| every block, so an
            // absolute cutoff would wrongly discard deep moments.
            let norm_in: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm_in == 0.0 {
                continue;
            }
            // Orthogonalize against the existing basis (two MGS passes for
            // numerical safety).
            for _ in 0..2 {
                for u in &basis {
                    let dot: f64 = u.iter().zip(&v).map(|(a, b)| a * b).sum();
                    for (vi, ui) in v.iter_mut().zip(u) {
                        *vi -= dot * ui;
                    }
                }
            }
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-10 * norm_in {
                for vi in &mut v {
                    *vi /= norm;
                }
                basis.push(v.clone());
                next_block.push(v);
            }
        }
        if next_block.is_empty() {
            break; // Krylov space exhausted.
        }
        // Next block: A^{-1} C * current block.
        block = next_block
            .iter()
            .map(|v| {
                let cv = mna.c_matrix().mul_vec(v);
                lu.solve(&cv)
            })
            .collect();
    }
    let m = basis.len();
    if m == 0 {
        return Err(Error::InvalidAnalysis(
            "prima produced an empty basis".into(),
        ));
    }
    // Congruence projection.
    let project = |mat: &DenseMatrix| -> DenseMatrix {
        let mut out = DenseMatrix::zeros(m, m);
        // tmp = mat * V (n × m)
        let mut tmp = vec![vec![0.0; m]; n];
        for (k, v) in basis.iter().enumerate() {
            let mv = mat.mul_vec(v);
            for i in 0..n {
                tmp[i][k] = mv[i];
            }
        }
        for (r, vr) in basis.iter().enumerate() {
            for k in 0..m {
                let mut acc = 0.0;
                for i in 0..n {
                    acc += vr[i] * tmp[i][k];
                }
                out[(r, k)] = acc;
            }
        }
        out
    };
    let g_hat = project(mna.g_matrix());
    let c_hat = project(mna.c_matrix());
    let mut b_hat = DenseMatrix::zeros(m, p);
    for (r, vr) in basis.iter().enumerate() {
        for j in 0..p {
            let mut acc = 0.0;
            for i in 0..n {
                acc += vr[i] * b[(i, j)];
            }
            b_hat[(r, j)] = acc;
        }
    }
    Ok(ReducedSystem {
        g: g_hat,
        c: c_hat,
        b: b_hat,
    })
}

/// Default PRIMA expansion point: 1/(100 ps) — the middle of the
/// glitch-bandwidth decade noise analysis cares about.
pub const DEFAULT_S0: f64 = 1.0e10;

/// Default number of block moments.
pub const DEFAULT_Q: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use sna_interconnect::prelude::*;
    use sna_spice::devices::SourceWaveform;
    use sna_spice::tran::{transient, TranParams};
    use sna_spice::units::{NS, PS, UM};

    fn paper_bus(segments: usize) -> (Circuit, Vec<WireNodes>) {
        let w = WireGeom::new(500.0 * UM, 0.2e6, 40e-12);
        let bus = CoupledBus::parallel_pair(w, w, 90e-12, segments);
        let mut ckt = Circuit::new();
        let nets = bus.instantiate(&mut ckt, "n").unwrap();
        (ckt, nets)
    }

    #[test]
    fn dimensions() {
        let (ckt, nets) = paper_bus(20);
        let ports = [nets[0].near, nets[1].near, nets[0].far, nets[1].far];
        let red = prima_reduce(&ckt, &ports, 3, DEFAULT_S0).unwrap();
        assert_eq!(red.n_ports(), 4);
        assert!(red.dim() <= 12);
        assert!(red.dim() >= 4);
    }

    #[test]
    fn reduced_matches_full_crosstalk_transient() {
        // Full ladder: aggressor Norton drive (ramp through R as current
        // injection is awkward in the full circuit, so use the same
        // Thevenin there) vs reduced system with equivalent Norton.
        let (mut full, nets) = paper_bus(25);
        let rdrv = 300.0;
        let rhold = 2e3;
        let src = full.node("src");
        full.add_vsource(
            "Vagg",
            src,
            Circuit::gnd(),
            SourceWaveform::Ramp {
                v0: 0.0,
                v1: 1.2,
                t_start: 0.2 * NS,
                t_rise: 100.0 * PS,
            },
        );
        full.add_resistor("Rdrv", src, nets[1].near, rdrv).unwrap();
        full.add_resistor("Rhold", nets[0].near, Circuit::gnd(), rhold)
            .unwrap();
        let p = TranParams::new(3.0 * NS, 2.0 * PS);
        let res = transient(&full, &p).unwrap();
        let w_vic_full = res.node_waveform(nets[0].near);
        let w_far_full = res.node_waveform(nets[0].far);

        // Reduced: absorb both resistors into the network BEFORE reduction
        // is not possible (they are port loads); instead keep them external
        // as Norton elements: i_port = (V_src(t) - y)/R is affine in y, so
        // fold the conductance into G_hat via B diag(g) B^T.
        let (net_only, nets2) = paper_bus(25);
        let ports = [nets2[0].near, nets2[1].near, nets2[0].far, nets2[1].far];
        let red = prima_reduce(&net_only, &ports, 3, DEFAULT_S0).unwrap();
        // Augment G_hat with the two port conductances.
        let m = red.dim();
        let mut g_aug = red.g.clone();
        let loads = [(0usize, 1.0 / rhold), (1usize, 1.0 / rdrv)];
        for &(port, g) in &loads {
            for i in 0..m {
                for j in 0..m {
                    let add = g * red.b[(i, port)] * red.b[(j, port)];
                    g_aug.add(i, j, add);
                }
            }
        }
        let aug = ReducedSystem {
            g: g_aug,
            c: red.c.clone(),
            b: red.b.clone(),
        };
        let ramp = SourceWaveform::Ramp {
            v0: 0.0,
            v1: 1.2,
            t_start: 0.2 * NS,
            t_rise: 100.0 * PS,
        };
        let (times, ys) = aug
            .simulate_linear(
                |t| vec![0.0, ramp.eval(t) / rdrv, 0.0, 0.0],
                2.0 * PS,
                3.0 * NS,
            )
            .unwrap();
        let vic_red = sna_spice::waveform::Waveform::from_samples(
            times.clone(),
            ys.iter().map(|y| y[0]).collect(),
        )
        .unwrap();
        let far_red =
            sna_spice::waveform::Waveform::from_samples(times, ys.iter().map(|y| y[2]).collect())
                .unwrap();
        let m_full = w_vic_full.glitch_metrics(0.0);
        let m_red = vic_red.glitch_metrics(0.0);
        let peak_err = (m_red.peak - m_full.peak).abs() / m_full.peak;
        assert!(
            peak_err < 0.02,
            "DP peak err {peak_err:.4}: full={} red={}",
            m_full.peak,
            m_red.peak
        );
        let area_err = (m_red.area - m_full.area).abs() / m_full.area;
        assert!(area_err < 0.03, "DP area err {area_err:.4}");
        // Receiver-end (far) waveform also tracked.
        let mf = w_far_full.glitch_metrics(0.0);
        let mr = far_red.glitch_metrics(0.0);
        assert!(
            (mr.peak - mf.peak).abs() / mf.peak < 0.03,
            "far peak: full={} red={}",
            mf.peak,
            mr.peak
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (ckt, nets) = paper_bus(5);
        assert!(prima_reduce(&ckt, &[], 3, DEFAULT_S0).is_err());
        assert!(prima_reduce(&ckt, &[nets[0].near], 0, DEFAULT_S0).is_err());
        assert!(prima_reduce(&ckt, &[nets[0].near], 3, -1.0).is_err());
        assert!(prima_reduce(&ckt, &[Circuit::gnd()], 3, DEFAULT_S0).is_err());
        let mut with_src = ckt.clone();
        let s = with_src.node("s");
        with_src.add_vsource("V", s, Circuit::gnd(), SourceWaveform::Dc(1.0));
        assert!(prima_reduce(&with_src, &[nets[0].near], 2, DEFAULT_S0).is_err());
    }

    #[test]
    fn projection_preserves_symmetry() {
        let (ckt, nets) = paper_bus(15);
        let ports = [nets[0].near, nets[1].near];
        let red = prima_reduce(&ckt, &ports, 2, DEFAULT_S0).unwrap();
        let m = red.dim();
        for i in 0..m {
            for j in 0..m {
                assert!(
                    (red.g[(i, j)] - red.g[(j, i)]).abs() < 1e-9 * red.g.norm_inf().max(1e-12),
                    "G not symmetric at ({i},{j})"
                );
                assert!(
                    (red.c[(i, j)] - red.c[(j, i)]).abs() < 1e-9 * red.c.norm_inf().max(1e-30),
                    "C not symmetric at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn simulate_linear_validates_window() {
        let (ckt, nets) = paper_bus(5);
        let red = prima_reduce(&ckt, &[nets[0].near], 2, DEFAULT_S0).unwrap();
        assert!(red.simulate_linear(|_| vec![0.0], -1.0, 1.0).is_err());
        assert!(red.simulate_linear(|_| vec![0.0], 1.0, 0.5).is_err());
    }
}
