//! Regenerates the §3 performance claim of Forzan & Pandini (DATE 2005):
//!
//! > "The speed-up obtained with our approach was about 20X with respect to
//! > ELDO™, thus yielding a practical approach for noise analysis."
//!
//! Measures wall-clock of the golden transistor-level transient vs the
//! macromodel engine on identical time grids, on the Table-1 and Table-2
//! clusters plus interconnect-refinement variants (the speed-up grows with
//! the detail of the extracted net, which is the practical regime).
//!
//! Run with `cargo run --release -p sna-bench --bin speedup`.

use std::time::Instant;

use sna_core::prelude::*;

fn measure(label: &str, spec: &ClusterSpec, repeats: usize) {
    let model = ClusterMacromodel::build(spec).expect("build");
    // Warm-up passes so neither side pays first-touch costs.
    let _ = simulate_golden(spec).expect("golden warm-up");
    let _ = simulate_macromodel(&model).expect("engine warm-up");
    let t0 = Instant::now();
    let mut gold_peak = 0.0;
    for _ in 0..repeats {
        let g = simulate_golden(spec).expect("golden");
        gold_peak = g.dp_metrics(model.q_out).peak;
    }
    let t_gold = t0.elapsed() / repeats as u32;
    // Measure the engine.
    let t0 = Instant::now();
    let mut mac_peak = 0.0;
    for _ in 0..repeats {
        let m = simulate_macromodel(&model).expect("engine");
        mac_peak = m.dp_metrics(model.q_out).peak;
    }
    let t_mac = t0.elapsed() / repeats as u32;
    println!(
        "{label:<42} golden {:>9.2?}  macromodel {:>9.2?}  speed-up {:>6.1}x  \
         (peaks: {gold_peak:.3} vs {mac_peak:.3} V)",
        t_gold,
        t_mac,
        t_gold.as_secs_f64() / t_mac.as_secs_f64()
    );
}

fn main() {
    println!("speed-up: golden transistor-level transient vs dedicated engine\n");
    let t1 = table1_spec();
    measure("table1 (20 segments/wire)", &t1, 3);
    let mut fine = table1_spec();
    fine.bus.segments = 50;
    measure("table1, 50 segments/wire", &fine, 3);
    let mut coarse = table1_spec();
    coarse.bus.segments = 8;
    measure("table1, 8 segments/wire", &coarse, 3);
    let t2 = table2_spec();
    measure("table2 (3 nets, 2 aggressors)", &t2, 3);
    println!("\npaper claim: \"speed-up ... about 20X with respect to ELDO(tm)\"");
    println!(
        "note: the macromodel cost is independent of extraction detail (the \
         reduction is fixed-order), so the speed-up grows with segment count."
    );
}
