//! Regenerates **Table 1** of Forzan & Pandini (DATE 2005): "Injected and
//! propagated noise combination".
//!
//! Paper setup: 0.13 µm technology, two 500 µm parallel metal-4 wires,
//! inverter aggressor, 2-input-NAND victim driver; one rising aggressor
//! injects noise while one glitch propagates through the victim driver.
//!
//! Paper numbers (our golden engine is `sna-spice`, not ELDO™ on ST
//! silicon, so absolute volts differ; the *shape* — superposition badly
//! underestimating, the macromodel within a few percent — is what this
//! binary must and does reproduce):
//!
//! ```text
//!                ELDO    lin.superpos  Err%    macromodel  Err%
//! Peak (V)       0.345   0.269         -22.0   0.354       +2.6
//! Area (V*ps)    174.3   82.18         -52.8   175.7       +0.8
//! ```
//!
//! Run with `cargo run --release -p sna-bench --bin table1`.

use sna_core::prelude::*;

fn main() {
    let spec = table1_spec();
    let cmp = MethodComparison::run("Table 1: injected + propagated combination", &spec)
        .expect("table-1 cluster must simulate");
    println!("{cmp}");
    println!();
    println!("paper reference (DATE'05, Table 1):");
    println!("  linear superposition : Peak -22.0%   Area -52.8%");
    println!("  our macromodel       : Peak  +2.6%   Area  +0.8%");
    println!();
    println!(
        "reproduction check: superposition underestimates (peak {:+.1}%, area {:+.1}%), \
         macromodel within a few % (peak {:+.1}%, area {:+.1}%)",
        cmp.superposition.peak_err_pct,
        cmp.superposition.area_err_pct,
        cmp.macromodel.peak_err_pct,
        cmp.macromodel.area_err_pct
    );
}
