//! Regenerates **Table 2** of Forzan & Pandini (DATE 2005): "Worst-case
//! overlapping between two aggressors and one propagating noise glitch".
//!
//! Paper setup: same 0.13 µm victim (2-input NAND) with **two** in-phase
//! inverter-driven aggressors plus the propagating glitch, all overlapped.
//! Table 2 only compares the macromodel against ELDO™ (superposition is
//! already discredited by Table 1); we print all four methods anyway.
//!
//! Paper numbers:
//!
//! ```text
//!                ELDO    macromodel   Err%
//! Peak (V)       0.919   0.947        +3.1
//! Area (V*ps)    496.2   508.7        +2.5
//! ```
//!
//! Run with `cargo run --release -p sna-bench --bin table2`.

use sna_core::prelude::*;

fn main() {
    let spec = table2_spec();
    let cmp = MethodComparison::run(
        "Table 2: two in-phase aggressors + one propagating glitch",
        &spec,
    )
    .expect("table-2 cluster must simulate");
    println!("{cmp}");
    println!();
    println!("paper reference (DATE'05, Table 2):");
    println!("  our macromodel: Peak +3.1%   Area +2.5%");
    println!();
    println!(
        "reproduction check: macromodel within a few % of golden \
         (peak {:+.1}%, area {:+.1}%); golden peak {:.3} V is a large \
         fraction of Vdd = {} V, as in the paper (0.919 V of 1.2 V)",
        cmp.macromodel.peak_err_pct,
        cmp.macromodel.area_err_pct,
        cmp.golden.metrics.peak,
        spec.tech.vdd
    );
}
