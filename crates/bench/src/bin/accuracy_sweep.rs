//! Regenerates the §3 accuracy claim of Forzan & Pandini (DATE 2005):
//!
//! > "Our approach has been tested on several noise clusters in 0.13 µm and
//! > 90 nm technology, and its accuracy evaluated against circuit
//! > simulations, and the error was always within few percents."
//!
//! Sweeps {0.13 µm, 90 nm} × wire length {250, 500, 1000 µm} × aggressors
//! {1, 2, 3} × victim {INV, NAND2, NOR2} × {quiet, glitching} — 108
//! clusters — and reports the per-method error distribution of peak and
//! area against golden transistor-level simulation.
//!
//! Run with `cargo run --release -p sna-bench --bin accuracy_sweep`
//! (pass `--quick` for the 4-cluster smoke subset).

use sna_core::prelude::*;

struct Stats {
    count: usize,
    sum_abs: f64,
    max_abs: f64,
    min_signed: f64,
    max_signed: f64,
}

impl Stats {
    fn new() -> Self {
        Stats {
            count: 0,
            sum_abs: 0.0,
            max_abs: 0.0,
            min_signed: f64::INFINITY,
            max_signed: f64::NEG_INFINITY,
        }
    }
    fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum_abs += v.abs();
        self.max_abs = self.max_abs.max(v.abs());
        self.min_signed = self.min_signed.min(v);
        self.max_signed = self.max_signed.max(v);
    }
    fn mean_abs(&self) -> f64 {
        self.sum_abs / self.count.max(1) as f64
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cases = sweep_specs(quick);
    println!(
        "accuracy sweep: {} clusters ({} mode)\n",
        cases.len(),
        if quick { "quick" } else { "full" }
    );
    let mut mac_peak = Stats::new();
    let mut mac_area = Stats::new();
    let mut sup_peak = Stats::new();
    let mut sup_area = Stats::new();
    let mut zol_peak = Stats::new();
    let mut zol_area = Stats::new();
    let mut worst: Option<(String, f64)> = None;
    println!(
        "{:<38} {:>10} {:>10} {:>10} {:>10}",
        "cluster", "gold pk(V)", "mac err%", "sup err%", "zol err%"
    );
    for case in &cases {
        let cmp = match MethodComparison::run(case.id.clone(), &case.spec) {
            Ok(c) => c,
            Err(e) => {
                println!("{:<38} FAILED: {e}", case.id);
                continue;
            }
        };
        // Skip near-quiet clusters where relative errors are meaningless.
        if cmp.golden.metrics.peak < 0.05 {
            println!(
                "{:<38} {:>10.3} (quiet, skipped from stats)",
                case.id, cmp.golden.metrics.peak
            );
            continue;
        }
        mac_peak.push(cmp.macromodel.peak_err_pct);
        mac_area.push(cmp.macromodel.area_err_pct);
        sup_peak.push(cmp.superposition.peak_err_pct);
        sup_area.push(cmp.superposition.area_err_pct);
        zol_peak.push(cmp.zolotov.peak_err_pct);
        zol_area.push(cmp.zolotov.area_err_pct);
        if worst
            .as_ref()
            .is_none_or(|(_, w)| cmp.macromodel.peak_err_pct.abs() > *w)
        {
            worst = Some((case.id.clone(), cmp.macromodel.peak_err_pct.abs()));
        }
        println!(
            "{:<38} {:>10.3} {:>10.1} {:>10.1} {:>10.1}",
            case.id,
            cmp.golden.metrics.peak,
            cmp.macromodel.peak_err_pct,
            cmp.superposition.peak_err_pct,
            cmp.zolotov.peak_err_pct
        );
    }
    println!();
    println!(
        "=== error distribution vs golden (n = {}) ===",
        mac_peak.count
    );
    let line = |name: &str, pk: &Stats, ar: &Stats| {
        println!(
            "{name:<24} peak: mean|e|={:.1}%  max|e|={:.1}%  range [{:+.1}, {:+.1}]%   \
             area: mean|e|={:.1}%  max|e|={:.1}%",
            pk.mean_abs(),
            pk.max_abs,
            pk.min_signed,
            pk.max_signed,
            ar.mean_abs(),
            ar.max_abs
        );
    };
    line("macromodel (paper)", &mac_peak, &mac_area);
    line("linear superposition", &sup_peak, &sup_area);
    line("iterative thevenin", &zol_peak, &zol_area);
    if let Some((id, w)) = worst {
        println!("\nworst macromodel cluster: {id} (|peak err| = {w:.1}%)");
    }
    println!(
        "\npaper claim: macromodel error \"always within few percents\" on \
         clusters in both technologies."
    );
}
