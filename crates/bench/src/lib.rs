//! # sna-bench — benchmark harness
//!
//! Binaries regenerating every table and §3 claim of Forzan & Pandini
//! (DATE 2005), plus Criterion micro-benches:
//!
//! | target | paper artifact |
//! |---|---|
//! | `--bin table1` | Table 1 — injected + propagated combination |
//! | `--bin table2` | Table 2 — two in-phase aggressors + glitch |
//! | `--bin accuracy_sweep` | §3 "error always within few percents" (0.13 µm & 90 nm) |
//! | `--bin speedup` | §3 "speed-up … about 20×" |
//! | `benches/engine.rs` | engine throughput + integrator ablation |
//! | `benches/golden_vs_macro.rs` | golden vs macromodel wall-clock |
//! | `benches/characterization.rs` | Eq. (1) grid-resolution ablation |
//! | `benches/mor.rs` | PRIMA vs coupled-Π reduction ablation |
//!
//! Run everything with `cargo bench` and the binaries with
//! `cargo run --release -p sna-bench --bin <name>`.

/// Format a signed percentage column the way the paper prints them.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:+.1}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn fmt_pct_matches_paper_style() {
        assert_eq!(super::fmt_pct(-22.04), "-22.0");
        assert_eq!(super::fmt_pct(2.6), "+2.6");
    }
}
