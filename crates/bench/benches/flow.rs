//! Scaling bench for the parallel full-chip flow.
//!
//! Measures whole-design throughput (one `run_sna_parallel` call over a
//! 64-cluster design, shared characterization cache included) at 1/2/4/8
//! workers. On a multi-core host the 4-thread run should land at ≥ 2× the
//! 1-thread throughput: clusters are independent, and the shared cache
//! turns repeated characterization into lock-striped reads. On a 1-core
//! container the thread counts collapse to the same wall clock — the
//! interesting number is then the per-cluster cost itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sna_cells::{Cell, Technology};
use sna_core::prelude::*;
use sna_flow::{run_sna_parallel, FlowOptions};

const DESIGN_CLUSTERS: usize = 64;
const DESIGN_SEED: u64 = 2005;

fn flow_thread_scaling(c: &mut Criterion) {
    let tech = Technology::cmos130();
    let design = Design::random(&tech, DESIGN_CLUSTERS, DESIGN_SEED);
    let nrc = characterize_nrc(
        &Cell::inv(tech.clone(), 1.0),
        true,
        &[100e-12, 300e-12, 900e-12],
    )
    .expect("nrc");
    let mut group = c.benchmark_group("flow/threads_64cl");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let opts = FlowOptions {
            threads,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &opts, |b, opts| {
            b.iter(|| {
                run_sna_parallel(
                    std::hint::black_box(&design),
                    std::hint::black_box(&nrc),
                    opts,
                )
                .expect("flow run")
            })
        });
    }
    group.finish();
}

fn flow_cache_amortization(c: &mut Criterion) {
    // The shared-cache payoff in isolation: the same design analyzed with a
    // cold cache every iteration (above) vs. per-cluster builds against an
    // already-warm library.
    let tech = Technology::cmos130();
    let design = Design::random(&tech, 8, DESIGN_SEED);
    let mm = MacromodelOptions::default();
    let warm = NoiseModelLibrary::new();
    for cl in &design.clusters {
        ClusterMacromodel::build_with_library(&cl.spec, &mm, &warm).expect("warm build");
    }
    let mut group = c.benchmark_group("flow/library");
    group.sample_size(10);
    group.bench_function("cold_8cl", |b| {
        b.iter(|| {
            let lib = NoiseModelLibrary::new();
            for cl in &design.clusters {
                std::hint::black_box(
                    ClusterMacromodel::build_with_library(&cl.spec, &mm, &lib).expect("build"),
                );
            }
        })
    });
    group.bench_function("warm_8cl", |b| {
        b.iter(|| {
            for cl in &design.clusters {
                std::hint::black_box(
                    ClusterMacromodel::build_with_library(&cl.spec, &mm, &warm).expect("build"),
                );
            }
        })
    });
    group.finish();
}

criterion_group!(benches, flow_thread_scaling, flow_cache_amortization);
criterion_main!(benches);
