//! Marginal cost of a K-lane batched corner sweep vs cold single solves.
//!
//! The batched sweep's value proposition is that after one symbolic
//! analysis + assembly, each additional corner (lane) only pays numeric
//! work on the shared pattern. This bench quantifies it on the paper's
//! coupled-bus circuit at ~200 MNA unknowns: K per-lane geometry corners
//! solved as one `BatchedSweep` DC analysis, against the cost of a cold
//! serial `dc_operating_point` (which re-assembles and re-analyzes per
//! corner).
//!
//! Three modes, mirroring `benches/solver.rs`:
//!
//! * default — criterion harness: batched DC sweeps per (K, backend).
//! * `--format json` — hand-timed medians as the `sna-bench-sweep-v1`
//!   document checked in as `BENCH_sweep.json`. The headline number is
//!   `marginal_vs_cold`: per-corner marginal cost `(T_K - T_1)/(K-1)`
//!   over the cold single-solve cost.
//! * `--test` — smoke run: structural and agreement assertions only
//!   (batched == serial to 1e-9); timing ratios are not asserted because
//!   single samples on shared CI runners are noise.

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion};
use sna_interconnect::prelude::*;
use sna_obs::{local_snapshot, Metric};
use sna_spice::backend::BackendKind;
use sna_spice::dc::{dc_operating_point, NewtonOptions};
use sna_spice::netlist::Circuit;
use sna_spice::prelude::{SolverKind, SourceWaveform};
use sna_spice::sweep::BatchedSweep;
use sna_spice::units::{NS, PS, UM};

/// One geometry corner of the victim/aggressor bus: wire resistance and
/// capacitance scaled by `scale` (0.9…1.65 across a 16-lane sweep), same
/// topology in every lane.
fn bus_corner(segments: usize, scale: f64) -> Circuit {
    let w = WireGeom::new(500.0 * UM, scale * 0.2e6, scale * 40e-12);
    let bus = CoupledBus::parallel_pair(w, w, scale * 90e-12, segments);
    let mut ckt = Circuit::new();
    let nets = bus.instantiate(&mut ckt, "n").unwrap();
    ckt.add_vsource(
        "Vagg",
        nets[1].near,
        Circuit::gnd(),
        SourceWaveform::Ramp {
            v0: 0.0,
            v1: 1.2,
            t_start: 0.1 * NS,
            t_rise: 100.0 * PS,
        },
    );
    ckt.add_resistor("Rhold", nets[0].near, Circuit::gnd(), 2e3)
        .unwrap();
    ckt
}

/// K geometry corners of the same bus topology.
fn corner_lanes(segments: usize, k: usize) -> Vec<Circuit> {
    (0..k)
        .map(|lane| bus_corner(segments, 0.9 + 0.05 * lane as f64))
        .collect()
}

fn median_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

const SEGMENTS: usize = 100;

/// Discretization of the large case: 500 segments per wire puts the pair
/// at 1003 MNA unknowns, the scale the ROADMAP's backend-comparison
/// follow-up asks for.
const LARGE_SEGMENTS: usize = 500;

/// `sna-obs` counter deltas of one batched DC sweep — how much Newton and
/// serial-fallback work the timings above actually cover.
struct SweepCounters {
    sweep_calls: u64,
    lanes: u64,
    lane_newton_iterations: u64,
    serial_fallbacks: u64,
}

struct SweepCase {
    segments: usize,
    k: usize,
    backend: BackendKind,
    unknowns: usize,
    cold_solve_ms: f64,
    batched_total_ms: f64,
    marginal_per_corner_ms: Option<f64>,
    marginal_vs_cold: Option<f64>,
    max_dev_vs_serial: f64,
    counters: SweepCounters,
}

/// Measure one (K, backend) point at the given bus discretization: cold
/// serial per-corner cost, total batched sweep cost, and the
/// batched-vs-serial deviation. `segments = 100` gives the paper-scale
/// ~200-unknown case; `segments = 500` the 1003-unknown stress case.
fn run_case(
    segments: usize,
    k: usize,
    backend: BackendKind,
    reps: usize,
    t1_ms: Option<f64>,
) -> SweepCase {
    let newton = NewtonOptions::default();
    let lanes = corner_lanes(segments, k);
    // Cold cost: assemble + analyze + solve one corner from scratch, the
    // way a per-corner loop without the sweep plane would.
    let cold_solve_ms = 1e3
        * median_secs(reps, || {
            std::hint::black_box(dc_operating_point(&lanes[0], &newton, None).unwrap());
        });
    let mut sweep = BatchedSweep::new(&lanes, SolverKind::Auto, backend).unwrap();
    let unknowns = sweep.dim();
    sweep.dc_operating_points(&lanes, &newton, None).unwrap();
    let batched_total_ms = 1e3
        * median_secs(reps, || {
            std::hint::black_box(sweep.dc_operating_points(&lanes, &newton, None).unwrap());
        });
    let before = local_snapshot();
    let sols = sweep.dc_operating_points(&lanes, &newton, None).unwrap();
    let d = local_snapshot().since(&before);
    let counters = SweepCounters {
        sweep_calls: d.get(Metric::SweepCalls),
        lanes: d.get(Metric::SweepLanes),
        lane_newton_iterations: d.get(Metric::SweepLaneNewtonIterations),
        serial_fallbacks: d.get(Metric::SweepSerialFallbacks),
    };
    let mut max_dev = 0.0_f64;
    for (lane, sol) in sols.iter().enumerate() {
        let serial = dc_operating_point(&lanes[lane], &newton, None).unwrap();
        for (a, b) in sol.unknowns().iter().zip(serial.unknowns()) {
            max_dev = max_dev.max((a - b).abs());
        }
    }
    let (marginal_per_corner_ms, marginal_vs_cold) = match t1_ms {
        Some(t1) if k > 1 => {
            let marginal = (batched_total_ms - t1) / (k - 1) as f64;
            (Some(marginal), Some(marginal / cold_solve_ms.max(1e-12)))
        }
        _ => (None, None),
    };
    SweepCase {
        segments,
        k,
        backend,
        unknowns,
        cold_solve_ms,
        batched_total_ms,
        marginal_per_corner_ms,
        marginal_vs_cold,
        max_dev_vs_serial: max_dev,
        counters,
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("null".into(), |x| format!("{x:.4}"))
}

fn emit_json(cases: &[SweepCase]) {
    println!("{{");
    println!("  \"schema\": \"sna-bench-sweep-v1\",");
    println!(
        "  \"circuit\": \"coupled-bus victim/aggressor pair, 500um, {SEGMENTS} segments \
         (plus {LARGE_SEGMENTS}-segment 1003-unknown cases), per-lane geometry corners \
         0.9+0.05*lane, DC operating points\","
    );
    println!("  \"cases\": [");
    for (i, c) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        println!(
            "    {{\"segments\": {}, \"k\": {}, \"backend\": \"{:?}\", \"unknowns\": {}, \
             \"cold_solve_ms\": {:.4}, \"batched_total_ms\": {:.4}, \
             \"marginal_per_corner_ms\": {}, \"marginal_vs_cold\": {}, \
             \"max_dev_vs_serial\": {:.3e}, \
             \"counters\": {{\"sweep_calls\": {}, \"lanes\": {}, \
             \"lane_newton_iterations\": {}, \"serial_fallbacks\": {}}}}}{}",
            c.segments,
            c.k,
            c.backend,
            c.unknowns,
            c.cold_solve_ms,
            c.batched_total_ms,
            fmt_opt(c.marginal_per_corner_ms),
            fmt_opt(c.marginal_vs_cold),
            c.max_dev_vs_serial,
            c.counters.sweep_calls,
            c.counters.lanes,
            c.counters.lane_newton_iterations,
            c.counters.serial_fallbacks,
            comma
        );
    }
    println!("  ]");
    println!("}}");
}

/// Smoke mode for CI: deterministic assertions only.
fn self_test() {
    for backend in [BackendKind::Scalar, BackendKind::Batched] {
        let c = run_case(SEGMENTS, 4, backend, 1, None);
        assert!(
            c.unknowns > 100,
            "bus fixture shrank to {} unknowns",
            c.unknowns
        );
        assert!(
            c.max_dev_vs_serial < 1e-9,
            "{backend:?}: batched corners deviate {:.3e} from serial solves",
            c.max_dev_vs_serial
        );
        // Counter deltas cover exactly the one snapshotted sweep call.
        assert_eq!(c.counters.sweep_calls, 1);
        assert_eq!(c.counters.lanes, c.k as u64);
        println!(
            "sweep smoke [{backend:?}]: {} unknowns, K={}, dev {:.2e} — ok",
            c.unknowns, c.k, c.max_dev_vs_serial
        );
    }
    println!("sweep bench self-test: OK");
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_dc");
    group.sample_size(10);
    let newton = NewtonOptions::default();
    {
        let lanes = corner_lanes(SEGMENTS, 1);
        group.bench_function("cold_serial", |b| {
            b.iter(|| dc_operating_point(&lanes[0], &newton, None).unwrap())
        });
    }
    for backend in [BackendKind::Scalar, BackendKind::Batched] {
        for k in [1usize, 4, 16] {
            let lanes = corner_lanes(SEGMENTS, k);
            let mut sweep = BatchedSweep::new(&lanes, SolverKind::Auto, backend).unwrap();
            group.bench_function(BenchmarkId::new(format!("{backend:?}"), k), |b| {
                b.iter(|| sweep.dc_operating_points(&lanes, &newton, None).unwrap())
            });
        }
    }
    group.finish();
}

// Same dispatch pattern as benches/solver.rs: criterion by default, plus
// the `--test` / `--format json` modes.
criterion_group!(benches, bench_sweep);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--test") {
        self_test();
        return;
    }
    let json = args
        .windows(2)
        .any(|w| w[0] == "--format" && w[1] == "json");
    if json {
        let mut cases = Vec::new();
        for backend in [BackendKind::Scalar, BackendKind::Batched] {
            let t1 = run_case(SEGMENTS, 1, backend, 9, None);
            let t1_ms = t1.batched_total_ms;
            cases.push(t1);
            for k in [4usize, 16] {
                cases.push(run_case(SEGMENTS, k, backend, 7, Some(t1_ms)));
            }
        }
        // The 1003-unknown stress case: same topology at 500 segments per
        // wire, K=4 and K=16 geometry corners, both backends.
        for backend in [BackendKind::Scalar, BackendKind::Batched] {
            let t1 = run_case(LARGE_SEGMENTS, 1, backend, 3, None);
            let t1_ms = t1.batched_total_ms;
            cases.push(t1);
            for k in [4usize, 16] {
                cases.push(run_case(LARGE_SEGMENTS, k, backend, 3, Some(t1_ms)));
            }
        }
        emit_json(&cases);
        return;
    }
    benches();
}
