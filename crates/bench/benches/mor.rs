//! Model-order-reduction benches and the reduction-order ablation
//! (DESIGN.md §5.2): PRIMA projection vs coupled-Π vs full ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sna_interconnect::prelude::*;
use sna_mor::prelude::*;
use sna_spice::netlist::Circuit;
use sna_spice::units::UM;

fn paper_net(segments: usize) -> (Circuit, Vec<WireNodes>) {
    let w = WireGeom::new(500.0 * UM, 0.2e6, 40e-12);
    let bus = CoupledBus::parallel_pair(w, w, 90e-12, segments);
    let mut ckt = Circuit::new();
    let nets = bus.instantiate(&mut ckt, "n").unwrap();
    (ckt, nets)
}

fn reduction_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("mor/reduce");
    group.sample_size(20);
    for segments in [10usize, 25, 50] {
        let (ckt, nets) = paper_net(segments);
        let ports = vec![nets[0].near, nets[1].near, nets[0].far, nets[1].far];
        group.bench_with_input(
            BenchmarkId::new("prima_q3", segments),
            &(&ckt, &ports),
            |b, (ckt, ports)| {
                b.iter(|| prima_reduce(ckt, ports, DEFAULT_Q, DEFAULT_S0).expect("prima"))
            },
        );
        let dp_ports = vec![nets[0].near, nets[1].near];
        group.bench_with_input(
            BenchmarkId::new("coupled_pi", segments),
            &(&ckt, &dp_ports),
            |b, (ckt, ports)| b.iter(|| CoupledPiModel::reduce(ckt, ports).expect("pi")),
        );
    }
    group.finish();
}

fn reduced_simulation_cost(c: &mut Criterion) {
    // Reduced-system transient vs full-ladder transient (linear victim),
    // the core of the noise-analysis inner loop.
    let (ckt, nets) = paper_net(25);
    let ports = vec![nets[0].near, nets[1].near];
    let red = prima_reduce(&ckt, &ports, DEFAULT_Q, DEFAULT_S0).expect("prima");
    c.bench_function("mor/reduced_transient_3ns", |b| {
        b.iter(|| {
            red.simulate_linear(
                |t| vec![0.0, if t > 0.2e-9 { 1e-3 } else { 0.0 }],
                1e-12,
                3e-9,
            )
            .expect("sim")
        })
    });
    let mut full = ckt.clone();
    full.add_resistor("Rhold", nets[0].near, Circuit::gnd(), 2e3)
        .unwrap();
    full.add_isource(
        "I",
        Circuit::gnd(),
        nets[1].near,
        sna_spice::devices::SourceWaveform::Pulse {
            v0: 0.0,
            v1: 1e-3,
            t_delay: 0.2e-9,
            t_rise: 10e-12,
            t_width: 2e-9,
            t_fall: 10e-12,
        },
    );
    c.bench_function("mor/full_ladder_transient_3ns", |b| {
        b.iter(|| {
            sna_spice::tran::transient(&full, &sna_spice::tran::TranParams::new(3e-9, 1e-12))
                .expect("sim")
        })
    });
}

fn moment_computation(c: &mut Criterion) {
    let (ckt, nets) = paper_net(25);
    let ports = vec![nets[0].near, nets[1].near];
    c.bench_function("mor/block_moments_3", |b| {
        b.iter(|| port_admittance_moments(&ckt, std::hint::black_box(&ports), 3).expect("moments"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = reduction_cost, reduced_simulation_cost, moment_computation
}
criterion_main!(benches);
