//! Cold vs warm vs incremental cost of the persistent characterization
//! cache (`--library-cache`) and the `sna serve` memo.
//!
//! The tentpole claim this bench backs: a warm second run of the same
//! design performs **zero** characterization solves — every artifact
//! (load curves, holding resistances, propagated-noise tables, Thevenin
//! fits, NRC curves) comes off disk, fingerprint-verified — and an
//! incremental serve-mode edit re-analyzes exactly one cluster, serving
//! the rest from the result memo.
//!
//! Three modes, mirroring `benches/sweep.rs`:
//!
//! * default — criterion harness: warm-library flow runs.
//! * `--format json` — hand-timed medians as the `sna-bench-cache-v1`
//!   document checked in as `BENCH_cache.json`: a 64-cluster flow cold
//!   (characterize everything), warm (all artifacts from disk), and an
//!   incremental serve-session edit, each with its cache-counter
//!   snapshot. The headline numbers are `speedup_vs_cold`.
//! * `--test` — smoke run: warm run has zero misses and a byte-identical
//!   report, the serve edit re-analyzes exactly one cluster; timing
//!   ratios are not asserted (single samples on shared CI runners are
//!   noise).

use std::path::{Path, PathBuf};
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use sna_cells::Technology;
use sna_core::library::{LibraryStats, NoiseModelLibrary, ALL_ARTIFACT_KINDS};
use sna_flow::cache::{load_library_cache, save_library_cache};
use sna_flow::cli::{CliConfig, LogLevel};
use sna_flow::corners::run_corners_with;
use sna_flow::driver::FlowOptions;
use sna_flow::output::{to_json, RunSummary};
use sna_flow::serve::ServeState;

const SEED: u64 = 2005;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sna_bench_cache");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn flow_opts() -> FlowOptions {
    FlowOptions {
        threads: 0,
        ..Default::default()
    }
}

/// One timed flow run against `library`, returning the rendered JSON
/// report and the run's cache-counter delta.
fn run_flow(clusters: usize, library: &NoiseModelLibrary) -> (String, LibraryStats) {
    let corners = [Technology::cmos130()];
    let reports =
        run_corners_with(&corners, clusters, SEED, &flow_opts(), library).expect("flow run");
    let delta = reports[0].flow.cache;
    let doc = to_json(&RunSummary {
        clusters,
        seed: SEED,
        align_worst_case: false,
        margin_band: 0.1,
        corners: reports,
    });
    (doc, delta)
}

fn median_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

struct CacheCase {
    label: &'static str,
    clusters: usize,
    median_ms: f64,
    speedup_vs_cold: Option<f64>,
    /// Clusters re-analyzed (serve cases only).
    reanalyzed: Option<u64>,
    stats: LibraryStats,
}

/// Cold case: fresh library every rep, full characterization each time.
/// Writes the cache file the warm cases read.
fn cold_case(clusters: usize, path: &Path, reps: usize) -> (CacheCase, String) {
    std::fs::remove_file(path).ok();
    let mut report = String::new();
    let mut stats = LibraryStats::default();
    let ms = 1e3
        * median_secs(reps, || {
            let lib = NoiseModelLibrary::new();
            let (doc, delta) = run_flow(clusters, &lib);
            save_library_cache(path, &lib).expect("save cache");
            report = doc;
            stats = delta;
        });
    (
        CacheCase {
            label: "cold",
            clusters,
            median_ms: ms,
            speedup_vs_cold: None,
            reanalyzed: None,
            stats,
        },
        report,
    )
}

/// Warm case: fresh library every rep, warmed from the cold case's file.
fn warm_case(clusters: usize, path: &Path, reps: usize, cold_ms: f64) -> (CacheCase, String) {
    let mut report = String::new();
    let mut stats = LibraryStats::default();
    let ms = 1e3
        * median_secs(reps, || {
            let lib = NoiseModelLibrary::new();
            let load = load_library_cache(path, &lib);
            assert!(
                load.entries > 0,
                "warm case found no cache: {}",
                load.message
            );
            let (doc, delta) = run_flow(clusters, &lib);
            report = doc;
            stats = delta;
        });
    (
        CacheCase {
            label: "warm",
            clusters,
            median_ms: ms,
            speedup_vs_cold: Some(cold_ms / ms.max(1e-12)),
            reanalyzed: None,
            stats,
        },
        report,
    )
}

fn serve_session(clusters: usize, path: &Path) -> ServeState {
    let cfg = CliConfig {
        clusters,
        seed: SEED,
        threads: 0,
        log_level: LogLevel::Quiet,
        library_cache: Some(path.display().to_string()),
        ..Default::default()
    };
    ServeState::new(&cfg).expect("serve session")
}

/// Incremental case: a resident serve session (library warm from disk,
/// memo warm from one full analyze), timed on edit-then-reanalyze
/// round-trips touching a single cluster.
fn incremental_case(clusters: usize, path: &Path, reps: usize, cold_ms: f64) -> CacheCase {
    let mut state = serve_session(clusters, path);
    let r = state.handle_line("{\"cmd\": \"analyze\"}");
    assert!(r.contains("\"ok\": true"), "priming analyze failed: {r}");
    let before = state.counters();
    let mut slew = 60e-12;
    let ms = 1e3
        * median_secs(reps, || {
            slew += 1e-12; // each rep is a real edit, never a memo no-op
            let edit = format!(
                "{{\"cmd\": \"edit\", \"cluster\": \"net000\", \"aggressor\": 0, \
                 \"input_slew\": {slew:e}}}"
            );
            let r = state.handle_line(&edit);
            assert!(r.contains("\"ok\": true"), "edit failed: {r}");
            let r = state.handle_line("{\"cmd\": \"analyze\"}");
            assert!(r.contains("\"analyzed\": 1"), "expected 1 re-analysis: {r}");
        });
    let after = state.counters();
    CacheCase {
        label: "incremental_edit",
        clusters,
        median_ms: ms,
        speedup_vs_cold: Some(cold_ms / ms.max(1e-12)),
        reanalyzed: Some(after.1 - before.1),
        stats: state.library().stats(),
    }
}

fn emit_json(cases: &[CacheCase]) {
    println!("{{");
    println!("  \"schema\": \"sna-bench-cache-v1\",");
    println!(
        "  \"workload\": \"synthetic design, seed {SEED}, cmos130, full flow; cold = fresh \
         library, warm = library loaded from an sna-libcache-v1 file, incremental_edit = \
         resident serve session re-analyzing one edited cluster\","
    );
    println!("  \"cases\": [");
    for (i, c) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        let speedup = c
            .speedup_vs_cold
            .map_or("null".into(), |x| format!("{x:.2}"));
        let reanalyzed = c.reanalyzed.map_or("null".into(), |x| x.to_string());
        let by_kind: Vec<String> = ALL_ARTIFACT_KINDS
            .iter()
            .map(|&k| {
                let ks = c.stats.kind(k);
                format!(
                    "\"{}\": {{\"hits\": {}, \"misses\": {}, \"disk_hits\": {}}}",
                    k.name(),
                    ks.hits,
                    ks.misses,
                    ks.disk_hits
                )
            })
            .collect();
        println!(
            "    {{\"case\": \"{}\", \"clusters\": {}, \"median_ms\": {:.2}, \
             \"speedup_vs_cold\": {}, \"reanalyzed\": {}, \
             \"cache\": {{\"hits\": {}, \"misses\": {}, \"disk_hits\": {}, \
             \"disk_misses\": {}, \"stale_rejected\": {}, \"by_kind\": {{{}}}}}}}{}",
            c.label,
            c.clusters,
            c.median_ms,
            speedup,
            reanalyzed,
            c.stats.hits,
            c.stats.misses,
            c.stats.disk_hits,
            c.stats.disk_misses,
            c.stats.stale_rejected,
            by_kind.join(", "),
            comma
        );
    }
    println!("  ]");
    println!("}}");
}

/// Smoke mode for CI: deterministic assertions only.
fn self_test() {
    let clusters = 6;
    let path = scratch("smoke.libcache");
    let (cold, cold_report) = cold_case(clusters, &path, 1);
    assert!(cold.stats.misses > 0, "cold run characterized nothing");
    assert_eq!(cold.stats.disk_hits, 0);
    let (warm, warm_report) = warm_case(clusters, &path, 1, cold.median_ms);
    // The tentpole invariant: a warm run characterizes *nothing* — every
    // per-kind miss counter is zero and all lookups come off disk.
    assert_eq!(warm.stats.misses, 0, "warm run still characterized");
    for k in ALL_ARTIFACT_KINDS {
        assert_eq!(
            warm.stats.kind(k).misses,
            0,
            "warm run characterized {}",
            k.name()
        );
    }
    assert!(
        warm.stats.disk_hits > 0,
        "warm run never touched the disk cache"
    );
    assert_eq!(cold_report, warm_report, "persistence changed the report");
    let inc = incremental_case(clusters, &path, 1, cold.median_ms);
    assert_eq!(
        inc.reanalyzed,
        Some(1),
        "edit re-analyzed more than one cluster"
    );
    std::fs::remove_file(&path).ok();
    println!(
        "cache smoke: cold {} misses, warm 0 misses / {} disk hits, identical reports, \
         1 cluster re-analyzed after edit — ok",
        cold.stats.misses, warm.stats.disk_hits
    );
    println!("cache bench self-test: OK");
}

fn bench_cache(c: &mut Criterion) {
    let clusters = 8;
    let path = scratch("criterion.libcache");
    let (_, _) = cold_case(clusters, &path, 1);
    let mut group = c.benchmark_group("library_cache");
    group.sample_size(10);
    group.bench_function("warm_flow_8", |b| {
        b.iter(|| {
            let lib = NoiseModelLibrary::new();
            load_library_cache(&path, &lib);
            std::hint::black_box(run_flow(clusters, &lib));
        })
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_cache);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--test") {
        self_test();
        return;
    }
    let json = args
        .windows(2)
        .any(|w| w[0] == "--format" && w[1] == "json");
    if json {
        let clusters = 64;
        let path = scratch("bench64.libcache");
        let (cold, cold_report) = cold_case(clusters, &path, 3);
        let (warm, warm_report) = warm_case(clusters, &path, 3, cold.median_ms);
        assert_eq!(cold_report, warm_report, "persistence changed the report");
        let inc = incremental_case(clusters, &path, 3, cold.median_ms);
        emit_json(&[cold, warm, inc]);
        std::fs::remove_file(&path).ok();
        return;
    }
    benches();
}
