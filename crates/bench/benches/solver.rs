//! Dense vs sparse solver sweep on the segmented coupled-bus transient.
//!
//! Three modes:
//!
//! * default — criterion harness: factor/refactor and end-to-end transient
//!   timings per bus size.
//! * `--format json` — hand-timed medians emitted as the
//!   `sna-bench-solver-v1` JSON document checked in as `BENCH_solver.json`
//!   (the repo's performance trajectory for the solver subsystem).
//! * `--test` — small-size smoke run: exercises every backend and asserts
//!   dense/sparse waveform agreement to 1e-9. CI runs this on every push.
//!
//! The circuit is the paper's victim/aggressor pair (500 µm, coupled), the
//! matrix sweep covers n ≈ 50…1000 MNA unknowns via the segment count.

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion};
use sna_interconnect::prelude::*;
use sna_obs::{local_snapshot, Metric};
use sna_spice::linalg::DenseMatrix;
use sna_spice::mna::MnaSystem;
use sna_spice::netlist::Circuit;
use sna_spice::prelude::{SolverKind, SourceWaveform, TranParams};
use sna_spice::sparse::{SparseLu, SparseMatrix, Symbolic};
use sna_spice::tran::transient;
use sna_spice::units::{NS, PS, UM};

/// Victim/aggressor pair with `segments` π-segments per wire, aggressor
/// ramp drive, victim held by a resistor — the segmented coupled-bus
/// transient of the paper, dimension 2·(segments+1) + 2 unknowns.
fn bus_circuit(segments: usize) -> (Circuit, sna_spice::netlist::NodeId) {
    let w = WireGeom::new(500.0 * UM, 0.2e6, 40e-12);
    let bus = CoupledBus::parallel_pair(w, w, 90e-12, segments);
    let mut ckt = Circuit::new();
    let nets = bus.instantiate(&mut ckt, "n").unwrap();
    ckt.add_vsource(
        "Vagg",
        nets[1].near,
        Circuit::gnd(),
        SourceWaveform::Ramp {
            v0: 0.0,
            v1: 1.2,
            t_start: 0.1 * NS,
            t_rise: 100.0 * PS,
        },
    );
    ckt.add_resistor("Rhold", nets[0].near, Circuit::gnd(), 2e3)
        .unwrap();
    (ckt, nets[0].far)
}

/// Effective conductance matrix `G + α·C` of the bus circuit at a
/// trapezoidal 2 ps step — the matrix every transient solve factors.
fn geff_of(ckt: &Circuit) -> DenseMatrix {
    let mna = MnaSystem::new(ckt).unwrap();
    let mut geff = DenseMatrix::zeros(mna.dim(), mna.dim());
    geff.axpy(1.0, mna.g_matrix());
    geff.axpy(2.0 / (2.0 * PS), mna.c_matrix());
    geff
}

fn median_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// `sna-obs` counter deltas of one canonical transient per backend —
/// workload structure (steps, refactors, solves) to read the timings
/// against. Exact counts, not samples: the runs are deterministic.
struct TranCounters {
    steps: u64,
    dense_refactors: u64,
    dense_solves: u64,
    sparse_refactors: u64,
    sparse_solves: u64,
}

struct CaseResult {
    unknowns: usize,
    nnz: usize,
    factor_nnz: usize,
    dense_lu_ms: f64,
    sparse_cold_ms: f64,
    sparse_refactor_ms: f64,
    refactor_speedup_vs_dense: f64,
    tran_dense_ms: Option<f64>,
    tran_sparse_ms: Option<f64>,
    max_wave_diff: Option<f64>,
    counters: Option<TranCounters>,
}

/// Measure one bus size: raw factor costs, and (for `tran_window` Some)
/// the end-to-end transient on both backends plus their waveform deviation.
fn run_case(segments: usize, reps: usize, tran_window: Option<f64>) -> CaseResult {
    let (ckt, probe) = bus_circuit(segments);
    let geff = geff_of(&ckt);
    let n = geff.n_rows();
    let sp = SparseMatrix::from_dense(&geff);
    let sym = Symbolic::analyze(&sp);
    let dense_lu_ms = 1e3
        * median_secs(reps, || {
            std::hint::black_box(geff.lu().unwrap());
        });
    let sparse_cold_ms = 1e3
        * median_secs(reps, || {
            std::hint::black_box(SparseLu::factor(&sp, &sym).unwrap());
        });
    let mut lu = SparseLu::factor(&sp, &sym).unwrap();
    let sparse_refactor_ms = 1e3
        * median_secs(reps, || {
            lu.refactor(&sp).unwrap();
        });
    let (tran_dense_ms, tran_sparse_ms, max_wave_diff, counters) = match tran_window {
        None => (None, None, None, None),
        Some(t_stop) => {
            let mut params = TranParams::new(t_stop, 2.0 * PS);
            params.solver = SolverKind::Dense;
            let before = local_snapshot();
            let dense_res = transient(&ckt, &params).unwrap();
            let d_dense = local_snapshot().since(&before);
            let t_dense = 1e3
                * median_secs(reps.min(3), || {
                    std::hint::black_box(transient(&ckt, &params).unwrap());
                });
            params.solver = SolverKind::Sparse;
            let before = local_snapshot();
            let sparse_res = transient(&ckt, &params).unwrap();
            let d_sparse = local_snapshot().since(&before);
            let t_sparse = 1e3
                * median_secs(reps.min(3), || {
                    std::hint::black_box(transient(&ckt, &params).unwrap());
                });
            let diff = dense_res
                .node_waveform(probe)
                .max_abs_difference(&sparse_res.node_waveform(probe));
            let counters = TranCounters {
                steps: d_dense.get(Metric::TranSteps),
                dense_refactors: d_dense.get(Metric::SolverRefactorsDense),
                dense_solves: d_dense.get(Metric::SolverSolves),
                sparse_refactors: d_sparse.get(Metric::SolverRefactorsSparse),
                sparse_solves: d_sparse.get(Metric::SolverSolves),
            };
            (Some(t_dense), Some(t_sparse), Some(diff), Some(counters))
        }
    };
    CaseResult {
        unknowns: n,
        nnz: sp.nnz(),
        factor_nnz: lu.factor_nnz(),
        dense_lu_ms,
        sparse_cold_ms,
        sparse_refactor_ms,
        refactor_speedup_vs_dense: dense_lu_ms / sparse_refactor_ms.max(1e-12),
        tran_dense_ms,
        tran_sparse_ms,
        max_wave_diff,
        counters,
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("null".into(), |x| format!("{x:.4}"))
}

fn emit_json(cases: &[CaseResult]) {
    println!("{{");
    println!("  \"schema\": \"sna-bench-solver-v1\",");
    println!("  \"circuit\": \"coupled-bus victim/aggressor pair, 500um, trapezoidal 2ps\",");
    println!("  \"cases\": [");
    for (k, c) in cases.iter().enumerate() {
        let comma = if k + 1 < cases.len() { "," } else { "" };
        let counters = c.counters.as_ref().map_or("null".into(), |t| {
            format!(
                "{{\"tran_steps\": {}, \"dense_refactors\": {}, \"dense_solves\": {}, \
                 \"sparse_refactors\": {}, \"sparse_solves\": {}}}",
                t.steps, t.dense_refactors, t.dense_solves, t.sparse_refactors, t.sparse_solves
            )
        });
        println!(
            "    {{\"unknowns\": {}, \"nnz\": {}, \"factor_nnz\": {}, \
             \"dense_lu_ms\": {:.4}, \"sparse_cold_ms\": {:.4}, \
             \"sparse_refactor_ms\": {:.4}, \"refactor_speedup_vs_dense\": {:.1}, \
             \"tran_dense_ms\": {}, \"tran_sparse_ms\": {}, \"max_wave_diff\": {}, \
             \"counters\": {}}}{}",
            c.unknowns,
            c.nnz,
            c.factor_nnz,
            c.dense_lu_ms,
            c.sparse_cold_ms,
            c.sparse_refactor_ms,
            c.refactor_speedup_vs_dense,
            fmt_opt(c.tran_dense_ms),
            fmt_opt(c.tran_sparse_ms),
            c.max_wave_diff
                .map_or("null".into(), |x| format!("{x:.3e}")),
            counters,
            comma
        );
    }
    println!("  ]");
    println!("}}");
}

/// Smoke mode for CI: exercise dense LU, sparse cold factor, sparse
/// refactor, and both transient backends on small sizes; assert agreement.
fn self_test() {
    for segments in [10, 60] {
        let c = run_case(segments, 1, Some(0.5 * NS));
        // Structural (deterministic) check: the factor stays sparse —
        // fill is bounded by a small multiple of the input non-zeros.
        // Timing ratios are deliberately NOT asserted here: single-sample
        // timings on a shared CI runner are noise.
        assert!(
            c.factor_nnz <= 3 * c.nnz,
            "factor fill {} vs nnz {} — ordering regressed",
            c.factor_nnz,
            c.nnz
        );
        let diff = c.max_wave_diff.unwrap();
        assert!(
            diff < 1e-9,
            "dense/sparse waveform deviation {diff:.3e} at {} unknowns",
            c.unknowns
        );
        // Counter deltas describe the snapshotted runs: both backends took
        // the same steps and solved once per step plus the DC solve.
        let t = c.counters.as_ref().unwrap();
        assert!(t.steps > 0);
        assert_eq!(t.dense_solves, t.steps + 1);
        assert_eq!(t.sparse_solves, t.steps + 1);
        println!(
            "solver smoke: {} unknowns, wave diff {:.2e}, refactor speedup {:.1}x — ok",
            c.unknowns, diff, c.refactor_speedup_vs_dense
        );
    }
    println!("solver bench self-test: OK");
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_factor");
    group.sample_size(10);
    for segments in [25usize, 100, 250, 500] {
        let (ckt, _) = bus_circuit(segments);
        let geff = geff_of(&ckt);
        let n = geff.n_rows();
        let sp = SparseMatrix::from_dense(&geff);
        let sym = Symbolic::analyze(&sp);
        group.bench_function(BenchmarkId::new("dense_lu", n), |b| {
            b.iter(|| geff.lu().unwrap())
        });
        group.bench_function(BenchmarkId::new("sparse_cold", n), |b| {
            b.iter(|| SparseLu::factor(&sp, &sym).unwrap())
        });
        let mut lu = SparseLu::factor(&sp, &sym).unwrap();
        group.bench_function(BenchmarkId::new("sparse_refactor", n), |b| {
            b.iter(|| lu.refactor(&sp).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("solver_tran");
    group.sample_size(10);
    for segments in [100usize, 250] {
        let (ckt, _) = bus_circuit(segments);
        let n = MnaSystem::new(&ckt).unwrap().dim();
        for (label, kind) in [("dense", SolverKind::Dense), ("sparse", SolverKind::Sparse)] {
            let mut params = TranParams::new(0.5 * NS, 2.0 * PS);
            params.solver = kind;
            group.bench_function(BenchmarkId::new(label, n), |b| {
                b.iter(|| transient(&ckt, &params).unwrap())
            });
        }
    }
    group.finish();
}

// The group expands to `fn benches()`; the custom `main` below dispatches
// to it in the default mode and adds the `--test` / `--format json` modes
// (real criterion would own `main` via `criterion_main!`).
criterion_group!(benches, bench_solver);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--test") {
        self_test();
        return;
    }
    let json = args
        .windows(2)
        .any(|w| w[0] == "--format" && w[1] == "json");
    if json {
        let mut cases = Vec::new();
        for (segments, reps, window) in [
            (25usize, 9, Some(1.0 * NS)),
            (100, 7, Some(1.0 * NS)),
            (250, 5, Some(0.5 * NS)),
            (500, 3, None),
        ] {
            cases.push(run_case(segments, reps, window));
        }
        emit_json(&cases);
        return;
    }
    benches();
}
