//! Characterization-cost benches and the Eq. (1) grid-resolution ablation
//! (DESIGN.md §5.1).
//!
//! The load-curve table is built once per (cell, drive state) and reused
//! across every cluster in a design, so its cost is amortized — but the
//! grid resolution trades characterization time against engine accuracy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sna_cells::prelude::*;

fn load_curve_grid(c: &mut Criterion) {
    let tech = Technology::cmos130();
    let cell = Cell::nand2(tech, 1.0);
    let mode = cell.holding_low_mode();
    let mut group = c.benchmark_group("characterize/load_curve_grid");
    group.sample_size(10);
    for grid in [9usize, 17, 33] {
        let opts = CharacterizeOptions {
            grid,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(grid), &opts, |b, o| {
            b.iter(|| characterize_load_curve(&cell, &mode, std::hint::black_box(o)).expect("char"))
        });
    }
    group.finish();
}

fn holding_and_thevenin(c: &mut Criterion) {
    let tech = Technology::cmos130();
    let nand = Cell::nand2(tech.clone(), 1.0);
    let mode = nand.holding_low_mode();
    c.bench_function("characterize/holding_resistance", |b| {
        b.iter(|| holding_resistance(&nand, &mode, &Default::default()).expect("holding"))
    });
    let inv = Cell::inv(tech, 2.5);
    let load = TheveninLoad::Pi {
        c_near: 25e-15,
        r: 120.0,
        c_far: 40e-15,
    };
    let mut group = c.benchmark_group("characterize/thevenin");
    group.sample_size(10);
    group.bench_function("pi_load_fit", |b| {
        b.iter(|| {
            characterize_thevenin(&inv, true, 60e-12, std::hint::black_box(&load)).expect("fit")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = load_curve_grid, holding_and_thevenin
}
criterion_main!(benches);
