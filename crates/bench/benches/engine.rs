//! Criterion micro-benches of the dedicated noise engine.
//!
//! Covers the §3 performance story from the engine side: throughput of one
//! cluster solve, scaling with aggressor count, and the integrator /
//! time-step ablation of DESIGN.md §5.3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sna_core::prelude::*;

fn engine_throughput(c: &mut Criterion) {
    let spec = table1_spec();
    let model = ClusterMacromodel::build(&spec).expect("build table1");
    c.bench_function("engine/table1_solve", |b| {
        b.iter(|| simulate_macromodel(std::hint::black_box(&model)).expect("solve"))
    });
}

fn engine_vs_aggressor_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/aggressors");
    for n_agg in [1usize, 2, 3] {
        // Build an n-aggressor variant of the table-1 cluster.
        let mut spec = if n_agg == 1 {
            table1_spec()
        } else {
            table2_spec()
        };
        while spec.aggressors.len() < n_agg {
            let mut extra = spec.aggressors[0].clone();
            extra.switch_time += 50e-12;
            spec.aggressors.push(extra);
        }
        spec.aggressors.truncate(n_agg);
        spec.bus = m4_bus(&spec.tech, n_agg + 1, 500.0, 20);
        let model = ClusterMacromodel::build(&spec).expect("build");
        group.bench_with_input(BenchmarkId::from_parameter(n_agg), &model, |b, m| {
            b.iter(|| simulate_macromodel(std::hint::black_box(m)).expect("solve"))
        });
    }
    group.finish();
}

fn engine_timestep_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/timestep");
    for dt_ps in [0.5f64, 1.0, 2.0, 4.0] {
        let mut spec = table1_spec();
        spec.dt = dt_ps * 1e-12;
        let model = ClusterMacromodel::build(&spec).expect("build");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{dt_ps}ps")),
            &model,
            |b, m| b.iter(|| simulate_macromodel(std::hint::black_box(m)).expect("solve")),
        );
    }
    group.finish();
}

fn baselines(c: &mut Criterion) {
    let spec = table1_spec();
    let model = ClusterMacromodel::build(&spec).expect("build");
    c.bench_function("engine/superposition_baseline", |b| {
        b.iter(|| simulate_superposition(std::hint::black_box(&model)).expect("solve"))
    });
    c.bench_function("engine/zolotov_baseline", |b| {
        b.iter(|| {
            simulate_zolotov(std::hint::black_box(&model), &ZolotovOptions::default())
                .expect("solve")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = engine_throughput, engine_vs_aggressor_count, engine_timestep_ablation, baselines
}
criterion_main!(benches);
