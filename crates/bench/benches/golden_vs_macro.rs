//! The paper's headline speed-up (§3): golden transistor-level simulation
//! vs the dedicated macromodel engine on the same cluster and time grid.
//!
//! The paper reports "about 20X with respect to ELDO™"; Criterion's
//! `golden/*` vs `macro/*` medians regenerate that ratio (see also the
//! plain-text `--bin speedup`, which prints the ratio directly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sna_core::prelude::*;

fn golden_vs_macro(c: &mut Criterion) {
    for (name, spec) in [("table1", table1_spec()), ("table2", table2_spec())] {
        let model = ClusterMacromodel::build(&spec).expect("build");
        let mut group = c.benchmark_group(format!("golden_vs_macro/{name}"));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("golden", name), &spec, |b, s| {
            b.iter(|| simulate_golden(std::hint::black_box(s)).expect("golden"))
        });
        group.bench_with_input(BenchmarkId::new("macro", name), &model, |b, m| {
            b.iter(|| simulate_macromodel(std::hint::black_box(m)).expect("engine"))
        });
        group.finish();
    }
}

fn golden_segment_scaling(c: &mut Criterion) {
    // Golden cost grows with extraction detail; macromodel cost does not
    // (fixed reduced order). This is why macromodel-based SNA scales.
    let mut group = c.benchmark_group("golden_vs_macro/segments");
    group.sample_size(10);
    for segments in [8usize, 20, 40] {
        let mut spec = table1_spec();
        spec.bus.segments = segments;
        group.bench_with_input(BenchmarkId::new("golden", segments), &spec, |b, s| {
            b.iter(|| simulate_golden(std::hint::black_box(s)).expect("golden"))
        });
        let model = ClusterMacromodel::build(&spec).expect("build");
        group.bench_with_input(BenchmarkId::new("macro", segments), &model, |b, m| {
            b.iter(|| simulate_macromodel(std::hint::black_box(m)).expect("engine"))
        });
    }
    group.finish();
}

criterion_group!(benches, golden_vs_macro, golden_segment_scaling);
criterion_main!(benches);
