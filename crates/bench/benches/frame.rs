//! FRAME pruning: constraint-aware alignment vs exhaustive enumeration.
//!
//! The paper's alignment search treats every aggressor as free to switch
//! anywhere; timing windows and mutual-exclusion groups from the design's
//! timing/logic context shrink the candidate space before any simulation
//! is spent. This bench measures that shrinkage on the paper's Table 2
//! cluster: the pruned constrained search vs the exhaustive enumeration of
//! the same candidate space, plus the batched-vs-serial cost of the
//! unconstrained `worst_case_alignment` grid passes.
//!
//! Three modes, mirroring `benches/sweep.rs`:
//!
//! * default — criterion harness: pruned vs exhaustive per grid size.
//! * `--format json` — hand-timed medians as the `sna-bench-frame-v1`
//!   document checked in as `BENCH_frame.json`. Headline numbers:
//!   `prune_rate` (fraction of candidates never simulated) and
//!   `speedup_vs_exhaustive` (wall-clock win of pruning).
//! * `--test` — smoke run: structural assertions only (pruning ≥ 50% on
//!   the constrained fixture, pruned == exhaustive bitwise on a fully
//!   feasible one); timing ratios are not asserted on shared CI runners.

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion};
use sna_cells::Cell;
use sna_core::cluster::{ClusterMacromodel, SwitchingWindow};
use sna_core::frame::{constrained_worst_case, FrameOutcome};
use sna_core::nrc::{characterize_nrc, NoiseRejectionCurve};
use sna_core::prelude::{worst_case_alignment, worst_case_alignment_batched};
use sna_core::scenarios::table2_spec;
use sna_spice::backend::BackendKind;
use sna_spice::units::{NS, PS};

fn nrc() -> NoiseRejectionCurve {
    let tech = sna_cells::Technology::cmos130();
    characterize_nrc(
        &Cell::inv(tech, 1.0),
        true,
        &[100.0 * PS, 300.0 * PS, 900.0 * PS],
    )
    .expect("NRC characterization")
}

/// The constrained fixture: both aggressors windowed and mutually
/// exclusive, one window straddling the edge of the victim's sensitivity
/// interval — so both pruning stages fire: late positions of aggressor 1
/// die at the window check, and its surviving early position conflicts
/// with aggressor 0 via the mexcl group.
fn constrained_model() -> ClusterMacromodel {
    let mut spec = table2_spec();
    spec.aggressors[0].mexcl_group = Some(1);
    spec.aggressors[1].mexcl_group = Some(1);
    spec.aggressors[0].window = Some(SwitchingWindow::new(0.3 * NS, 0.7 * NS));
    spec.aggressors[1].window = Some(SwitchingWindow::new(0.9 * NS, 2.6 * NS));
    spec.victim.sensitivity = Some(SwitchingWindow::new(0.0, 1.2 * NS));
    ClusterMacromodel::build(&spec).expect("constrained macromodel")
}

/// A fully feasible fixture: windows inside an always-sensitive victim,
/// no mexcl — nothing prunes, so pruned and exhaustive runs must agree
/// bitwise (the CI gate's premise).
fn feasible_model() -> ClusterMacromodel {
    let mut spec = table2_spec();
    spec.aggressors[0].window = Some(SwitchingWindow::new(0.3 * NS, 0.6 * NS));
    spec.aggressors[1].window = Some(SwitchingWindow::new(0.2 * NS, 0.7 * NS));
    ClusterMacromodel::build(&spec).expect("feasible macromodel")
}

fn median_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

struct FrameCase {
    grid: usize,
    backend: BackendKind,
    considered: u64,
    pruned_window: u64,
    pruned_mexcl: u64,
    simulated: u64,
    prune_rate: f64,
    pruned_ms: f64,
    exhaustive_ms: f64,
    speedup_vs_exhaustive: f64,
    margins_match_feasible_subset: bool,
}

/// One (grid, backend) point on the constrained fixture: counters from a
/// pruned run, median wall times for pruned vs exhaustive enumeration.
fn run_case(grid: usize, backend: BackendKind, reps: usize) -> FrameCase {
    let model = constrained_model();
    let n = nrc();
    let pruned: FrameOutcome = constrained_worst_case(&model, &n, grid, false, backend).unwrap();
    let full = constrained_worst_case(&model, &n, grid, true, backend).unwrap();
    let pruned_ms = 1e3
        * median_secs(reps, || {
            std::hint::black_box(constrained_worst_case(&model, &n, grid, false, backend).unwrap());
        });
    let exhaustive_ms = 1e3
        * median_secs(reps, || {
            std::hint::black_box(constrained_worst_case(&model, &n, grid, true, backend).unwrap());
        });
    FrameCase {
        grid,
        backend,
        considered: pruned.counters.considered,
        pruned_window: pruned.counters.pruned_window,
        pruned_mexcl: pruned.counters.pruned_mexcl,
        simulated: pruned.counters.simulated,
        prune_rate: pruned.counters.prune_rate(),
        pruned_ms,
        exhaustive_ms,
        speedup_vs_exhaustive: exhaustive_ms / pruned_ms.max(1e-12),
        // Feasible ⊆ exhaustive: the pruned margin can never be more
        // optimistic than re-finding its own candidate in the full set.
        margins_match_feasible_subset: pruned.margin >= full.margin,
    }
}

struct AlignCase {
    backend: BackendKind,
    evaluations_serial: usize,
    evaluations_batched: usize,
    serial_ms: f64,
    batched_ms: f64,
    peak_agreement: f64,
}

/// Unconstrained `worst_case_alignment` vs its batched twin: same probe
/// sequence (the 7-point grid pass runs as one K=7 batch), so evaluation
/// counts match and the wall delta is pure batching overhead/win.
fn run_align_case(backend: BackendKind, reps: usize) -> AlignCase {
    let model = ClusterMacromodel::build(&table2_spec()).expect("macromodel");
    let window = 400.0 * PS;
    let serial = worst_case_alignment(&model, window).unwrap();
    let batched = worst_case_alignment_batched(&model, window, backend).unwrap();
    let serial_ms = 1e3
        * median_secs(reps, || {
            std::hint::black_box(worst_case_alignment(&model, window).unwrap());
        });
    let batched_ms = 1e3
        * median_secs(reps, || {
            std::hint::black_box(worst_case_alignment_batched(&model, window, backend).unwrap());
        });
    AlignCase {
        backend,
        evaluations_serial: serial.evaluations,
        evaluations_batched: batched.evaluations,
        serial_ms,
        batched_ms,
        peak_agreement: (serial.dp_metrics.peak - batched.dp_metrics.peak).abs(),
    }
}

fn emit_json(cases: &[FrameCase], aligns: &[AlignCase]) {
    println!("{{");
    println!("  \"schema\": \"sna-bench-frame-v1\",");
    println!(
        "  \"circuit\": \"Table 2 cluster, two aggressors; constrained fixture: one \
         mexcl pair, one window straddling the victim sensitivity edge\","
    );
    println!("  \"cases\": [");
    for (i, c) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        println!(
            "    {{\"grid\": {}, \"backend\": \"{:?}\", \"considered\": {}, \
             \"pruned_window\": {}, \"pruned_mexcl\": {}, \"simulated\": {}, \
             \"prune_rate\": {:.4}, \"pruned_ms\": {:.4}, \"exhaustive_ms\": {:.4}, \
             \"speedup_vs_exhaustive\": {:.4}}}{}",
            c.grid,
            c.backend,
            c.considered,
            c.pruned_window,
            c.pruned_mexcl,
            c.simulated,
            c.prune_rate,
            c.pruned_ms,
            c.exhaustive_ms,
            c.speedup_vs_exhaustive,
            comma
        );
    }
    println!("  ],");
    println!("  \"alignment\": [");
    for (i, a) in aligns.iter().enumerate() {
        let comma = if i + 1 < aligns.len() { "," } else { "" };
        println!(
            "    {{\"backend\": \"{:?}\", \"evaluations_serial\": {}, \
             \"evaluations_batched\": {}, \"serial_ms\": {:.4}, \"batched_ms\": {:.4}, \
             \"peak_agreement_v\": {:.3e}}}{}",
            a.backend,
            a.evaluations_serial,
            a.evaluations_batched,
            a.serial_ms,
            a.batched_ms,
            a.peak_agreement,
            comma
        );
    }
    println!("  ]");
    println!("}}");
}

/// Smoke mode for CI: deterministic assertions only.
fn self_test() {
    for backend in [BackendKind::Scalar, BackendKind::Batched] {
        let c = run_case(2, backend, 1);
        assert!(
            c.prune_rate >= 0.5,
            "{backend:?}: constrained fixture prunes only {:.0}%",
            c.prune_rate * 100.0
        );
        assert_eq!(c.considered, c.pruned_window + c.pruned_mexcl + c.simulated);
        assert!(c.margins_match_feasible_subset);

        // Fully feasible: pruned and exhaustive agree bitwise.
        let model = feasible_model();
        let n = nrc();
        let pruned = constrained_worst_case(&model, &n, 3, false, backend).unwrap();
        let full = constrained_worst_case(&model, &n, 3, true, backend).unwrap();
        assert_eq!(
            pruned.counters.pruned_window + pruned.counters.pruned_mexcl,
            0
        );
        assert_eq!(pruned.margin.to_bits(), full.margin.to_bits());
        assert_eq!(pruned.switch_times, full.switch_times);

        let a = run_align_case(backend, 1);
        assert_eq!(
            a.evaluations_serial, a.evaluations_batched,
            "{backend:?}: batched alignment changed the probe sequence"
        );
        assert!(
            a.peak_agreement < 1e-6,
            "{backend:?}: alignment peaks deviate {:.3e} V",
            a.peak_agreement
        );
        println!(
            "frame smoke [{backend:?}]: prune {:.0}%, align evals {} — ok",
            c.prune_rate * 100.0,
            a.evaluations_serial
        );
    }
    println!("frame bench self-test: OK");
}

fn bench_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame");
    group.sample_size(10);
    let model = constrained_model();
    let n = nrc();
    for grid in [2usize, 4] {
        group.bench_function(BenchmarkId::new("pruned", grid), |b| {
            b.iter(|| constrained_worst_case(&model, &n, grid, false, BackendKind::Scalar).unwrap())
        });
        group.bench_function(BenchmarkId::new("exhaustive", grid), |b| {
            b.iter(|| constrained_worst_case(&model, &n, grid, true, BackendKind::Scalar).unwrap())
        });
    }
    group.finish();
}

// Same dispatch pattern as benches/sweep.rs: criterion by default, plus
// the `--test` / `--format json` modes.
criterion_group!(benches, bench_frame);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--test") {
        self_test();
        return;
    }
    let json = args
        .windows(2)
        .any(|w| w[0] == "--format" && w[1] == "json");
    if json {
        let mut cases = Vec::new();
        for backend in [BackendKind::Scalar, BackendKind::Batched] {
            for grid in [2usize, 4, 6] {
                cases.push(run_case(grid, backend, 5));
            }
        }
        let aligns = [
            run_align_case(BackendKind::Scalar, 5),
            run_align_case(BackendKind::Batched, 5),
        ];
        emit_json(&cases, &aligns);
        return;
    }
    benches();
}
