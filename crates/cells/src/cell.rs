//! Transistor-level library-cell generators.
//!
//! Each [`Cell`] expands into level-1 MOSFETs when instantiated into a
//! [`Circuit`]. The set covers what the paper's evaluation needs — an
//! inverter aggressor driver, the 2-input NAND victim of Tables 1/2 — plus
//! NOR2, BUF and AOI21 for the §3 accuracy sweep across "several noise
//! clusters".

use serde::{Deserialize, Serialize};
use sna_spice::error::{Error, Result};
use sna_spice::netlist::{Circuit, NodeId};

use crate::tech::Technology;

/// Logic function of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellType {
    /// Inverter.
    Inv,
    /// Two cascaded inverters (non-inverting buffer).
    Buf,
    /// 2-input NAND — the victim driver of the paper's test cases.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// AND-OR-INVERT 21: `out = !((a & b) | c)`.
    Aoi21,
}

impl CellType {
    /// Number of logic inputs.
    pub fn input_count(self) -> usize {
        match self {
            CellType::Inv | CellType::Buf => 1,
            CellType::Nand2 | CellType::Nor2 => 2,
            CellType::Aoi21 => 3,
        }
    }

    /// Short instance-name tag.
    pub fn tag(self) -> &'static str {
        match self {
            CellType::Inv => "inv",
            CellType::Buf => "buf",
            CellType::Nand2 => "nand2",
            CellType::Nor2 => "nor2",
            CellType::Aoi21 => "aoi21",
        }
    }
}

/// A sized library cell in a given technology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Logic function.
    pub cell_type: CellType,
    /// Technology node.
    pub tech: Technology,
    /// Drive-strength multiplier (1.0 = unit cell, 4.0 = X4, ...).
    pub strength: f64,
}

/// Node handles returned by [`Cell::instantiate`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellPorts {
    /// Input nodes, in declaration order (`a`, `b`, `c`).
    pub inputs: Vec<NodeId>,
    /// Output node.
    pub output: NodeId,
}

/// Quiescent drive state of a victim driver for noise analysis: which input
/// carries the incoming glitch, what the other inputs are held at, and the
/// resting level of the noisy input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriverMode {
    /// Index of the input that receives the propagating glitch.
    pub noisy_input: usize,
    /// Static level of every input (the noisy input's entry is its
    /// quiescent level).
    pub input_levels: Vec<f64>,
    /// Quiescent output level (V) implied by the inputs.
    pub output_level: f64,
}

impl Cell {
    /// Construct a cell of `cell_type` at the given strength.
    pub fn new(cell_type: CellType, tech: Technology, strength: f64) -> Self {
        assert!(strength > 0.0, "strength must be positive");
        Cell {
            cell_type,
            tech,
            strength,
        }
    }

    /// Inverter shorthand.
    pub fn inv(tech: Technology, strength: f64) -> Self {
        Self::new(CellType::Inv, tech, strength)
    }

    /// NAND2 shorthand (the paper's victim driver).
    pub fn nand2(tech: Technology, strength: f64) -> Self {
        Self::new(CellType::Nand2, tech, strength)
    }

    /// NOR2 shorthand.
    pub fn nor2(tech: Technology, strength: f64) -> Self {
        Self::new(CellType::Nor2, tech, strength)
    }

    /// Number of logic inputs.
    pub fn input_count(&self) -> usize {
        self.cell_type.input_count()
    }

    /// Whether the cell inverts (output moves opposite to a common input
    /// ramp applied to all inputs). Only BUF is non-inverting here.
    pub fn is_inverting(&self) -> bool {
        !matches!(self.cell_type, CellType::Buf)
    }

    /// NMOS width used by this instance (m). Series stacks are widened 1.5×
    /// to partially recover drive, as standard-cell libraries do.
    fn wn(&self) -> f64 {
        let stack_boost = match self.cell_type {
            CellType::Nand2 | CellType::Aoi21 => 1.5,
            _ => 1.0,
        };
        self.tech.wn_unit * self.strength * stack_boost
    }

    /// PMOS width used by this instance (m).
    fn wp(&self) -> f64 {
        let stack_boost = match self.cell_type {
            CellType::Nor2 | CellType::Aoi21 => 1.5,
            _ => 1.0,
        };
        self.tech.wp_unit * self.strength * stack_boost
    }

    /// Approximate input capacitance of one input pin (F): the gate caps of
    /// the transistors that pin drives. Used as the receiver load in noise
    /// clusters.
    pub fn input_capacitance(&self) -> f64 {
        let l = self.tech.l_min;
        let gate = |model: &sna_spice::devices::MosfetModel, w: f64| {
            model.cox * w * l + (model.cgso + model.cgdo) * w
        };
        match self.cell_type {
            CellType::Inv | CellType::Buf | CellType::Nand2 | CellType::Nor2 | CellType::Aoi21 => {
                gate(&self.tech.nmos, self.wn()) + gate(&self.tech.pmos, self.wp())
            }
        }
    }

    /// Expand the cell into MOSFETs.
    ///
    /// `prefix` namespaces instance and internal node names; `vdd` is the
    /// supply node (caller provides the source).
    ///
    /// # Errors
    ///
    /// Fails if `inputs.len()` does not match the cell's input count.
    pub fn instantiate(
        &self,
        ckt: &mut Circuit,
        prefix: &str,
        inputs: &[NodeId],
        output: NodeId,
        vdd: NodeId,
    ) -> Result<CellPorts> {
        if inputs.len() != self.input_count() {
            return Err(Error::InvalidCircuit(format!(
                "{} needs {} inputs, got {}",
                self.cell_type.tag(),
                self.input_count(),
                inputs.len()
            )));
        }
        let gnd = Circuit::gnd();
        let l = self.tech.l_min;
        let n = self.tech.nmos;
        let p = self.tech.pmos;
        let (wn, wp) = (self.wn(), self.wp());
        match self.cell_type {
            CellType::Inv => {
                ckt.add_mosfet(
                    &format!("{prefix}.mn"),
                    output,
                    inputs[0],
                    gnd,
                    gnd,
                    n,
                    wn,
                    l,
                )?;
                ckt.add_mosfet(
                    &format!("{prefix}.mp"),
                    output,
                    inputs[0],
                    vdd,
                    vdd,
                    p,
                    wp,
                    l,
                )?;
            }
            CellType::Buf => {
                let mid = ckt.node(&format!("{prefix}.x"));
                ckt.add_mosfet(&format!("{prefix}.mn1"), mid, inputs[0], gnd, gnd, n, wn, l)?;
                ckt.add_mosfet(&format!("{prefix}.mp1"), mid, inputs[0], vdd, vdd, p, wp, l)?;
                ckt.add_mosfet(&format!("{prefix}.mn2"), output, mid, gnd, gnd, n, wn, l)?;
                ckt.add_mosfet(&format!("{prefix}.mp2"), output, mid, vdd, vdd, p, wp, l)?;
            }
            CellType::Nand2 => {
                // NMOS stack: a on top (next to output), b at the bottom.
                let mid = ckt.node(&format!("{prefix}.mid"));
                ckt.add_mosfet(
                    &format!("{prefix}.mna"),
                    output,
                    inputs[0],
                    mid,
                    gnd,
                    n,
                    wn,
                    l,
                )?;
                ckt.add_mosfet(&format!("{prefix}.mnb"), mid, inputs[1], gnd, gnd, n, wn, l)?;
                ckt.add_mosfet(
                    &format!("{prefix}.mpa"),
                    output,
                    inputs[0],
                    vdd,
                    vdd,
                    p,
                    wp,
                    l,
                )?;
                ckt.add_mosfet(
                    &format!("{prefix}.mpb"),
                    output,
                    inputs[1],
                    vdd,
                    vdd,
                    p,
                    wp,
                    l,
                )?;
            }
            CellType::Nor2 => {
                // PMOS stack: a on top, b next to output.
                let mid = ckt.node(&format!("{prefix}.mid"));
                ckt.add_mosfet(&format!("{prefix}.mpa"), mid, inputs[0], vdd, vdd, p, wp, l)?;
                ckt.add_mosfet(
                    &format!("{prefix}.mpb"),
                    output,
                    inputs[1],
                    mid,
                    vdd,
                    p,
                    wp,
                    l,
                )?;
                ckt.add_mosfet(
                    &format!("{prefix}.mna"),
                    output,
                    inputs[0],
                    gnd,
                    gnd,
                    n,
                    wn,
                    l,
                )?;
                ckt.add_mosfet(
                    &format!("{prefix}.mnb"),
                    output,
                    inputs[1],
                    gnd,
                    gnd,
                    n,
                    wn,
                    l,
                )?;
            }
            CellType::Aoi21 => {
                // out = !((a & b) | c): NMOS (a series b) parallel c;
                // PMOS (a parallel b) series c.
                let nmid = ckt.node(&format!("{prefix}.nmid"));
                let pmid = ckt.node(&format!("{prefix}.pmid"));
                ckt.add_mosfet(
                    &format!("{prefix}.mna"),
                    output,
                    inputs[0],
                    nmid,
                    gnd,
                    n,
                    wn,
                    l,
                )?;
                ckt.add_mosfet(
                    &format!("{prefix}.mnb"),
                    nmid,
                    inputs[1],
                    gnd,
                    gnd,
                    n,
                    wn,
                    l,
                )?;
                ckt.add_mosfet(
                    &format!("{prefix}.mnc"),
                    output,
                    inputs[2],
                    gnd,
                    gnd,
                    n,
                    wn,
                    l,
                )?;
                ckt.add_mosfet(
                    &format!("{prefix}.mpa"),
                    pmid,
                    inputs[0],
                    vdd,
                    vdd,
                    p,
                    wp,
                    l,
                )?;
                ckt.add_mosfet(
                    &format!("{prefix}.mpb"),
                    pmid,
                    inputs[1],
                    vdd,
                    vdd,
                    p,
                    wp,
                    l,
                )?;
                ckt.add_mosfet(
                    &format!("{prefix}.mpc"),
                    output,
                    inputs[2],
                    pmid,
                    vdd,
                    p,
                    wp,
                    l,
                )?;
            }
        }
        Ok(CellPorts {
            inputs: inputs.to_vec(),
            output,
        })
    }

    /// Canonical *output-low* holding mode: the inputs that drive the output
    /// to 0 V, with the glitch arriving on input 0 (a downward input glitch
    /// produces an upward propagated glitch on the low output, adding to a
    /// rising-aggressor injected glitch — the paper's Table 1 scenario).
    pub fn holding_low_mode(&self) -> DriverMode {
        let vdd = self.tech.vdd;
        let levels = match self.cell_type {
            CellType::Inv | CellType::Buf => vec![vdd],
            CellType::Nand2 => vec![vdd, vdd],
            // NOR2 low with only the noisy input high: the single NMOS is
            // the weakest (worst-case) holding configuration.
            CellType::Nor2 => vec![vdd, 0.0],
            // AOI21 low via the c-branch... keep a&b active for the stack
            // path: a=b=vdd, c=0 pulls low through the series stack.
            CellType::Aoi21 => vec![vdd, vdd, 0.0],
        };
        DriverMode {
            noisy_input: 0,
            input_levels: levels,
            output_level: 0.0,
        }
    }

    /// Canonical *output-high* holding mode: glitch on input 0, output at
    /// Vdd (an upward input glitch produces a downward propagated glitch).
    pub fn holding_high_mode(&self) -> DriverMode {
        let vdd = self.tech.vdd;
        let levels = match self.cell_type {
            CellType::Inv | CellType::Buf => vec![0.0],
            // NAND2 high with only the noisy input low: single PMOS holds.
            CellType::Nand2 => vec![0.0, vdd],
            CellType::Nor2 => vec![0.0, 0.0],
            CellType::Aoi21 => vec![0.0, 0.0, 0.0],
        };
        DriverMode {
            noisy_input: 0,
            input_levels: levels,
            output_level: vdd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_spice::dc::{dc_operating_point, NewtonOptions};
    use sna_spice::devices::SourceWaveform;

    fn dc_out(cell: &Cell, levels: &[f64]) -> f64 {
        let mut ckt = Circuit::new();
        let vddn = ckt.node("vdd");
        ckt.add_vsource(
            "Vdd",
            vddn,
            Circuit::gnd(),
            SourceWaveform::Dc(cell.tech.vdd),
        );
        let inputs: Vec<NodeId> = (0..cell.input_count())
            .map(|i| ckt.node(&format!("in{i}")))
            .collect();
        for (i, (&node, &v)) in inputs.iter().zip(levels).enumerate() {
            ckt.add_vsource(
                &format!("Vin{i}"),
                node,
                Circuit::gnd(),
                SourceWaveform::Dc(v),
            );
        }
        let out = ckt.node("out");
        cell.instantiate(&mut ckt, "u1", &inputs, out, vddn)
            .unwrap();
        let sol = dc_operating_point(&ckt, &NewtonOptions::default(), None).unwrap();
        sol.voltage(out)
    }

    #[test]
    fn inv_truth_table() {
        let t = Technology::cmos130();
        let c = Cell::inv(t.clone(), 1.0);
        assert!(dc_out(&c, &[0.0]) > t.vdd - 0.05);
        assert!(dc_out(&c, &[t.vdd]) < 0.05);
    }

    #[test]
    fn buf_truth_table() {
        let t = Technology::cmos130();
        let c = Cell::new(CellType::Buf, t.clone(), 1.0);
        assert!(dc_out(&c, &[0.0]) < 0.05);
        assert!(dc_out(&c, &[t.vdd]) > t.vdd - 0.05);
    }

    #[test]
    fn nand2_truth_table() {
        let t = Technology::cmos130();
        let c = Cell::nand2(t.clone(), 1.0);
        let v = t.vdd;
        assert!(dc_out(&c, &[0.0, 0.0]) > v - 0.05);
        assert!(dc_out(&c, &[v, 0.0]) > v - 0.05);
        assert!(dc_out(&c, &[0.0, v]) > v - 0.05);
        assert!(dc_out(&c, &[v, v]) < 0.05);
    }

    #[test]
    fn nor2_truth_table() {
        let t = Technology::cmos130();
        let c = Cell::nor2(t.clone(), 1.0);
        let v = t.vdd;
        assert!(dc_out(&c, &[0.0, 0.0]) > v - 0.05);
        assert!(dc_out(&c, &[v, 0.0]) < 0.05);
        assert!(dc_out(&c, &[0.0, v]) < 0.05);
        assert!(dc_out(&c, &[v, v]) < 0.05);
    }

    #[test]
    fn aoi21_truth_table() {
        let t = Technology::cmos130();
        let c = Cell::new(CellType::Aoi21, t.clone(), 1.0);
        let v = t.vdd;
        // out = !((a&b)|c)
        assert!(dc_out(&c, &[0.0, 0.0, 0.0]) > v - 0.05);
        assert!(dc_out(&c, &[v, v, 0.0]) < 0.05);
        assert!(dc_out(&c, &[0.0, 0.0, v]) < 0.05);
        assert!(dc_out(&c, &[v, 0.0, 0.0]) > v - 0.05);
    }

    #[test]
    fn holding_modes_consistent_with_truth_tables() {
        let t = Technology::cmos130();
        for ct in [
            CellType::Inv,
            CellType::Nand2,
            CellType::Nor2,
            CellType::Aoi21,
        ] {
            let c = Cell::new(ct, t.clone(), 1.0);
            let low = c.holding_low_mode();
            assert_eq!(low.input_levels.len(), c.input_count());
            let out = dc_out(&c, &low.input_levels);
            assert!(out < 0.05, "{:?} holding-low gives out={out}", ct);
            let high = c.holding_high_mode();
            let out = dc_out(&c, &high.input_levels);
            assert!(out > t.vdd - 0.05, "{:?} holding-high gives out={out}", ct);
        }
    }

    #[test]
    fn wrong_input_count_rejected() {
        let t = Technology::cmos130();
        let c = Cell::nand2(t, 1.0);
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        let vdd = ckt.node("vdd");
        assert!(c.instantiate(&mut ckt, "u", &[a], out, vdd).is_err());
    }

    #[test]
    fn input_capacitance_scales_with_strength() {
        let t = Technology::cmos130();
        let c1 = Cell::inv(t.clone(), 1.0);
        let c4 = Cell::inv(t, 4.0);
        assert!(c1.input_capacitance() > 0.1e-15);
        assert!((c4.input_capacitance() / c1.input_capacitance() - 4.0).abs() < 0.01);
    }

    #[test]
    fn strength_raises_drive() {
        // X4 inverter pulls a mid-rail node harder than X1: check via the
        // output voltage of a contended divider (inverter output low vs a
        // pull-up resistor).
        let t = Technology::cmos130();
        let check = |s: f64| -> f64 {
            let c = Cell::inv(t.clone(), s);
            let mut ckt = Circuit::new();
            let vddn = ckt.node("vdd");
            ckt.add_vsource("Vdd", vddn, Circuit::gnd(), SourceWaveform::Dc(t.vdd));
            let a = ckt.node("a");
            ckt.add_vsource("Va", a, Circuit::gnd(), SourceWaveform::Dc(t.vdd));
            let out = ckt.node("out");
            c.instantiate(&mut ckt, "u", &[a], out, vddn).unwrap();
            ckt.add_resistor("Rup", vddn, out, 10e3).unwrap();
            let sol = dc_operating_point(&ckt, &NewtonOptions::default(), None).unwrap();
            sol.voltage(out)
        };
        let v1 = check(1.0);
        let v4 = check(4.0);
        assert!(v4 < v1, "x4 should hold lower: v1={v1} v4={v4}");
    }
}
