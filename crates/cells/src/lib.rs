//! # sna-cells — technology, library cells, and characterization
//!
//! Transistor-level standard-cell generators over [`sna_spice`]'s level-1
//! MOSFET, two technology nodes (0.13 µm and 90 nm, matching the paper's
//! evaluation), and the full pre-characterization suite a static noise
//! analysis flow needs:
//!
//! * the non-linear load curve `I_DC = f(V_in, V_out)` of Eq. (1) —
//!   [`characterize::LoadCurve`];
//! * the linear holding resistance used by superposition baselines —
//!   [`characterize::holding_resistance`];
//! * Thevenin aggressor drivers (saturated ramp + resistance) —
//!   [`characterize::TheveninDriver`];
//! * propagated-noise tables — [`characterize::PropagatedNoiseTable`].
//!
//! ```
//! use sna_cells::prelude::*;
//!
//! # fn main() -> sna_spice::Result<()> {
//! let tech = Technology::cmos130();
//! let victim = Cell::nand2(tech, 1.0);
//! let mode = victim.holding_low_mode();
//! let opts = CharacterizeOptions { grid: 9, ..Default::default() };
//! let curve = characterize_load_curve(&victim, &mode, &opts)?;
//! // The restoring current saturates — the non-linearity the paper models.
//! assert!(curve.current(victim.tech.vdd, 0.4) > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cell;
pub mod characterize;
pub mod tech;

pub use cell::{Cell, CellPorts, CellType, DriverMode};
pub use tech::{MetalLayer, Technology};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::cell::{Cell, CellPorts, CellType, DriverMode};
    pub use crate::characterize::{
        characterize_load_curve, characterize_propagated_noise, characterize_propagated_noise_with,
        characterize_thevenin, characterize_thevenin_with, driver_fixture, driver_output_caps,
        holding_resistance, CharacterizeOptions, DriverFixture, LoadCurve, PropagatedNoiseTable,
        TheveninDriver, TheveninLoad,
    };
    pub use crate::tech::{MetalLayer, Technology};
}
