//! Pre-characterized propagated-noise tables.
//!
//! "The noise propagating from the input to the output of the victim driver
//! cell is usually obtained from pre-characterized tables as a function of
//! the input noise glitch area (or width) and height." (Forzan & Pandini,
//! §1.) This module builds exactly those tables — they power the
//! linear-superposition baseline whose inaccuracy the paper demonstrates.

use serde::{Deserialize, Serialize};
use sna_spice::devices::{SourceWaveform, Table2d};
use sna_spice::error::{Error, Result};
use sna_spice::netlist::Circuit;
use sna_spice::sweep::BatchedSweep;
use sna_spice::tran::TranParams;
use sna_spice::waveform::Waveform;

use crate::cell::{Cell, DriverMode};
use crate::characterize::{driver_fixture, CharacterizeOptions};

/// Propagated-noise characterization of one cell in one drive state:
/// output-glitch descriptors on an (input height × input width) grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropagatedNoiseTable {
    /// Output glitch peak magnitude (V) vs (height, width).
    pub peak: Table2d,
    /// Output glitch width at 50 % of peak (s).
    pub width50: Table2d,
    /// Output glitch area ∫|v|dt (V·s).
    pub area: Table2d,
    /// Input-peak → output-peak delay (s).
    pub delay: Table2d,
    /// Drive state characterized.
    pub mode: DriverMode,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Output load used during characterization (F).
    pub load_cap: f64,
    /// +1 if the output glitch rises from the quiescent level, −1 if it
    /// falls.
    pub output_polarity: f64,
}

impl PropagatedNoiseTable {
    /// Look up output glitch descriptors for an input glitch of magnitude
    /// `height` (V) and base `width` (s). Returns `(peak, width50, area,
    /// delay)`.
    pub fn lookup(&self, height: f64, width: f64) -> (f64, f64, f64, f64) {
        (
            self.peak.value(height, width).max(0.0),
            self.width50.value(height, width).max(0.0),
            self.area.value(height, width).max(0.0),
            self.delay.value(height, width),
        )
    }

    /// Reconstruct the propagated-noise waveform the table predicts for an
    /// input glitch `(height, width)` peaking at `t_peak_in`: a triangle
    /// with the looked-up peak, a base of twice the 50 % width, riding on
    /// `v_quiescent`, peaking at `t_peak_in + delay`.
    pub fn waveform(
        &self,
        height: f64,
        width: f64,
        t_peak_in: f64,
        v_quiescent: f64,
        horizon: f64,
    ) -> Waveform {
        let (peak, w50, _area, delay) = self.lookup(height, width);
        let t_peak = t_peak_in + delay;
        if peak <= 0.0 || w50 <= 0.0 {
            return Waveform::constant(0.0, horizon.max(1e-12), v_quiescent);
        }
        let half_base = w50; // triangle: width at 50% = base/2
        let t0 = (t_peak - half_base).max(0.0);
        let t1 = t_peak + half_base;
        let v_pk = v_quiescent + self.output_polarity * peak;
        let mut times = vec![0.0, t0, t_peak, t1, horizon.max(t1 + 1e-12)];
        let mut values = vec![v_quiescent, v_quiescent, v_pk, v_quiescent, v_quiescent];
        // Deduplicate non-increasing leading points (t0 could be 0).
        let mut ts = Vec::with_capacity(times.len());
        let mut vs = Vec::with_capacity(values.len());
        for (t, v) in times.drain(..).zip(values.drain(..)) {
            if ts.last().is_none_or(|&last| t > last) {
                ts.push(t);
                vs.push(v);
            }
        }
        Waveform::from_samples(ts, vs).expect("constructed monotone")
    }
}

/// Direction of the input glitch for a drive state: away from the noisy
/// input's quiescent level towards the opposite rail.
fn glitch_sign(mode: &DriverMode, vdd: f64) -> f64 {
    let q = mode.input_levels[mode.noisy_input];
    if q > 0.5 * vdd {
        -1.0
    } else {
        1.0
    }
}

/// Characterize the propagated noise of `cell` in `mode` driving
/// `load_cap`, over the `heights` × `widths` grid (heights in volts,
/// widths in seconds — triangular input glitches, rise = fall = width/2).
///
/// # Errors
///
/// Fails on empty/non-monotone grids or simulator errors.
pub fn characterize_propagated_noise(
    cell: &Cell,
    mode: &DriverMode,
    load_cap: f64,
    heights: &[f64],
    widths: &[f64],
) -> Result<PropagatedNoiseTable> {
    characterize_propagated_noise_with(
        cell,
        mode,
        load_cap,
        heights,
        widths,
        &CharacterizeOptions::default(),
    )
}

/// [`characterize_propagated_noise`] with explicit solver/backend controls
/// (`opts.newton.solver` picks the linear solver, `opts.backend` the
/// compute backend of the batched height sweep).
///
/// # Errors
///
/// Fails on empty/non-monotone grids or simulator errors.
pub fn characterize_propagated_noise_with(
    cell: &Cell,
    mode: &DriverMode,
    load_cap: f64,
    heights: &[f64],
    widths: &[f64],
    opts: &CharacterizeOptions,
) -> Result<PropagatedNoiseTable> {
    if heights.len() < 2 || widths.len() < 2 {
        return Err(Error::InvalidAnalysis(
            "propagated-noise grid needs >= 2 heights and widths".into(),
        ));
    }
    let vdd = cell.tech.vdd;
    let q_in = mode.input_levels[mode.noisy_input];
    let sign = glitch_sign(mode, vdd);
    let out_pol = if mode.output_level < 0.5 * vdd {
        1.0
    } else {
        -1.0
    };
    let mut fx = driver_fixture(cell, mode)?;
    fx.ckt
        .add_capacitor("Cload", fx.out, Circuit::gnd(), load_cap)?;
    let n_grid = heights.len() * widths.len();
    let mut peak = vec![0.0; n_grid];
    let mut width50 = vec![0.0; n_grid];
    let mut area = vec![0.0; n_grid];
    let mut delay = vec![0.0; n_grid];
    // All heights of one width column share the transient window, so they
    // run as one K-lane batched sweep: MNA assembly, the union pattern, and
    // the symbolic analysis are paid once for the whole grid, and each
    // column is a single batched transient over `heights.len()` lanes that
    // differ only in the glitch source waveform.
    let mut lanes: Vec<Circuit> = heights.iter().map(|_| fx.ckt.clone()).collect();
    let mut sweep = BatchedSweep::new(&lanes, opts.newton.solver, opts.backend)?;
    for (wi, &w) in widths.iter().enumerate() {
        let t_start = 50e-12;
        for (lane, &h) in lanes.iter_mut().zip(heights) {
            let glitch = SourceWaveform::TriangleGlitch {
                v_base: q_in,
                v_peak: q_in + sign * h,
                t_start,
                t_rise: 0.5 * w,
                t_fall: 0.5 * w,
            };
            lane.set_source_wave(&fx.noisy_source, glitch)?;
        }
        let horizon = t_start + 3.0 * w + 1.5e-9;
        let dt = (w / 200.0).clamp(0.25e-12, 2e-12);
        let mut params = TranParams::new(horizon, dt);
        params.newton = opts.newton;
        params.solver = opts.newton.solver;
        let results = sweep.transient(&lanes, &params)?;
        for (hi, res) in results.iter().enumerate() {
            let wave = res.node_waveform(fx.out);
            let m = wave.glitch_metrics(mode.output_level);
            let idx = hi * widths.len() + wi;
            peak[idx] = m.peak;
            width50[idx] = m.width;
            area[idx] = m.area;
            let t_peak_in = t_start + 0.5 * w;
            delay[idx] = m.peak_time - t_peak_in;
        }
    }
    Ok(PropagatedNoiseTable {
        peak: Table2d::new(heights.to_vec(), widths.to_vec(), peak)?,
        width50: Table2d::new(heights.to_vec(), widths.to_vec(), width50)?,
        area: Table2d::new(heights.to_vec(), widths.to_vec(), area)?,
        delay: Table2d::new(heights.to_vec(), widths.to_vec(), delay)?,
        mode: mode.clone(),
        vdd,
        load_cap,
        output_polarity: out_pol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::tech::Technology;
    use sna_spice::units::{FF, PS};

    fn nand2_table() -> PropagatedNoiseTable {
        let t = Technology::cmos130();
        let cell = Cell::nand2(t.clone(), 1.0);
        let mode = cell.holding_low_mode();
        characterize_propagated_noise(
            &cell,
            &mode,
            20.0 * FF,
            &[0.3 * t.vdd, 0.6 * t.vdd, 0.9 * t.vdd],
            &[200.0 * PS, 500.0 * PS, 1000.0 * PS],
        )
        .unwrap()
    }

    #[test]
    fn bigger_input_glitch_bigger_output() {
        let tbl = nand2_table();
        let (p_small, ..) = tbl.lookup(0.36, 500.0 * PS);
        let (p_big, ..) = tbl.lookup(1.05, 500.0 * PS);
        assert!(p_big > p_small + 0.01, "p_small={p_small} p_big={p_big}");
        // Output glitch on a low-held NAND2 rises.
        assert_eq!(tbl.output_polarity, 1.0);
    }

    #[test]
    fn subthreshold_glitch_barely_propagates() {
        let tbl = nand2_table();
        // A 0.36 V dip from Vdd=1.2 leaves Vin=0.84 > Vdd-|Vtp|: PMOS stays
        // off and only weak coupling reaches the output.
        let (p, ..) = tbl.lookup(0.36, 500.0 * PS);
        assert!(p < 0.12, "peak={p}");
    }

    #[test]
    fn wider_glitch_more_area() {
        let tbl = nand2_table();
        let (_, _, a_narrow, _) = tbl.lookup(0.9, 220.0 * PS);
        let (_, _, a_wide, _) = tbl.lookup(0.9, 950.0 * PS);
        assert!(a_wide > a_narrow, "a_narrow={a_narrow} a_wide={a_wide}");
    }

    #[test]
    fn reconstructed_waveform_metrics_match_lookup() {
        let tbl = nand2_table();
        let (pk, w50, _, _) = tbl.lookup(0.9, 500.0 * PS);
        let w = tbl.waveform(0.9, 500.0 * PS, 1e-9, 0.0, 5e-9);
        let m = w.glitch_metrics(0.0);
        assert!((m.peak - pk).abs() < 1e-9);
        assert!((m.width - w50).abs() / w50 < 0.05);
    }

    #[test]
    fn grid_validation() {
        let t = Technology::cmos130();
        let cell = Cell::nand2(t, 1.0);
        let mode = cell.holding_low_mode();
        assert!(
            characterize_propagated_noise(&cell, &mode, 1e-15, &[0.5], &[1e-10, 2e-10]).is_err()
        );
    }
}
