//! Cell pre-characterization.
//!
//! Everything a static-noise-analysis flow extracts from a cell library
//! before analyzing a design:
//!
//! * [`load_curve`] — the paper's Eq. (1): `I_DC = f(V_in, V_out)` by DC
//!   sweeps (the non-linear victim-driver macromodel).
//! * [`holding`] — small-signal holding resistance at the quiescent point
//!   (the *linear* victim model the superposition baseline uses).
//! * [`thevenin`] — saturated-ramp + resistance aggressor-driver model
//!   (Dartu–Pileggi style two-load fit).
//! * [`prop_table`] — pre-characterized propagated-noise tables: output
//!   glitch (peak, width, area, delay) vs. input glitch (height, width).

pub mod holding;
pub mod load_curve;
pub mod prop_table;
pub mod thevenin;

pub use holding::holding_resistance;
pub use load_curve::{characterize_load_curve, LoadCurve};
pub use prop_table::{
    characterize_propagated_noise, characterize_propagated_noise_with, PropagatedNoiseTable,
};
pub use thevenin::{
    characterize_thevenin, characterize_thevenin_with, TheveninDriver, TheveninLoad,
};

use serde::{Deserialize, Serialize};
use sna_spice::backend::BackendKind;
use sna_spice::dc::NewtonOptions;
use sna_spice::devices::SourceWaveform;
use sna_spice::error::Result;
use sna_spice::netlist::{Circuit, Element, NodeId};

use crate::cell::{Cell, DriverMode};

/// Controls for all characterization runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharacterizeOptions {
    /// Grid points per axis of the load-curve table (paper: "swept across
    /// the characterization range").
    pub grid: usize,
    /// Lower characterization bound as a fraction of Vdd (default −0.3).
    pub v_min_frac: f64,
    /// Upper bound as a fraction of Vdd (default 1.3).
    pub v_max_frac: f64,
    /// Newton controls for the underlying analyses (including the linear
    /// solver selection, `newton.solver`).
    pub newton: NewtonOptions,
    /// Compute backend for the K-lane batched sweeps the grid/height scans
    /// run on (bit-identical results across backends).
    pub backend: BackendKind,
}

impl Default for CharacterizeOptions {
    fn default() -> Self {
        Self {
            grid: 33,
            v_min_frac: -0.3,
            v_max_frac: 1.3,
            newton: NewtonOptions::default(),
            backend: BackendKind::default(),
        }
    }
}

/// A victim-driver test fixture: the cell instantiated with DC sources on
/// every input (per the [`DriverMode`]) and a supply source.
#[derive(Debug, Clone)]
pub struct DriverFixture {
    /// The assembled circuit.
    pub ckt: Circuit,
    /// Name of the source driving the noisy input (retune to inject a
    /// glitch waveform).
    pub noisy_source: String,
    /// The noisy input node.
    pub noisy_in: NodeId,
    /// The driver output node.
    pub out: NodeId,
    /// The supply node.
    pub vdd: NodeId,
}

/// Build a [`DriverFixture`] for `cell` in `mode`.
///
/// # Errors
///
/// Propagates instantiation failures (input-count mismatch).
pub fn driver_fixture(cell: &Cell, mode: &DriverMode) -> Result<DriverFixture> {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.add_vsource(
        "Vdd",
        vdd,
        Circuit::gnd(),
        SourceWaveform::Dc(cell.tech.vdd),
    );
    let inputs: Vec<NodeId> = (0..cell.input_count())
        .map(|i| ckt.node(&format!("in{i}")))
        .collect();
    let mut noisy_source = String::new();
    for (i, (&node, &level)) in inputs.iter().zip(&mode.input_levels).enumerate() {
        let name = format!("Vin{i}");
        ckt.add_vsource(&name, node, Circuit::gnd(), SourceWaveform::Dc(level));
        if i == mode.noisy_input {
            noisy_source = name;
        }
    }
    let out = ckt.node("out");
    cell.instantiate(&mut ckt, "dut", &inputs, out, vdd)?;
    Ok(DriverFixture {
        ckt,
        noisy_source,
        noisy_in: inputs[mode.noisy_input],
        out,
        vdd,
    })
}

/// Lumped capacitances of the driver as seen by a noise macromodel:
/// `(c_out, c_miller)` where `c_out` collects every device capacitance from
/// the output node to an AC-ground (supply, ground, internal nodes) and
/// `c_miller` is the direct input→output coupling (gate-drain overlap of the
/// input devices), in farads.
///
/// Dropping `c_out` from the cluster macromodel is the classic source of
/// optimistic noise numbers; DESIGN.md lists it as ablation #4.
pub fn driver_output_caps(fixture: &DriverFixture) -> (f64, f64) {
    let mut c_out = 0.0;
    let mut c_miller = 0.0;
    for e in fixture.ckt.elements() {
        if let Element::Capacitor { a, b, farads, .. } = e {
            let touches_out = *a == fixture.out || *b == fixture.out;
            if !touches_out {
                continue;
            }
            let other = if *a == fixture.out { *b } else { *a };
            if other == fixture.noisy_in {
                c_miller += farads;
            } else {
                c_out += farads;
            }
        }
    }
    (c_out, c_miller)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::tech::Technology;
    use sna_spice::dc::dc_operating_point;

    #[test]
    fn fixture_reaches_quiescent_state() {
        let t = Technology::cmos130();
        let cell = Cell::nand2(t, 1.0);
        let mode = cell.holding_low_mode();
        let fx = driver_fixture(&cell, &mode).unwrap();
        let sol = dc_operating_point(&fx.ckt, &NewtonOptions::default(), None).unwrap();
        assert!(sol.voltage(fx.out) < 0.03);
        let mode = cell.holding_high_mode();
        let fx = driver_fixture(&cell, &mode).unwrap();
        let sol = dc_operating_point(&fx.ckt, &NewtonOptions::default(), None).unwrap();
        assert!(sol.voltage(fx.out) > cell.tech.vdd - 0.03);
    }

    #[test]
    fn output_caps_positive() {
        let t = Technology::cmos130();
        let cell = Cell::nand2(t, 1.0);
        let fx = driver_fixture(&cell, &cell.holding_low_mode()).unwrap();
        let (c_out, c_miller) = driver_output_caps(&fx);
        assert!(c_out > 0.1e-15, "c_out={c_out}");
        assert!(c_miller > 0.01e-15, "c_miller={c_miller}");
        assert!(c_out < 100e-15);
    }

    #[test]
    fn noisy_source_is_retunable() {
        let t = Technology::cmos130();
        let cell = Cell::inv(t, 1.0);
        let mode = cell.holding_low_mode();
        let mut fx = driver_fixture(&cell, &mode).unwrap();
        fx.ckt
            .set_source_wave(&fx.noisy_source, SourceWaveform::Dc(0.0))
            .unwrap();
    }
}
