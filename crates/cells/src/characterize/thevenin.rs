//! Thevenin-equivalent aggressor-driver characterization.
//!
//! Aggressor drivers in the cluster macromodel are linear Thevenin
//! equivalents — a saturated-ramp EMF `V_TH` behind a driving resistance
//! `R_TH` — "obtained as in [7]" (Dartu & Pileggi, DAC'97). Two points of
//! that reference matter for accuracy:
//!
//! * the fit must be performed against the driver's **actual load** — for
//!   a resistively-shielded net that is a Π model of the driving-point
//!   admittance, not the total lumped capacitance ([`TheveninLoad::Pi`]);
//!   a lumped fit underestimates the early edge rate at the driving point
//!   and with it the injected noise peak by ~10 %;
//! * the parameters are chosen to reproduce the **waveform**, not just two
//!   scalar delays: after seeding `R_TH` from a two-load delay fit, ramp
//!   time and resistance are refined by coordinate descent on the L2
//!   waveform error of the replayed Thevenin response.

use serde::{Deserialize, Serialize};
use sna_spice::dc::NewtonOptions;
use sna_spice::devices::SourceWaveform;
use sna_spice::error::{Error, Result};
use sna_spice::netlist::{Circuit, NodeId};
use sna_spice::tran::{transient, TranParams};
use sna_spice::waveform::Waveform;

use crate::cell::Cell;
use crate::characterize::CharacterizeOptions;

/// Load presented to the driver during characterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TheveninLoad {
    /// Single capacitor to ground (F).
    Lumped(f64),
    /// O'Brien–Savarino Π: near cap, series resistance, far cap — the
    /// reduced driving-point admittance of the real net.
    Pi {
        /// Capacitance at the driving point (F).
        c_near: f64,
        /// Series resistance (Ω).
        r: f64,
        /// Capacitance behind the resistance (F).
        c_far: f64,
    },
}

impl TheveninLoad {
    /// Total (low-frequency) capacitance of the load.
    pub fn total_cap(&self) -> f64 {
        match self {
            TheveninLoad::Lumped(c) => *c,
            TheveninLoad::Pi { c_near, c_far, .. } => c_near + c_far,
        }
    }

    /// Attach the load to `node` inside `ckt`.
    fn attach(&self, ckt: &mut Circuit, node: NodeId) -> Result<()> {
        match self {
            TheveninLoad::Lumped(c) => {
                ckt.add_capacitor("Cload", node, Circuit::gnd(), *c)?;
            }
            TheveninLoad::Pi { c_near, r, c_far } => {
                if *c_near > 0.0 {
                    ckt.add_capacitor("Cload1", node, Circuit::gnd(), *c_near)?;
                }
                if *r > 0.0 && *c_far > 0.0 {
                    let far = ckt.node("loadfar");
                    ckt.add_resistor("Rload", node, far, *r)?;
                    ckt.add_capacitor("Cload2", far, Circuit::gnd(), *c_far)?;
                } else if *c_far > 0.0 {
                    ckt.add_capacitor("Cload2", node, Circuit::gnd(), *c_far)?;
                }
            }
        }
        Ok(())
    }
}

/// Linear Thevenin model of a switching aggressor driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TheveninDriver {
    /// Driving resistance (Ω).
    pub rth: f64,
    /// Saturated-ramp EMF.
    pub wave: SourceWaveform,
    /// Whether the output transition is rising.
    pub rising: bool,
    /// Supply voltage (V).
    pub vdd: f64,
}

impl TheveninDriver {
    /// Shift the switching event in time (worst-case alignment search).
    pub fn shifted(&self, delta: f64) -> TheveninDriver {
        TheveninDriver {
            rth: self.rth,
            wave: self.wave.shifted(delta),
            rising: self.rising,
            vdd: self.vdd,
        }
    }

    /// Time of the 50 % point of the EMF ramp.
    pub fn t50(&self) -> f64 {
        match &self.wave {
            SourceWaveform::Ramp {
                t_start, t_rise, ..
            } => t_start + 0.5 * t_rise,
            other => other.last_event_time() * 0.5,
        }
    }
}

/// Crossing time of `w` through `level` (first crossing in the transition
/// direction), linearly interpolated.
fn crossing_time(w: &Waveform, level: f64, rising: bool) -> Option<f64> {
    let ts = w.times();
    let vs = w.values();
    for k in 1..ts.len() {
        let (a, b) = (vs[k - 1], vs[k]);
        let hit = if rising {
            a < level && b >= level
        } else {
            a > level && b <= level
        };
        if hit {
            let f = (level - a) / (b - a);
            return Some(ts[k - 1] + f * (ts[k] - ts[k - 1]));
        }
    }
    None
}

/// Input-ramp onset used inside characterization runs; fitted EMF times are
/// reported relative to this instant.
const T_INPUT_ONSET: f64 = 200e-12;

/// Simulate the transistor driver into `load`, returning the driving-point
/// waveform.
fn simulate_driver(
    cell: &Cell,
    rising: bool,
    input_slew: f64,
    load: &TheveninLoad,
    newton: &NewtonOptions,
) -> Result<Waveform> {
    let vdd_v = cell.tech.vdd;
    // For an inverting cell the input falls to make the output rise.
    let input_rising = rising ^ cell.is_inverting();
    let (v0, v1) = if input_rising {
        (0.0, vdd_v)
    } else {
        (vdd_v, 0.0)
    };
    let t_start = T_INPUT_ONSET;
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.add_vsource("Vdd", vdd, Circuit::gnd(), SourceWaveform::Dc(vdd_v));
    let inp = ckt.node("in");
    ckt.add_vsource(
        "Vin",
        inp,
        Circuit::gnd(),
        SourceWaveform::Ramp {
            v0,
            v1,
            t_start,
            t_rise: input_slew,
        },
    );
    let out = ckt.node("out");
    // All inputs switch together (the worst-case aggressor event).
    let inputs = vec![inp; cell.input_count()];
    cell.instantiate(&mut ckt, "drv", &inputs, out, vdd)?;
    load.attach(&mut ckt, out)?;
    let horizon = t_start + input_slew + 4e-9;
    let mut params = TranParams::new(horizon, 1e-12);
    params.newton = *newton;
    params.solver = newton.solver;
    let res = transient(&ckt, &params)?;
    Ok(res.node_waveform(out))
}

/// Characterize a Thevenin driver for `cell` making a `rising`/falling
/// output transition with the given input slew, fitted against `load`
/// (pass the Π of the real net for shielded interconnect).
///
/// The returned EMF's time axis is **relative to the aggressor's input-ramp
/// onset** (`t = 0` = the instant the input starts moving); shift it by the
/// cluster's switching time with [`TheveninDriver::shifted`].
///
/// # Errors
///
/// Fails if the simulated output never completes its transition (load too
/// large for the horizon) or on simulator errors.
pub fn characterize_thevenin(
    cell: &Cell,
    rising: bool,
    input_slew: f64,
    load: &TheveninLoad,
) -> Result<TheveninDriver> {
    characterize_thevenin_with(
        cell,
        rising,
        input_slew,
        load,
        &CharacterizeOptions::default(),
    )
}

/// [`characterize_thevenin`] with explicit solver controls
/// (`opts.newton.solver` picks the linear solver for every fit transient).
///
/// # Errors
///
/// As [`characterize_thevenin`].
pub fn characterize_thevenin_with(
    cell: &Cell,
    rising: bool,
    input_slew: f64,
    load: &TheveninLoad,
    opts: &CharacterizeOptions,
) -> Result<TheveninDriver> {
    let newton = &opts.newton;
    let vdd = cell.tech.vdd;
    let half = 0.5 * vdd;
    // Reference: the driver's DP waveform on the real (Π) load.
    let w_ref = simulate_driver(cell, rising, input_slew, load, newton)?;
    let t50_ref = crossing_time(&w_ref, half, rising)
        .ok_or_else(|| Error::InvalidAnalysis("driver output never crossed 50%".into()))?;
    let (lo_lvl, hi_lvl) = (0.2 * vdd, 0.8 * vdd);
    let (ta, tb) = if rising {
        (
            crossing_time(&w_ref, lo_lvl, true),
            crossing_time(&w_ref, hi_lvl, true),
        )
    } else {
        (
            crossing_time(&w_ref, hi_lvl, false),
            crossing_time(&w_ref, lo_lvl, false),
        )
    };
    let slew_2080 = match (ta, tb) {
        (Some(a), Some(b)) if b > a => b - a,
        _ => {
            return Err(Error::InvalidAnalysis(
                "driver output slew not measurable".into(),
            ))
        }
    };
    // R_TH seed from a classic two-lumped-load delay fit.
    let c1 = load.total_cap().max(1e-15);
    let c2 = 2.0 * c1 + 5e-15;
    let w_l1 = simulate_driver(cell, rising, input_slew, &TheveninLoad::Lumped(c1), newton)?;
    let w_l2 = simulate_driver(cell, rising, input_slew, &TheveninLoad::Lumped(c2), newton)?;
    let t50_l1 = crossing_time(&w_l1, half, rising)
        .ok_or_else(|| Error::InvalidAnalysis("driver output never crossed 50%".into()))?;
    let t50_l2 = crossing_time(&w_l2, half, rising).ok_or_else(|| {
        Error::InvalidAnalysis("driver output never crossed 50% (heavy load)".into())
    })?;
    let rth_seed = ((t50_l2 - t50_l1) / ((c2 - c1) * std::f64::consts::LN_2)).max(1.0);
    let t_rise_seed = (slew_2080 / 0.6).max(2e-12);
    let (v0, v1) = if rising { (0.0, vdd) } else { (vdd, 0.0) };
    // Replay a (rth, t_rise) candidate on the SAME load. The replay circuit
    // is LTI, so one simulation suffices: the response to a shifted ramp is
    // the shifted response, and 50 %-crossing alignment is arithmetic.
    const T_REPLAY_ONSET: f64 = 100e-12;
    let replay = |rth: f64, t_rise: f64| -> Result<(f64, f64)> {
        let mut ckt = Circuit::new();
        let e = ckt.node("emf");
        let o = ckt.node("out");
        ckt.add_vsource(
            "Vth",
            e,
            Circuit::gnd(),
            SourceWaveform::Ramp {
                v0,
                v1,
                t_start: T_REPLAY_ONSET,
                t_rise,
            },
        );
        ckt.add_resistor("Rth", e, o, rth)?;
        load.attach(&mut ckt, o)?;
        let horizon = T_REPLAY_ONSET + t_rise + 12.0 * rth * load.total_cap() + 2e-9;
        let mut params = TranParams::new(horizon, 1e-12);
        params.newton = *newton;
        params.solver = newton.solver;
        let res = transient(&ckt, &params)?;
        let wfit = res.node_waveform(o);
        let t50_fit = crossing_time(&wfit, half, rising)
            .ok_or_else(|| Error::InvalidAnalysis("thevenin fit never crossed 50%".into()))?;
        // Shift the replayed response so its 50% crossing lands on the
        // reference's, then score the L2 error over the transition window.
        let shift = t50_ref - t50_fit;
        let lo_t = t50_ref - 2.0 * slew_2080;
        let hi_t = t50_ref + 3.0 * slew_2080;
        let n = 160;
        let mut acc = 0.0;
        for i in 0..n {
            let t = lo_t + (hi_t - lo_t) * i as f64 / (n - 1) as f64;
            let d = wfit.value_at(t - shift) - w_ref.value_at(t);
            acc += d * d;
        }
        let err = (acc / n as f64).sqrt();
        Ok((err, T_REPLAY_ONSET + shift))
    };
    // Coordinate descent: t_rise, then rth, then t_rise again.
    let golden_min =
        |f: &mut dyn FnMut(f64) -> Result<f64>, mut a: f64, mut b: f64| -> Result<f64> {
            let phi = 0.618_033_988_749_895;
            let mut x1 = b - phi * (b - a);
            let mut x2 = a + phi * (b - a);
            let mut f1 = f(x1)?;
            let mut f2 = f(x2)?;
            for _ in 0..10 {
                if f1 < f2 {
                    b = x2;
                    x2 = x1;
                    f2 = f1;
                    x1 = b - phi * (b - a);
                    f1 = f(x1)?;
                } else {
                    a = x1;
                    x1 = x2;
                    f1 = f2;
                    x2 = a + phi * (b - a);
                    f2 = f(x2)?;
                }
            }
            Ok(if f1 < f2 { x1 } else { x2 })
        };
    let mut rth = rth_seed;
    let mut t_rise = golden_min(
        &mut |x| replay(rth, x).map(|r| r.0),
        0.25 * t_rise_seed,
        2.0 * t_rise_seed,
    )?;
    rth = golden_min(
        &mut |x| replay(x, t_rise).map(|r| r.0),
        0.35 * rth_seed,
        2.0 * rth_seed,
    )?;
    t_rise = golden_min(
        &mut |x| replay(rth, x).map(|r| r.0),
        0.25 * t_rise_seed,
        2.0 * t_rise_seed,
    )?;
    let (_, fit_t_start) = replay(rth, t_rise)?;
    Ok(TheveninDriver {
        rth,
        wave: SourceWaveform::Ramp {
            v0,
            v1,
            // Report times relative to the input-ramp onset so cluster
            // builders can schedule the switching event freely.
            t_start: fit_t_start - T_INPUT_ONSET,
            t_rise,
        },
        rising,
        vdd,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::tech::Technology;
    use sna_spice::units::{FF, PS};

    #[test]
    fn thevenin_fit_matches_transistor_driver() {
        let t = Technology::cmos130();
        let cell = Cell::inv(t.clone(), 4.0);
        let load = TheveninLoad::Lumped(60.0 * FF);
        let th = characterize_thevenin(&cell, true, 50.0 * PS, &load).unwrap();
        assert!(th.rth > 20.0 && th.rth < 5e3, "rth={}", th.rth);
        // Replay both models into the same load and compare waveforms.
        let gold =
            simulate_driver(&cell, true, 50.0 * PS, &load, &NewtonOptions::default()).unwrap();
        let mut ckt = Circuit::new();
        let e = ckt.node("emf");
        let o = ckt.node("out");
        // EMF times are relative to the input onset; the characterization
        // fixture starts its ramp at T_INPUT_ONSET.
        ckt.add_vsource("Vth", e, Circuit::gnd(), th.wave.shifted(T_INPUT_ONSET));
        ckt.add_resistor("Rth", e, o, th.rth).unwrap();
        ckt.add_capacitor("Cl", o, Circuit::gnd(), 60.0 * FF)
            .unwrap();
        let res = transient(&ckt, &TranParams::new(4e-9, 1e-12)).unwrap();
        let fit = res.node_waveform(o);
        // 50% crossings aligned within a couple ps.
        let tg = crossing_time(&gold, 0.6, true).unwrap();
        let tf = crossing_time(&fit, 0.6, true).unwrap();
        assert!((tg - tf).abs() < 5.0 * PS, "tg={tg:e} tf={tf:e}");
        // Waveform L-inf error over the transition modest.
        let err = gold.max_abs_difference(&fit);
        assert!(err < 0.12, "waveform error {err} V");
    }

    #[test]
    fn falling_transition_fits_too() {
        let t = Technology::cmos130();
        let cell = Cell::inv(t, 2.0);
        let th = characterize_thevenin(&cell, false, 80.0 * PS, &TheveninLoad::Lumped(30.0 * FF))
            .unwrap();
        assert!(!th.rising);
        match th.wave {
            SourceWaveform::Ramp { v0, v1, .. } => {
                assert!(v0 > v1, "falling ramp should go down");
            }
            _ => panic!("expected ramp"),
        }
    }

    #[test]
    fn stronger_driver_lower_rth() {
        let t = Technology::cmos130();
        let c1 = Cell::inv(t.clone(), 1.0);
        let c4 = Cell::inv(t, 4.0);
        let th1 =
            characterize_thevenin(&c1, true, 50.0 * PS, &TheveninLoad::Lumped(40.0 * FF)).unwrap();
        let th4 =
            characterize_thevenin(&c4, true, 50.0 * PS, &TheveninLoad::Lumped(40.0 * FF)).unwrap();
        assert!(th4.rth < th1.rth, "rth1={} rth4={}", th1.rth, th4.rth);
    }

    #[test]
    fn pi_load_fit_differs_from_lumped() {
        // On a strongly shielded net the Π-fitted Thevenin must produce a
        // faster driving-point edge than the lumped fit (less effective
        // capacitance early in the transition).
        let t = Technology::cmos130();
        let cell = Cell::inv(t, 2.0);
        let pi = TheveninLoad::Pi {
            c_near: 25.0 * FF,
            r: 150.0,
            c_far: 40.0 * FF,
        };
        let lumped = TheveninLoad::Lumped(65.0 * FF);
        let th_pi = characterize_thevenin(&cell, true, 60.0 * PS, &pi).unwrap();
        let th_lump = characterize_thevenin(&cell, true, 60.0 * PS, &lumped).unwrap();
        // The Π fit sees a faster DP transition.
        let ramp_rate = |th: &TheveninDriver| match th.wave {
            SourceWaveform::Ramp { t_rise, .. } => th.vdd / t_rise,
            _ => panic!("expected ramp"),
        };
        assert!(
            ramp_rate(&th_pi) > ramp_rate(&th_lump),
            "pi rate {:.3e} <= lumped rate {:.3e}",
            ramp_rate(&th_pi),
            ramp_rate(&th_lump)
        );
    }

    #[test]
    fn shifted_moves_t50() {
        let t = Technology::cmos130();
        let cell = Cell::inv(t, 2.0);
        let th = characterize_thevenin(&cell, true, 50.0 * PS, &TheveninLoad::Lumped(20.0 * FF))
            .unwrap();
        let sh = th.shifted(100.0 * PS);
        assert!((sh.t50() - th.t50() - 100.0 * PS).abs() < 1e-15);
    }

    #[test]
    fn load_total_cap() {
        assert_eq!(TheveninLoad::Lumped(5e-15).total_cap(), 5e-15);
        let pi = TheveninLoad::Pi {
            c_near: 2e-15,
            r: 100.0,
            c_far: 3e-15,
        };
        assert_eq!(pi.total_cap(), 5e-15);
    }
}
