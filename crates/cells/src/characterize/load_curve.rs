//! Characterization of the paper's Eq. (1): `I_DC = f(V_in, V_out)`.
//!
//! "...obtained during a pre-characterization step, by performing a simple
//! DC analysis, where Vin and Vout are swept across the characterization
//! range corresponding to the typical voltage swing of the given
//! technology." (Forzan & Pandini, §2.)
//!
//! The resulting [`LoadCurve`] *is* the victim-driver macromodel: dropped
//! into a cluster circuit as a table-driven VCCS it reproduces the cell's
//! full non-linear restoring behavior, which the linear holding-resistance
//! model cannot.

use serde::{Deserialize, Serialize};
use sna_spice::devices::{linspace, SourceWaveform, Table2d};
use sna_spice::error::{Error, Result};
use sna_spice::netlist::Circuit;
use sna_spice::sweep::BatchedSweep;

use crate::cell::{Cell, DriverMode};
use crate::characterize::{driver_fixture, driver_output_caps, CharacterizeOptions};

/// The characterized non-linear victim-driver model (paper Eq. 1) plus the
/// lumped parasitics the cluster macromodel needs alongside it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadCurve {
    /// `I_DC = f(V_in, V_out)`: current the cell sinks *from* its output
    /// node (A), on a `(V_in, V_out)` grid.
    pub table: Table2d,
    /// The drive state this was characterized in.
    pub mode: DriverMode,
    /// Supply voltage used (V).
    pub vdd: f64,
    /// Lumped output capacitance of the driver (F).
    pub c_out: f64,
    /// Direct input→output (Miller) coupling capacitance (F).
    pub c_miller: f64,
}

impl LoadCurve {
    /// Restoring current at `(v_in, v_out)` (A, positive = cell sinks
    /// current from the output node).
    pub fn current(&self, v_in: f64, v_out: f64) -> f64 {
        self.table.value(v_in, v_out)
    }

    /// Small-signal output conductance ∂I/∂V_out at a point (S). The
    /// holding resistance the superposition baseline uses is
    /// `1 / conductance` at the quiescent point.
    pub fn conductance(&self, v_in: f64, v_out: f64) -> f64 {
        self.table.eval(v_in, v_out).dz_dy
    }
}

/// Characterize `cell` in `mode` on an `opts.grid`² DC grid.
///
/// # Errors
///
/// Propagates DC convergence failures and table-construction errors.
pub fn characterize_load_curve(
    cell: &Cell,
    mode: &DriverMode,
    opts: &CharacterizeOptions,
) -> Result<LoadCurve> {
    if opts.grid < 2 {
        return Err(Error::InvalidAnalysis(
            "load-curve grid needs at least 2 points per axis".into(),
        ));
    }
    let vdd = cell.tech.vdd;
    let lo = opts.v_min_frac * vdd;
    let hi = opts.v_max_frac * vdd;
    let vin_axis = linspace(lo, hi, opts.grid);
    let vout_axis = linspace(lo, hi, opts.grid);

    let mut fx = driver_fixture(cell, mode)?;
    let (c_out, c_miller) = driver_output_caps(&fx);
    // Clamp the output with a source so its branch current measures I_DC.
    fx.ckt
        .add_vsource("Vout", fx.out, Circuit::gnd(), SourceWaveform::Dc(0.0));

    // One lane per V_out sample: the lanes differ only in the clamp's DC
    // level (a source waveform), so a whole table row is a single K-lane
    // batched DC solve sharing one symbolic analysis, warm-started from
    // the previous row's operating points.
    let mut lanes: Vec<Circuit> = vout_axis
        .iter()
        .map(|&vout| {
            let mut ckt = fx.ckt.clone();
            ckt.set_source_wave("Vout", SourceWaveform::Dc(vout))?;
            Ok(ckt)
        })
        .collect::<Result<_>>()?;
    let mut sweep = BatchedSweep::new(&lanes, opts.newton.solver, opts.backend)?;

    let mut values = Vec::with_capacity(vin_axis.len() * vout_axis.len());
    let mut warm: Option<Vec<Vec<f64>>> = None;
    for &vin in &vin_axis {
        for lane in &mut lanes {
            lane.set_source_wave(&fx.noisy_source, SourceWaveform::Dc(vin))?;
        }
        let sols = sweep.dc_operating_points(&lanes, &opts.newton, warm.as_deref())?;
        for sol in &sols {
            // The clamp supplies what the cell sinks: I_DC = -I(Vout).
            let i_br = sol.vsource_current("Vout").expect("Vout exists");
            values.push(-i_br);
        }
        warm = Some(sols.iter().map(|s| s.unknowns().to_vec()).collect());
    }
    Ok(LoadCurve {
        table: Table2d::new(vin_axis, vout_axis, values)?,
        mode: mode.clone(),
        vdd,
        c_out,
        c_miller,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::tech::Technology;

    fn small_opts() -> CharacterizeOptions {
        CharacterizeOptions {
            grid: 9,
            ..Default::default()
        }
    }

    #[test]
    fn nand2_holding_low_curve_shape() {
        let t = Technology::cmos130();
        let cell = Cell::nand2(t.clone(), 1.0);
        let mode = cell.holding_low_mode();
        let lc = characterize_load_curve(&cell, &mode, &small_opts()).unwrap();
        // At the quiescent point (vin=vdd, vout=0) the net current is small.
        // (The 9-point test grid does not place a sample exactly at vout=0,
        // so bilinear interpolation leaves a few-uA residual; the default
        // 33-point grid has an exact sample there.)
        let i_q = lc.current(t.vdd, 0.0);
        assert!(i_q.abs() < 2e-5, "quiescent current {i_q}");
        // Lifting the output produces restoring (positive, sinking) current.
        let i_mid = lc.current(t.vdd, 0.4);
        assert!(i_mid > 1e-5, "restoring current {i_mid}");
        // The restoring current SATURATES: going from 0.4 V to 0.9 V gains
        // far less than linearly — this is the non-linearity the paper is
        // about.
        let i_high = lc.current(t.vdd, 0.9);
        let linear_extrapolation = i_mid * 0.9 / 0.4;
        assert!(
            i_high < 0.75 * linear_extrapolation,
            "no saturation: i(0.4)={i_mid}, i(0.9)={i_high}, lin={linear_extrapolation}"
        );
        // Dropping the input towards ground weakens the pulldown.
        let i_weak = lc.current(0.3 * t.vdd, 0.4);
        assert!(i_weak < i_mid, "input glitch must weaken holding");
    }

    #[test]
    fn inv_holding_high_curve_shape() {
        let t = Technology::cmos130();
        let cell = Cell::inv(t.clone(), 1.0);
        let mode = cell.holding_high_mode();
        let lc = characterize_load_curve(&cell, &mode, &small_opts()).unwrap();
        // Quiescent: vin=0, vout=vdd, current ~ 0 (coarse-grid tolerance).
        assert!(lc.current(0.0, t.vdd).abs() < 2e-5);
        // Pulling output below vdd: PMOS *sources* current into the node,
        // i.e. the sink current is negative.
        let i = lc.current(0.0, 0.7 * t.vdd);
        assert!(i < -1e-5, "restoring current {i}");
    }

    #[test]
    fn conductance_at_quiescent_matches_direction() {
        let t = Technology::cmos130();
        let cell = Cell::nand2(t.clone(), 1.0);
        let mode = cell.holding_low_mode();
        let lc = characterize_load_curve(&cell, &mode, &small_opts()).unwrap();
        let g = lc.conductance(t.vdd, 0.0);
        assert!(g > 1e-5, "holding conductance {g}");
        let r_hold = 1.0 / g;
        assert!(r_hold > 100.0 && r_hold < 100e3, "r_hold={r_hold}");
    }

    #[test]
    fn parasitics_recorded() {
        let t = Technology::cmos130();
        let cell = Cell::nand2(t, 1.0);
        let mode = cell.holding_low_mode();
        let lc = characterize_load_curve(&cell, &mode, &small_opts()).unwrap();
        assert!(lc.c_out > 0.0);
        assert!(lc.c_miller > 0.0);
    }

    #[test]
    fn grid_too_small_rejected() {
        let t = Technology::cmos130();
        let cell = Cell::inv(t, 1.0);
        let mode = cell.holding_low_mode();
        let opts = CharacterizeOptions {
            grid: 1,
            ..Default::default()
        };
        assert!(characterize_load_curve(&cell, &mode, &opts).is_err());
    }
}
