//! Holding-resistance extraction.
//!
//! The linear victim-driver model of classical noise analysis: the
//! small-signal resistance the (on) output network presents at the
//! quiescent point. Superposition-based flows replace the whole cell with
//! this one number — accurate only for vanishingly small glitches, which is
//! exactly the failure mode the paper quantifies.

use sna_spice::dc::{dc_input_conductance, NewtonOptions};
use sna_spice::error::Result;

use crate::cell::{Cell, DriverMode};
use crate::characterize::driver_fixture;

/// Extract the holding resistance (Ω) of `cell` in `mode` by small-signal
/// probing of the output at the DC operating point.
///
/// # Errors
///
/// Propagates DC convergence failures.
pub fn holding_resistance(cell: &Cell, mode: &DriverMode, newton: &NewtonOptions) -> Result<f64> {
    let fx = driver_fixture(cell, mode)?;
    let g = dc_input_conductance(&fx.ckt, fx.out, newton)?;
    Ok(1.0 / g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::characterize::{characterize_load_curve, CharacterizeOptions};
    use crate::tech::Technology;

    #[test]
    fn nand2_holding_resistance_plausible() {
        let t = Technology::cmos130();
        let cell = Cell::nand2(t, 1.0);
        let mode = cell.holding_low_mode();
        let r = holding_resistance(&cell, &mode, &NewtonOptions::default()).unwrap();
        // Stacked unit NMOS in 0.13um: a few hundred ohms to a few kohm.
        assert!(r > 200.0 && r < 20e3, "r={r}");
    }

    #[test]
    fn stronger_cell_holds_harder() {
        let t = Technology::cmos130();
        let c1 = Cell::nand2(t.clone(), 1.0);
        let c4 = Cell::nand2(t, 4.0);
        let r1 =
            holding_resistance(&c1, &c1.holding_low_mode(), &NewtonOptions::default()).unwrap();
        let r4 =
            holding_resistance(&c4, &c4.holding_low_mode(), &NewtonOptions::default()).unwrap();
        assert!(r4 < r1 / 3.0, "r1={r1} r4={r4}");
    }

    #[test]
    fn holding_high_uses_pmos_and_is_weaker() {
        // PMOS has lower kp, so the high-holding resistance of the NAND2
        // single-PMOS mode exceeds the low-holding stacked-NMOS resistance
        // divided by stack count... just check both are plausible and the
        // PMOS one is larger than an equivalally-sized NMOS would give.
        let t = Technology::cmos130();
        let cell = Cell::inv(t, 1.0);
        let r_low =
            holding_resistance(&cell, &cell.holding_low_mode(), &NewtonOptions::default()).unwrap();
        let r_high =
            holding_resistance(&cell, &cell.holding_high_mode(), &NewtonOptions::default())
                .unwrap();
        assert!(r_low > 0.0 && r_high > 0.0);
        // NMOS kp ~2.5x PMOS kp but PMOS is ~1.5x wider: net, low-holding
        // should still be stronger (smaller R).
        assert!(r_low < r_high, "r_low={r_low} r_high={r_high}");
    }

    #[test]
    fn holding_resistance_consistent_with_load_curve_slope() {
        let t = Technology::cmos130();
        let cell = Cell::nand2(t.clone(), 1.0);
        let mode = cell.holding_low_mode();
        let r_probe = holding_resistance(&cell, &mode, &NewtonOptions::default()).unwrap();
        let opts = CharacterizeOptions {
            grid: 17,
            ..Default::default()
        };
        let lc = characterize_load_curve(&cell, &mode, &opts).unwrap();
        let r_table = 1.0 / lc.conductance(t.vdd, 0.0);
        // Two independent extractions of the same small-signal quantity;
        // the table's finite grid makes it approximate.
        let rel = (r_probe - r_table).abs() / r_probe;
        assert!(rel < 0.35, "r_probe={r_probe} r_table={r_table}");
    }
}
