//! Technology descriptions.
//!
//! The paper evaluates on STMicroelectronics 0.13 µm and 90 nm processes;
//! those parameter decks are proprietary, so this module provides
//! *plausible* level-1 parameter sets with the right supply voltages,
//! threshold-to-supply ratios, drive strengths and wire parasitics for each
//! node (see DESIGN.md §2 for the substitution rationale). Every relative
//! claim the paper makes — superposition underestimates, the VCCS
//! macromodel tracks golden simulation, macromodels are much faster — is
//! technology-shape-dependent, not parameter-exact, and survives this
//! substitution.

use serde::{Deserialize, Serialize};
use sna_spice::devices::{MosPolarity, MosfetModel};
use sna_spice::units::{NM, UM};

/// Per-unit-length parasitics of a routing layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetalLayer {
    /// Layer name index (e.g. 4 for metal-4).
    pub level: u8,
    /// Series resistance per meter (Ω/m).
    pub r_per_m: f64,
    /// Capacitance to ground per meter (F/m).
    pub cg_per_m: f64,
    /// Coupling capacitance to one minimum-spaced parallel neighbor per
    /// meter (F/m).
    pub cc_per_m: f64,
}

/// A technology node: supply, device models, cell sizing, wire stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Human-readable name (`"cmos130"`, `"cmos90"`).
    pub name: String,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Minimum channel length (m).
    pub l_min: f64,
    /// NMOS model card.
    pub nmos: MosfetModel,
    /// PMOS model card.
    pub pmos: MosfetModel,
    /// Unit NMOS width for a 1× cell (m).
    pub wn_unit: f64,
    /// Unit PMOS width for a 1× cell (m).
    pub wp_unit: f64,
    /// Routing layers, index 0 = metal-1.
    pub metals: Vec<MetalLayer>,
}

impl Technology {
    /// The 0.13 µm node used for the paper's Tables 1 and 2.
    pub fn cmos130() -> Self {
        let nmos = MosfetModel {
            polarity: MosPolarity::Nmos,
            vt0: 0.32,
            kp: 2.6e-4,
            lambda: 0.15,
            gamma: 0.40,
            phi: 0.70,
            cox: 0.012,
            cgso: 3.0e-10,
            cgdo: 3.0e-10,
            cj: 8.0e-10,
        };
        let pmos = MosfetModel {
            polarity: MosPolarity::Pmos,
            vt0: -0.34,
            kp: 1.05e-4,
            lambda: 0.18,
            gamma: 0.42,
            phi: 0.70,
            cox: 0.012,
            cgso: 3.0e-10,
            cgdo: 3.0e-10,
            cj: 8.5e-10,
        };
        Technology {
            name: "cmos130".into(),
            vdd: 1.2,
            l_min: 0.13 * UM,
            nmos,
            pmos,
            wn_unit: 0.42 * UM,
            wp_unit: 0.64 * UM,
            metals: vec![
                MetalLayer {
                    level: 1,
                    r_per_m: 0.40e6,
                    cg_per_m: 60e-12,
                    cc_per_m: 80e-12,
                },
                MetalLayer {
                    level: 2,
                    r_per_m: 0.30e6,
                    cg_per_m: 50e-12,
                    cc_per_m: 85e-12,
                },
                MetalLayer {
                    level: 3,
                    r_per_m: 0.30e6,
                    cg_per_m: 45e-12,
                    cc_per_m: 85e-12,
                },
                MetalLayer {
                    level: 4,
                    r_per_m: 0.20e6,
                    cg_per_m: 40e-12,
                    cc_per_m: 90e-12,
                },
                MetalLayer {
                    level: 5,
                    r_per_m: 0.10e6,
                    cg_per_m: 38e-12,
                    cc_per_m: 95e-12,
                },
            ],
        }
    }

    /// The 90 nm node used in the paper's §3 accuracy sweep.
    pub fn cmos90() -> Self {
        let nmos = MosfetModel {
            polarity: MosPolarity::Nmos,
            vt0: 0.28,
            kp: 3.2e-4,
            lambda: 0.20,
            gamma: 0.38,
            phi: 0.68,
            cox: 0.014,
            cgso: 2.6e-10,
            cgdo: 2.6e-10,
            cj: 7.0e-10,
        };
        let pmos = MosfetModel {
            polarity: MosPolarity::Pmos,
            vt0: -0.30,
            kp: 1.3e-4,
            lambda: 0.24,
            gamma: 0.40,
            phi: 0.68,
            cox: 0.014,
            cgso: 2.6e-10,
            cgdo: 2.6e-10,
            cj: 7.5e-10,
        };
        Technology {
            name: "cmos90".into(),
            vdd: 1.0,
            l_min: 90.0 * NM,
            nmos,
            pmos,
            wn_unit: 0.30 * UM,
            wp_unit: 0.45 * UM,
            metals: vec![
                MetalLayer {
                    level: 1,
                    r_per_m: 0.60e6,
                    cg_per_m: 55e-12,
                    cc_per_m: 90e-12,
                },
                MetalLayer {
                    level: 2,
                    r_per_m: 0.45e6,
                    cg_per_m: 48e-12,
                    cc_per_m: 95e-12,
                },
                MetalLayer {
                    level: 3,
                    r_per_m: 0.45e6,
                    cg_per_m: 42e-12,
                    cc_per_m: 95e-12,
                },
                MetalLayer {
                    level: 4,
                    r_per_m: 0.28e6,
                    cg_per_m: 38e-12,
                    cc_per_m: 100e-12,
                },
                MetalLayer {
                    level: 5,
                    r_per_m: 0.15e6,
                    cg_per_m: 36e-12,
                    cc_per_m: 105e-12,
                },
            ],
        }
    }

    /// Routing layer by level number (1-based).
    ///
    /// # Panics
    ///
    /// Panics if the level does not exist in this technology.
    pub fn metal(&self, level: u8) -> &MetalLayer {
        self.metals
            .iter()
            .find(|m| m.level == level)
            .unwrap_or_else(|| panic!("{}: no metal{level}", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_scaling_sanity() {
        let t130 = Technology::cmos130();
        let t90 = Technology::cmos90();
        assert!(t90.vdd < t130.vdd);
        assert!(t90.l_min < t130.l_min);
        // Threshold stays a similar fraction of supply.
        let f130 = t130.nmos.vt0 / t130.vdd;
        let f90 = t90.nmos.vt0 / t90.vdd;
        assert!((f130 - f90).abs() < 0.1);
    }

    #[test]
    fn metal4_lookup() {
        let t = Technology::cmos130();
        let m4 = t.metal(4);
        assert_eq!(m4.level, 4);
        // 500 um of M4: ~100 ohm, ~20 fF ground, ~45 fF coupling.
        let len = 500e-6;
        assert!((m4.r_per_m * len - 100.0).abs() < 20.0);
        assert!(m4.cg_per_m * len > 10e-15 && m4.cg_per_m * len < 40e-15);
        assert!(m4.cc_per_m * len > 30e-15 && m4.cc_per_m * len < 60e-15);
    }

    #[test]
    #[should_panic(expected = "no metal9")]
    fn missing_metal_panics() {
        Technology::cmos130().metal(9);
    }

    #[test]
    fn pmos_weaker_than_nmos() {
        for t in [Technology::cmos130(), Technology::cmos90()] {
            assert!(t.pmos.kp < t.nmos.kp);
            assert!(t.pmos.vt0 < 0.0);
            assert!(t.nmos.vt0 > 0.0);
        }
    }

    #[test]
    fn coupling_dominates_ground_cap() {
        // The premise of the paper's problem: coupling is comparable to or
        // larger than ground capacitance on intermediate layers.
        for t in [Technology::cmos130(), Technology::cmos90()] {
            for m in &t.metals {
                assert!(m.cc_per_m > m.cg_per_m);
            }
        }
    }
}
