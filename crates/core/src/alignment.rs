//! Worst-case aggressor / glitch alignment search.
//!
//! "Our approach can be straightforwardly extended to clusters with several
//! aggressors with different switching directions and phase alignments."
//! (§2.) Superposition-based flows *assume* the worst case is all peaks
//! aligned; with a non-linear victim that is no longer exact, so this
//! module searches the timing space directly, using the fast macromodel
//! engine as the evaluator — the search is only affordable *because* the
//! engine is orders of magnitude faster than transistor-level simulation.

use sna_spice::backend::BackendKind;
use sna_spice::dc::NewtonOptions;
use sna_spice::error::Result;
use sna_spice::waveform::GlitchMetrics;

use crate::cluster::ClusterMacromodel;
use crate::engine::{simulate_macromodel, simulate_macromodel_timings, TimingLane};

/// Outcome of the worst-case search.
#[derive(Debug, Clone)]
pub struct AlignmentResult {
    /// Optimized aggressor input-onset times (s).
    pub switch_times: Vec<f64>,
    /// Optimized glitch peak time (s), if the cluster has a glitch.
    pub glitch_peak_time: Option<f64>,
    /// Victim DP glitch metrics at the worst case found.
    pub dp_metrics: GlitchMetrics,
    /// Number of engine evaluations spent.
    pub evaluations: usize,
}

/// Maximize the victim DP glitch peak over aggressor switch times and the
/// input-glitch peak time, by cyclic coordinate descent (one grid pass plus
/// golden-section refinement per coordinate, two sweeps).
///
/// `window` is the half-width (s) of the timing interval searched around
/// each event's nominal time.
///
/// # Errors
///
/// Propagates engine failures.
pub fn worst_case_alignment(model: &ClusterMacromodel, window: f64) -> Result<AlignmentResult> {
    let n_agg = model.spec.aggressors.len();
    let mut switch_times: Vec<f64> = model
        .spec
        .aggressors
        .iter()
        .map(|a| a.switch_time)
        .collect();
    let mut glitch_peak = model.spec.victim.glitch.map(|g| g.t_peak);
    let mut evaluations = 0usize;
    let eval = |st: &[f64], gp: Option<f64>, evals: &mut usize| -> Result<GlitchMetrics> {
        *evals += 1;
        let m = model.with_timing(st, gp);
        Ok(simulate_macromodel(&m)?.dp_metrics(model.q_out))
    };
    let mut best = eval(&switch_times, glitch_peak, &mut evaluations)?;
    // Coordinates: aggressors 0..n_agg, then (optionally) the glitch.
    let n_coords = n_agg + usize::from(glitch_peak.is_some());
    for _sweep in 0..2 {
        for coord in 0..n_coords {
            let nominal = if coord < n_agg {
                switch_times[coord]
            } else {
                glitch_peak.expect("glitch coordinate exists")
            };
            let probe = |t: f64, evals: &mut usize| -> Result<f64> {
                let t = t.max(0.0);
                let (st, gp) = if coord < n_agg {
                    let mut st = switch_times.clone();
                    st[coord] = t;
                    (st, glitch_peak)
                } else {
                    (switch_times.clone(), Some(t))
                };
                Ok(eval(&st, gp, evals)?.peak)
            };
            // Coarse grid.
            let grid = 7;
            let mut best_t = nominal;
            let mut best_peak = best.peak;
            for i in 0..grid {
                let t = nominal - window + 2.0 * window * i as f64 / (grid - 1) as f64;
                let peak = probe(t, &mut evaluations)?;
                if peak > best_peak {
                    best_peak = peak;
                    best_t = t;
                }
            }
            // Golden-section refinement around the best grid point.
            let phi = 0.618_033_988_749_895;
            let step = 2.0 * window / (grid - 1) as f64;
            let (mut lo, mut hi) = (best_t - step, best_t + step);
            let mut x1 = hi - phi * (hi - lo);
            let mut x2 = lo + phi * (hi - lo);
            let mut f1 = probe(x1, &mut evaluations)?;
            let mut f2 = probe(x2, &mut evaluations)?;
            for _ in 0..8 {
                if f1 > f2 {
                    hi = x2;
                    x2 = x1;
                    f2 = f1;
                    x1 = hi - phi * (hi - lo);
                    f1 = probe(x1, &mut evaluations)?;
                } else {
                    lo = x1;
                    x1 = x2;
                    f1 = f2;
                    x2 = lo + phi * (hi - lo);
                    f2 = probe(x2, &mut evaluations)?;
                }
            }
            let t_opt = if f1 > f2 { x1 } else { x2 };
            let peak_opt = f1.max(f2);
            if peak_opt > best_peak {
                best_peak = peak_opt;
                best_t = t_opt;
            }
            if coord < n_agg {
                switch_times[coord] = best_t.max(0.0);
            } else {
                glitch_peak = Some(best_t.max(0.0));
            }
            best = eval(&switch_times, glitch_peak, &mut evaluations)?;
            let _ = best_peak;
        }
    }
    Ok(AlignmentResult {
        switch_times,
        glitch_peak_time: glitch_peak,
        dp_metrics: best,
        evaluations,
    })
}

/// [`worst_case_alignment`] with every coarse-grid pass evaluated as one
/// K-wide call through the batched engine
/// ([`simulate_macromodel_timings`]) instead of seven serial
/// `simulate_macromodel` calls. The golden-section refinement is
/// inherently sequential (each probe depends on the previous
/// comparison), so those probes run as single-lane batched calls —
/// keeping the whole search on one arithmetic path, so the result is
/// identical on either [`BackendKind`].
///
/// The probe *sequence* (and therefore `evaluations`) is identical to
/// the serial search; only the LU arithmetic differs (batched plane vs
/// serial factors), which can move the found optimum by an ulp — nothing
/// in the flow pins serial-vs-batched equality.
///
/// # Errors
///
/// Propagates engine failures.
pub fn worst_case_alignment_batched(
    model: &ClusterMacromodel,
    window: f64,
    backend: BackendKind,
) -> Result<AlignmentResult> {
    let n_agg = model.spec.aggressors.len();
    let newton = NewtonOptions::default();
    let mut switch_times: Vec<f64> = model
        .spec
        .aggressors
        .iter()
        .map(|a| a.switch_time)
        .collect();
    let mut glitch_peak = model.spec.victim.glitch.map(|g| g.t_peak);
    let mut evaluations = 0usize;
    // Evaluate a batch of timing assignments, returning DP metrics per lane.
    let eval_batch = |lanes: &[TimingLane], evals: &mut usize| -> Result<Vec<GlitchMetrics>> {
        *evals += lanes.len();
        let waves = simulate_macromodel_timings(model, lanes, &newton, backend)?;
        Ok(waves
            .iter()
            .map(|w| w.dp.glitch_metrics(model.q_out))
            .collect())
    };
    let lane_for = |st: &[f64], gp: Option<f64>| TimingLane {
        switch_times: st.to_vec(),
        glitch_peak: gp,
    };
    let mut best = eval_batch(&[lane_for(&switch_times, glitch_peak)], &mut evaluations)?
        .pop()
        .expect("one lane in, one out");
    let n_coords = n_agg + usize::from(glitch_peak.is_some());
    for _sweep in 0..2 {
        for coord in 0..n_coords {
            let nominal = if coord < n_agg {
                switch_times[coord]
            } else {
                glitch_peak.expect("glitch coordinate exists")
            };
            let assignment = |t: f64| -> TimingLane {
                let t = t.max(0.0);
                if coord < n_agg {
                    let mut st = switch_times.clone();
                    st[coord] = t;
                    lane_for(&st, glitch_peak)
                } else {
                    lane_for(&switch_times, Some(t))
                }
            };
            let probe = |t: f64, evals: &mut usize| -> Result<f64> {
                Ok(eval_batch(&[assignment(t)], evals)?
                    .pop()
                    .expect("one lane in, one out")
                    .peak)
            };
            // Coarse grid — the batched pass: K = grid lanes in one call.
            let grid = 7;
            let ts: Vec<f64> = (0..grid)
                .map(|i| nominal - window + 2.0 * window * i as f64 / (grid - 1) as f64)
                .collect();
            let lanes: Vec<TimingLane> = ts.iter().map(|&t| assignment(t)).collect();
            let metrics = eval_batch(&lanes, &mut evaluations)?;
            let mut best_t = nominal;
            let mut best_peak = best.peak;
            for (&t, m) in ts.iter().zip(&metrics) {
                if m.peak > best_peak {
                    best_peak = m.peak;
                    best_t = t;
                }
            }
            // Golden-section refinement around the best grid point.
            let phi = 0.618_033_988_749_895;
            let step = 2.0 * window / (grid - 1) as f64;
            let (mut lo, mut hi) = (best_t - step, best_t + step);
            let mut x1 = hi - phi * (hi - lo);
            let mut x2 = lo + phi * (hi - lo);
            let mut f1 = probe(x1, &mut evaluations)?;
            let mut f2 = probe(x2, &mut evaluations)?;
            for _ in 0..8 {
                if f1 > f2 {
                    hi = x2;
                    x2 = x1;
                    f2 = f1;
                    x1 = hi - phi * (hi - lo);
                    f1 = probe(x1, &mut evaluations)?;
                } else {
                    lo = x1;
                    x1 = x2;
                    f1 = f2;
                    x2 = lo + phi * (hi - lo);
                    f2 = probe(x2, &mut evaluations)?;
                }
            }
            let t_opt = if f1 > f2 { x1 } else { x2 };
            let peak_opt = f1.max(f2);
            if peak_opt > best_peak {
                best_t = t_opt;
            }
            if coord < n_agg {
                switch_times[coord] = best_t.max(0.0);
            } else {
                glitch_peak = Some(best_t.max(0.0));
            }
            best = eval_batch(&[lane_for(&switch_times, glitch_peak)], &mut evaluations)?
                .pop()
                .expect("one lane in, one out");
        }
    }
    Ok(AlignmentResult {
        switch_times,
        glitch_peak_time: glitch_peak,
        dp_metrics: best,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterMacromodel;
    use crate::scenarios::table1_spec;
    use sna_spice::units::{NS, PS};

    #[test]
    fn alignment_improves_a_misaligned_cluster() {
        // Start with the glitch displaced from the injected peak by an
        // amount the search window can bridge (the window models the
        // realistic timing uncertainty of the events).
        let mut spec = table1_spec();
        if let Some(g) = &mut spec.victim.glitch {
            g.t_peak = 1.3 * NS;
        }
        let model = ClusterMacromodel::build(&spec).unwrap();
        let nominal = simulate_macromodel(&model).unwrap().dp_metrics(model.q_out);
        let res = worst_case_alignment(&model, 700.0 * PS).unwrap();
        assert!(
            res.dp_metrics.peak > nominal.peak * 1.1,
            "search failed to improve: nominal={}, found={}",
            nominal.peak,
            res.dp_metrics.peak
        );
        assert!(res.evaluations > 10);
        // The worst case brings the two events together — either the glitch
        // moved earlier or the aggressor moved later (both are valid).
        let gp = res.glitch_peak_time.unwrap();
        let st = res.switch_times[0];
        let gap_before = 1.3 * NS - spec.aggressors[0].switch_time;
        let gap_after = gp - st;
        assert!(
            gap_after < 0.75 * gap_before,
            "events did not converge: glitch at {gp:e}, aggressor at {st:e}"
        );
    }

    #[test]
    fn batched_search_mirrors_serial_probe_sequence() {
        let mut spec = table1_spec();
        if let Some(g) = &mut spec.victim.glitch {
            g.t_peak = 1.3 * NS;
        }
        let model = ClusterMacromodel::build(&spec).unwrap();
        let serial = worst_case_alignment(&model, 700.0 * PS).unwrap();
        let batched =
            worst_case_alignment_batched(&model, 700.0 * PS, BackendKind::Scalar).unwrap();
        // Identical probe sequence — only the LU arithmetic differs.
        assert_eq!(batched.evaluations, serial.evaluations);
        assert!(
            (batched.dp_metrics.peak - serial.dp_metrics.peak).abs() < 1e-6,
            "batched {} vs serial {}",
            batched.dp_metrics.peak,
            serial.dp_metrics.peak
        );
        for (b, s) in batched.switch_times.iter().zip(&serial.switch_times) {
            assert!(
                (b - s).abs() < 1.0 * PS,
                "switch times diverged: {b} vs {s}"
            );
        }
        // Backends are bit-identical on the batched path.
        let b2 = worst_case_alignment_batched(&model, 700.0 * PS, BackendKind::Batched).unwrap();
        assert_eq!(
            b2.dp_metrics.peak.to_bits(),
            batched.dp_metrics.peak.to_bits()
        );
        assert_eq!(b2.switch_times, batched.switch_times);
    }

    #[test]
    fn with_timing_shifts_events() {
        let spec = table1_spec();
        let model = ClusterMacromodel::build(&spec).unwrap();
        let shifted = model.with_timing(&[1.0 * NS], Some(1.2 * NS));
        assert_eq!(shifted.spec.aggressors[0].switch_time, 1.0 * NS);
        assert_eq!(shifted.spec.victim.glitch.unwrap().t_peak, 1.2 * NS);
        // Thevenin EMF moved by the same delta (0.6 ns).
        let t50_orig = model.thevenins[0].t50();
        let t50_new = shifted.thevenins[0].t50();
        assert!((t50_new - t50_orig - 0.6 * NS).abs() < 1.0 * PS);
    }
}
