//! The dedicated noise-cluster engine.
//!
//! "Since the noise cluster macromodel is a simple circuit, the total noise
//! waveform can be accurately and efficiently computed by means of a
//! dedicated engine embedded into the noise analysis tool." (§2.)
//!
//! The engine integrates the reduced interconnect `Ĉ·ẋ + Ĝ·x = B̂·u` with:
//!
//! * aggressor Thevenin drivers folded in as Norton pairs — a constant
//!   conductance `1/R_TH` on the port plus the injection `V_TH(t)/R_TH`;
//! * the known victim-input waveform's Miller feed-through
//!   `c_miller · dV_in/dt` injected at `DP_Vic`;
//! * the non-linear VCCS `I_DC = f(V_in(t), V_DP)` of Eq. (1) at `DP_Vic`,
//!   handled by a Newton iteration per trapezoidal step with the bilinear
//!   table's analytic `∂I/∂V_out` in the Jacobian.
//!
//! The whole system is a handful of unknowns, which is where the paper's
//! ~20× speed-up over transistor-level simulation comes from (see
//! `benches/golden_vs_macro.rs`).

use sna_cells::characterize::TheveninDriver;
use sna_spice::backend::{backend_for, BackendKind, BatchedDenseLu};
use sna_spice::dc::NewtonOptions;
use sna_spice::devices::SourceWaveform;
use sna_spice::error::{Error, Result};
use sna_spice::linalg::DenseMatrix;
use sna_spice::units::PS;
use sna_spice::waveform::Waveform;

use crate::cluster::{ClusterMacromodel, InputGlitch};

/// Waveforms produced by one noise-analysis run (engine, baseline, or
/// golden reference) on a cluster.
#[derive(Debug, Clone)]
pub struct NoiseWaveforms {
    /// Victim driving-point voltage (`DP_Vic`), absolute volts.
    pub dp: Waveform,
    /// Victim receiver-tap voltage.
    pub receiver: Waveform,
    /// Aggressor driving-point voltages.
    pub aggressor_dps: Vec<Waveform>,
    /// Total Newton iterations spent (0 for linear runs).
    pub newton_iterations: usize,
}

impl NoiseWaveforms {
    /// Glitch metrics of the driving-point waveform around `q_out`.
    pub fn dp_metrics(&self, q_out: f64) -> sna_spice::waveform::GlitchMetrics {
        self.dp.glitch_metrics(q_out)
    }
}

/// Integrate the cluster macromodel. This is the paper's method.
///
/// # Errors
///
/// Fails on Newton non-convergence or singular step matrices.
pub fn simulate_macromodel(model: &ClusterMacromodel) -> Result<NoiseWaveforms> {
    simulate_macromodel_with(model, &NewtonOptions::default())
}

/// [`simulate_macromodel`] with explicit Newton controls.
///
/// # Errors
///
/// Fails on Newton non-convergence or singular step matrices.
pub fn simulate_macromodel_with(
    model: &ClusterMacromodel,
    newton: &NewtonOptions,
) -> Result<NoiseWaveforms> {
    let red = &model.reduced;
    let m = red.dim();
    let p = red.n_ports();
    let dt = model.spec.dt;
    let t_stop = model.spec.t_stop;
    let n_steps = (t_stop / dt).round() as usize;
    let vic = model.victim_dp_port();

    // Geff = Ĝ + Σ (1/R_TH) b_k b_kᵀ for aggressor ports.
    let mut geff = red.g.clone();
    for (k, th) in model.thevenins.iter().enumerate() {
        let port = model.aggressor_port(k);
        let g = 1.0 / th.rth;
        for i in 0..m {
            let bi = red.b[(i, port)];
            if bi == 0.0 {
                continue;
            }
            for j in 0..m {
                geff.add(i, j, g * bi * red.b[(j, port)]);
            }
        }
    }
    // Port current injections at time t (independent of the state).
    let inject = |t: f64| -> Vec<f64> {
        let mut u = vec![0.0; p];
        for (k, th) in model.thevenins.iter().enumerate() {
            u[model.aggressor_port(k)] = th.wave.eval(t) / th.rth;
        }
        u[vic] += model.c_miller_injection * model.dvin_dt(t);
        u
    };
    // B·u as a state-space vector.
    let bu = |u: &[f64]| -> Vec<f64> {
        let mut out = vec![0.0; m];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (pp, up) in u.iter().enumerate() {
                acc += red.b[(i, pp)] * up;
            }
            *o = acc;
        }
        out
    };
    let y_vic = |x: &[f64]| -> f64 {
        let mut acc = 0.0;
        for (i, &xi) in x.iter().enumerate().take(m) {
            acc += red.b[(i, vic)] * xi;
        }
        acc
    };

    // Newton solve of: A x + b_vic I_dc(vin, y) = rhs.
    let newton_solve = |a: &DenseMatrix,
                        rhs: &[f64],
                        vin: f64,
                        x0: &[f64],
                        iters: &mut usize|
     -> Result<Vec<f64>> {
        let mut x = x0.to_vec();
        for _ in 0..newton.max_iter {
            *iters += 1;
            let y = y_vic(&x);
            let eval = model.load_curve.table.eval(vin, y);
            let mut residual = a.mul_vec(&x);
            for i in 0..m {
                residual[i] += red.b[(i, vic)] * eval.z - rhs[i];
            }
            let mut jac = a.clone();
            for i in 0..m {
                let bi = red.b[(i, vic)];
                if bi == 0.0 {
                    continue;
                }
                for j in 0..m {
                    jac.add(i, j, bi * eval.dz_dy * red.b[(j, vic)]);
                }
            }
            let neg: Vec<f64> = residual.iter().map(|r| -r).collect();
            let dx = jac.lu()?.solve(&neg);
            let max_dx = dx.iter().fold(0.0_f64, |acc, &v| acc.max(v.abs()));
            let scale = if max_dx > newton.max_step {
                newton.max_step / max_dx
            } else {
                1.0
            };
            let mut done = true;
            for i in 0..m {
                let s = scale * dx[i];
                x[i] += s;
                if s.abs() > newton.reltol * x[i].abs() + newton.vntol {
                    done = false;
                }
            }
            if done && scale == 1.0 {
                return Ok(x);
            }
        }
        Err(Error::NonConvergence {
            analysis: "noise-engine",
            iterations: newton.max_iter,
            time: 0.0,
            residual: f64::NAN,
        })
    };

    let mut iters = 0usize;
    // DC initial condition: Geff x + b_vic I_dc = B u(0).
    let u0 = inject(0.0);
    let rhs0 = bu(&u0);
    let x0 = newton_solve(&geff, &rhs0, model.vin(0.0), &vec![0.0; m], &mut iters)?;

    // Trapezoidal stepping.
    let alpha = 2.0 / dt;
    let mut a_step = geff.clone();
    a_step.axpy(alpha, &red.c);
    // RHS companion matrix: (alpha C - Geff).
    let mut rhs_mat = DenseMatrix::zeros(m, m);
    rhs_mat.axpy(alpha, &red.c);
    rhs_mat.axpy(-1.0, &geff);

    let mut x = x0;
    let mut u_prev = u0;
    let mut times = Vec::with_capacity(n_steps + 1);
    let mut port_series: Vec<Vec<f64>> = vec![Vec::with_capacity(n_steps + 1); p];
    let record = |x: &[f64], series: &mut Vec<Vec<f64>>| {
        let ys = red.port_voltages(x);
        for (s, y) in series.iter_mut().zip(ys) {
            s.push(y);
        }
    };
    times.push(0.0);
    record(&x, &mut port_series);
    // Nonlinear current at the previous accepted point.
    let mut f_prev = model.load_curve.table.eval(model.vin(0.0), y_vic(&x)).z;
    for step in 1..=n_steps {
        let t = step as f64 * dt;
        let u = inject(t);
        // rhs = (alpha C - Geff) x0 - b_vic f(y0,t0) + B (u0 + u1)
        let mut rhs = rhs_mat.mul_vec(&x);
        let summed: Vec<f64> = u.iter().zip(&u_prev).map(|(a, b)| a + b).collect();
        let binj = bu(&summed);
        for i in 0..m {
            rhs[i] += binj[i] - red.b[(i, vic)] * f_prev;
        }
        x = newton_solve(&a_step, &rhs, model.vin(t), &x, &mut iters)?;
        times.push(t);
        record(&x, &mut port_series);
        u_prev = u;
        f_prev = model.load_curve.table.eval(model.vin(t), y_vic(&x)).z;
    }
    let mk = |series: Vec<f64>| {
        Waveform::from_samples(times.clone(), series).expect("monotone engine time axis")
    };
    let mut series = port_series.into_iter();
    let mut by_port: Vec<Waveform> = Vec::with_capacity(p);
    for _ in 0..p {
        by_port.push(mk(series.next().expect("port series")));
    }
    let dp = by_port[model.victim_dp_port()].clone();
    let receiver = by_port[model.victim_receiver_port()].clone();
    let aggressor_dps = (0..model.thevenins.len())
        .map(|k| by_port[model.aggressor_port(k)].clone())
        .collect();
    Ok(NoiseWaveforms {
        dp,
        receiver,
        aggressor_dps,
        newton_iterations: iters,
    })
}

/// One timing assignment evaluated as a lane of
/// [`simulate_macromodel_timings`]: the cluster's aggressor switch times
/// (cluster order) plus an optional glitch-peak override, exactly the
/// arguments of [`ClusterMacromodel::with_timing`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimingLane {
    /// Per-aggressor input-onset times (s).
    pub switch_times: Vec<f64>,
    /// Glitch peak time override (s); `None` keeps the nominal waveform.
    pub glitch_peak: Option<f64>,
}

/// Integrate the cluster macromodel at `lanes.len()` timing assignments
/// simultaneously, K lanes wide, through the [`ComputeBackend`] seam.
///
/// Characterization artifacts (`Ĝ`/`Ĉ`/`B̂`, the Eq.-1 table, Thevenin
/// fits) are timing-independent, so every lane shares one effective
/// conductance and one trapezoidal step matrix; only the injections
/// `u(t)` and the Newton states differ per lane. The per-step Newton
/// iteration stamps all lane Jacobians into one [`BatchedDenseLu`] plane
/// and factors/solves them in a single backend call. Converged lanes
/// freeze (their state stops updating and their Jacobian slot is stamped
/// to identity), so each lane's arithmetic sequence is **independent of
/// which other lanes share the batch** — a candidate evaluated alone,
/// in a K=4 batch, or in a K=8 batch produces bit-identical waveforms,
/// on either backend. This is what lets the FRAME pruned and exhaustive
/// enumerations produce byte-identical reports for the candidates they
/// share.
///
/// [`ComputeBackend`]: sna_spice::backend::ComputeBackend
///
/// # Errors
///
/// Fails on Newton non-convergence or a singular lane Jacobian.
///
/// # Panics
///
/// Panics if a lane's `switch_times` length differs from the cluster's
/// aggressor count.
pub fn simulate_macromodel_timings(
    model: &ClusterMacromodel,
    lanes: &[TimingLane],
    newton: &NewtonOptions,
    backend: BackendKind,
) -> Result<Vec<NoiseWaveforms>> {
    if lanes.is_empty() {
        return Ok(Vec::new());
    }
    let red = &model.reduced;
    let m = red.dim();
    let p = red.n_ports();
    let dt = model.spec.dt;
    let t_stop = model.spec.t_stop;
    let n_steps = (t_stop / dt).round() as usize;
    let vic = model.victim_dp_port();
    let kl = lanes.len();
    let be = backend_for(backend);

    // Per-lane event data: shifted Thevenin fits and the (possibly
    // re-peaked) victim-input waveform — the cheap part of `with_timing`.
    struct LaneEvents {
        thevenins: Vec<TheveninDriver>,
        vin_wave: SourceWaveform,
    }
    let events: Vec<LaneEvents> = lanes
        .iter()
        .map(|tl| {
            assert_eq!(
                tl.switch_times.len(),
                model.spec.aggressors.len(),
                "one switch time per aggressor"
            );
            let thevenins = tl
                .switch_times
                .iter()
                .zip(&model.spec.aggressors)
                .zip(&model.thevenins)
                .map(|((&t_new, agg), th)| th.shifted(t_new - agg.switch_time))
                .collect();
            let vin_wave = match (tl.glitch_peak, model.spec.victim.glitch) {
                (Some(t_peak), Some(g)) => {
                    InputGlitch { t_peak, ..g }.waveform(model.q_in, model.spec.tech.vdd)
                }
                _ => model.vin_wave.clone(),
            };
            LaneEvents {
                thevenins,
                vin_wave,
            }
        })
        .collect();
    let h = 0.05 * PS;
    let dvin_dt = |w: &SourceWaveform, t: f64| (w.eval(t + h) - w.eval(t - h)) / (2.0 * h);

    // Shared Geff = Ĝ + Σ (1/R_TH) b_k b_kᵀ — R_TH is timing-independent.
    let mut geff = red.g.clone();
    for (k, th) in model.thevenins.iter().enumerate() {
        let port = model.aggressor_port(k);
        let g = 1.0 / th.rth;
        for i in 0..m {
            let bi = red.b[(i, port)];
            if bi == 0.0 {
                continue;
            }
            for j in 0..m {
                geff.add(i, j, g * bi * red.b[(j, port)]);
            }
        }
    }
    let inject = |ev: &LaneEvents, t: f64| -> Vec<f64> {
        let mut u = vec![0.0; p];
        for (k, th) in ev.thevenins.iter().enumerate() {
            u[model.aggressor_port(k)] = th.wave.eval(t) / th.rth;
        }
        u[vic] += model.c_miller_injection * dvin_dt(&ev.vin_wave, t);
        u
    };
    let bu = |u: &[f64]| -> Vec<f64> {
        let mut out = vec![0.0; m];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (pp, up) in u.iter().enumerate() {
                acc += red.b[(i, pp)] * up;
            }
            *o = acc;
        }
        out
    };
    let y_vic = |x: &[f64]| -> f64 {
        let mut acc = 0.0;
        for (i, &xi) in x.iter().enumerate().take(m) {
            acc += red.b[(i, vic)] * xi;
        }
        acc
    };

    // Batched Newton solve of: A x + b_vic I_dc(vin, y) = rhs, all lanes at
    // once. Per-lane residual/Jacobian stamping, one plane factor + solve
    // per iteration, per-lane convergence with frozen masks.
    let mut jac = BatchedDenseLu::new(m, kl);
    let mut rhs_plane = vec![0.0; m * kl];
    let mut dx_plane = vec![0.0; m * kl];
    let mut iters = vec![0usize; kl];
    let newton_solve = |a: &DenseMatrix,
                        rhs: &[Vec<f64>],
                        vin: &[f64],
                        x: &mut [Vec<f64>],
                        iters: &mut [usize],
                        jac: &mut BatchedDenseLu,
                        rhs_plane: &mut [f64],
                        dx_plane: &mut [f64]|
     -> Result<()> {
        let mut frozen = vec![false; kl];
        for _ in 0..newton.max_iter {
            if frozen.iter().all(|&f| f) {
                break;
            }
            let data = jac.data_mut();
            for (lane, frz) in frozen.iter().enumerate() {
                if *frz {
                    // Identity slot + zero RHS: the factor/solve arithmetic
                    // of other lanes never reads this lane's values, and
                    // the zero solution leaves the frozen state untouched.
                    for i in 0..m {
                        for j in 0..m {
                            data[(i * m + j) * kl + lane] = f64::from(u8::from(i == j));
                        }
                        rhs_plane[i * kl + lane] = 0.0;
                    }
                    continue;
                }
                iters[lane] += 1;
                let y = y_vic(&x[lane]);
                let eval = model.load_curve.table.eval(vin[lane], y);
                let residual = a.mul_vec(&x[lane]);
                for i in 0..m {
                    let bi = red.b[(i, vic)];
                    rhs_plane[i * kl + lane] = -(residual[i] + bi * eval.z - rhs[lane][i]);
                    for j in 0..m {
                        let mut v = a[(i, j)];
                        if bi != 0.0 {
                            v += bi * eval.dz_dy * red.b[(j, vic)];
                        }
                        data[(i * m + j) * kl + lane] = v;
                    }
                }
            }
            if let Err(lane) = be.dense_factor(jac) {
                return Err(Error::InvalidAnalysis(format!(
                    "noise-engine-batched: singular Jacobian in lane {lane}"
                )));
            }
            be.dense_solve(jac, rhs_plane, dx_plane);
            for (lane, frz) in frozen.iter_mut().enumerate() {
                if *frz {
                    continue;
                }
                let mut max_dx = 0.0_f64;
                for i in 0..m {
                    max_dx = max_dx.max(dx_plane[i * kl + lane].abs());
                }
                let scale = if max_dx > newton.max_step {
                    newton.max_step / max_dx
                } else {
                    1.0
                };
                let mut done = true;
                for i in 0..m {
                    let s = scale * dx_plane[i * kl + lane];
                    x[lane][i] += s;
                    if s.abs() > newton.reltol * x[lane][i].abs() + newton.vntol {
                        done = false;
                    }
                }
                if done && scale == 1.0 {
                    *frz = true;
                }
            }
        }
        if frozen.iter().all(|&f| f) {
            Ok(())
        } else {
            Err(Error::NonConvergence {
                analysis: "noise-engine-batched",
                iterations: newton.max_iter,
                time: 0.0,
                residual: f64::NAN,
            })
        }
    };

    // DC initial condition per lane: Geff x + b_vic I_dc = B u(0).
    let u0: Vec<Vec<f64>> = events.iter().map(|ev| inject(ev, 0.0)).collect();
    let rhs0: Vec<Vec<f64>> = u0.iter().map(|u| bu(u)).collect();
    let vin0: Vec<f64> = events.iter().map(|ev| ev.vin_wave.eval(0.0)).collect();
    let mut x: Vec<Vec<f64>> = vec![vec![0.0; m]; kl];
    newton_solve(
        &geff,
        &rhs0,
        &vin0,
        &mut x,
        &mut iters,
        &mut jac,
        &mut rhs_plane,
        &mut dx_plane,
    )?;

    // Trapezoidal stepping, all lanes in lockstep (shared time axis).
    let alpha = 2.0 / dt;
    let mut a_step = geff.clone();
    a_step.axpy(alpha, &red.c);
    let mut rhs_mat = DenseMatrix::zeros(m, m);
    rhs_mat.axpy(alpha, &red.c);
    rhs_mat.axpy(-1.0, &geff);

    let mut u_prev = u0;
    let mut times = Vec::with_capacity(n_steps + 1);
    let mut port_series: Vec<Vec<Vec<f64>>> = vec![vec![Vec::with_capacity(n_steps + 1); p]; kl];
    let record = |x: &[f64], series: &mut [Vec<f64>]| {
        let ys = red.port_voltages(x);
        for (s, y) in series.iter_mut().zip(ys) {
            s.push(y);
        }
    };
    times.push(0.0);
    let mut f_prev: Vec<f64> = Vec::with_capacity(kl);
    for lane in 0..kl {
        record(&x[lane], &mut port_series[lane]);
        f_prev.push(model.load_curve.table.eval(vin0[lane], y_vic(&x[lane])).z);
    }
    let mut rhs: Vec<Vec<f64>> = vec![vec![0.0; m]; kl];
    let mut vin_t = vec![0.0; kl];
    for step in 1..=n_steps {
        let t = step as f64 * dt;
        let mut u_now: Vec<Vec<f64>> = Vec::with_capacity(kl);
        for lane in 0..kl {
            let u = inject(&events[lane], t);
            let r = &mut rhs[lane];
            let base = rhs_mat.mul_vec(&x[lane]);
            let summed: Vec<f64> = u.iter().zip(&u_prev[lane]).map(|(a, b)| a + b).collect();
            let binj = bu(&summed);
            for i in 0..m {
                r[i] = base[i] + binj[i] - red.b[(i, vic)] * f_prev[lane];
            }
            vin_t[lane] = events[lane].vin_wave.eval(t);
            u_now.push(u);
        }
        newton_solve(
            &a_step,
            &rhs,
            &vin_t,
            &mut x,
            &mut iters,
            &mut jac,
            &mut rhs_plane,
            &mut dx_plane,
        )?;
        times.push(t);
        for lane in 0..kl {
            record(&x[lane], &mut port_series[lane]);
            f_prev[lane] = model.load_curve.table.eval(vin_t[lane], y_vic(&x[lane])).z;
        }
        u_prev = u_now;
    }
    let mut out = Vec::with_capacity(kl);
    for (lane, series) in port_series.into_iter().enumerate() {
        let mut by_port: Vec<Waveform> = Vec::with_capacity(p);
        for s in series {
            by_port
                .push(Waveform::from_samples(times.clone(), s).expect("monotone engine time axis"));
        }
        let dp = by_port[model.victim_dp_port()].clone();
        let receiver = by_port[model.victim_receiver_port()].clone();
        let aggressor_dps = (0..model.thevenins.len())
            .map(|k| by_port[model.aggressor_port(k)].clone())
            .collect();
        out.push(NoiseWaveforms {
            dp,
            receiver,
            aggressor_dps,
            newton_iterations: iters[lane],
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterMacromodel;
    use crate::scenarios::table1_spec;

    #[test]
    fn quiet_cluster_stays_quiet() {
        // No aggressor switching (switch far in the future) and no input
        // glitch: the DP must sit at the quiescent level throughout.
        let mut spec = table1_spec();
        spec.victim.glitch = None;
        spec.aggressors[0].switch_time = 1.0; // 1 s — far outside the window
        let model = ClusterMacromodel::build(&spec).unwrap();
        let res = simulate_macromodel(&model).unwrap();
        let metrics = res.dp_metrics(model.q_out);
        assert!(
            metrics.peak < 0.02,
            "quiet cluster produced {} V of noise",
            metrics.peak
        );
    }

    #[test]
    fn injected_only_glitch_has_sane_shape() {
        let mut spec = table1_spec();
        spec.victim.glitch = None;
        let model = ClusterMacromodel::build(&spec).unwrap();
        let res = simulate_macromodel(&model).unwrap();
        let m = res.dp_metrics(model.q_out);
        // A rising aggressor on a low victim injects an upward glitch that
        // must stay well below the rail but clearly above the noise floor.
        assert!(m.peak > 0.05, "peak={}", m.peak);
        assert!(m.peak < model.spec.tech.vdd);
        assert_eq!(m.polarity, 1.0);
        // DP decays back to quiescence.
        assert!(res.dp.value_at(model.spec.t_stop).abs() < 0.03);
        // Aggressor DP ends at the rail.
        let agg_end = res.aggressor_dps[0].value_at(model.spec.t_stop);
        assert!(
            (agg_end - model.spec.tech.vdd).abs() < 0.03,
            "agg end {agg_end}"
        );
    }

    #[test]
    fn combined_exceeds_injected_only() {
        let spec = table1_spec();
        let model = ClusterMacromodel::build(&spec).unwrap();
        let combined = simulate_macromodel(&model).unwrap().dp_metrics(model.q_out);
        let mut quiet_spec = spec.clone();
        quiet_spec.victim.glitch = None;
        let model_quiet = ClusterMacromodel::build(&quiet_spec).unwrap();
        let injected = simulate_macromodel(&model_quiet)
            .unwrap()
            .dp_metrics(model_quiet.q_out);
        assert!(
            combined.peak > injected.peak,
            "combined {} <= injected {}",
            combined.peak,
            injected.peak
        );
    }

    #[test]
    fn batched_lanes_are_composition_independent() {
        // The same timing assignment must produce bit-identical waveforms
        // whether it runs alone, in a small batch, or in a large batch —
        // the property the FRAME pruned-vs-exhaustive byte-identity gate
        // rests on.
        let spec = table1_spec();
        let model = ClusterMacromodel::build(&spec).unwrap();
        let newton = NewtonOptions::default();
        use sna_spice::units::NS;
        let lane = |t: f64| TimingLane {
            switch_times: vec![t],
            glitch_peak: None,
        };
        let solo =
            simulate_macromodel_timings(&model, &[lane(0.5 * NS)], &newton, BackendKind::Scalar)
                .unwrap();
        let batch = simulate_macromodel_timings(
            &model,
            &[
                lane(0.3 * NS),
                lane(0.5 * NS),
                lane(0.8 * NS),
                lane(1.1 * NS),
            ],
            &newton,
            BackendKind::Scalar,
        )
        .unwrap();
        let a = solo[0].receiver.values();
        let b = batch[1].receiver.values();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "lane diverged across batches");
        }
        assert_eq!(solo[0].newton_iterations, batch[1].newton_iterations);
        // And across backends.
        let inner = simulate_macromodel_timings(
            &model,
            &[
                lane(0.3 * NS),
                lane(0.5 * NS),
                lane(0.8 * NS),
                lane(1.1 * NS),
            ],
            &newton,
            BackendKind::Batched,
        )
        .unwrap();
        for (x, y) in batch[1]
            .receiver
            .values()
            .iter()
            .zip(inner[1].receiver.values())
        {
            assert_eq!(x.to_bits(), y.to_bits(), "backends diverged");
        }
    }

    #[test]
    fn batched_single_lane_matches_serial_engine_closely() {
        let spec = table1_spec();
        let model = ClusterMacromodel::build(&spec).unwrap();
        let serial = simulate_macromodel(&model).unwrap();
        let batched = simulate_macromodel_timings(
            &model,
            &[TimingLane {
                switch_times: vec![model.spec.aggressors[0].switch_time],
                glitch_peak: None,
            }],
            &NewtonOptions::default(),
            BackendKind::Scalar,
        )
        .unwrap();
        let sm = serial.dp_metrics(model.q_out);
        let bm = batched[0].dp_metrics(model.q_out);
        // Different LU arithmetic (serial factors vs batched plane), so
        // only numerical closeness is guaranteed.
        assert!(
            (sm.peak - bm.peak).abs() < 1e-9,
            "serial {} vs batched {}",
            sm.peak,
            bm.peak
        );
    }

    #[test]
    fn receiver_sees_filtered_glitch() {
        let spec = table1_spec();
        let model = ClusterMacromodel::build(&spec).unwrap();
        let res = simulate_macromodel(&model).unwrap();
        let dp = res.dp_metrics(model.q_out);
        let rc = res.receiver.glitch_metrics(model.q_out);
        // The receiver tap sees a comparable glitch (lightly RC-filtered).
        assert!(rc.peak > 0.5 * dp.peak);
        assert!(rc.peak < 1.3 * dp.peak + 0.05);
    }
}
