//! The dedicated noise-cluster engine.
//!
//! "Since the noise cluster macromodel is a simple circuit, the total noise
//! waveform can be accurately and efficiently computed by means of a
//! dedicated engine embedded into the noise analysis tool." (§2.)
//!
//! The engine integrates the reduced interconnect `Ĉ·ẋ + Ĝ·x = B̂·u` with:
//!
//! * aggressor Thevenin drivers folded in as Norton pairs — a constant
//!   conductance `1/R_TH` on the port plus the injection `V_TH(t)/R_TH`;
//! * the known victim-input waveform's Miller feed-through
//!   `c_miller · dV_in/dt` injected at `DP_Vic`;
//! * the non-linear VCCS `I_DC = f(V_in(t), V_DP)` of Eq. (1) at `DP_Vic`,
//!   handled by a Newton iteration per trapezoidal step with the bilinear
//!   table's analytic `∂I/∂V_out` in the Jacobian.
//!
//! The whole system is a handful of unknowns, which is where the paper's
//! ~20× speed-up over transistor-level simulation comes from (see
//! `benches/golden_vs_macro.rs`).

use sna_spice::dc::NewtonOptions;
use sna_spice::error::{Error, Result};
use sna_spice::linalg::DenseMatrix;
use sna_spice::waveform::Waveform;

use crate::cluster::ClusterMacromodel;

/// Waveforms produced by one noise-analysis run (engine, baseline, or
/// golden reference) on a cluster.
#[derive(Debug, Clone)]
pub struct NoiseWaveforms {
    /// Victim driving-point voltage (`DP_Vic`), absolute volts.
    pub dp: Waveform,
    /// Victim receiver-tap voltage.
    pub receiver: Waveform,
    /// Aggressor driving-point voltages.
    pub aggressor_dps: Vec<Waveform>,
    /// Total Newton iterations spent (0 for linear runs).
    pub newton_iterations: usize,
}

impl NoiseWaveforms {
    /// Glitch metrics of the driving-point waveform around `q_out`.
    pub fn dp_metrics(&self, q_out: f64) -> sna_spice::waveform::GlitchMetrics {
        self.dp.glitch_metrics(q_out)
    }
}

/// Integrate the cluster macromodel. This is the paper's method.
///
/// # Errors
///
/// Fails on Newton non-convergence or singular step matrices.
pub fn simulate_macromodel(model: &ClusterMacromodel) -> Result<NoiseWaveforms> {
    simulate_macromodel_with(model, &NewtonOptions::default())
}

/// [`simulate_macromodel`] with explicit Newton controls.
///
/// # Errors
///
/// Fails on Newton non-convergence or singular step matrices.
pub fn simulate_macromodel_with(
    model: &ClusterMacromodel,
    newton: &NewtonOptions,
) -> Result<NoiseWaveforms> {
    let red = &model.reduced;
    let m = red.dim();
    let p = red.n_ports();
    let dt = model.spec.dt;
    let t_stop = model.spec.t_stop;
    let n_steps = (t_stop / dt).round() as usize;
    let vic = model.victim_dp_port();

    // Geff = Ĝ + Σ (1/R_TH) b_k b_kᵀ for aggressor ports.
    let mut geff = red.g.clone();
    for (k, th) in model.thevenins.iter().enumerate() {
        let port = model.aggressor_port(k);
        let g = 1.0 / th.rth;
        for i in 0..m {
            let bi = red.b[(i, port)];
            if bi == 0.0 {
                continue;
            }
            for j in 0..m {
                geff.add(i, j, g * bi * red.b[(j, port)]);
            }
        }
    }
    // Port current injections at time t (independent of the state).
    let inject = |t: f64| -> Vec<f64> {
        let mut u = vec![0.0; p];
        for (k, th) in model.thevenins.iter().enumerate() {
            u[model.aggressor_port(k)] = th.wave.eval(t) / th.rth;
        }
        u[vic] += model.c_miller_injection * model.dvin_dt(t);
        u
    };
    // B·u as a state-space vector.
    let bu = |u: &[f64]| -> Vec<f64> {
        let mut out = vec![0.0; m];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (pp, up) in u.iter().enumerate() {
                acc += red.b[(i, pp)] * up;
            }
            *o = acc;
        }
        out
    };
    let y_vic = |x: &[f64]| -> f64 {
        let mut acc = 0.0;
        for (i, &xi) in x.iter().enumerate().take(m) {
            acc += red.b[(i, vic)] * xi;
        }
        acc
    };

    // Newton solve of: A x + b_vic I_dc(vin, y) = rhs.
    let newton_solve = |a: &DenseMatrix,
                        rhs: &[f64],
                        vin: f64,
                        x0: &[f64],
                        iters: &mut usize|
     -> Result<Vec<f64>> {
        let mut x = x0.to_vec();
        for _ in 0..newton.max_iter {
            *iters += 1;
            let y = y_vic(&x);
            let eval = model.load_curve.table.eval(vin, y);
            let mut residual = a.mul_vec(&x);
            for i in 0..m {
                residual[i] += red.b[(i, vic)] * eval.z - rhs[i];
            }
            let mut jac = a.clone();
            for i in 0..m {
                let bi = red.b[(i, vic)];
                if bi == 0.0 {
                    continue;
                }
                for j in 0..m {
                    jac.add(i, j, bi * eval.dz_dy * red.b[(j, vic)]);
                }
            }
            let neg: Vec<f64> = residual.iter().map(|r| -r).collect();
            let dx = jac.lu()?.solve(&neg);
            let max_dx = dx.iter().fold(0.0_f64, |acc, &v| acc.max(v.abs()));
            let scale = if max_dx > newton.max_step {
                newton.max_step / max_dx
            } else {
                1.0
            };
            let mut done = true;
            for i in 0..m {
                let s = scale * dx[i];
                x[i] += s;
                if s.abs() > newton.reltol * x[i].abs() + newton.vntol {
                    done = false;
                }
            }
            if done && scale == 1.0 {
                return Ok(x);
            }
        }
        Err(Error::NonConvergence {
            analysis: "noise-engine",
            iterations: newton.max_iter,
            time: 0.0,
            residual: f64::NAN,
        })
    };

    let mut iters = 0usize;
    // DC initial condition: Geff x + b_vic I_dc = B u(0).
    let u0 = inject(0.0);
    let rhs0 = bu(&u0);
    let x0 = newton_solve(&geff, &rhs0, model.vin(0.0), &vec![0.0; m], &mut iters)?;

    // Trapezoidal stepping.
    let alpha = 2.0 / dt;
    let mut a_step = geff.clone();
    a_step.axpy(alpha, &red.c);
    // RHS companion matrix: (alpha C - Geff).
    let mut rhs_mat = DenseMatrix::zeros(m, m);
    rhs_mat.axpy(alpha, &red.c);
    rhs_mat.axpy(-1.0, &geff);

    let mut x = x0;
    let mut u_prev = u0;
    let mut times = Vec::with_capacity(n_steps + 1);
    let mut port_series: Vec<Vec<f64>> = vec![Vec::with_capacity(n_steps + 1); p];
    let record = |x: &[f64], series: &mut Vec<Vec<f64>>| {
        let ys = red.port_voltages(x);
        for (s, y) in series.iter_mut().zip(ys) {
            s.push(y);
        }
    };
    times.push(0.0);
    record(&x, &mut port_series);
    // Nonlinear current at the previous accepted point.
    let mut f_prev = model.load_curve.table.eval(model.vin(0.0), y_vic(&x)).z;
    for step in 1..=n_steps {
        let t = step as f64 * dt;
        let u = inject(t);
        // rhs = (alpha C - Geff) x0 - b_vic f(y0,t0) + B (u0 + u1)
        let mut rhs = rhs_mat.mul_vec(&x);
        let summed: Vec<f64> = u.iter().zip(&u_prev).map(|(a, b)| a + b).collect();
        let binj = bu(&summed);
        for i in 0..m {
            rhs[i] += binj[i] - red.b[(i, vic)] * f_prev;
        }
        x = newton_solve(&a_step, &rhs, model.vin(t), &x, &mut iters)?;
        times.push(t);
        record(&x, &mut port_series);
        u_prev = u;
        f_prev = model.load_curve.table.eval(model.vin(t), y_vic(&x)).z;
    }
    let mk = |series: Vec<f64>| {
        Waveform::from_samples(times.clone(), series).expect("monotone engine time axis")
    };
    let mut series = port_series.into_iter();
    let mut by_port: Vec<Waveform> = Vec::with_capacity(p);
    for _ in 0..p {
        by_port.push(mk(series.next().expect("port series")));
    }
    let dp = by_port[model.victim_dp_port()].clone();
    let receiver = by_port[model.victim_receiver_port()].clone();
    let aggressor_dps = (0..model.thevenins.len())
        .map(|k| by_port[model.aggressor_port(k)].clone())
        .collect();
    Ok(NoiseWaveforms {
        dp,
        receiver,
        aggressor_dps,
        newton_iterations: iters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterMacromodel;
    use crate::scenarios::table1_spec;

    #[test]
    fn quiet_cluster_stays_quiet() {
        // No aggressor switching (switch far in the future) and no input
        // glitch: the DP must sit at the quiescent level throughout.
        let mut spec = table1_spec();
        spec.victim.glitch = None;
        spec.aggressors[0].switch_time = 1.0; // 1 s — far outside the window
        let model = ClusterMacromodel::build(&spec).unwrap();
        let res = simulate_macromodel(&model).unwrap();
        let metrics = res.dp_metrics(model.q_out);
        assert!(
            metrics.peak < 0.02,
            "quiet cluster produced {} V of noise",
            metrics.peak
        );
    }

    #[test]
    fn injected_only_glitch_has_sane_shape() {
        let mut spec = table1_spec();
        spec.victim.glitch = None;
        let model = ClusterMacromodel::build(&spec).unwrap();
        let res = simulate_macromodel(&model).unwrap();
        let m = res.dp_metrics(model.q_out);
        // A rising aggressor on a low victim injects an upward glitch that
        // must stay well below the rail but clearly above the noise floor.
        assert!(m.peak > 0.05, "peak={}", m.peak);
        assert!(m.peak < model.spec.tech.vdd);
        assert_eq!(m.polarity, 1.0);
        // DP decays back to quiescence.
        assert!(res.dp.value_at(model.spec.t_stop).abs() < 0.03);
        // Aggressor DP ends at the rail.
        let agg_end = res.aggressor_dps[0].value_at(model.spec.t_stop);
        assert!(
            (agg_end - model.spec.tech.vdd).abs() < 0.03,
            "agg end {agg_end}"
        );
    }

    #[test]
    fn combined_exceeds_injected_only() {
        let spec = table1_spec();
        let model = ClusterMacromodel::build(&spec).unwrap();
        let combined = simulate_macromodel(&model).unwrap().dp_metrics(model.q_out);
        let mut quiet_spec = spec.clone();
        quiet_spec.victim.glitch = None;
        let model_quiet = ClusterMacromodel::build(&quiet_spec).unwrap();
        let injected = simulate_macromodel(&model_quiet)
            .unwrap()
            .dp_metrics(model_quiet.q_out);
        assert!(
            combined.peak > injected.peak,
            "combined {} <= injected {}",
            combined.peak,
            injected.peak
        );
    }

    #[test]
    fn receiver_sees_filtered_glitch() {
        let spec = table1_spec();
        let model = ClusterMacromodel::build(&spec).unwrap();
        let res = simulate_macromodel(&model).unwrap();
        let dp = res.dp_metrics(model.q_out);
        let rc = res.receiver.glitch_metrics(model.q_out);
        // The receiver tap sees a comparable glitch (lightly RC-filtered).
        assert!(rc.peak > 0.5 * dp.peak);
        assert!(rc.peak < 1.3 * dp.peak + 0.05);
    }
}
