//! Paper-style method comparison tables.
//!
//! [`MethodComparison::run`] evaluates one cluster with all four engines —
//! golden transistor-level ("ELDO™" column), linear superposition,
//! iterative Thevenin, and the non-linear VCCS macromodel — and formats the
//! rows the way Tables 1 and 2 of the paper do (peak in volts, area in
//! V·ps, signed error percentages against golden).

use std::fmt;
use std::time::{Duration, Instant};

use sna_spice::error::Result;
use sna_spice::waveform::GlitchMetrics;

use crate::cluster::{ClusterMacromodel, ClusterSpec};
use crate::engine::simulate_macromodel;
use crate::golden::simulate_golden;
use crate::superposition::simulate_superposition;
use crate::zolotov::{simulate_zolotov, ZolotovOptions};

/// One method's results on a cluster.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Method name.
    pub method: &'static str,
    /// Victim DP glitch metrics.
    pub metrics: GlitchMetrics,
    /// Signed peak error vs golden (%).
    pub peak_err_pct: f64,
    /// Signed area error vs golden (%).
    pub area_err_pct: f64,
    /// Signed width error vs golden (%).
    pub width_err_pct: f64,
    /// Wall-clock time of the analysis itself (excludes shared
    /// characterization).
    pub runtime: Duration,
}

/// Four-way comparison on one cluster.
#[derive(Debug, Clone)]
pub struct MethodComparison {
    /// Cluster identifier (free-form).
    pub id: String,
    /// Golden metrics (the reference row).
    pub golden: ComparisonRow,
    /// The paper's macromodel.
    pub macromodel: ComparisonRow,
    /// Linear superposition baseline.
    pub superposition: ComparisonRow,
    /// Iterative-Thevenin baseline.
    pub zolotov: ComparisonRow,
    /// Time spent building the macromodel (characterization + reduction),
    /// amortized across every use of the cell/cluster in a real flow.
    pub build_time: Duration,
}

fn row(
    method: &'static str,
    metrics: GlitchMetrics,
    golden: &GlitchMetrics,
    runtime: Duration,
) -> ComparisonRow {
    let e = metrics.error_percent_vs(golden);
    ComparisonRow {
        method,
        metrics,
        peak_err_pct: e.peak_pct,
        area_err_pct: e.area_pct,
        width_err_pct: e.width_pct,
        runtime,
    }
}

impl MethodComparison {
    /// Evaluate all four methods on `spec`.
    ///
    /// # Errors
    ///
    /// Propagates any engine failure.
    pub fn run(id: impl Into<String>, spec: &ClusterSpec) -> Result<Self> {
        let t0 = Instant::now();
        let model = ClusterMacromodel::build(spec)?;
        let build_time = t0.elapsed();
        let q = model.q_out;

        let t0 = Instant::now();
        let gold = simulate_golden(spec)?;
        let t_gold = t0.elapsed();
        let gm = gold.dp_metrics(q);

        let t0 = Instant::now();
        let eng = simulate_macromodel(&model)?;
        let t_eng = t0.elapsed();

        let t0 = Instant::now();
        let sup = simulate_superposition(&model)?;
        let t_sup = t0.elapsed();

        let t0 = Instant::now();
        let zol = simulate_zolotov(&model, &ZolotovOptions::default())?;
        let t_zol = t0.elapsed();

        Ok(MethodComparison {
            id: id.into(),
            golden: row("golden (spice)", gm, &gm, t_gold),
            macromodel: row("macromodel (this paper)", eng.dp_metrics(q), &gm, t_eng),
            superposition: row("linear superposition", sup.dp_metrics(q), &gm, t_sup),
            zolotov: row("iterative thevenin [4]", zol.dp_metrics(q), &gm, t_zol),
            build_time,
        })
    }

    /// Golden-vs-macromodel speed-up factor (the paper reports ~20×).
    pub fn speedup(&self) -> f64 {
        self.golden.runtime.as_secs_f64() / self.macromodel.runtime.as_secs_f64().max(1e-9)
    }

    /// All non-golden rows.
    pub fn estimate_rows(&self) -> [&ComparisonRow; 3] {
        [&self.superposition, &self.zolotov, &self.macromodel]
    }
}

impl fmt::Display for MethodComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cluster: {}", self.id)?;
        writeln!(
            f,
            "{:<26} {:>9} {:>9} {:>11} {:>9} {:>10}",
            "method", "Peak (V)", "Err%", "Area (V*ps)", "Err%", "time"
        )?;
        for r in [
            &self.golden,
            &self.superposition,
            &self.zolotov,
            &self.macromodel,
        ] {
            let (peak_err, area_err) = if std::ptr::eq(r, &self.golden) {
                ("-".to_string(), "-".to_string())
            } else {
                (
                    format!("{:+.1}", r.peak_err_pct),
                    format!("{:+.1}", r.area_err_pct),
                )
            };
            writeln!(
                f,
                "{:<26} {:>9.3} {:>9} {:>11.1} {:>9} {:>9.2?}",
                r.method,
                r.metrics.peak,
                peak_err,
                r.metrics.area * 1e12,
                area_err,
                r.runtime
            )?;
        }
        writeln!(f, "speed-up (golden / macromodel): {:.1}x", self.speedup())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::table1_spec;

    #[test]
    fn comparison_runs_and_formats() {
        let mut spec = table1_spec();
        // Keep the test fast: coarser interconnect, shorter horizon.
        spec.bus.segments = 8;
        spec.t_stop = 2.0e-9;
        let cmp = MethodComparison::run("t1-quick", &spec).unwrap();
        let text = cmp.to_string();
        assert!(text.contains("Peak (V)"));
        assert!(text.contains("macromodel"));
        assert!(text.contains("speed-up"));
        // Reference row has zero error by construction.
        assert_eq!(cmp.golden.peak_err_pct, 0.0);
        // Macromodel must beat superposition on peak accuracy.
        assert!(
            cmp.macromodel.peak_err_pct.abs() < cmp.superposition.peak_err_pct.abs(),
            "macromodel {}% vs superposition {}%",
            cmp.macromodel.peak_err_pct,
            cmp.superposition.peak_err_pct
        );
        // The engine must be faster than golden. (The headline ~20x factor
        // is measured by the dedicated bench binaries on a quiet machine;
        // unit tests run in parallel, so keep this threshold contention-
        // proof.)
        assert!(cmp.speedup() > 1.2, "speedup {}", cmp.speedup());
    }
}
