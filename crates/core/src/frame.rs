//! FRAME-style constrained worst-case alignment: timing-window and
//! mutual-exclusion aggressor correlation pruning.
//!
//! The pessimistic flow assumes every aggressor can switch, aligned for
//! maximum damage. Real designs constrain aggressors two ways: STA gives
//! each net a switching *window* `[t_min, t_max]`, and logic implies
//! *mutual exclusion* (e.g. one-hot decoder outputs — at most one member
//! of the group toggles per cycle). Following the FRAME approach
//! (PAPERS.md), this module enumerates the discrete alignment-candidate
//! space implied by those constraints, kills infeasible candidates with
//! interval arithmetic **before** any simulation, and evaluates the
//! survivors K-at-a-time through the batched macromodel engine
//! ([`simulate_macromodel_timings`]).
//!
//! Candidate-space semantics:
//!
//! * Unconstrained aggressors (no window, no group) always switch at
//!   their nominal time — the pessimistic assumption stands for them.
//! * A *constrained* aggressor contributes a choice set: `Off` (it does
//!   not switch this cycle) plus `grid` switch times spanning its window
//!   (or its nominal time when it is mexcl-constrained only).
//! * A candidate is **window-infeasible** when some switching aggressor's
//!   edge `[t, t + slew]` cannot overlap the victim's sensitivity window.
//! * A candidate is **mexcl-infeasible** when two or more switching
//!   aggressors share a mutual-exclusion group.
//!
//! The feasible set always contains the all-`Off` candidate, so the
//! constrained margin is well defined; and since it is a subset of the
//! exhaustive set, the constrained margin can never be *worse* than the
//! exhaustive one over the same space (a proptest pins this).

use sna_obs::{count, Metric};
use sna_spice::backend::BackendKind;
use sna_spice::dc::NewtonOptions;
use sna_spice::error::{Error, Result};
use sna_spice::waveform::GlitchMetrics;

use crate::cluster::ClusterMacromodel;
use crate::engine::{simulate_macromodel_timings, TimingLane};
use crate::nrc::NoiseRejectionCurve;

/// How many lanes one batched engine call carries. Lane arithmetic is
/// batch-composition-independent, so this is purely a working-set knob.
const BATCH_K: usize = 8;

/// Hard cap on the enumerated candidate space — beyond this the
/// constraint set is too loose for discrete enumeration to make sense.
const MAX_CANDIDATES: u64 = 65_536;

/// Pruning bookkeeping of one constrained analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameCounters {
    /// Size of the structural candidate space (product of choice sets).
    pub considered: u64,
    /// Candidates killed by window/sensitivity interval analysis.
    pub pruned_window: u64,
    /// Window-surviving candidates killed by mutual exclusion.
    pub pruned_mexcl: u64,
    /// Candidates actually simulated (feasible set).
    pub simulated: u64,
}

impl FrameCounters {
    /// Fraction of the candidate space killed before simulation.
    pub fn prune_rate(&self) -> f64 {
        if self.considered == 0 {
            0.0
        } else {
            (self.pruned_window + self.pruned_mexcl) as f64 / self.considered as f64
        }
    }
}

/// Result of the constrained worst-case analysis on one cluster.
#[derive(Debug, Clone)]
pub struct FrameOutcome {
    /// Constrained NRC margin (V) at the receiver — the *minimum* margin
    /// over the feasible candidate set (never below the pessimistic
    /// margin's floor, since feasible ⊆ exhaustive).
    pub margin: f64,
    /// Receiver glitch metrics at the constrained worst case.
    pub receiver_metrics: GlitchMetrics,
    /// Per-aggressor switch times of the worst feasible candidate (s);
    /// non-switching aggressors carry the past-horizon `Off` time.
    pub switch_times: Vec<f64>,
    /// Which aggressors switch in the worst feasible candidate.
    pub switching: Vec<bool>,
    /// Enumeration/pruning counters.
    pub counters: FrameCounters,
}

/// The choice set of one constrained aggressor.
struct ChoiceSet {
    /// Aggressor index in cluster order.
    agg: usize,
    /// Switch-time choices; index 0 is always `Off`.
    times: Vec<Choice>,
}

#[derive(Clone, Copy)]
enum Choice {
    /// The aggressor does not switch this cycle.
    Off,
    /// The aggressor switches at the given time (s).
    At(f64),
}

/// Build the per-aggressor choice sets. `grid` window sample points are
/// distributed inclusively over `[t_min, t_max]` (one point when the
/// window is degenerate or `grid == 1`).
fn choice_sets(model: &ClusterMacromodel, grid: usize) -> Vec<ChoiceSet> {
    let grid = grid.max(1);
    let mut sets = Vec::new();
    for (k, agg) in model.spec.aggressors.iter().enumerate() {
        if !agg.is_constrained() {
            continue;
        }
        let mut times = vec![Choice::Off];
        match &agg.window {
            Some(w) => {
                let span = w.t_max - w.t_min;
                let n = if span == 0.0 { 1 } else { grid };
                for i in 0..n {
                    let t = if n == 1 {
                        w.t_min
                    } else {
                        w.t_min + span * i as f64 / (n - 1) as f64
                    };
                    times.push(Choice::At(t));
                }
            }
            None => times.push(Choice::At(agg.switch_time)),
        }
        sets.push(ChoiceSet { agg: k, times });
    }
    sets
}

/// Classification of one candidate before simulation.
enum Feasibility {
    Feasible,
    PrunedWindow,
    PrunedMexcl,
}

/// Interval-arithmetic feasibility of one candidate: window overlap
/// first, then mutual exclusion among the switching survivors.
fn classify(model: &ClusterMacromodel, sets: &[ChoiceSet], digits: &[usize]) -> Feasibility {
    let sensitivity = &model.spec.victim.sensitivity;
    for (set, &d) in sets.iter().zip(digits) {
        if let Choice::At(t) = set.times[d] {
            let agg = &model.spec.aggressors[set.agg];
            if let Some(s) = sensitivity {
                if !s.overlaps_edge(t, agg.input_slew) {
                    return Feasibility::PrunedWindow;
                }
            }
        }
    }
    // Mutual exclusion: at most one switching member per group.
    for (i, (set_i, &di)) in sets.iter().zip(digits).enumerate() {
        if matches!(set_i.times[di], Choice::Off) {
            continue;
        }
        let Some(gi) = model.spec.aggressors[set_i.agg].mexcl_group else {
            continue;
        };
        for (set_j, &dj) in sets.iter().zip(digits).take(i) {
            if matches!(set_j.times[dj], Choice::Off) {
                continue;
            }
            if model.spec.aggressors[set_j.agg].mexcl_group == Some(gi) {
                return Feasibility::PrunedMexcl;
            }
        }
    }
    Feasibility::Feasible
}

/// Materialize a candidate's per-aggressor switch times. `Off` pushes the
/// event past the simulation horizon, freezing the aggressor at its
/// initial rail (deterministically — every `Off` uses the same time).
fn candidate_times(
    model: &ClusterMacromodel,
    sets: &[ChoiceSet],
    digits: &[usize],
) -> (Vec<f64>, Vec<bool>) {
    let off_time = model.spec.t_stop + 1.0;
    let mut times: Vec<f64> = model
        .spec
        .aggressors
        .iter()
        .map(|a| a.switch_time)
        .collect();
    let mut switching = vec![true; times.len()];
    for (set, &d) in sets.iter().zip(digits) {
        match set.times[d] {
            Choice::Off => {
                times[set.agg] = off_time;
                switching[set.agg] = false;
            }
            Choice::At(t) => times[set.agg] = t,
        }
    }
    (times, switching)
}

/// Enumerate the constrained alignment space of `model`, prune
/// infeasible candidates (unless `exhaustive`), evaluate the survivors
/// through the batched engine, and return the worst (minimum-margin)
/// feasible outcome. Ties break toward the earliest candidate in
/// enumeration order, making the result independent of batching.
///
/// `grid` is the number of window sample points per constrained
/// aggressor; `exhaustive` simulates every structural candidate instead
/// of pruning (the FRAME baseline — counters then show zero pruning).
///
/// # Errors
///
/// Fails when the candidate space exceeds the enumeration cap, and
/// propagates engine failures.
pub fn constrained_worst_case(
    model: &ClusterMacromodel,
    nrc: &NoiseRejectionCurve,
    grid: usize,
    exhaustive: bool,
    backend: BackendKind,
) -> Result<FrameOutcome> {
    let sets = choice_sets(model, grid);
    let mut counters = FrameCounters::default();
    let space: u64 = sets.iter().map(|s| s.times.len() as u64).product();
    if space > MAX_CANDIDATES {
        return Err(Error::InvalidAnalysis(format!(
            "frame candidate space {space} exceeds the enumeration cap \
             {MAX_CANDIDATES} (reduce --frame-grid or tighten constraints)"
        )));
    }
    counters.considered = space;

    // Mixed-radix enumeration, feasibility classification, batch fill.
    let mut digits = vec![0usize; sets.len()];
    let mut feasible: Vec<(Vec<f64>, Vec<bool>)> = Vec::new();
    loop {
        if exhaustive {
            feasible.push(candidate_times(model, &sets, &digits));
        } else {
            match classify(model, &sets, &digits) {
                Feasibility::Feasible => feasible.push(candidate_times(model, &sets, &digits)),
                Feasibility::PrunedWindow => counters.pruned_window += 1,
                Feasibility::PrunedMexcl => counters.pruned_mexcl += 1,
            }
        }
        // Increment the mixed-radix counter.
        let mut pos = 0;
        loop {
            if pos == digits.len() {
                break;
            }
            digits[pos] += 1;
            if digits[pos] < sets[pos].times.len() {
                break;
            }
            digits[pos] = 0;
            pos += 1;
        }
        if pos == digits.len() {
            break;
        }
    }
    counters.simulated = feasible.len() as u64;

    // Batched evaluation, K lanes at a time. Lane arithmetic is
    // batch-composition-independent, so chunking cannot change results.
    let newton = NewtonOptions::default();
    let mut best: Option<(f64, GlitchMetrics, usize)> = None;
    for (chunk_idx, chunk) in feasible.chunks(BATCH_K).enumerate() {
        let lanes: Vec<TimingLane> = chunk
            .iter()
            .map(|(times, _)| TimingLane {
                switch_times: times.clone(),
                glitch_peak: None,
            })
            .collect();
        let waves = simulate_macromodel_timings(model, &lanes, &newton, backend)?;
        for (off, w) in waves.iter().enumerate() {
            let rm = w.receiver.glitch_metrics(model.q_out);
            let margin = nrc.margin(rm.width, rm.peak);
            let idx = chunk_idx * BATCH_K + off;
            let replace = match &best {
                None => true,
                Some((m, _, _)) => margin.total_cmp(m).is_lt(),
            };
            if replace {
                best = Some((margin, rm, idx));
            }
        }
    }
    let (margin, receiver_metrics, idx) = best.expect("feasible set contains all-Off");
    let (switch_times, switching) = feasible[idx].clone();
    count(Metric::FrameClusters, 1);
    count(Metric::FrameCandidatesConsidered, counters.considered);
    count(Metric::FramePrunedWindow, counters.pruned_window);
    count(Metric::FramePrunedMexcl, counters.pruned_mexcl);
    count(Metric::FrameSimulated, counters.simulated);
    Ok(FrameOutcome {
        margin,
        receiver_metrics,
        switch_times,
        switching,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterMacromodel, SwitchingWindow};
    use crate::nrc::characterize_nrc;
    use crate::scenarios::table2_spec;
    use sna_cells::Cell;
    use sna_spice::units::{NS, PS};

    fn nrc() -> NoiseRejectionCurve {
        let tech = sna_cells::Technology::cmos130();
        characterize_nrc(
            &Cell::inv(tech, 1.0),
            true,
            &[100.0 * PS, 300.0 * PS, 900.0 * PS],
        )
        .unwrap()
    }

    #[test]
    fn unconstrained_cluster_has_empty_choice_space() {
        let spec = table2_spec();
        let model = ClusterMacromodel::build(&spec).unwrap();
        let sets = choice_sets(&model, 4);
        assert!(sets.is_empty());
        // The degenerate enumeration still evaluates exactly one
        // candidate: everything at nominal.
        let out = constrained_worst_case(&model, &nrc(), 4, false, BackendKind::Scalar).unwrap();
        assert_eq!(out.counters.considered, 1);
        assert_eq!(out.counters.simulated, 1);
        assert_eq!(out.counters.pruned_window + out.counters.pruned_mexcl, 0);
        assert!(out.switching.iter().all(|&s| s));
    }

    #[test]
    fn mexcl_prunes_pairs_and_window_prunes_misses() {
        let mut spec = table2_spec();
        // Both aggressors in one mexcl group, each with a 2-point window;
        // one window placed entirely after the victim stops caring.
        spec.aggressors[0].mexcl_group = Some(1);
        spec.aggressors[1].mexcl_group = Some(1);
        spec.aggressors[0].window = Some(SwitchingWindow::new(0.3 * NS, 0.5 * NS));
        spec.aggressors[1].window = Some(SwitchingWindow::new(2.4 * NS, 2.6 * NS));
        spec.victim.sensitivity = Some(SwitchingWindow::new(0.0, 1.2 * NS));
        let model = ClusterMacromodel::build(&spec).unwrap();
        let out = constrained_worst_case(&model, &nrc(), 2, false, BackendKind::Scalar).unwrap();
        // Choice sets: {Off, t1, t2} × {Off, t1, t2} = 9 candidates.
        assert_eq!(out.counters.considered, 9);
        // Aggressor 1's window misses the sensitivity window entirely:
        // every candidate where it switches dies on window overlap (3
        // partners × 2 times = 6), leaving {Off,t,t} × {Off} = 3, none of
        // which violate mexcl (aggressor 1 never switches).
        assert_eq!(out.counters.pruned_window, 6);
        assert_eq!(out.counters.pruned_mexcl, 0);
        assert_eq!(out.counters.simulated, 3);
        assert!(out.counters.prune_rate() > 0.5);
        // The worst case switches aggressor 0 (more noise than all-Off).
        assert!(out.switching[0]);
        assert!(!out.switching[1]);
    }

    #[test]
    fn mexcl_alone_kills_simultaneous_switching() {
        let mut spec = table2_spec();
        spec.aggressors[0].mexcl_group = Some(7);
        spec.aggressors[1].mexcl_group = Some(7);
        let model = ClusterMacromodel::build(&spec).unwrap();
        let out = constrained_worst_case(&model, &nrc(), 4, false, BackendKind::Scalar).unwrap();
        // {Off, nominal} × {Off, nominal}: the both-switch candidate is
        // the only mexcl violation.
        assert_eq!(out.counters.considered, 4);
        assert_eq!(out.counters.pruned_mexcl, 1);
        assert_eq!(out.counters.simulated, 3);
        // At most one aggressor switches in the reported worst case.
        assert!(out.switching.iter().filter(|&&s| s).count() <= 1);
    }

    #[test]
    fn exhaustive_mode_simulates_the_full_space() {
        let mut spec = table2_spec();
        spec.aggressors[0].mexcl_group = Some(7);
        spec.aggressors[1].mexcl_group = Some(7);
        let model = ClusterMacromodel::build(&spec).unwrap();
        let n = nrc();
        let pruned = constrained_worst_case(&model, &n, 4, false, BackendKind::Scalar).unwrap();
        let full = constrained_worst_case(&model, &n, 4, true, BackendKind::Scalar).unwrap();
        assert_eq!(full.counters.simulated, full.counters.considered);
        assert_eq!(full.counters.pruned_window + full.counters.pruned_mexcl, 0);
        // Exhaustive explores a superset: margin can only be <= pruned's,
        // and in this mexcl case strictly (both-switch is the worst).
        assert!(full.margin <= pruned.margin);
    }

    #[test]
    fn fully_feasible_constraints_match_exhaustive_bitwise() {
        let mut spec = table2_spec();
        // Windows inside an always-sensitive victim: nothing prunes.
        spec.aggressors[0].window = Some(SwitchingWindow::new(0.3 * NS, 0.6 * NS));
        spec.aggressors[1].window = Some(SwitchingWindow::new(0.2 * NS, 0.7 * NS));
        let model = ClusterMacromodel::build(&spec).unwrap();
        let n = nrc();
        let pruned = constrained_worst_case(&model, &n, 3, false, BackendKind::Scalar).unwrap();
        let full = constrained_worst_case(&model, &n, 3, true, BackendKind::Scalar).unwrap();
        assert_eq!(pruned.counters.pruned_window, 0);
        assert_eq!(pruned.counters.pruned_mexcl, 0);
        assert_eq!(pruned.counters.simulated, full.counters.simulated);
        assert_eq!(pruned.margin.to_bits(), full.margin.to_bits());
        assert_eq!(pruned.switch_times, full.switch_times);
        // And the backends agree bit-for-bit too.
        let batched = constrained_worst_case(&model, &n, 3, false, BackendKind::Batched).unwrap();
        assert_eq!(pruned.margin.to_bits(), batched.margin.to_bits());
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Constrained margin is never more pessimistic than the
        /// exhaustive one over the same candidate space: feasible ⊆
        /// exhaustive, so min-margin over the subset is >= over the set.
        #[test]
        fn prop_constrained_never_more_pessimistic(
            w0_lo in 0.2f64..0.6,
            w0_span in 0.0f64..0.4,
            w1_lo in 0.2f64..2.2,
            w1_span in 0.0f64..0.4,
            s_hi in 0.6f64..1.6,
            mexcl_sel in 0u32..2,
        ) {
            let mut spec = table2_spec();
            spec.aggressors[0].window =
                Some(SwitchingWindow::new(w0_lo * NS, (w0_lo + w0_span) * NS));
            spec.aggressors[1].window =
                Some(SwitchingWindow::new(w1_lo * NS, (w1_lo + w1_span) * NS));
            let mexcl = mexcl_sel == 1;
            if mexcl {
                spec.aggressors[0].mexcl_group = Some(3);
                spec.aggressors[1].mexcl_group = Some(3);
            }
            spec.victim.sensitivity = Some(SwitchingWindow::new(0.0, s_hi * NS));
            let model = ClusterMacromodel::build(&spec).unwrap();
            let n = nrc();
            let pruned =
                constrained_worst_case(&model, &n, 2, false, BackendKind::Scalar).unwrap();
            let full =
                constrained_worst_case(&model, &n, 2, true, BackendKind::Scalar).unwrap();
            prop_assert!(
                pruned.margin >= full.margin,
                "constrained {} more pessimistic than exhaustive {}",
                pruned.margin,
                full.margin
            );
            prop_assert_eq!(
                pruned.counters.considered,
                full.counters.considered
            );
            prop_assert_eq!(
                pruned.counters.pruned_window
                    + pruned.counters.pruned_mexcl
                    + pruned.counters.simulated,
                pruned.counters.considered
            );
        }

        /// On a fully-feasible constraint set, pruning is a no-op: same
        /// worst candidate, bitwise-equal metrics.
        #[test]
        fn prop_fully_feasible_equals_exhaustive_bitwise(
            w0_lo in 0.25f64..0.45,
            w1_lo in 0.25f64..0.45,
            grid in 2usize..4,
        ) {
            let mut spec = table2_spec();
            spec.aggressors[0].window =
                Some(SwitchingWindow::new(w0_lo * NS, (w0_lo + 0.2) * NS));
            spec.aggressors[1].window =
                Some(SwitchingWindow::new(w1_lo * NS, (w1_lo + 0.2) * NS));
            // No sensitivity window, no mexcl: nothing can prune.
            let model = ClusterMacromodel::build(&spec).unwrap();
            let n = nrc();
            let pruned =
                constrained_worst_case(&model, &n, grid, false, BackendKind::Scalar).unwrap();
            let full =
                constrained_worst_case(&model, &n, grid, true, BackendKind::Scalar).unwrap();
            prop_assert_eq!(pruned.counters.pruned_window, 0);
            prop_assert_eq!(pruned.counters.pruned_mexcl, 0);
            prop_assert_eq!(pruned.counters.simulated, full.counters.simulated);
            prop_assert_eq!(pruned.margin.to_bits(), full.margin.to_bits());
            prop_assert_eq!(
                pruned.receiver_metrics.peak.to_bits(),
                full.receiver_metrics.peak.to_bits()
            );
            prop_assert_eq!(
                pruned.receiver_metrics.width.to_bits(),
                full.receiver_metrics.width.to_bits()
            );
            prop_assert_eq!(pruned.switch_times.clone(), full.switch_times.clone());
            prop_assert_eq!(pruned.switching.clone(), full.switching.clone());
        }
    }

    #[test]
    fn candidate_cap_rejects_absurd_grids() {
        let mut spec = table2_spec();
        spec.aggressors[0].window = Some(SwitchingWindow::new(0.0, 1.0 * NS));
        spec.aggressors[1].window = Some(SwitchingWindow::new(0.0, 1.0 * NS));
        let model = ClusterMacromodel::build(&spec).unwrap();
        let err = constrained_worst_case(&model, &nrc(), 600, false, BackendKind::Scalar);
        assert!(err.is_err());
    }
}
