//! Golden transistor-level reference simulation.
//!
//! Plays the role ELDO™ plays in the paper's Tables 1 and 2: the victim and
//! aggressor drivers at transistor level, the full π-segmented coupled RC
//! ladders, and capacitive receivers, integrated by `sna-spice`'s Newton
//! transient. Every accuracy number in EXPERIMENTS.md is an error *against
//! this simulation* — exactly the comparison methodology of the paper
//! (their golden engine was ELDO on their device models; ours is this
//! simulator on our device models; see DESIGN.md §2).

use sna_spice::devices::SourceWaveform;
use sna_spice::error::Result;
use sna_spice::netlist::{Circuit, NodeId};
use sna_spice::tran::{transient, TranParams};

use crate::cluster::ClusterSpec;
use crate::engine::NoiseWaveforms;

/// Assemble the transistor-level cluster circuit. Returns the circuit plus
/// the probe nodes `(victim_dp, victim_receiver_tap, aggressor_dps)`.
///
/// # Errors
///
/// Propagates validation and element errors.
pub fn build_golden_circuit(spec: &ClusterSpec) -> Result<(Circuit, NodeId, NodeId, Vec<NodeId>)> {
    spec.validate()?;
    let vdd_v = spec.tech.vdd;
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.add_vsource("Vdd", vdd, Circuit::gnd(), SourceWaveform::Dc(vdd_v));
    // Interconnect.
    let wires = spec.bus.instantiate(&mut ckt, "net")?;
    let vic_dp = wires[0].near;
    let vic_far = wires[0].far;
    // Victim receiver load.
    ckt.add_capacitor(
        "Crecv_vic",
        vic_far,
        Circuit::gnd(),
        spec.victim.receiver.input_capacitance(),
    )?;
    // Victim driver at transistor level, output onto the wire.
    let mode = &spec.victim.mode;
    let q_in = mode.input_levels[mode.noisy_input];
    let vin_wave = match &spec.victim.glitch {
        Some(g) => g.waveform(q_in, vdd_v),
        None => SourceWaveform::Dc(q_in),
    };
    let mut vic_inputs = Vec::with_capacity(spec.victim.cell.input_count());
    for (i, &level) in mode.input_levels.iter().enumerate() {
        let node = ckt.node(&format!("vic_in{i}"));
        let wave = if i == mode.noisy_input {
            vin_wave.clone()
        } else {
            SourceWaveform::Dc(level)
        };
        ckt.add_vsource(&format!("Vvic_in{i}"), node, Circuit::gnd(), wave);
        vic_inputs.push(node);
    }
    spec.victim
        .cell
        .instantiate(&mut ckt, "vic_drv", &vic_inputs, vic_dp, vdd)?;
    // Aggressors: transistor drivers with input ramps; receiver caps at
    // their far ends.
    let mut agg_dps = Vec::with_capacity(spec.aggressors.len());
    for (k, agg) in spec.aggressors.iter().enumerate() {
        let agg_dp = wires[k + 1].near;
        agg_dps.push(agg_dp);
        if agg.receiver_cap > 0.0 {
            ckt.add_capacitor(
                &format!("Crecv_a{k}"),
                wires[k + 1].far,
                Circuit::gnd(),
                agg.receiver_cap,
            )?;
        }
        let input_rising = agg.rising ^ agg.cell.is_inverting();
        let (v0, v1) = if input_rising {
            (0.0, vdd_v)
        } else {
            (vdd_v, 0.0)
        };
        let inp = ckt.node(&format!("agg{k}_in"));
        ckt.add_vsource(
            &format!("Vagg{k}_in"),
            inp,
            Circuit::gnd(),
            SourceWaveform::Ramp {
                v0,
                v1,
                t_start: agg.switch_time,
                t_rise: agg.input_slew,
            },
        );
        // All driver inputs switch together (worst-case event).
        let inputs = vec![inp; agg.cell.input_count()];
        agg.cell
            .instantiate(&mut ckt, &format!("agg{k}_drv"), &inputs, agg_dp, vdd)?;
    }
    Ok((ckt, vic_dp, vic_far, agg_dps))
}

/// Run the golden transistor-level transient.
///
/// # Errors
///
/// Propagates circuit-assembly and simulation failures.
pub fn simulate_golden(spec: &ClusterSpec) -> Result<NoiseWaveforms> {
    let (ckt, vic_dp, vic_far, agg_dps) = build_golden_circuit(spec)?;
    let params = TranParams::new(spec.t_stop, spec.dt);
    let res = transient(&ckt, &params)?;
    Ok(NoiseWaveforms {
        dp: res.node_waveform(vic_dp),
        receiver: res.node_waveform(vic_far),
        aggressor_dps: agg_dps.iter().map(|&n| res.node_waveform(n)).collect(),
        newton_iterations: res.newton_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::table1_spec;

    #[test]
    fn golden_circuit_is_structurally_sound() {
        let spec = table1_spec();
        let (ckt, vic_dp, vic_far, agg_dps) = build_golden_circuit(&spec).unwrap();
        ckt.validate().unwrap();
        assert_ne!(vic_dp, vic_far);
        assert_eq!(agg_dps.len(), 1);
        // Victim driver + aggressor driver MOSFETs present.
        assert!(ckt.find_element("vic_drv.mna").is_some());
        assert!(ckt.find_element("agg0_drv.mn").is_some());
        assert!(ckt.is_nonlinear());
    }

    #[test]
    fn golden_combined_noise_plausible() {
        let spec = table1_spec();
        let model_q_out = spec.victim.mode.output_level;
        let res = simulate_golden(&spec).unwrap();
        let m = res.dp_metrics(model_q_out);
        // Upward glitch on a low-held NAND2, clearly above the floor and
        // below the rail.
        assert!(m.peak > 0.1, "peak={}", m.peak);
        assert!(m.peak < spec.tech.vdd);
        assert_eq!(m.polarity, 1.0);
        // Settles back.
        assert!(res.dp.value_at(spec.t_stop).abs() < 0.05);
    }
}
