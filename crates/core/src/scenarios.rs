//! Canonical cluster scenarios from the paper's evaluation.
//!
//! * [`table1_spec`] — §3 / Table 1: 0.13 µm, two 500 µm parallel M4
//!   wires, INV aggressor, NAND2 victim, one rising aggressor plus one
//!   glitch propagating through the victim driver.
//! * [`table2_spec`] — §3 / Table 2: two in-phase aggressors and one
//!   propagating glitch, worst-case overlapped.
//! * [`sweep_specs`] — §3 accuracy-claim sweep: "several noise clusters in
//!   0.13 µm and 90 nm technology" across wire lengths, aggressor counts,
//!   victim cells, and glitch presence.

use sna_cells::characterize::CharacterizeOptions;
use sna_cells::{Cell, CellType, Technology};
use sna_interconnect::{CoupledBus, CouplingGeom, WireGeom};
use sna_spice::units::{NS, PS, UM};

use crate::cluster::{AggressorSpec, ClusterSpec, InputGlitch, VictimSpec};

/// Characterization grid used by the scenarios (33² per the DESIGN.md
/// default; override `char_opts` for the resolution ablation).
fn default_opts() -> CharacterizeOptions {
    CharacterizeOptions::default()
}

/// Bus of `n` parallel wires of `len_um` µm on the technology's metal-4,
/// with nearest-neighbor coupling; wire 0 is the victim.
pub fn m4_bus(tech: &Technology, n: usize, len_um: f64, segments: usize) -> CoupledBus {
    let m4 = tech.metal(4);
    let wire = WireGeom::new(len_um * UM, m4.r_per_m, m4.cg_per_m);
    let wires = vec![wire; n];
    let couplings = (0..n.saturating_sub(1))
        .map(|i| CouplingGeom::full(i, i + 1, m4.cc_per_m))
        .collect();
    CoupledBus::new(wires, couplings, segments).expect("static bus topology")
}

/// The Table-1 cluster. The glitch timing places the propagated peak on
/// top of the injected peak (worst case, as in the paper's combination
/// experiment).
pub fn table1_spec() -> ClusterSpec {
    let tech = Technology::cmos130();
    let bus = {
        let m4 = tech.metal(4);
        let wire = WireGeom::new(500.0 * UM, m4.r_per_m, m4.cg_per_m);
        CoupledBus::parallel_pair(wire, wire, m4.cc_per_m, 20)
    };
    let victim_cell = Cell::nand2(tech.clone(), 1.0);
    let mode = victim_cell.holding_low_mode();
    ClusterSpec {
        tech: tech.clone(),
        victim: VictimSpec {
            cell: victim_cell,
            mode,
            glitch: Some(InputGlitch {
                height: 0.55 * tech.vdd,
                width: 600.0 * PS,
                t_peak: 0.55 * NS,
            }),
            receiver: Cell::inv(tech.clone(), 1.0),
            sensitivity: None,
        },
        aggressors: vec![AggressorSpec {
            cell: Cell::inv(tech.clone(), 2.5),
            rising: true,
            input_slew: 60.0 * PS,
            switch_time: 0.4 * NS,
            receiver_cap: Cell::inv(tech, 1.0).input_capacitance(),
            window: None,
            mexcl_group: None,
        }],
        bus,
        char_opts: default_opts(),
        t_stop: 3.0 * NS,
        dt: 1.0 * PS,
    }
}

/// The Table-2 cluster: two in-phase aggressors flanking the victim plus
/// the same propagating glitch ("worst-case overlapping").
pub fn table2_spec() -> ClusterSpec {
    let tech = Technology::cmos130();
    let bus = m4_bus(&tech, 3, 500.0, 20);
    // Victim in the middle: reorder couplings so wire 0 (victim) couples to
    // both wires 1 and 2.
    let m4 = tech.metal(4);
    let wire = WireGeom::new(500.0 * UM, m4.r_per_m, m4.cg_per_m);
    let bus = CoupledBus::new(
        vec![wire; 3],
        vec![
            CouplingGeom::full(0, 1, m4.cc_per_m),
            CouplingGeom::full(0, 2, m4.cc_per_m),
        ],
        bus.segments,
    )
    .expect("static bus topology");
    let victim_cell = Cell::nand2(tech.clone(), 1.0);
    let mode = victim_cell.holding_low_mode();
    let agg = |_k: usize| AggressorSpec {
        cell: Cell::inv(tech.clone(), 2.5),
        rising: true,
        input_slew: 60.0 * PS,
        switch_time: 0.4 * NS,
        receiver_cap: Cell::inv(tech.clone(), 1.0).input_capacitance(),
        window: None,
        mexcl_group: None,
    };
    ClusterSpec {
        tech: tech.clone(),
        victim: VictimSpec {
            cell: victim_cell,
            mode,
            glitch: Some(InputGlitch {
                height: 0.55 * tech.vdd,
                width: 600.0 * PS,
                t_peak: 0.55 * NS,
            }),
            receiver: Cell::inv(tech.clone(), 1.0),
            sensitivity: None,
        },
        aggressors: vec![agg(0), agg(1)],
        bus,
        char_opts: default_opts(),
        t_stop: 3.0 * NS,
        dt: 1.0 * PS,
    }
}

/// Table-1 variant with the opposite polarities: the victim holds its
/// output *high* (single-PMOS NAND2 holding state) and the aggressor output
/// *falls*, producing a downward combined glitch. Exercises the "different
/// switching directions" extension of §2.
pub fn falling_spec() -> ClusterSpec {
    let mut spec = table1_spec();
    spec.victim.mode = spec.victim.cell.holding_high_mode();
    spec.aggressors[0].rising = false;
    spec
}

/// Table-2 variant with anti-phase aggressors (one rising, one falling,
/// simultaneous): their injected contributions largely cancel at the
/// victim, and the anti-phase Miller factor (2×) applies between them.
pub fn mixed_phase_spec() -> ClusterSpec {
    let mut spec = table2_spec();
    spec.aggressors[1].rising = false;
    spec
}

/// One entry of the §3 accuracy sweep.
#[derive(Debug, Clone)]
pub struct SweepCase {
    /// Human-readable id, e.g. `cmos130/nand2/len500/agg2/glitch`.
    pub id: String,
    /// The cluster.
    pub spec: ClusterSpec,
}

/// Generate the §3 sweep: both technologies, several wire lengths,
/// aggressor counts, victim cells, with and without a propagating glitch.
///
/// `quick` trims the matrix (used by tests; benches run the full set).
pub fn sweep_specs(quick: bool) -> Vec<SweepCase> {
    let mut cases = Vec::new();
    let techs = [Technology::cmos130(), Technology::cmos90()];
    let lengths: &[f64] = if quick {
        &[500.0]
    } else {
        &[250.0, 500.0, 1000.0]
    };
    let agg_counts: &[usize] = if quick { &[1] } else { &[1, 2, 3] };
    let victims: &[CellType] = if quick {
        &[CellType::Nand2]
    } else {
        &[CellType::Inv, CellType::Nand2, CellType::Nor2]
    };
    let glitch_opts: &[bool] = if quick { &[true] } else { &[false, true] };
    for tech in &techs {
        for &len in lengths {
            for &n_agg in agg_counts {
                for &vt in victims {
                    for &with_glitch in glitch_opts {
                        let victim_cell = Cell::new(vt, tech.clone(), 1.0);
                        let mode = victim_cell.holding_low_mode();
                        let bus = m4_bus(tech, n_agg + 1, len, 16);
                        let glitch = if with_glitch {
                            Some(InputGlitch {
                                height: 0.75 * tech.vdd,
                                width: 500.0 * PS,
                                t_peak: 0.55 * NS,
                            })
                        } else {
                            None
                        };
                        let aggressors = (0..n_agg)
                            .map(|_| AggressorSpec {
                                cell: Cell::inv(tech.clone(), 2.5),
                                rising: true,
                                input_slew: 70.0 * PS,
                                switch_time: 0.4 * NS,
                                receiver_cap: Cell::inv(tech.clone(), 1.0).input_capacitance(),
                                window: None,
                                mexcl_group: None,
                            })
                            .collect();
                        let id = format!(
                            "{}/{}/len{}/agg{}/{}",
                            tech.name,
                            vt.tag(),
                            len as usize,
                            n_agg,
                            if with_glitch { "glitch" } else { "quiet" }
                        );
                        cases.push(SweepCase {
                            id,
                            spec: ClusterSpec {
                                tech: tech.clone(),
                                victim: VictimSpec {
                                    cell: victim_cell,
                                    mode,
                                    glitch,
                                    receiver: Cell::inv(tech.clone(), 1.0),
                                    sensitivity: None,
                                },
                                aggressors,
                                bus,
                                char_opts: default_opts(),
                                t_stop: 3.0 * NS,
                                dt: 1.0 * PS,
                            },
                        });
                    }
                }
            }
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_setup() {
        let s = table1_spec();
        assert_eq!(s.tech.name, "cmos130");
        assert_eq!(s.aggressors.len(), 1);
        assert_eq!(s.bus.wires.len(), 2);
        assert!((s.bus.wires[0].length - 500.0 * UM).abs() < 1e-12);
        assert_eq!(s.victim.cell.cell_type, CellType::Nand2);
        assert!(s.victim.glitch.is_some());
        s.validate().unwrap();
    }

    #[test]
    fn table2_has_two_inphase_aggressors() {
        let s = table2_spec();
        assert_eq!(s.aggressors.len(), 2);
        assert_eq!(s.aggressors[0].switch_time, s.aggressors[1].switch_time);
        assert!(s.victim.glitch.is_some());
        s.validate().unwrap();
    }

    #[test]
    fn sweep_covers_both_technologies() {
        let cases = sweep_specs(false);
        assert!(cases.len() >= 100, "sweep has {} cases", cases.len());
        assert!(cases.iter().any(|c| c.id.starts_with("cmos130")));
        assert!(cases.iter().any(|c| c.id.starts_with("cmos90")));
        assert!(cases.iter().any(|c| c.id.ends_with("quiet")));
        for c in cases.iter().take(5) {
            c.spec.validate().unwrap();
        }
    }

    #[test]
    fn quick_sweep_is_small() {
        let cases = sweep_specs(true);
        assert!(cases.len() <= 4, "quick sweep has {}", cases.len());
    }
}
