//! # sna-core — static noise analysis with non-linear cell macromodels
//!
//! The primary contribution of Forzan & Pandini (DATE 2005): replace the
//! victim driver with a DC-characterized non-linear VCCS
//! `I_DC = f(V_in, V_out)` (Eq. 1) inside the noise-cluster macromodel of
//! Figure 1, and solve that small circuit with a dedicated engine — instead
//! of linearly superposing separately-computed injected and propagated
//! noise, which badly underestimates the combined glitch.
//!
//! * [`cluster`] — cluster specs and the Figure-1 macromodel builder.
//! * [`engine`] — the dedicated non-linear noise engine (the paper's
//!   method).
//! * [`golden`] — transistor-level reference simulation (the ELDO™ role).
//! * [`superposition`] — the linear-superposition baseline the paper
//!   criticizes.
//! * [`zolotov`] — the iterative linear-Thevenin baseline of Zolotov et
//!   al. (ICCAD'02) the paper compares against.
//! * [`nrc`] — noise rejection curves and sign-off classification.
//! * [`alignment`] — worst-case aggressor/glitch alignment search.
//! * [`frame`] — FRAME-style timing-window / mutual-exclusion aggressor
//!   correlation pruning with batched candidate evaluation.
//! * [`sna`] — a full static-noise-analysis flow over synthetic designs
//!   (the "complete methodology" the paper lists as future work).
//! * [`report`] — the paper-style comparison tables.
//! * [`scenarios`] — canonical Table-1 / Table-2 / §3-sweep setups.

#![warn(missing_docs)]

pub mod alignment;
pub mod cluster;
pub mod engine;
pub mod frame;
pub mod golden;
pub mod library;
pub mod nrc;
pub mod report;
pub mod scenarios;
pub mod sna;
pub mod superposition;
pub mod zolotov;

pub use cluster::{
    AggressorSpec, ClusterMacromodel, ClusterSpec, InputGlitch, SwitchingWindow, VictimSpec,
};
pub use engine::{simulate_macromodel, simulate_macromodel_timings, NoiseWaveforms, TimingLane};
pub use golden::simulate_golden;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::alignment::{
        worst_case_alignment, worst_case_alignment_batched, AlignmentResult,
    };
    pub use crate::cluster::{
        AggressorSpec, ClusterMacromodel, ClusterSpec, InputGlitch, MacromodelOptions, PortRole,
        SwitchingWindow, VictimSpec,
    };
    pub use crate::engine::{
        simulate_macromodel, simulate_macromodel_timings, simulate_macromodel_with, NoiseWaveforms,
        TimingLane,
    };
    pub use crate::frame::{constrained_worst_case, FrameCounters, FrameOutcome};
    pub use crate::golden::{build_golden_circuit, simulate_golden};
    pub use crate::library::{ArtifactKind, KindStats, LibraryStats, NoiseModelLibrary};
    pub use crate::nrc::{characterize_nrc, characterize_nrc_with, NoiseRejectionCurve};
    pub use crate::report::{ComparisonRow, MethodComparison};
    pub use crate::scenarios::{
        falling_spec, m4_bus, mixed_phase_spec, sweep_specs, table1_spec, table2_spec, SweepCase,
    };
    pub use crate::sna::{
        analyze_cluster, run_sna, ClusterFinding, Design, DesignCluster, NoiseReport,
        SkippedCluster, SnaOptions, Verdict,
    };
    pub use crate::superposition::simulate_superposition;
    pub use crate::zolotov::{simulate_zolotov, ZolotovOptions};
}
