//! Noise Rejection Curves (NRC).
//!
//! The sign-off criterion of §1: "the noise at the victim receiver is
//! compared against dynamic noise margins, represented by the Noise
//! Rejection Curve. When the noise waveform width and amplitude are in the
//! NRC failure region (above the curve), the noise analysis tool flags an
//! error."
//!
//! A receiver's NRC is characterized transistor-level: for each glitch
//! width, bisect on the glitch height until the receiver's output crosses
//! half-rail (a momentary logic upset). Narrow glitches are filtered by the
//! receiver's own dynamics, so the failure height rises as width shrinks —
//! the classic L-shaped rejection curve.

use serde::{Deserialize, Serialize};
use sna_cells::characterize::driver_fixture;
use sna_cells::Cell;
use sna_obs::{phase_span, Phase};
use sna_spice::devices::SourceWaveform;
use sna_spice::error::{Error, Result};
use sna_spice::netlist::Circuit;
use sna_spice::solver::SolverKind;
use sna_spice::tran::{transient_with, TranParams, TranWorkspace};
use sna_spice::waveform::GlitchMetrics;

/// A characterized noise rejection curve for one receiver cell and input
/// polarity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseRejectionCurve {
    /// Glitch widths (s), ascending.
    pub widths: Vec<f64>,
    /// Minimal failing glitch height (V) per width.
    pub fail_heights: Vec<f64>,
    /// Supply voltage (V).
    pub vdd: f64,
}

impl NoiseRejectionCurve {
    /// Failure-threshold height at `width` (linear interpolation, clamped).
    pub fn threshold(&self, width: f64) -> f64 {
        let ws = &self.widths;
        if width <= ws[0] {
            return self.fail_heights[0];
        }
        if width >= ws[ws.len() - 1] {
            return self.fail_heights[ws.len() - 1];
        }
        let hi = ws.partition_point(|&w| w <= width);
        let lo = hi - 1;
        let f = (width - ws[lo]) / (ws[hi] - ws[lo]);
        self.fail_heights[lo] + f * (self.fail_heights[hi] - self.fail_heights[lo])
    }

    /// Whether a glitch of `(width, height)` lies in the failure region.
    pub fn fails(&self, width: f64, height: f64) -> bool {
        height >= self.threshold(width)
    }

    /// Noise margin (V): threshold minus height; negative = failing.
    pub fn margin(&self, width: f64, height: f64) -> f64 {
        self.threshold(width) - height
    }

    /// Classify glitch metrics (uses the 50 % width as the NRC width
    /// coordinate, the convention of table-driven sign-off).
    pub fn classify(&self, m: &GlitchMetrics) -> bool {
        self.fails(m.width, m.peak)
    }
}

/// Characterize the NRC of `receiver` for an upward glitch on a quiescent-
/// low input (`input_low = true`) or a downward glitch on a quiescent-high
/// input. `widths` are the triangular glitch base widths to characterize.
///
/// # Errors
///
/// Fails on empty width grids or simulator errors.
pub fn characterize_nrc(
    receiver: &Cell,
    input_low: bool,
    widths: &[f64],
) -> Result<NoiseRejectionCurve> {
    characterize_nrc_with(receiver, input_low, widths, SolverKind::Auto)
}

/// [`characterize_nrc`] with an explicit linear-solver selection for the
/// bisection transients.
///
/// # Errors
///
/// Fails on empty width grids or simulator errors.
pub fn characterize_nrc_with(
    receiver: &Cell,
    input_low: bool,
    widths: &[f64],
    solver: SolverKind,
) -> Result<NoiseRejectionCurve> {
    if widths.len() < 2 {
        return Err(Error::InvalidAnalysis("NRC needs at least 2 widths".into()));
    }
    let _t = phase_span(Phase::Nrc);
    let vdd = receiver.tech.vdd;
    // Receiver drive state: input low means the cell holds its output in
    // the state implied by a low noisy input — i.e. the holding-high mode
    // for an inverting receiver.
    let mode = if input_low {
        receiver.holding_high_mode()
    } else {
        receiver.holding_low_mode()
    };
    let q_in = mode.input_levels[mode.noisy_input];
    let q_out = mode.output_level;
    let sign = if input_low { 1.0 } else { -1.0 };
    let mut fx = driver_fixture(receiver, &mode)?;
    // Typical fanout load on the receiver's output.
    fx.ckt.add_capacitor(
        "Cload",
        fx.out,
        Circuit::gnd(),
        2.0 * receiver.input_capacitance(),
    )?;
    let half = 0.5 * vdd;
    // One workspace for the whole bisection grid: every probe reuses the
    // assembled MNA system and solver state, only the glitch source
    // waveform changes between transients.
    let mut ws = TranWorkspace::new(&fx.ckt, solver)?;
    let mut fail_heights = Vec::with_capacity(widths.len());
    for &w in widths {
        let fails_at = |h: f64,
                        fx: &mut sna_cells::characterize::DriverFixture,
                        ws: &mut TranWorkspace|
         -> Result<bool> {
            let t_start = 50e-12;
            fx.ckt.set_source_wave(
                &fx.noisy_source,
                SourceWaveform::TriangleGlitch {
                    v_base: q_in,
                    v_peak: q_in + sign * h,
                    t_start,
                    t_rise: 0.5 * w,
                    t_fall: 0.5 * w,
                },
            )?;
            let horizon = t_start + 2.5 * w + 1.0e-9;
            let dt = (w / 150.0).clamp(0.5e-12, 2e-12);
            let mut params = TranParams::new(horizon, dt);
            params.solver = solver;
            params.newton.solver = solver;
            let res = transient_with(&fx.ckt, &params, ws)?;
            let out = res.node_waveform(fx.out);
            let crossed = if q_out > half {
                out.min_value() < half
            } else {
                out.max_value() > half
            };
            Ok(crossed)
        };
        // Bisection over height.
        let mut lo = 0.05 * vdd;
        let mut hi = 1.5 * vdd;
        if !fails_at(hi, &mut fx, &mut ws)? {
            // Even a rail-and-a-half glitch does not upset: record the cap.
            fail_heights.push(hi);
            continue;
        }
        for _ in 0..12 {
            let mid = 0.5 * (lo + hi);
            if fails_at(mid, &mut fx, &mut ws)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        fail_heights.push(0.5 * (lo + hi));
    }
    Ok(NoiseRejectionCurve {
        widths: widths.to_vec(),
        fail_heights,
        vdd,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_cells::Technology;
    use sna_spice::units::PS;

    fn inv_nrc() -> NoiseRejectionCurve {
        let t = Technology::cmos130();
        let inv = Cell::inv(t, 1.0);
        characterize_nrc(&inv, true, &[100.0 * PS, 300.0 * PS, 900.0 * PS]).unwrap()
    }

    #[test]
    fn curve_is_monotone_nonincreasing_in_width() {
        let nrc = inv_nrc();
        for w in nrc.fail_heights.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-6,
                "NRC should reject taller narrow glitches: {:?}",
                nrc.fail_heights
            );
        }
    }

    #[test]
    fn thresholds_physically_plausible() {
        let nrc = inv_nrc();
        // Wide glitches fail somewhere between the device threshold and
        // the rail; narrow ones need more.
        let wide = nrc.threshold(900.0 * PS);
        assert!(wide > 0.3 && wide < 1.2, "wide threshold {wide}");
        let narrow = nrc.threshold(100.0 * PS);
        assert!(narrow > wide, "narrow {narrow} <= wide {wide}");
    }

    #[test]
    fn classification_and_margin() {
        let nrc = inv_nrc();
        let thr = nrc.threshold(300.0 * PS);
        assert!(nrc.fails(300.0 * PS, thr + 0.05));
        assert!(!nrc.fails(300.0 * PS, thr - 0.05));
        assert!(nrc.margin(300.0 * PS, thr - 0.05) > 0.0);
        assert!(nrc.margin(300.0 * PS, thr + 0.05) < 0.0);
    }

    #[test]
    fn interpolation_clamps_outside_grid() {
        let nrc = inv_nrc();
        assert_eq!(nrc.threshold(1.0 * PS), nrc.fail_heights[0]);
        assert_eq!(
            nrc.threshold(1e-6),
            nrc.fail_heights[nrc.fail_heights.len() - 1]
        );
    }

    #[test]
    fn too_few_widths_rejected() {
        let t = Technology::cmos130();
        let inv = Cell::inv(t, 1.0);
        assert!(characterize_nrc(&inv, true, &[100.0 * PS]).is_err());
    }
}
