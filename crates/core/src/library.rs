//! Characterization cache shared across clusters.
//!
//! The paper's pre-characterization step ("performed … during a
//! pre-characterization step", §2) is meant to run **once per library
//! cell**, not once per net: a design has millions of nets but only
//! hundreds of (cell, drive-state) pairs. [`NoiseModelLibrary`] memoizes
//! the three per-cell artifacts —
//!
//! * the Eq. (1) load curve (exact reuse: it depends only on the cell and
//!   its drive state),
//! * the holding resistance (exact reuse),
//! * the propagated-noise table (reused across *similar* output loads:
//!   loads are quantized into ×1.2 geometric buckets, matching the
//!   load-binning practice of commercial characterization flows),
//!
//! so an SNA run over a whole design pays characterization costs
//! proportional to library diversity, not design size. Thevenin aggressor
//! fits are *not* cached: they depend on the continuous Π of each specific
//! net and are cheap relative to the rest.

use std::collections::HashMap;
use std::sync::Arc;

use sna_cells::characterize::{
    characterize_load_curve, characterize_propagated_noise, holding_resistance,
    CharacterizeOptions, LoadCurve, PropagatedNoiseTable,
};
use sna_cells::{Cell, DriverMode};
use sna_spice::error::Result;
use sna_spice::units::PS;

/// Identity of a (cell, drive-state) pair, hashable across f64 parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CellKey {
    tech: String,
    cell_tag: &'static str,
    strength_bits: u64,
    noisy_input: usize,
    level_bits: Vec<u64>,
}

impl CellKey {
    fn new(cell: &Cell, mode: &DriverMode) -> Self {
        CellKey {
            tech: cell.tech.name.clone(),
            cell_tag: cell.cell_type.tag(),
            strength_bits: cell.strength.to_bits(),
            noisy_input: mode.noisy_input,
            level_bits: mode.input_levels.iter().map(|v| v.to_bits()).collect(),
        }
    }
}

/// Geometric load bucket (×1.2 steps) for propagated-noise tables.
fn load_bucket(cap: f64) -> i32 {
    debug_assert!(cap > 0.0);
    (cap.ln() / 1.2_f64.ln()).round() as i32
}

/// Representative capacitance of a bucket (its geometric center).
fn bucket_cap(bucket: i32) -> f64 {
    1.2_f64.powi(bucket)
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LibraryStats {
    /// Cache hits across all artifact kinds.
    pub hits: usize,
    /// Cache misses (characterizations actually run).
    pub misses: usize,
}

/// Memoizing store of per-cell noise-characterization artifacts.
#[derive(Debug, Default)]
pub struct NoiseModelLibrary {
    load_curves: HashMap<(CellKey, usize), Arc<LoadCurve>>,
    holding: HashMap<CellKey, f64>,
    prop_tables: HashMap<(CellKey, i32), Arc<PropagatedNoiseTable>>,
    stats: LibraryStats,
}

impl NoiseModelLibrary {
    /// Create an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> LibraryStats {
        self.stats
    }

    /// Number of distinct artifacts stored.
    pub fn len(&self) -> usize {
        self.load_curves.len() + self.holding.len() + self.prop_tables.len()
    }

    /// Whether nothing has been characterized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The Eq. (1) load curve for `(cell, mode)` at the grid in `opts`,
    /// characterized on first use.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures (which are then *not* cached).
    pub fn load_curve(
        &mut self,
        cell: &Cell,
        mode: &DriverMode,
        opts: &CharacterizeOptions,
    ) -> Result<Arc<LoadCurve>> {
        let key = (CellKey::new(cell, mode), opts.grid);
        if let Some(hit) = self.load_curves.get(&key) {
            self.stats.hits += 1;
            return Ok(Arc::clone(hit));
        }
        self.stats.misses += 1;
        let lc = Arc::new(characterize_load_curve(cell, mode, opts)?);
        self.load_curves.insert(key, Arc::clone(&lc));
        Ok(lc)
    }

    /// Holding resistance for `(cell, mode)`, characterized on first use.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn holding_resistance(
        &mut self,
        cell: &Cell,
        mode: &DriverMode,
        opts: &CharacterizeOptions,
    ) -> Result<f64> {
        let key = CellKey::new(cell, mode);
        if let Some(&hit) = self.holding.get(&key) {
            self.stats.hits += 1;
            return Ok(hit);
        }
        self.stats.misses += 1;
        let r = holding_resistance(cell, mode, &opts.newton)?;
        self.holding.insert(key, r);
        Ok(r)
    }

    /// Propagated-noise table for `(cell, mode)` at the load bucket
    /// containing `load_cap`. The characterization runs at the bucket's
    /// representative load, so all nets in the same ×1.2 bucket share one
    /// table.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn propagated_table(
        &mut self,
        cell: &Cell,
        mode: &DriverMode,
        load_cap: f64,
    ) -> Result<Arc<PropagatedNoiseTable>> {
        let bucket = load_bucket(load_cap);
        let key = (CellKey::new(cell, mode), bucket);
        if let Some(hit) = self.prop_tables.get(&key) {
            self.stats.hits += 1;
            return Ok(Arc::clone(hit));
        }
        self.stats.misses += 1;
        let vdd = cell.tech.vdd;
        let heights: Vec<f64> = [0.25, 0.45, 0.65, 0.85, 1.05]
            .iter()
            .map(|f| f * vdd)
            .collect();
        let widths: Vec<f64> = [150.0, 300.0, 600.0, 1200.0]
            .iter()
            .map(|w| w * PS)
            .collect();
        let table = Arc::new(characterize_propagated_noise(
            cell,
            mode,
            bucket_cap(bucket),
            &heights,
            &widths,
        )?);
        self.prop_tables.insert(key, Arc::clone(&table));
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_cells::Technology;

    #[test]
    fn load_curve_cached_by_cell_and_mode() {
        let tech = Technology::cmos130();
        let cell = Cell::nand2(tech.clone(), 1.0);
        let mode = cell.holding_low_mode();
        let opts = CharacterizeOptions {
            grid: 9,
            ..Default::default()
        };
        let mut lib = NoiseModelLibrary::new();
        let a = lib.load_curve(&cell, &mode, &opts).unwrap();
        assert_eq!(lib.stats(), LibraryStats { hits: 0, misses: 1 });
        let b = lib.load_curve(&cell, &mode, &opts).unwrap();
        assert_eq!(lib.stats(), LibraryStats { hits: 1, misses: 1 });
        assert!(Arc::ptr_eq(&a, &b));
        // Different mode = different artifact.
        let high = cell.holding_high_mode();
        let c = lib.load_curve(&cell, &high, &opts).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(lib.stats().misses, 2);
        // Different strength = different artifact.
        let cell4 = Cell::nand2(tech, 4.0);
        let mode4 = cell4.holding_low_mode();
        lib.load_curve(&cell4, &mode4, &opts).unwrap();
        assert_eq!(lib.stats().misses, 3);
        assert_eq!(lib.len(), 3);
    }

    #[test]
    fn grid_is_part_of_the_key() {
        let tech = Technology::cmos130();
        let cell = Cell::inv(tech, 1.0);
        let mode = cell.holding_low_mode();
        let mut lib = NoiseModelLibrary::new();
        let coarse = CharacterizeOptions {
            grid: 5,
            ..Default::default()
        };
        let fine = CharacterizeOptions {
            grid: 9,
            ..Default::default()
        };
        lib.load_curve(&cell, &mode, &coarse).unwrap();
        lib.load_curve(&cell, &mode, &fine).unwrap();
        assert_eq!(lib.stats().misses, 2);
    }

    #[test]
    fn prop_tables_bucket_similar_loads() {
        let tech = Technology::cmos130();
        let cell = Cell::inv(tech, 1.0);
        let mode = cell.holding_low_mode();
        let mut lib = NoiseModelLibrary::new();
        let a = lib.propagated_table(&cell, &mode, 50e-15).unwrap();
        // +5% load: same bucket, cache hit.
        let b = lib.propagated_table(&cell, &mode, 52.5e-15).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(lib.stats(), LibraryStats { hits: 1, misses: 1 });
        // 3x load: different bucket.
        let c = lib.propagated_table(&cell, &mode, 150e-15).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn bucketing_is_geometric() {
        assert_eq!(load_bucket(50e-15), load_bucket(52e-15));
        assert_ne!(load_bucket(50e-15), load_bucket(80e-15));
        // Representative load is within one step of any member.
        let b = load_bucket(60e-15);
        let rep = bucket_cap(b);
        assert!(rep / 60e-15 < 1.2 && 60e-15 / rep < 1.2);
    }

    #[test]
    fn holding_resistance_cached() {
        let tech = Technology::cmos130();
        let cell = Cell::nand2(tech, 1.0);
        let mode = cell.holding_low_mode();
        let mut lib = NoiseModelLibrary::new();
        let opts = CharacterizeOptions::default();
        let r1 = lib.holding_resistance(&cell, &mode, &opts).unwrap();
        let r2 = lib.holding_resistance(&cell, &mode, &opts).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(lib.stats(), LibraryStats { hits: 1, misses: 1 });
    }
}
