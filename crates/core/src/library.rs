//! Characterization cache shared across clusters, threads — and runs.
//!
//! The paper's pre-characterization step ("performed … during a
//! pre-characterization step", §2) is meant to run **once per library
//! cell**, not once per net: a design has millions of nets but only
//! hundreds of (cell, drive-state) pairs. [`NoiseModelLibrary`] memoizes
//! all five per-cell artifacts —
//!
//! * the Eq. (1) load curve (exact reuse: it depends only on the cell,
//!   its drive state, and the characterization options),
//! * the holding resistance (exact reuse),
//! * the propagated-noise table (reused across *similar* output loads:
//!   loads are quantized into ×1.2 geometric buckets, matching the
//!   load-binning practice of commercial characterization flows),
//! * Thevenin aggressor fits (exact reuse keyed by the aggressor's Π
//!   load bits — rarely shared *within* one design, whose Π values are
//!   continuous, but hit exactly across repeated runs of the same
//!   design, which is what the persistent cache serves),
//! * noisy-receiver rejection curves (exact reuse per receiver cell,
//!   width grid, and solver),
//!
//! so an SNA run over a whole design pays characterization costs
//! proportional to library diversity, not design size.
//!
//! Every key embeds FNV-1a fingerprints of the full [`Technology`] and
//! [`CharacterizeOptions`] (the same fingerprint discipline
//! `sna_spice::tran::TranWorkspace` uses to reject stale reuse), so two
//! technologies that share a name but differ in any model parameter can
//! never alias, and a cache persisted to disk (see [`cache`], the
//! `sna-libcache-v1` format) can be validated entry-by-entry at load
//! time. The compute `backend` is deliberately *excluded* from the
//! options fingerprint: backends are bit-identical by construction
//! (enforced by tests and a CI `cmp` of full reports), so artifacts are
//! interchangeable across them.
//!
//! The store is internally sharded (`RwLock<HashMap>` per shard, keyed by
//! hash) with atomically aggregated hit/miss counters, so a parallel flow
//! (`sna-flow`) can share one library by `&` reference across worker
//! threads: concurrent lookups of *different* cells proceed without
//! contention, and a cache hit never blocks behind a characterization in
//! progress (characterization runs outside any lock). Two threads racing on
//! the same cold key may both characterize; the artifacts are deterministic
//! functions of the key, so whichever insert lands first wins and results
//! are identical either way. Entries remember whether they came off disk,
//! so [`LibraryStats`] can split hits into warm-process hits and
//! `disk_hits`, and count `disk_misses` (artifacts a loaded cache did not
//! contain) and `stale_rejected` (on-disk entries refused at load time).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

use sna_cells::characterize::{
    characterize_load_curve, characterize_propagated_noise_with, characterize_thevenin_with,
    holding_resistance, CharacterizeOptions, LoadCurve, PropagatedNoiseTable, TheveninDriver,
    TheveninLoad,
};
use sna_cells::{Cell, DriverMode, Technology};
use sna_obs::{phase_span, Phase};
use sna_spice::devices::{MosPolarity, MosfetModel};
use sna_spice::error::{Error, Result};
use sna_spice::solver::SolverKind;
use sna_spice::units::PS;

use crate::nrc::{characterize_nrc_with, NoiseRejectionCurve};

#[path = "libcache.rs"]
pub mod cache;

/// Incremental FNV-1a hasher over typed scalar writes.
///
/// This is the cache's *semantic* fingerprint primitive: unlike
/// `DefaultHasher` (which is randomized per process), FNV-1a over explicit
/// little-endian byte encodings is stable across processes and builds, so
/// fingerprints written into an on-disk cache file still validate when a
/// different process loads them.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Start a fresh hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    /// Mix raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// Mix one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Mix a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Mix a `usize` (widened to `u64` so 32/64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Mix an `f64` by exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Mix a `bool`.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Mix a string, length-prefixed so concatenations can't alias.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

/// Stable `(tag, argument)` encoding of a [`SolverKind`] for fingerprints
/// and the on-disk cache format.
pub fn solver_code(solver: SolverKind) -> (u8, u64) {
    match solver {
        SolverKind::Auto => (0, 0),
        SolverKind::AutoThreshold(n) => (1, n as u64),
        SolverKind::Dense => (2, 0),
        SolverKind::Sparse => (3, 0),
    }
}

/// Inverse of [`solver_code`]; `None` for an unknown tag (e.g. a cache
/// file written by a future schema).
pub fn solver_from_code(tag: u8, arg: u64) -> Option<SolverKind> {
    match tag {
        0 => Some(SolverKind::Auto),
        1 => Some(SolverKind::AutoThreshold(arg as usize)),
        2 => Some(SolverKind::Dense),
        3 => Some(SolverKind::Sparse),
        _ => None,
    }
}

fn write_mosfet(h: &mut Fnv, m: &MosfetModel) {
    h.write_u8(match m.polarity {
        MosPolarity::Nmos => 0,
        MosPolarity::Pmos => 1,
    });
    for v in [
        m.vt0, m.kp, m.lambda, m.gamma, m.phi, m.cox, m.cgso, m.cgdo, m.cj,
    ] {
        h.write_f64(v);
    }
}

/// FNV-1a fingerprint of every model parameter of a [`Technology`].
///
/// Keys embed this alongside the technology *name*, so two corners that
/// happen to share a name but differ in any device or metal parameter can
/// never alias in the cache — the same guarantee that makes one library
/// safely shareable across a multi-corner sweep.
pub fn tech_fingerprint(tech: &Technology) -> u64 {
    let mut h = Fnv::new();
    h.write_str(&tech.name);
    h.write_f64(tech.vdd);
    h.write_f64(tech.l_min);
    write_mosfet(&mut h, &tech.nmos);
    write_mosfet(&mut h, &tech.pmos);
    h.write_f64(tech.wn_unit);
    h.write_f64(tech.wp_unit);
    h.write_usize(tech.metals.len());
    for m in &tech.metals {
        h.write_u8(m.level);
        h.write_f64(m.r_per_m);
        h.write_f64(m.cg_per_m);
        h.write_f64(m.cc_per_m);
    }
    h.finish()
}

/// FNV-1a fingerprint of the characterization options that affect artifact
/// *values*: the voltage grid and every Newton tolerance.
///
/// `opts.backend` is deliberately excluded — backends are bit-identical by
/// construction, so the same artifact serves both.
pub fn opts_fingerprint(opts: &CharacterizeOptions) -> u64 {
    let mut h = Fnv::new();
    h.write_usize(opts.grid);
    h.write_f64(opts.v_min_frac);
    h.write_f64(opts.v_max_frac);
    h.write_usize(opts.newton.max_iter);
    h.write_f64(opts.newton.vntol);
    h.write_f64(opts.newton.reltol);
    h.write_f64(opts.newton.abstol);
    h.write_f64(opts.newton.max_step);
    let (tag, arg) = solver_code(opts.newton.solver);
    h.write_u8(tag);
    h.write_u64(arg);
    h.finish()
}

/// Identity of a library cell: technology (name + full model fingerprint),
/// cell type, and drive strength.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CellIdent {
    tech: String,
    tech_fp: u64,
    cell_tag: &'static str,
    strength_bits: u64,
}

impl CellIdent {
    fn new(cell: &Cell) -> Self {
        CellIdent {
            tech: cell.tech.name.clone(),
            tech_fp: tech_fingerprint(&cell.tech),
            cell_tag: cell.cell_type.tag(),
            strength_bits: cell.strength.to_bits(),
        }
    }
}

/// Identity of a (cell, drive-state, options) triple, hashable across f64
/// parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CellKey {
    ident: CellIdent,
    noisy_input: usize,
    level_bits: Vec<u64>,
    opts_fp: u64,
}

impl CellKey {
    fn new(cell: &Cell, mode: &DriverMode, opts: &CharacterizeOptions) -> Self {
        CellKey {
            ident: CellIdent::new(cell),
            noisy_input: mode.noisy_input,
            level_bits: mode.input_levels.iter().map(|v| v.to_bits()).collect(),
            opts_fp: opts_fingerprint(opts),
        }
    }
}

/// Identity of a Thevenin aggressor fit: cell identity, transition edge,
/// input slew, and the exact bits of the Π (or lumped) load it was fit
/// against.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TheveninKey {
    ident: CellIdent,
    rising: bool,
    slew_bits: u64,
    /// `[variant, a, b, c]`: `[0, cap, 0, 0]` for `Lumped(cap)`,
    /// `[1, c_near, r, c_far]` for `Pi`.
    load_bits: [u64; 4],
    opts_fp: u64,
}

impl TheveninKey {
    fn new(
        cell: &Cell,
        rising: bool,
        input_slew: f64,
        load: &TheveninLoad,
        opts: &CharacterizeOptions,
    ) -> Self {
        let load_bits = match *load {
            TheveninLoad::Lumped(cap) => [0, cap.to_bits(), 0, 0],
            TheveninLoad::Pi { c_near, r, c_far } => {
                [1, c_near.to_bits(), r.to_bits(), c_far.to_bits()]
            }
        };
        TheveninKey {
            ident: CellIdent::new(cell),
            rising,
            slew_bits: input_slew.to_bits(),
            load_bits,
            opts_fp: opts_fingerprint(opts),
        }
    }
}

/// Identity of a noise-rejection curve: receiver cell, polarity, width
/// grid, and solver.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct NrcKey {
    ident: CellIdent,
    input_low: bool,
    width_bits: Vec<u64>,
    solver: (u8, u64),
}

impl NrcKey {
    fn new(receiver: &Cell, input_low: bool, widths: &[f64], solver: SolverKind) -> Self {
        NrcKey {
            ident: CellIdent::new(receiver),
            input_low,
            width_bits: widths.iter().map(|w| w.to_bits()).collect(),
            solver: solver_code(solver),
        }
    }
}

/// Geometric load bucket (×1.2 steps) for propagated-noise tables.
///
/// # Errors
///
/// Rejects non-positive or non-finite capacitances: `ln` of those yields a
/// garbage bucket (and previously only a `debug_assert!` guarded this, so
/// release builds silently cached tables at meaningless loads).
fn load_bucket(cap: f64) -> Result<i32> {
    if !cap.is_finite() || cap <= 0.0 {
        return Err(Error::InvalidAnalysis(format!(
            "propagated-noise load capacitance must be positive and finite, got {cap:e}"
        )));
    }
    Ok((cap.ln() / 1.2_f64.ln()).round() as i32)
}

/// Representative capacitance of a bucket (its geometric center).
fn bucket_cap(bucket: i32) -> f64 {
    1.2_f64.powi(bucket)
}

/// Kinds of characterization artifacts the cache distinguishes.
///
/// All five are cached in the library's sharded maps and are eligible for
/// on-disk persistence via [`cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum ArtifactKind {
    /// Eq. (1) load curves.
    LoadCurve = 0,
    /// Holding resistances.
    HoldingR = 1,
    /// Propagated-noise tables.
    PropTable = 2,
    /// Thevenin aggressor fits (keyed by the exact Π load bits).
    Thevenin = 3,
    /// Noisy-receiver rejection curves.
    Nrc = 4,
}

/// Number of [`ArtifactKind`] variants.
pub const ARTIFACT_KIND_COUNT: usize = 5;

/// Every [`ArtifactKind`], in index order.
pub const ALL_ARTIFACT_KINDS: [ArtifactKind; ARTIFACT_KIND_COUNT] = [
    ArtifactKind::LoadCurve,
    ArtifactKind::HoldingR,
    ArtifactKind::PropTable,
    ArtifactKind::Thevenin,
    ArtifactKind::Nrc,
];

impl ArtifactKind {
    /// Stable snake_case name, used as a JSON key in metrics documents.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::LoadCurve => "load_curve",
            ArtifactKind::HoldingR => "holding_r",
            ArtifactKind::PropTable => "prop_table",
            ArtifactKind::Thevenin => "thevenin",
            ArtifactKind::Nrc => "nrc",
        }
    }
}

/// Hit/miss counts for one artifact kind, with on-disk-cache provenance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Cache hits (in-process *and* disk-loaded entries).
    pub hits: usize,
    /// Cache misses (characterizations actually run).
    pub misses: usize,
    /// The subset of `hits` served by entries loaded from an on-disk
    /// `sna-libcache-v1` file.
    pub disk_hits: usize,
    /// The subset of `misses` that occurred while a disk cache was loaded
    /// — artifacts the file did not contain.
    pub disk_misses: usize,
    /// On-disk entries rejected at load time (fingerprint mismatch or
    /// semantic validation failure); each was recomputed on first use.
    pub stale_rejected: usize,
}

/// Cache statistics: per-artifact-kind hit/miss breakdown plus the derived
/// totals and per-shard occupancy of the backing maps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LibraryStats {
    /// Cache hits across all artifact kinds (sum of `by_kind` hits).
    pub hits: usize,
    /// Cache misses across all kinds (sum of `by_kind` misses).
    pub misses: usize,
    /// Disk-served hits across all kinds (sum of `by_kind` disk_hits).
    pub disk_hits: usize,
    /// Misses with a disk cache loaded (sum of `by_kind` disk_misses).
    pub disk_misses: usize,
    /// On-disk entries rejected at load time (sum over kinds).
    pub stale_rejected: usize,
    /// Hit/miss breakdown per [`ArtifactKind`], indexed by discriminant.
    pub by_kind: [KindStats; ARTIFACT_KIND_COUNT],
    /// Artifacts stored per lock shard, summed over the five cached maps.
    pub shard_occupancy: [usize; SHARD_COUNT],
}

impl LibraryStats {
    /// Hit/miss counts for one artifact kind.
    pub fn kind(&self, kind: ArtifactKind) -> KindStats {
        self.by_kind[kind as usize]
    }

    /// Counter delta `after − before` (saturating), keeping `after`'s
    /// shard occupancy. Used by multi-corner flows sharing one persistent
    /// library to report only the work a single corner added.
    pub fn delta(after: &LibraryStats, before: &LibraryStats) -> LibraryStats {
        let mut by_kind = [KindStats::default(); ARTIFACT_KIND_COUNT];
        for (i, ks) in by_kind.iter_mut().enumerate() {
            let (a, b) = (after.by_kind[i], before.by_kind[i]);
            ks.hits = a.hits.saturating_sub(b.hits);
            ks.misses = a.misses.saturating_sub(b.misses);
            ks.disk_hits = a.disk_hits.saturating_sub(b.disk_hits);
            ks.disk_misses = a.disk_misses.saturating_sub(b.disk_misses);
            ks.stale_rejected = a.stale_rejected.saturating_sub(b.stale_rejected);
        }
        LibraryStats {
            hits: after.hits.saturating_sub(before.hits),
            misses: after.misses.saturating_sub(before.misses),
            disk_hits: after.disk_hits.saturating_sub(before.disk_hits),
            disk_misses: after.disk_misses.saturating_sub(before.disk_misses),
            stale_rejected: after.stale_rejected.saturating_sub(before.stale_rejected),
            by_kind,
            shard_occupancy: after.shard_occupancy,
        }
    }
}

/// Number of independent lock shards per artifact map. Eight is plenty for
/// the thread counts a desktop flow runs at; the map is keyed by cell
/// identity, so distinct cells almost always land on distinct shards.
pub const SHARD_COUNT: usize = 8;

/// A cached artifact plus its provenance: loaded from an on-disk cache
/// file, or characterized in this process.
#[derive(Debug, Clone)]
struct Entry<V> {
    value: V,
    from_disk: bool,
}

impl<V> Entry<V> {
    fn fresh(value: V) -> Self {
        Entry {
            value,
            from_disk: false,
        }
    }

    fn disk(value: V) -> Self {
        Entry {
            value,
            from_disk: true,
        }
    }
}

/// A hash-sharded `RwLock<HashMap>`: readers of different shards never
/// contend, and writers only lock the one shard their key hashes to.
#[derive(Debug)]
struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    fn new() -> Self {
        ShardedMap {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[h.finish() as usize % SHARD_COUNT]
    }

    fn get(&self, key: &K) -> Option<V> {
        self.shard(key)
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned()
    }

    /// Insert `value` unless a racing thread beat us to the key; either
    /// way, return the value that ended up in the map.
    fn insert_if_absent(&self, key: K, value: V) -> V {
        self.shard(&key)
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert(value)
            .clone()
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    fn shard_len(&self, i: usize) -> usize {
        self.shards[i]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Visit every entry (shard by shard, under the read lock).
    fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for s in &self.shards {
            for (k, v) in s.read().unwrap_or_else(PoisonError::into_inner).iter() {
                f(k, v);
            }
        }
    }
}

impl<K: Hash + Eq, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Memoizing store of per-cell noise-characterization artifacts.
///
/// All methods take `&self`: the library is safe to share across threads
/// (wrap it in an `Arc` or borrow it from a scoped thread) and serves as
/// the shared characterization cache of the parallel `sna-flow` driver.
/// See [`cache`] for on-disk persistence (`sna-libcache-v1`).
#[derive(Debug, Default)]
pub struct NoiseModelLibrary {
    load_curves: ShardedMap<CellKey, Entry<Arc<LoadCurve>>>,
    holding: ShardedMap<CellKey, Entry<f64>>,
    prop_tables: ShardedMap<(CellKey, i32), Entry<Arc<PropagatedNoiseTable>>>,
    thevenins: ShardedMap<TheveninKey, Entry<Arc<TheveninDriver>>>,
    nrcs: ShardedMap<NrcKey, Entry<Arc<NoiseRejectionCurve>>>,
    hit_counts: [AtomicUsize; ARTIFACT_KIND_COUNT],
    miss_counts: [AtomicUsize; ARTIFACT_KIND_COUNT],
    disk_hit_counts: [AtomicUsize; ARTIFACT_KIND_COUNT],
    disk_miss_counts: [AtomicUsize; ARTIFACT_KIND_COUNT],
    stale_counts: [AtomicUsize; ARTIFACT_KIND_COUNT],
    /// Set once an on-disk cache file has been loaded (even an empty one):
    /// from then on every miss also counts as a `disk_miss`.
    disk_loaded: AtomicBool,
}

impl NoiseModelLibrary {
    /// Create an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache statistics so far (aggregated atomically across threads).
    pub fn stats(&self) -> LibraryStats {
        let mut by_kind = [KindStats::default(); ARTIFACT_KIND_COUNT];
        let mut total = LibraryStats::default();
        for (i, ks) in by_kind.iter_mut().enumerate() {
            ks.hits = self.hit_counts[i].load(Ordering::Relaxed);
            ks.misses = self.miss_counts[i].load(Ordering::Relaxed);
            ks.disk_hits = self.disk_hit_counts[i].load(Ordering::Relaxed);
            ks.disk_misses = self.disk_miss_counts[i].load(Ordering::Relaxed);
            ks.stale_rejected = self.stale_counts[i].load(Ordering::Relaxed);
            total.hits += ks.hits;
            total.misses += ks.misses;
            total.disk_hits += ks.disk_hits;
            total.disk_misses += ks.disk_misses;
            total.stale_rejected += ks.stale_rejected;
        }
        let mut shard_occupancy = [0usize; SHARD_COUNT];
        for (i, occ) in shard_occupancy.iter_mut().enumerate() {
            *occ = self.load_curves.shard_len(i)
                + self.holding.shard_len(i)
                + self.prop_tables.shard_len(i)
                + self.thevenins.shard_len(i)
                + self.nrcs.shard_len(i);
        }
        total.by_kind = by_kind;
        total.shard_occupancy = shard_occupancy;
        total
    }

    /// Number of distinct artifacts stored.
    pub fn len(&self) -> usize {
        self.load_curves.len()
            + self.holding.len()
            + self.prop_tables.len()
            + self.thevenins.len()
            + self.nrcs.len()
    }

    /// Whether nothing has been characterized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn record_hit(&self, kind: ArtifactKind, from_disk: bool) {
        self.hit_counts[kind as usize].fetch_add(1, Ordering::Relaxed);
        if from_disk {
            self.disk_hit_counts[kind as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_miss(&self, kind: ArtifactKind) {
        self.miss_counts[kind as usize].fetch_add(1, Ordering::Relaxed);
        if self.disk_loaded.load(Ordering::Relaxed) {
            self.disk_miss_counts[kind as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_stale(&self, kind: ArtifactKind) {
        self.stale_counts[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// The Eq. (1) load curve for `(cell, mode)` at the grid in `opts`,
    /// characterized on first use.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures (which are then *not* cached).
    pub fn load_curve(
        &self,
        cell: &Cell,
        mode: &DriverMode,
        opts: &CharacterizeOptions,
    ) -> Result<Arc<LoadCurve>> {
        let key = CellKey::new(cell, mode, opts);
        if let Some(hit) = self.load_curves.get(&key) {
            self.record_hit(ArtifactKind::LoadCurve, hit.from_disk);
            return Ok(hit.value);
        }
        self.record_miss(ArtifactKind::LoadCurve);
        let _t = phase_span(Phase::LoadCurve);
        let lc = Arc::new(characterize_load_curve(cell, mode, opts)?);
        Ok(self
            .load_curves
            .insert_if_absent(key, Entry::fresh(lc))
            .value)
    }

    /// Holding resistance for `(cell, mode)`, characterized on first use.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn holding_resistance(
        &self,
        cell: &Cell,
        mode: &DriverMode,
        opts: &CharacterizeOptions,
    ) -> Result<f64> {
        let key = CellKey::new(cell, mode, opts);
        if let Some(hit) = self.holding.get(&key) {
            self.record_hit(ArtifactKind::HoldingR, hit.from_disk);
            return Ok(hit.value);
        }
        self.record_miss(ArtifactKind::HoldingR);
        let _t = phase_span(Phase::HoldingR);
        let r = holding_resistance(cell, mode, &opts.newton)?;
        Ok(self.holding.insert_if_absent(key, Entry::fresh(r)).value)
    }

    /// Propagated-noise table for `(cell, mode)` at the load bucket
    /// containing `load_cap`. The characterization runs at the bucket's
    /// representative load, so all nets in the same ×1.2 bucket share one
    /// table.
    ///
    /// # Errors
    ///
    /// Rejects non-positive/non-finite `load_cap`; propagates
    /// characterization failures.
    pub fn propagated_table(
        &self,
        cell: &Cell,
        mode: &DriverMode,
        load_cap: f64,
        opts: &CharacterizeOptions,
    ) -> Result<Arc<PropagatedNoiseTable>> {
        let bucket = load_bucket(load_cap)?;
        let key = (CellKey::new(cell, mode, opts), bucket);
        if let Some(hit) = self.prop_tables.get(&key) {
            self.record_hit(ArtifactKind::PropTable, hit.from_disk);
            return Ok(hit.value);
        }
        self.record_miss(ArtifactKind::PropTable);
        let _t = phase_span(Phase::PropTable);
        let vdd = cell.tech.vdd;
        let heights: Vec<f64> = [0.25, 0.45, 0.65, 0.85, 1.05]
            .iter()
            .map(|f| f * vdd)
            .collect();
        let widths: Vec<f64> = [150.0, 300.0, 600.0, 1200.0]
            .iter()
            .map(|w| w * PS)
            .collect();
        let table = Arc::new(characterize_propagated_noise_with(
            cell,
            mode,
            bucket_cap(bucket),
            &heights,
            &widths,
            opts,
        )?);
        Ok(self
            .prop_tables
            .insert_if_absent(key, Entry::fresh(table))
            .value)
    }

    /// Thevenin aggressor fit for `cell` switching into `load`,
    /// characterized on first use.
    ///
    /// The cached driver is **unshifted** (it fires at t = 0); callers
    /// apply [`TheveninDriver::shifted`] — a cheap waveform translation —
    /// so one fit serves any aggressor switch time. Keys carry the exact
    /// bits of the Π load, so within one design (whose Π values are
    /// continuous) most lookups miss; across repeated runs of the *same*
    /// design they hit exactly, which is what the on-disk cache serves.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn thevenin(
        &self,
        cell: &Cell,
        rising: bool,
        input_slew: f64,
        load: &TheveninLoad,
        opts: &CharacterizeOptions,
    ) -> Result<Arc<TheveninDriver>> {
        let key = TheveninKey::new(cell, rising, input_slew, load, opts);
        if let Some(hit) = self.thevenins.get(&key) {
            self.record_hit(ArtifactKind::Thevenin, hit.from_disk);
            return Ok(hit.value);
        }
        self.record_miss(ArtifactKind::Thevenin);
        let th = Arc::new(characterize_thevenin_with(
            cell, rising, input_slew, load, opts,
        )?);
        Ok(self.thevenins.insert_if_absent(key, Entry::fresh(th)).value)
    }

    /// Noise-rejection curve for `receiver` over the given width grid,
    /// characterized (one bisection sweep) on first use.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn nrc(
        &self,
        receiver: &Cell,
        input_low: bool,
        widths: &[f64],
        solver: SolverKind,
    ) -> Result<Arc<NoiseRejectionCurve>> {
        let key = NrcKey::new(receiver, input_low, widths, solver);
        if let Some(hit) = self.nrcs.get(&key) {
            self.record_hit(ArtifactKind::Nrc, hit.from_disk);
            return Ok(hit.value);
        }
        self.record_miss(ArtifactKind::Nrc);
        let curve = Arc::new(characterize_nrc_with(receiver, input_low, widths, solver)?);
        Ok(self.nrcs.insert_if_absent(key, Entry::fresh(curve)).value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_curve_cached_by_cell_and_mode() {
        let tech = Technology::cmos130();
        let cell = Cell::nand2(tech.clone(), 1.0);
        let mode = cell.holding_low_mode();
        let opts = CharacterizeOptions {
            grid: 9,
            ..Default::default()
        };
        let lib = NoiseModelLibrary::new();
        let a = lib.load_curve(&cell, &mode, &opts).unwrap();
        let st = lib.stats();
        assert_eq!((st.hits, st.misses), (0, 1));
        assert_eq!(
            st.kind(ArtifactKind::LoadCurve),
            KindStats {
                hits: 0,
                misses: 1,
                ..Default::default()
            }
        );
        let b = lib.load_curve(&cell, &mode, &opts).unwrap();
        let st = lib.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
        assert_eq!(
            st.kind(ArtifactKind::LoadCurve),
            KindStats {
                hits: 1,
                misses: 1,
                ..Default::default()
            }
        );
        // No disk cache was loaded: provenance counters stay zero.
        assert_eq!((st.disk_hits, st.disk_misses, st.stale_rejected), (0, 0, 0));
        assert!(Arc::ptr_eq(&a, &b));
        // Different mode = different artifact.
        let high = cell.holding_high_mode();
        let c = lib.load_curve(&cell, &high, &opts).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(lib.stats().misses, 2);
        // Different strength = different artifact.
        let cell4 = Cell::nand2(tech, 4.0);
        let mode4 = cell4.holding_low_mode();
        lib.load_curve(&cell4, &mode4, &opts).unwrap();
        assert_eq!(lib.stats().misses, 3);
        assert_eq!(lib.len(), 3);
    }

    #[test]
    fn grid_is_part_of_the_key() {
        let tech = Technology::cmos130();
        let cell = Cell::inv(tech, 1.0);
        let mode = cell.holding_low_mode();
        let lib = NoiseModelLibrary::new();
        let coarse = CharacterizeOptions {
            grid: 5,
            ..Default::default()
        };
        let fine = CharacterizeOptions {
            grid: 9,
            ..Default::default()
        };
        lib.load_curve(&cell, &mode, &coarse).unwrap();
        lib.load_curve(&cell, &mode, &fine).unwrap();
        assert_eq!(lib.stats().misses, 2);
    }

    #[test]
    fn technology_fingerprint_prevents_name_aliasing() {
        let t1 = Technology::cmos130();
        let mut t2 = Technology::cmos130();
        t2.vdd = 1.1; // same name, different supply
        assert_ne!(tech_fingerprint(&t1), tech_fingerprint(&t2));
        let opts = CharacterizeOptions {
            grid: 5,
            ..Default::default()
        };
        let lib = NoiseModelLibrary::new();
        let c1 = Cell::inv(t1, 1.0);
        let c2 = Cell::inv(t2, 1.0);
        lib.load_curve(&c1, &c1.holding_low_mode(), &opts).unwrap();
        lib.load_curve(&c2, &c2.holding_low_mode(), &opts).unwrap();
        // The second lookup must NOT be served the first technology's
        // curve just because the names match.
        let st = lib.stats();
        assert_eq!((st.hits, st.misses), (0, 2));
        assert_eq!(lib.len(), 2);
    }

    #[test]
    fn options_fingerprint_excludes_backend() {
        use sna_spice::backend::BackendKind;
        let a = CharacterizeOptions::default();
        let b = CharacterizeOptions {
            backend: BackendKind::Batched,
            ..Default::default()
        };
        // Backends are bit-identical by construction, so artifacts are
        // interchangeable: same fingerprint, shared cache entries.
        assert_eq!(opts_fingerprint(&a), opts_fingerprint(&b));
        let mut newton = a.newton;
        newton.reltol *= 10.0;
        let c = CharacterizeOptions {
            newton,
            ..Default::default()
        };
        assert_ne!(opts_fingerprint(&a), opts_fingerprint(&c));
    }

    #[test]
    fn prop_tables_bucket_similar_loads() {
        let tech = Technology::cmos130();
        let cell = Cell::inv(tech, 1.0);
        let mode = cell.holding_low_mode();
        let lib = NoiseModelLibrary::new();
        let a = lib
            .propagated_table(&cell, &mode, 50e-15, &CharacterizeOptions::default())
            .unwrap();
        // +5% load: same bucket, cache hit.
        let b = lib
            .propagated_table(&cell, &mode, 52.5e-15, &CharacterizeOptions::default())
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let st = lib.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
        assert_eq!(
            st.kind(ArtifactKind::PropTable),
            KindStats {
                hits: 1,
                misses: 1,
                ..Default::default()
            }
        );
        // 3x load: different bucket.
        let c = lib
            .propagated_table(&cell, &mode, 150e-15, &CharacterizeOptions::default())
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn bucketing_is_geometric() {
        assert_eq!(load_bucket(50e-15).unwrap(), load_bucket(52e-15).unwrap());
        assert_ne!(load_bucket(50e-15).unwrap(), load_bucket(80e-15).unwrap());
        // Representative load is within one step of any member.
        let b = load_bucket(60e-15).unwrap();
        let rep = bucket_cap(b);
        assert!(rep / 60e-15 < 1.2 && 60e-15 / rep < 1.2);
    }

    #[test]
    fn nonpositive_loads_rejected() {
        assert!(load_bucket(0.0).is_err());
        assert!(load_bucket(-1e-15).is_err());
        assert!(load_bucket(f64::NAN).is_err());
        assert!(load_bucket(f64::INFINITY).is_err());
        // Positive finite loads still bucket.
        assert!(load_bucket(1e-15).is_ok());
        // The error surfaces through the public cache API too, and nothing
        // garbage is cached.
        let tech = Technology::cmos130();
        let cell = Cell::inv(tech, 1.0);
        let mode = cell.holding_low_mode();
        let lib = NoiseModelLibrary::new();
        assert!(lib
            .propagated_table(&cell, &mode, -5e-15, &CharacterizeOptions::default())
            .is_err());
        assert!(lib.is_empty());
    }

    #[test]
    fn holding_resistance_cached() {
        let tech = Technology::cmos130();
        let cell = Cell::nand2(tech, 1.0);
        let mode = cell.holding_low_mode();
        let lib = NoiseModelLibrary::new();
        let opts = CharacterizeOptions::default();
        let r1 = lib.holding_resistance(&cell, &mode, &opts).unwrap();
        let r2 = lib.holding_resistance(&cell, &mode, &opts).unwrap();
        assert_eq!(r1, r2);
        let st = lib.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
        assert_eq!(
            st.kind(ArtifactKind::HoldingR),
            KindStats {
                hits: 1,
                misses: 1,
                ..Default::default()
            }
        );
    }

    #[test]
    fn thevenin_and_nrc_cached() {
        let tech = Technology::cmos130();
        let cell = Cell::inv(tech, 1.0);
        let lib = NoiseModelLibrary::new();
        let opts = CharacterizeOptions::default();
        let load = TheveninLoad::Lumped(20e-15);
        let a = lib.thevenin(&cell, true, 50.0 * PS, &load, &opts).unwrap();
        let b = lib.thevenin(&cell, true, 50.0 * PS, &load, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            lib.stats().kind(ArtifactKind::Thevenin),
            KindStats {
                hits: 1,
                misses: 1,
                ..Default::default()
            }
        );
        // A different load (even the same total cap split into a Π) is a
        // different fit: keys carry the exact load bits.
        let pi = TheveninLoad::Pi {
            c_near: 10e-15,
            r: 50.0,
            c_far: 10e-15,
        };
        let c = lib.thevenin(&cell, true, 50.0 * PS, &pi, &opts).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(lib.stats().kind(ArtifactKind::Thevenin).misses, 2);
        // NRC: exact reuse per (receiver, polarity, widths, solver).
        let widths = [200.0 * PS, 400.0 * PS, 800.0 * PS];
        let n1 = lib.nrc(&cell, true, &widths, SolverKind::Auto).unwrap();
        let n2 = lib.nrc(&cell, true, &widths, SolverKind::Auto).unwrap();
        assert!(Arc::ptr_eq(&n1, &n2));
        assert_eq!(
            lib.stats().kind(ArtifactKind::Nrc),
            KindStats {
                hits: 1,
                misses: 1,
                ..Default::default()
            }
        );
        assert_eq!(lib.len(), 3);
    }

    #[test]
    fn per_kind_breakdown_and_shard_occupancy() {
        let tech = Technology::cmos130();
        let cell = Cell::nand2(tech, 1.0);
        let mode = cell.holding_low_mode();
        let opts = CharacterizeOptions {
            grid: 9,
            ..Default::default()
        };
        let lib = NoiseModelLibrary::new();
        lib.load_curve(&cell, &mode, &opts).unwrap();
        lib.holding_resistance(&cell, &mode, &opts).unwrap();
        let st = lib.stats();
        assert_eq!(st.kind(ArtifactKind::LoadCurve).misses, 1);
        assert_eq!(st.kind(ArtifactKind::HoldingR).misses, 1);
        assert_eq!(st.kind(ArtifactKind::Thevenin), KindStats::default());
        assert_eq!(st.kind(ArtifactKind::Nrc), KindStats::default());
        // Totals are derived from the breakdown.
        assert_eq!(st.hits, st.by_kind.iter().map(|k| k.hits).sum::<usize>());
        assert_eq!(
            st.misses,
            st.by_kind.iter().map(|k| k.misses).sum::<usize>()
        );
        // Two stored artifacts, wherever they hashed to.
        assert_eq!(st.shard_occupancy.iter().sum::<usize>(), lib.len());
        assert_eq!(lib.len(), 2);
    }

    #[test]
    fn stats_delta_isolates_one_corners_work() {
        let tech = Technology::cmos130();
        let cell = Cell::nand2(tech, 1.0);
        let mode = cell.holding_low_mode();
        let opts = CharacterizeOptions {
            grid: 9,
            ..Default::default()
        };
        let lib = NoiseModelLibrary::new();
        lib.load_curve(&cell, &mode, &opts).unwrap();
        let before = lib.stats();
        lib.load_curve(&cell, &mode, &opts).unwrap(); // hit
        lib.holding_resistance(&cell, &mode, &opts).unwrap(); // miss
        let d = LibraryStats::delta(&lib.stats(), &before);
        assert_eq!((d.hits, d.misses), (1, 1));
        assert_eq!(d.kind(ArtifactKind::LoadCurve).hits, 1);
        assert_eq!(d.kind(ArtifactKind::LoadCurve).misses, 0);
        assert_eq!(d.kind(ArtifactKind::HoldingR).misses, 1);
        // Occupancy is absolute (end state), not a delta.
        assert_eq!(d.shard_occupancy.iter().sum::<usize>(), lib.len());
    }

    #[test]
    fn library_is_shareable_across_threads() {
        let tech = Technology::cmos130();
        let lib = NoiseModelLibrary::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lib = &lib;
                let tech = tech.clone();
                s.spawn(move || {
                    let cell = Cell::inv(tech, 1.0);
                    let mode = cell.holding_low_mode();
                    lib.holding_resistance(&cell, &mode, &CharacterizeOptions::default())
                        .unwrap();
                });
            }
        });
        // One artifact stored no matter how the threads raced.
        assert_eq!(lib.len(), 1);
        let st = lib.stats();
        assert_eq!(st.hits + st.misses, 4);
        assert!(st.misses >= 1);
    }
}
