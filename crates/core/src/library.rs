//! Characterization cache shared across clusters — and across threads.
//!
//! The paper's pre-characterization step ("performed … during a
//! pre-characterization step", §2) is meant to run **once per library
//! cell**, not once per net: a design has millions of nets but only
//! hundreds of (cell, drive-state) pairs. [`NoiseModelLibrary`] memoizes
//! the three per-cell artifacts —
//!
//! * the Eq. (1) load curve (exact reuse: it depends only on the cell and
//!   its drive state),
//! * the holding resistance (exact reuse),
//! * the propagated-noise table (reused across *similar* output loads:
//!   loads are quantized into ×1.2 geometric buckets, matching the
//!   load-binning practice of commercial characterization flows),
//!
//! so an SNA run over a whole design pays characterization costs
//! proportional to library diversity, not design size. Thevenin aggressor
//! fits are *not* cached: they depend on the continuous Π of each specific
//! net and are cheap relative to the rest.
//!
//! The store is internally sharded (`RwLock<HashMap>` per shard, keyed by
//! hash) with atomically aggregated hit/miss counters, so a parallel flow
//! (`sna-flow`) can share one library by `&` reference across worker
//! threads: concurrent lookups of *different* cells proceed without
//! contention, and a cache hit never blocks behind a characterization in
//! progress (characterization runs outside any lock). Two threads racing on
//! the same cold key may both characterize; the artifacts are deterministic
//! functions of the key, so whichever insert lands first wins and results
//! are identical either way.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

use sna_cells::characterize::{
    characterize_load_curve, characterize_propagated_noise_with, holding_resistance,
    CharacterizeOptions, LoadCurve, PropagatedNoiseTable,
};
use sna_cells::{Cell, DriverMode};
use sna_obs::{phase_span, Phase};
use sna_spice::error::{Error, Result};
use sna_spice::units::PS;

/// Identity of a (cell, drive-state) pair, hashable across f64 parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CellKey {
    tech: String,
    cell_tag: &'static str,
    strength_bits: u64,
    noisy_input: usize,
    level_bits: Vec<u64>,
}

impl CellKey {
    fn new(cell: &Cell, mode: &DriverMode) -> Self {
        CellKey {
            tech: cell.tech.name.clone(),
            cell_tag: cell.cell_type.tag(),
            strength_bits: cell.strength.to_bits(),
            noisy_input: mode.noisy_input,
            level_bits: mode.input_levels.iter().map(|v| v.to_bits()).collect(),
        }
    }
}

/// Geometric load bucket (×1.2 steps) for propagated-noise tables.
///
/// # Errors
///
/// Rejects non-positive or non-finite capacitances: `ln` of those yields a
/// garbage bucket (and previously only a `debug_assert!` guarded this, so
/// release builds silently cached tables at meaningless loads).
fn load_bucket(cap: f64) -> Result<i32> {
    if !cap.is_finite() || cap <= 0.0 {
        return Err(Error::InvalidAnalysis(format!(
            "propagated-noise load capacitance must be positive and finite, got {cap:e}"
        )));
    }
    Ok((cap.ln() / 1.2_f64.ln()).round() as i32)
}

/// Representative capacitance of a bucket (its geometric center).
fn bucket_cap(bucket: i32) -> f64 {
    1.2_f64.powi(bucket)
}

/// Kinds of characterization artifacts the cache statistics distinguish.
///
/// The first three are cached in the library's sharded maps; Thevenin fits
/// and noisy-receiver curves are characterized fresh every time (see the
/// module docs), so they only ever show up as misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum ArtifactKind {
    /// Eq. (1) load curves.
    LoadCurve = 0,
    /// Holding resistances.
    HoldingR = 1,
    /// Propagated-noise tables.
    PropTable = 2,
    /// Thevenin aggressor fits (never cached: they depend on each net's Π).
    Thevenin = 3,
    /// Noisy-receiver curves (never cached: one bisection sweep per corner).
    Nrc = 4,
}

/// Number of [`ArtifactKind`] variants.
pub const ARTIFACT_KIND_COUNT: usize = 5;

/// Every [`ArtifactKind`], in index order.
pub const ALL_ARTIFACT_KINDS: [ArtifactKind; ARTIFACT_KIND_COUNT] = [
    ArtifactKind::LoadCurve,
    ArtifactKind::HoldingR,
    ArtifactKind::PropTable,
    ArtifactKind::Thevenin,
    ArtifactKind::Nrc,
];

impl ArtifactKind {
    /// Stable snake_case name, used as a JSON key in metrics documents.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::LoadCurve => "load_curve",
            ArtifactKind::HoldingR => "holding_r",
            ArtifactKind::PropTable => "prop_table",
            ArtifactKind::Thevenin => "thevenin",
            ArtifactKind::Nrc => "nrc",
        }
    }
}

/// Hit/miss counts for one artifact kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Cache hits.
    pub hits: usize,
    /// Cache misses (characterizations actually run).
    pub misses: usize,
}

/// Cache statistics: per-artifact-kind hit/miss breakdown plus the derived
/// totals and per-shard occupancy of the backing maps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LibraryStats {
    /// Cache hits across all artifact kinds (sum of `by_kind` hits).
    pub hits: usize,
    /// Cache misses across all kinds (sum of `by_kind` misses).
    pub misses: usize,
    /// Hit/miss breakdown per [`ArtifactKind`], indexed by discriminant.
    pub by_kind: [KindStats; ARTIFACT_KIND_COUNT],
    /// Artifacts stored per lock shard, summed over the three cached maps.
    pub shard_occupancy: [usize; SHARD_COUNT],
}

impl LibraryStats {
    /// Hit/miss counts for one artifact kind.
    pub fn kind(&self, kind: ArtifactKind) -> KindStats {
        self.by_kind[kind as usize]
    }
}

/// Number of independent lock shards per artifact map. Eight is plenty for
/// the thread counts a desktop flow runs at; the map is keyed by cell
/// identity, so distinct cells almost always land on distinct shards.
pub const SHARD_COUNT: usize = 8;

/// A hash-sharded `RwLock<HashMap>`: readers of different shards never
/// contend, and writers only lock the one shard their key hashes to.
#[derive(Debug)]
struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    fn new() -> Self {
        ShardedMap {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[h.finish() as usize % SHARD_COUNT]
    }

    fn get(&self, key: &K) -> Option<V> {
        self.shard(key)
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned()
    }

    /// Insert `value` unless a racing thread beat us to the key; either
    /// way, return the value that ended up in the map.
    fn insert_if_absent(&self, key: K, value: V) -> V {
        self.shard(&key)
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert(value)
            .clone()
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    fn shard_len(&self, i: usize) -> usize {
        self.shards[i]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

impl<K: Hash + Eq, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Memoizing store of per-cell noise-characterization artifacts.
///
/// All methods take `&self`: the library is safe to share across threads
/// (wrap it in an `Arc` or borrow it from a scoped thread) and serves as
/// the shared characterization cache of the parallel `sna-flow` driver.
#[derive(Debug, Default)]
pub struct NoiseModelLibrary {
    load_curves: ShardedMap<(CellKey, usize), Arc<LoadCurve>>,
    holding: ShardedMap<CellKey, f64>,
    prop_tables: ShardedMap<(CellKey, i32), Arc<PropagatedNoiseTable>>,
    hit_counts: [AtomicUsize; ARTIFACT_KIND_COUNT],
    miss_counts: [AtomicUsize; ARTIFACT_KIND_COUNT],
}

impl NoiseModelLibrary {
    /// Create an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache statistics so far (aggregated atomically across threads).
    pub fn stats(&self) -> LibraryStats {
        let mut by_kind = [KindStats::default(); ARTIFACT_KIND_COUNT];
        let (mut hits, mut misses) = (0, 0);
        for (i, ks) in by_kind.iter_mut().enumerate() {
            ks.hits = self.hit_counts[i].load(Ordering::Relaxed);
            ks.misses = self.miss_counts[i].load(Ordering::Relaxed);
            hits += ks.hits;
            misses += ks.misses;
        }
        let mut shard_occupancy = [0usize; SHARD_COUNT];
        for (i, occ) in shard_occupancy.iter_mut().enumerate() {
            *occ = self.load_curves.shard_len(i)
                + self.holding.shard_len(i)
                + self.prop_tables.shard_len(i);
        }
        LibraryStats {
            hits,
            misses,
            by_kind,
            shard_occupancy,
        }
    }

    /// Number of distinct artifacts stored.
    pub fn len(&self) -> usize {
        self.load_curves.len() + self.holding.len() + self.prop_tables.len()
    }

    /// Whether nothing has been characterized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn record_hit(&self, kind: ArtifactKind) {
        self.hit_counts[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    fn record_miss(&self, kind: ArtifactKind) {
        self.miss_counts[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a characterization that bypasses the cache entirely (Thevenin
    /// fits, noisy-receiver curves). Always a miss: the work really ran.
    pub fn record_uncached(&self, kind: ArtifactKind) {
        self.record_miss(kind);
    }

    /// The Eq. (1) load curve for `(cell, mode)` at the grid in `opts`,
    /// characterized on first use.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures (which are then *not* cached).
    pub fn load_curve(
        &self,
        cell: &Cell,
        mode: &DriverMode,
        opts: &CharacterizeOptions,
    ) -> Result<Arc<LoadCurve>> {
        let key = (CellKey::new(cell, mode), opts.grid);
        if let Some(hit) = self.load_curves.get(&key) {
            self.record_hit(ArtifactKind::LoadCurve);
            return Ok(hit);
        }
        self.record_miss(ArtifactKind::LoadCurve);
        let _t = phase_span(Phase::LoadCurve);
        let lc = Arc::new(characterize_load_curve(cell, mode, opts)?);
        Ok(self.load_curves.insert_if_absent(key, lc))
    }

    /// Holding resistance for `(cell, mode)`, characterized on first use.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn holding_resistance(
        &self,
        cell: &Cell,
        mode: &DriverMode,
        opts: &CharacterizeOptions,
    ) -> Result<f64> {
        let key = CellKey::new(cell, mode);
        if let Some(hit) = self.holding.get(&key) {
            self.record_hit(ArtifactKind::HoldingR);
            return Ok(hit);
        }
        self.record_miss(ArtifactKind::HoldingR);
        let _t = phase_span(Phase::HoldingR);
        let r = holding_resistance(cell, mode, &opts.newton)?;
        Ok(self.holding.insert_if_absent(key, r))
    }

    /// Propagated-noise table for `(cell, mode)` at the load bucket
    /// containing `load_cap`. The characterization runs at the bucket's
    /// representative load, so all nets in the same ×1.2 bucket share one
    /// table.
    ///
    /// # Errors
    ///
    /// Rejects non-positive/non-finite `load_cap`; propagates
    /// characterization failures.
    pub fn propagated_table(
        &self,
        cell: &Cell,
        mode: &DriverMode,
        load_cap: f64,
        opts: &CharacterizeOptions,
    ) -> Result<Arc<PropagatedNoiseTable>> {
        let bucket = load_bucket(load_cap)?;
        let key = (CellKey::new(cell, mode), bucket);
        if let Some(hit) = self.prop_tables.get(&key) {
            self.record_hit(ArtifactKind::PropTable);
            return Ok(hit);
        }
        self.record_miss(ArtifactKind::PropTable);
        let _t = phase_span(Phase::PropTable);
        let vdd = cell.tech.vdd;
        let heights: Vec<f64> = [0.25, 0.45, 0.65, 0.85, 1.05]
            .iter()
            .map(|f| f * vdd)
            .collect();
        let widths: Vec<f64> = [150.0, 300.0, 600.0, 1200.0]
            .iter()
            .map(|w| w * PS)
            .collect();
        let table = Arc::new(characterize_propagated_noise_with(
            cell,
            mode,
            bucket_cap(bucket),
            &heights,
            &widths,
            opts,
        )?);
        Ok(self.prop_tables.insert_if_absent(key, table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_cells::Technology;

    #[test]
    fn load_curve_cached_by_cell_and_mode() {
        let tech = Technology::cmos130();
        let cell = Cell::nand2(tech.clone(), 1.0);
        let mode = cell.holding_low_mode();
        let opts = CharacterizeOptions {
            grid: 9,
            ..Default::default()
        };
        let lib = NoiseModelLibrary::new();
        let a = lib.load_curve(&cell, &mode, &opts).unwrap();
        let st = lib.stats();
        assert_eq!((st.hits, st.misses), (0, 1));
        assert_eq!(
            st.kind(ArtifactKind::LoadCurve),
            KindStats { hits: 0, misses: 1 }
        );
        let b = lib.load_curve(&cell, &mode, &opts).unwrap();
        let st = lib.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
        assert_eq!(
            st.kind(ArtifactKind::LoadCurve),
            KindStats { hits: 1, misses: 1 }
        );
        assert!(Arc::ptr_eq(&a, &b));
        // Different mode = different artifact.
        let high = cell.holding_high_mode();
        let c = lib.load_curve(&cell, &high, &opts).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(lib.stats().misses, 2);
        // Different strength = different artifact.
        let cell4 = Cell::nand2(tech, 4.0);
        let mode4 = cell4.holding_low_mode();
        lib.load_curve(&cell4, &mode4, &opts).unwrap();
        assert_eq!(lib.stats().misses, 3);
        assert_eq!(lib.len(), 3);
    }

    #[test]
    fn grid_is_part_of_the_key() {
        let tech = Technology::cmos130();
        let cell = Cell::inv(tech, 1.0);
        let mode = cell.holding_low_mode();
        let lib = NoiseModelLibrary::new();
        let coarse = CharacterizeOptions {
            grid: 5,
            ..Default::default()
        };
        let fine = CharacterizeOptions {
            grid: 9,
            ..Default::default()
        };
        lib.load_curve(&cell, &mode, &coarse).unwrap();
        lib.load_curve(&cell, &mode, &fine).unwrap();
        assert_eq!(lib.stats().misses, 2);
    }

    #[test]
    fn prop_tables_bucket_similar_loads() {
        let tech = Technology::cmos130();
        let cell = Cell::inv(tech, 1.0);
        let mode = cell.holding_low_mode();
        let lib = NoiseModelLibrary::new();
        let a = lib
            .propagated_table(&cell, &mode, 50e-15, &CharacterizeOptions::default())
            .unwrap();
        // +5% load: same bucket, cache hit.
        let b = lib
            .propagated_table(&cell, &mode, 52.5e-15, &CharacterizeOptions::default())
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let st = lib.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
        assert_eq!(
            st.kind(ArtifactKind::PropTable),
            KindStats { hits: 1, misses: 1 }
        );
        // 3x load: different bucket.
        let c = lib
            .propagated_table(&cell, &mode, 150e-15, &CharacterizeOptions::default())
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn bucketing_is_geometric() {
        assert_eq!(load_bucket(50e-15).unwrap(), load_bucket(52e-15).unwrap());
        assert_ne!(load_bucket(50e-15).unwrap(), load_bucket(80e-15).unwrap());
        // Representative load is within one step of any member.
        let b = load_bucket(60e-15).unwrap();
        let rep = bucket_cap(b);
        assert!(rep / 60e-15 < 1.2 && 60e-15 / rep < 1.2);
    }

    #[test]
    fn nonpositive_loads_rejected() {
        assert!(load_bucket(0.0).is_err());
        assert!(load_bucket(-1e-15).is_err());
        assert!(load_bucket(f64::NAN).is_err());
        assert!(load_bucket(f64::INFINITY).is_err());
        // Positive finite loads still bucket.
        assert!(load_bucket(1e-15).is_ok());
        // The error surfaces through the public cache API too, and nothing
        // garbage is cached.
        let tech = Technology::cmos130();
        let cell = Cell::inv(tech, 1.0);
        let mode = cell.holding_low_mode();
        let lib = NoiseModelLibrary::new();
        assert!(lib
            .propagated_table(&cell, &mode, -5e-15, &CharacterizeOptions::default())
            .is_err());
        assert!(lib.is_empty());
    }

    #[test]
    fn holding_resistance_cached() {
        let tech = Technology::cmos130();
        let cell = Cell::nand2(tech, 1.0);
        let mode = cell.holding_low_mode();
        let lib = NoiseModelLibrary::new();
        let opts = CharacterizeOptions::default();
        let r1 = lib.holding_resistance(&cell, &mode, &opts).unwrap();
        let r2 = lib.holding_resistance(&cell, &mode, &opts).unwrap();
        assert_eq!(r1, r2);
        let st = lib.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
        assert_eq!(
            st.kind(ArtifactKind::HoldingR),
            KindStats { hits: 1, misses: 1 }
        );
    }

    #[test]
    fn per_kind_breakdown_and_shard_occupancy() {
        let tech = Technology::cmos130();
        let cell = Cell::nand2(tech, 1.0);
        let mode = cell.holding_low_mode();
        let opts = CharacterizeOptions {
            grid: 9,
            ..Default::default()
        };
        let lib = NoiseModelLibrary::new();
        lib.load_curve(&cell, &mode, &opts).unwrap();
        lib.holding_resistance(&cell, &mode, &opts).unwrap();
        lib.record_uncached(ArtifactKind::Thevenin);
        lib.record_uncached(ArtifactKind::Thevenin);
        lib.record_uncached(ArtifactKind::Nrc);
        let st = lib.stats();
        assert_eq!(st.kind(ArtifactKind::LoadCurve).misses, 1);
        assert_eq!(st.kind(ArtifactKind::HoldingR).misses, 1);
        assert_eq!(
            st.kind(ArtifactKind::Thevenin),
            KindStats { hits: 0, misses: 2 }
        );
        assert_eq!(st.kind(ArtifactKind::Nrc), KindStats { hits: 0, misses: 1 });
        // Totals are derived from the breakdown.
        assert_eq!(st.hits, st.by_kind.iter().map(|k| k.hits).sum::<usize>());
        assert_eq!(
            st.misses,
            st.by_kind.iter().map(|k| k.misses).sum::<usize>()
        );
        // Two stored artifacts, wherever they hashed to.
        assert_eq!(st.shard_occupancy.iter().sum::<usize>(), lib.len());
        assert_eq!(lib.len(), 2);
    }

    #[test]
    fn library_is_shareable_across_threads() {
        let tech = Technology::cmos130();
        let lib = NoiseModelLibrary::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lib = &lib;
                let tech = tech.clone();
                s.spawn(move || {
                    let cell = Cell::inv(tech, 1.0);
                    let mode = cell.holding_low_mode();
                    lib.holding_resistance(&cell, &mode, &CharacterizeOptions::default())
                        .unwrap();
                });
            }
        });
        // One artifact stored no matter how the threads raced.
        assert_eq!(lib.len(), 1);
        let st = lib.stats();
        assert_eq!(st.hits + st.misses, 4);
        assert!(st.misses >= 1);
    }
}
